package steamstudy

import "steamstudy/internal/query"

// The read-side query service: a versioned /v1 HTTP API over a snapshot
// file, serving every table and figure of the paper plus ad-hoc
// percentile, genre, top-K and per-user lookups, behind a collapsing
// result cache keyed by the snapshot's manifest checksum. The cmd/
// steamquery binary is a thin wrapper over these types; embed QueryServer
// directly to serve the API from a larger process.

// QueryConfig configures a QueryServer (snapshot path, worker pools,
// cache capacity, observability sinks).
type QueryConfig = query.Config

// QueryServer serves the /v1 API over a hot-swappable snapshot. It is an
// http.Handler; Reload atomically swaps in a freshly loaded snapshot
// (and a fresh cache) without disturbing in-flight requests.
type QueryServer = query.Server

// QueryClient is the typed Go client for the /v1 API.
type QueryClient = query.Client

// QueryAPIError is the decoded form of a /v1 error envelope, returned by
// QueryClient methods on non-2xx responses.
type QueryAPIError = query.APIError

// NewQueryServer builds an unloaded server: every endpoint answers 503
// until the first successful Reload. Use OpenQueryServer for
// load-or-die startup.
func NewQueryServer(cfg QueryConfig) *QueryServer { return query.New(cfg) }

// OpenQueryServer builds a server and eagerly loads its snapshot,
// failing fast if the file is missing or damaged.
func OpenQueryServer(cfg QueryConfig) (*QueryServer, error) { return query.Open(cfg) }

// Wire types of the /v1 JSON bodies, for typed consumers.
type (
	// QuerySnapshotInfo answers /v1/snapshot.
	QuerySnapshotInfo = query.SnapshotInfo
	// QueryExperimentInfo is one entry of /v1/experiments.
	QueryExperimentInfo = query.ExperimentInfo
	// QueryPercentiles answers /v1/percentiles/{attr}.
	QueryPercentiles = query.PercentilesResult
	// QueryGenreSlice answers /v1/genres/{genre}.
	QueryGenreSlice = query.GenreSlice
	// QueryGameRank is one row of /v1/games/top.
	QueryGameRank = query.GameRank
	// QueryGroupRank is one row of /v1/groups/top.
	QueryGroupRank = query.GroupRank
	// QueryUserInfo answers /v1/users/{id}.
	QueryUserInfo = query.UserInfo
	// QueryFriends answers /v1/users/{id}/friends.
	QueryFriends = query.FriendsResult
	// QueryStats answers /v1/stats (live serving counters; never cached).
	QueryStats = query.StatsInfo
	// QueryErrorBody is the consistent {"error": {...}} envelope carried
	// by every non-2xx/304 response.
	QueryErrorBody = query.ErrorBody
)
