package steamstudy

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), each reporting
// its headline reproduced statistic as a custom metric, plus
// micro-benchmarks for the statistical hot paths and the crawl.
//
//	go test -bench=. -benchmem

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"steamstudy/internal/analysis"
	"steamstudy/internal/dataset"
	"steamstudy/internal/dists"
	"steamstudy/internal/graph"
	"steamstudy/internal/heavytail"
	"steamstudy/internal/randx"
	"steamstudy/internal/simworld"
	"steamstudy/internal/stats"
)

// benchState is generated once and shared: the benchmarks measure the
// analyses, not universe generation (which has its own benchmark).
var (
	benchOnce sync.Once
	benchU    *simworld.Universe
	benchSnap *dataset.Snapshot
	benchVec  *analysis.Vectors
	benchVec2 *analysis.Vectors
)

func benchFixtures(b *testing.B) (*simworld.Universe, *dataset.Snapshot, *analysis.Vectors) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := simworld.DefaultConfig(50000)
		cfg.CatalogSize = 3000
		benchU = simworld.MustGenerate(cfg, 2016)
		benchSnap = dataset.FromUniverse(benchU)
		benchVec = analysis.Extract(benchSnap)
		benchVec2 = analysis.Extract(dataset.FromUniverse(simworld.Evolve(benchU)))
	})
	return benchU, benchSnap, benchVec
}

// --- Tables ---

func BenchmarkTable1Countries(b *testing.B) {
	_, snap, _ := benchFixtures(b)
	b.ResetTimer()
	var t analysis.CountryTable
	for i := 0; i < b.N; i++ {
		t = analysis.Table1Countries(snap, 10)
	}
	b.ReportMetric(t.Rows[0].Percent, "top-country-%")
}

func BenchmarkTable2GroupTypes(b *testing.B) {
	_, snap, _ := benchFixtures(b)
	b.ResetTimer()
	var rows []analysis.GroupTypeRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Table2GroupTypes(snap, 250)
	}
	b.ReportMetric(rows[0].Percent, "top-type-%")
}

func BenchmarkTable3Percentiles(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var rows []analysis.PercentileRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Table3Percentiles(vec)
	}
	b.ReportMetric(rows[0].P90, "friends-p90")
}

func BenchmarkTable4Classification(b *testing.B) {
	_, _, vec := benchFixtures(b)
	// One distribution per iteration keeps the benchmark tractable; the
	// full 22-row table is exercised by the tests and the steamstudy run.
	data := make([]float64, 0, len(vec.TwoWkH))
	for _, h := range vec.TwoWkH {
		if h > 0 {
			data = append(data, h)
		}
	}
	xmin := stats.Percentile(data, 5)
	for _, bw := range benchWorkers {
		b.Run(bw.name, func(b *testing.B) {
			var class heavytail.Class
			for i := 0; i < b.N; i++ {
				res, err := heavytail.ClassifyData(data, heavytail.Options{FixedXmin: xmin, Workers: bw.workers})
				if err != nil {
					b.Fatal(err)
				}
				class = res.Class
			}
			b.ReportMetric(float64(class), "class-code")
		})
	}
}

// --- Figures ---

func BenchmarkFigure1Evolution(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var pts []graph.EvolutionPoint
	for i := 0; i < b.N; i++ {
		pts = analysis.Figure1Evolution(vec)
	}
	b.ReportMetric(float64(pts[len(pts)-1].Friendships), "final-friendships")
}

func BenchmarkFigure2DegreeDist(b *testing.B) {
	_, _, vec := benchFixtures(b)
	years := []int{2009, 2010, 2011, 2012, 2013}
	b.ResetTimer()
	var series []analysis.DegreeSeries
	for i := 0; i < b.N; i++ {
		series = analysis.Figure2DegreeDistributions(vec, years)
	}
	b.ReportMetric(float64(len(series)), "series")
}

func BenchmarkFigure3GroupGames(b *testing.B) {
	_, snap, _ := benchFixtures(b)
	b.ResetTimer()
	var res analysis.Figure3Result
	for i := 0; i < b.N; i++ {
		res = analysis.Figure3GroupGameDiversity(snap, 100)
	}
	b.ReportMetric(res.FocusedFraction*100, "focused-%")
}

func BenchmarkFigure4Ownership(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var res analysis.OwnershipResult
	for i := 0; i < b.N; i++ {
		res = analysis.Figure4Ownership(vec)
	}
	b.ReportMetric(res.OwnedP80, "owned-p80")
}

func BenchmarkFigure5GenreOwnership(b *testing.B) {
	_, snap, _ := benchFixtures(b)
	b.ResetTimer()
	var rows []analysis.GenreOwnershipRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Figure5GenreOwnership(snap)
	}
	b.ReportMetric(rows[0].UnplayedFrac*100, "action-unplayed-%")
}

func BenchmarkFigure6PlaytimeCDF(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var res analysis.PlaytimeCDFResult
	for i := 0; i < b.N; i++ {
		res = analysis.Figure6PlaytimeCDF(vec)
	}
	b.ReportMetric(res.Top20TotalShare*100, "top20-share-%")
}

func BenchmarkFigure7TwoWeek(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var res analysis.TwoWeekResult
	for i := 0; i < b.N; i++ {
		res = analysis.Figure7NonZeroTwoWeek(vec)
	}
	b.ReportMetric(res.P80, "p80-hours")
}

func BenchmarkFigure8MarketValue(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var res analysis.MarketValueResult
	for i := 0; i < b.N; i++ {
		res = analysis.Figure8MarketValue(vec)
	}
	b.ReportMetric(res.P80, "p80-dollars")
}

func BenchmarkFigure9GenreExpenditure(b *testing.B) {
	_, snap, _ := benchFixtures(b)
	b.ResetTimer()
	var rows []analysis.GenreExpenditureRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Figure9GenreExpenditure(snap)
	}
	b.ReportMetric(rows[0].PlaytimeShare*100, "action-playtime-%")
}

func BenchmarkFigure10Multiplayer(b *testing.B) {
	_, snap, _ := benchFixtures(b)
	b.ResetTimer()
	var res analysis.MultiplayerShareResult
	for i := 0; i < b.N; i++ {
		res = analysis.Figure10MultiplayerShare(snap)
	}
	b.ReportMetric(res.TwoWeekShare*100, "mp-2wk-share-%")
}

func BenchmarkFigure11Homophily(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var rows []analysis.HomophilyRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Figure11Homophily(vec)
	}
	b.ReportMetric(rows[0].Rho, "value-homophily-rho")
}

func BenchmarkFigure12WeekMatrix(b *testing.B) {
	u, _, _ := benchFixtures(b)
	sample := u.SampleWeekUsers(0.005)
	b.ResetTimer()
	var res analysis.WeekMatrixResult
	for i := 0; i < b.N; i++ {
		res = analysis.Figure12WeekMatrix(sample, u.WeekSeries)
	}
	b.ReportMetric(res.DayOneRankPersistence, "day1-persistence-rho")
}

// --- Sections ---

func BenchmarkSection4Locality(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var res analysis.LocalityResult
	for i := 0; i < b.N; i++ {
		res = analysis.Section4Locality(vec)
	}
	b.ReportMetric(res.InternationalFrac*100, "international-%")
}

func BenchmarkSection7Correlations(b *testing.B) {
	_, _, vec := benchFixtures(b)
	b.ResetTimer()
	var rows []analysis.CorrelationRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Section7Correlations(vec)
	}
	b.ReportMetric(rows[0].Rho, "games-friends-rho")
}

func BenchmarkSection8Evolution(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	var cmp analysis.SnapshotComparison
	for i := 0; i < b.N; i++ {
		cmp = analysis.Section8Evolution(benchVec, benchVec2)
	}
	b.ReportMetric(cmp.TailGamesGrowth, "tail-growth-x")
}

func BenchmarkSection9Achievements(b *testing.B) {
	_, snap, _ := benchFixtures(b)
	b.ResetTimer()
	var res analysis.AchievementsResult
	for i := 0; i < b.N; i++ {
		res = analysis.Section9Achievements(snap)
	}
	b.ReportMetric(res.Rho1to90, "rho-1to90")
}

// --- Methodology (§3.1) ---

func BenchmarkCrawlThroughput(b *testing.B) {
	cfg := simworld.DefaultConfig(400)
	cfg.CatalogSize = 60
	u := simworld.MustGenerate(cfg, 3)
	srv, err := ServeUniverse(u, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := Crawl(CrawlOptions{
			BaseURL: srv.BaseURL, Workers: 8, Timeout: 2 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(snap.Users) != 400 {
			b.Fatalf("crawl found %d users", len(snap.Users))
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkGenerateUniverse10k(b *testing.B) {
	cfg := simworld.DefaultConfig(10000)
	cfg.CatalogSize = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simworld.MustGenerate(cfg, int64(i+1))
	}
}

// benchWorkers are the two points of the tier-2 perf trajectory: the
// serial baseline and the full worker pool. Rendered output is identical
// between them; only the wall clock moves.
var benchWorkers = []struct {
	name    string
	workers int
}{
	{"workers=1", 1},
	{"workers=max", 0},
}

func BenchmarkHeavytailFit(b *testing.B) {
	r := randx.New(1)
	data := make([]float64, 50000)
	for i := range data {
		data[i] = r.TruncatedPowerLaw(1.8, 0.01, 1)
	}
	for _, bw := range benchWorkers {
		b.Run(bw.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := heavytail.New(data, heavytail.Options{Workers: bw.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSpearman100k(b *testing.B) {
	r := randx.New(2)
	x := make([]float64, 100000)
	y := make([]float64, 100000)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = 0.5*x[i] + r.NormFloat64()
	}
	// full re-ranks both columns per call (the old §7 path, one sort per
	// column per pair); ranked correlates precomputed mid-ranks (the
	// cached path) — both return bit-identical ρ.
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.Spearman(x, y)
		}
	})
	b.Run("ranked", func(b *testing.B) {
		rx, ry := stats.Ranks(x), stats.Ranks(y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stats.SpearmanRanked(rx, ry)
		}
	})
}

func BenchmarkCopulaSample(b *testing.B) {
	m := []float64{
		1, 0.5, 0.2,
		0.5, 1, 0.1,
		0.2, 0.1, 1,
	}
	cop, _, err := randx.NewCopula(3, m)
	if err != nil {
		b.Fatal(err)
	}
	r := randx.New(3)
	z := make([]float64, 3)
	u := make([]float64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cop.Sample(r, z, u)
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	u, snap, _ := benchFixtures(b)
	_ = u
	edges := snap.FriendshipEdges()
	gedges := make([]graph.Edge, len(edges))
	for i, e := range edges {
		gedges[i] = graph.Edge{A: e.A, B: e.B, Since: e.Since}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Build(len(snap.Users), gedges)
	}
}

func BenchmarkQuantileSpline(b *testing.B) {
	q := dists.MustQuantileSpline(1, []dists.Anchor{
		{P: 0.5, V: 4}, {P: 0.8, V: 15}, {P: 0.9, V: 29},
		{P: 0.95, V: 50}, {P: 0.99, V: 122},
	}, 2.6, 0)
	r := randx.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Quantile(r.Float64())
	}
}

func BenchmarkRunAllRender(b *testing.B) {
	for _, bw := range benchWorkers {
		b.Run(bw.name, func(b *testing.B) {
			s, err := New(Options{Users: 20000, CatalogSize: 1500, Seed: 2016, Workers: bw.workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.RunAll(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
