package steamstudy

import (
	"bytes"
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

func sharedStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study, studyErr = New(Options{Users: 12000, CatalogSize: 1200, Seed: 4})
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study
}

func TestNewDefaultsAndHeadline(t *testing.T) {
	s := sharedStudy(t)
	h := s.Headline()
	if h.Users != 12000 || h.Games != 1200 {
		t.Fatalf("headline sizes %+v", h)
	}
	if h.Friendships == 0 || h.OwnedGames == 0 || h.PlaytimeYears == 0 {
		t.Fatalf("empty headline: %+v", h)
	}
	if !h.SecondSnapshots {
		t.Fatal("second snapshot missing by default")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 23 {
		t.Fatalf("registry has %d experiments, want 23", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range []string{"T1", "T2", "T3", "T4", "F1", "F12", "E2", "E3", "E8", "E9", "E9F", "E10"} {
		if !seen[id] {
			t.Fatalf("experiment %s missing", id)
		}
	}
}

func TestRunSingleExperiments(t *testing.T) {
	s := sharedStudy(t)
	for _, e := range Experiments() {
		var buf bytes.Buffer
		if err := s.Run(&buf, e.ID); err != nil {
			t.Fatalf("experiment %s failed: %v", e.ID, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("experiment %s produced no output", e.ID)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := sharedStudy(t)
	var buf bytes.Buffer
	if err := s.Run(&buf, "T99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllOutputsEveryHeader(t *testing.T) {
	s := sharedStudy(t)
	var buf bytes.Buffer
	if err := s.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12", "§2.2", "§3.2", "§8", "§9", "§4.1", "§10.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestSnapshotRoundTripThroughDisk(t *testing.T) {
	s := sharedStudy(t)
	path := filepath.Join(t.TempDir(), "snap.gob.gz")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Headline().Users != s.Headline().Users {
		t.Fatal("loaded snapshot differs")
	}
	// Snapshot-only studies run data experiments but not generator ones.
	var buf bytes.Buffer
	if err := loaded.Run(&buf, "T3"); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Run(&buf, "F12"); err == nil {
		t.Fatal("F12 should need the generator")
	}
}

func TestServeAndCrawlEndToEnd(t *testing.T) {
	small, err := New(Options{Users: 600, CatalogSize: 100, Seed: 9, SkipSecondSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := small.Serve(ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	snap, err := Crawl(CrawlOptions{
		BaseURL: srv.BaseURL,
		Workers: 6,
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Users) != 600 {
		t.Fatalf("crawl found %d users, want 600", len(snap.Users))
	}
	// The crawled snapshot supports the full data-driven pipeline.
	crawled := FromSnapshot(snap)
	var buf bytes.Buffer
	for _, id := range []string{"T1", "T2", "T3", "F4", "F10", "E9"} {
		if err := crawled.Run(&buf, id); err != nil {
			t.Fatalf("experiment %s on crawled data: %v", id, err)
		}
	}
	// Crawled totals match ground truth.
	if crawled.Headline().OwnedGames != small.Headline().OwnedGames {
		t.Fatal("crawled owned-games total differs from ground truth")
	}
}

func TestRunAllSkipsGeneratorExperimentsOnSnapshotStudy(t *testing.T) {
	s := sharedStudy(t)
	path := filepath.Join(t.TempDir(), "snap.gob")
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := loaded.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		t.Fatal("generator-bound experiments were not marked skipped")
	}
}

func TestExportCSVWritesEverySeries(t *testing.T) {
	s := sharedStudy(t)
	dir := filepath.Join(t.TempDir(), "csv")
	if err := s.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"table1_countries.csv", "table2_group_types.csv",
		"table3_percentiles.csv", "table4_classification.csv",
		"fig1_evolution.csv", "fig2_degrees.csv", "fig3_group_games.csv",
		"fig4_ownership.csv", "fig5_genre_ownership.csv",
		"fig6_playtime_cdf.csv", "fig7_two_week.csv",
		"fig8_market_value.csv", "fig9_genre_expenditure.csv",
		"fig10_multiplayer.csv", "fig11_value_scatter.csv",
		"correlations.csv", "fig12_week_matrix.csv",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing CSV %s: %v", name, err)
		}
		records, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			t.Fatalf("%s is not valid CSV: %v", name, err)
		}
		if len(records) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
	}
}
