package main

// SLO gating for make querybench / make querychaos. The thresholds live
// in a JSON file committed next to BENCH_query.json so a latency or
// shedding regression fails CI with a diff-able artifact, not a shrug.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

// sloThresholds bound one mode's acceptable behavior. Zero values mean
// "not checked" so the file only needs to state what it cares about.
type sloThresholds struct {
	// P99Ms caps the served-request (200/304) p99 latency.
	P99Ms float64 `json:"p99_ms"`
	// RouteP99Ms caps per-route p99s by mix family (snapshot,
	// experiment, genres, games_top, user, ...).
	RouteP99Ms map[string]float64 `json:"route_p99_ms"`
	// MaxShedRate caps the 503 fraction of all issued requests.
	MaxShedRate float64 `json:"max_shed_rate"`
	// MaxErrorRate caps the non-shed failure fraction (5xx + timeouts +
	// transport errors).
	MaxErrorRate float64 `json:"max_error_rate"`
	// MinServerShed (chaos only) demands the admission layer actually
	// shed at least this many requests during the run.
	MinServerShed int64 `json:"min_server_shed"`
}

// sloFile is BENCH_query_slo.json: one budget for calm-weather bench
// runs, one for chaos runs.
type sloFile struct {
	Bench sloThresholds `json:"bench"`
	Chaos sloThresholds `json:"chaos"`
}

// checkSLO compares the run against the thresholds file and returns the
// violations (empty path = no file-based checks).
func checkSLO(path string, rep *benchReport, chaos *chaosReport) []string {
	if path == "" {
		return nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("slo: %v", err)
	}
	var f sloFile
	if err := json.Unmarshal(b, &f); err != nil {
		log.Fatalf("slo: parsing %s: %v", path, err)
	}
	if chaos != nil {
		v := checkThresholds("chaos", f.Chaos, chaos.LatencyMs.P99, chaos.Routes, chaos.Classification)
		if f.Chaos.MinServerShed > 0 && chaos.ServerShed < f.Chaos.MinServerShed {
			v = append(v, fmt.Sprintf("chaos: server shed %d requests, SLO demands >= %d (admission control not engaging)",
				chaos.ServerShed, f.Chaos.MinServerShed))
		}
		return v
	}
	return checkThresholds("bench", f.Bench, rep.LatencyMs.P99, rep.Routes, rep.Classification)
}

func checkThresholds(mode string, t sloThresholds, p99 float64, routes map[string]latencySummary, cls classification) []string {
	var v []string
	if t.P99Ms > 0 && p99 > t.P99Ms {
		v = append(v, fmt.Sprintf("%s: p99 %.3fms exceeds budget %.3fms", mode, p99, t.P99Ms))
	}
	for route, limit := range t.RouteP99Ms {
		s, ok := routes[route]
		if !ok || s.Count == 0 {
			v = append(v, fmt.Sprintf("%s: route %q has an SLO but saw no served requests", mode, route))
			continue
		}
		if s.P99 > limit {
			v = append(v, fmt.Sprintf("%s: route %q p99 %.3fms exceeds budget %.3fms", mode, route, s.P99, limit))
		}
	}
	if rate := cls.shedRate(); t.MaxShedRate > 0 && rate > t.MaxShedRate {
		v = append(v, fmt.Sprintf("%s: shed rate %.5f exceeds budget %.5f", mode, rate, t.MaxShedRate))
	}
	if rate := cls.errorRate(); rate > t.MaxErrorRate {
		v = append(v, fmt.Sprintf("%s: error rate %.5f exceeds budget %.5f (%d 5xx, %d timeouts, %d transport)",
			mode, rate, t.MaxErrorRate, cls.Errors5xx, cls.Timeouts, cls.TransportErrors))
	}
	return v
}
