package main

// The chaos harness: hostile clients and operational abuse running
// against the self-served steamquery server while the main mix
// measures collateral damage. Each actor proves one robustness claim:
//
//   - slow clients (header tricklers and stalled readers) must be cut
//     by the http.Server timeouts, never parked forever;
//   - mid-body aborts must not wedge handlers or leak workers;
//   - request bursts past -max-inflight must shed 503 + Retry-After,
//     not pile up or 500;
//   - a SIGHUP reload storm mid-flight must keep every response
//     consistent (the storm goes through the real signal path);
//   - a corrupt (truncated) snapshot reload must fail while the old
//     state keeps serving, ETag unchanged, and a restored file must
//     reload cleanly.
//
// stop() folds the evidence into the report's chaos section;
// invariantViolations() turns missing evidence into a non-zero exit.

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"steamstudy/internal/dataset"
	"steamstudy/internal/query"
)

const (
	// chaosWriteTimeout replaces the server's write/idle/read-header
	// deadlines so slow-client cuts land within the run, not after a
	// minute.
	chaosWriteTimeout = 2 * time.Second
	chaosTrickle      = 200 * time.Millisecond // slowloris inter-byte gap
	chaosStall        = 3 * time.Second        // stalled reader's silent window (> write+idle deadline)
	chaosGrace        = 3 * time.Second        // how long a cut may take to become visible
	chaosBurstEvery   = 300 * time.Millisecond
	chaosBurstSize    = 64
	// Each storm reload wipes the result cache and re-renders the warm
	// set, which is deliberately expensive; 2s spacing keeps a 1-CPU
	// host making forward progress between wipes.
	chaosReloadEvery  = 2 * time.Second
	chaosCorruptAfter = 1 * time.Second // into the run, so the attempt lands mid-flight
)

// chaosReport is the chaos section of BENCH_query.json.
type chaosReport struct {
	GeneratedAt  string `json:"generated_at"`
	Requests     int    `json:"requests"`
	MaxInflight  int    `json:"max_inflight"`
	QueueWait    string `json:"queue_wait"`
	RouteTimeout string `json:"route_timeout"`

	DurationSeconds float64 `json:"duration_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	LatencyMs       struct {
		P50 float64 `json:"p50"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Routes         map[string]latencySummary `json:"routes_latency_ms"`
	Classification classification            `json:"classification"`
	ShedRate       float64                   `json:"shed_rate"`
	ErrorRate      float64                   `json:"error_rate"`

	ServerShed     int64 `json:"server_shed"`
	ServerDeadline int64 `json:"server_deadline_exceeded"`
	ServerWarmed   int64 `json:"server_warmed"`

	SlowClients struct {
		Observed int64 `json:"observed"`
		Cut      int64 `json:"cut"`
	} `json:"slow_clients"`
	MidBodyAborts int64 `json:"mid_body_aborts"`
	Bursts        struct {
		Fired    int64 `json:"fired"`
		Requests int64 `json:"requests"`
		Shed     int64 `json:"shed"`
		Errors   int64 `json:"errors"`
	} `json:"bursts"`
	Reloads struct {
		Attempted int64 `json:"attempted"`
		Failed    int64 `json:"failed"`
	} `json:"reloads"`
	CorruptReload struct {
		Attempted       bool `json:"attempted"`
		ReloadFailed    bool `json:"reload_failed"`
		ETagStable      bool `json:"etag_stable"`
		RecoveredReload bool `json:"recovered_reload"`
	} `json:"corrupt_reload"`
}

// fillFromRun copies the main mix's measurements (taken while the chaos
// actors ran) into the chaos section; the report's top level keeps the
// calm-weather querybench numbers.
func (c *chaosReport) fillFromRun(rep *benchReport, before, after query.StatsInfo) {
	c.GeneratedAt = rep.GeneratedAt
	c.Requests = rep.Requests
	c.MaxInflight = rep.MaxInflight
	c.QueueWait = rep.QueueWait
	c.RouteTimeout = rep.RouteTimeout
	c.DurationSeconds = rep.DurationSeconds
	c.ThroughputRPS = rep.ThroughputRPS
	c.LatencyMs.P50 = rep.LatencyMs.P50
	c.LatencyMs.P99 = rep.LatencyMs.P99
	c.LatencyMs.Max = rep.LatencyMs.Max
	c.Routes = rep.Routes
	c.Classification = rep.Classification
	c.ShedRate = rep.ShedRate
	c.ErrorRate = rep.ErrorRate
	c.ServerShed = after.Shed - before.Shed
	c.ServerDeadline = after.Deadline - before.Deadline
	c.ServerWarmed = after.Warmed - before.Warmed
}

// invariantViolations are the chaos run's built-in pass/fail gates,
// independent of any -slo file: the proof obligations of DESIGN.md §15.
func (c *chaosReport) invariantViolations() []string {
	var v []string
	if c.ServerShed == 0 && c.Classification.Shed == 0 && c.Bursts.Shed == 0 {
		v = append(v, "chaos: no load shedding observed; bursts should exceed -max-inflight")
	}
	if c.SlowClients.Observed == 0 {
		v = append(v, "chaos: no slow-client connection completed a probe cycle")
	} else if c.SlowClients.Cut < c.SlowClients.Observed {
		v = append(v, fmt.Sprintf("chaos: %d/%d slow clients survived the server timeouts",
			c.SlowClients.Observed-c.SlowClients.Cut, c.SlowClients.Observed))
	}
	if c.MidBodyAborts == 0 {
		v = append(v, "chaos: no mid-body aborts landed")
	}
	if c.Reloads.Attempted < 2 {
		v = append(v, "chaos: reload storm barely ran")
	}
	if !c.CorruptReload.Attempted {
		v = append(v, "chaos: corrupt-snapshot reload never attempted")
	} else {
		if !c.CorruptReload.ReloadFailed {
			v = append(v, "chaos: reload of the truncated snapshot did not fail")
		}
		if !c.CorruptReload.ETagStable {
			v = append(v, "chaos: ETag changed across the corrupt reload attempt")
		}
		if !c.CorruptReload.RecoveredReload {
			v = append(v, "chaos: reload after restoring the snapshot did not succeed")
		}
	}
	return v
}

// chaosHarness owns the scratch snapshot copy and the actor goroutines.
type chaosHarness struct {
	dir       string
	servePath string

	srv    *query.Server
	cancel chan struct{}
	wg     sync.WaitGroup

	slowObserved atomic.Int64
	slowCut      atomic.Int64
	aborts       atomic.Int64
	burstsFired  atomic.Int64
	burstReqs    atomic.Int64
	burstShed    atomic.Int64
	burstErrors  atomic.Int64
	reloads      atomic.Int64
	reloadFailed atomic.Int64

	corruptDone chan struct{}
	rep         chaosReport
}

// newChaosHarness copies the snapshot (and its manifest sidecar, so the
// integrity check guards the copy too) into a scratch dir the corrupt
// actor may truncate and restore at will.
func newChaosHarness(snapshot string) (*chaosHarness, error) {
	dir, err := os.MkdirTemp("", "steamquery-chaos-")
	if err != nil {
		return nil, err
	}
	dst := filepath.Join(dir, filepath.Base(snapshot))
	if err := copyFile(snapshot, dst); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if _, err := os.Stat(dataset.ManifestPath(snapshot)); err == nil {
		if err := copyFile(dataset.ManifestPath(snapshot), dataset.ManifestPath(dst)); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
	}
	return &chaosHarness{
		dir:         dir,
		servePath:   dst,
		cancel:      make(chan struct{}),
		corruptDone: make(chan struct{}),
	}, nil
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

func (h *chaosHarness) done() bool {
	select {
	case <-h.cancel:
		return true
	default:
		return false
	}
}

// sleep waits d or until the harness is cancelled; reports whether the
// full wait elapsed.
func (h *chaosHarness) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-h.cancel:
		return false
	}
}

// start launches every actor against the running server.
func (h *chaosHarness) start(srv *query.Server, base string, client *query.Client, urls *mix) {
	h.srv = srv
	addr := base[len("http://"):]

	// Slow clients: half trickle request headers (cut by
	// ReadHeaderTimeout), half send a request then stop reading (cut by
	// the write/idle deadlines).
	for i := 0; i < 4; i++ {
		loris := i%2 == 0
		h.wg.Add(1)
		go func(loris bool) {
			defer h.wg.Done()
			for !h.done() {
				h.slowClientOnce(addr, loris)
			}
		}(loris)
	}

	// Mid-body aborts: read the first bytes of a response, then RST.
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for !h.done() {
			h.abortOnce(addr)
			h.sleep(100 * time.Millisecond)
		}
	}()

	// Bursts target the expensive route family (experiment renders):
	// right after a reload wipes the cache, chaosBurstSize concurrent
	// cold fills hold admission slots for tens of milliseconds each,
	// which is exactly the condition -max-inflight exists for. The
	// server must answer each with 200/304 or a shed 503, never a 5xx.
	expensive := make([]string, 0, len(urls.list))
	for i, f := range urls.family {
		if f == "experiment" {
			expensive = append(expensive, urls.list[i])
		}
	}
	if len(expensive) == 0 {
		expensive = urls.list
	}
	burstC := make(chan struct{}, 1)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		hc := &http.Client{Timeout: 10 * time.Second, Transport: &http.Transport{
			MaxIdleConnsPerHost: chaosBurstSize,
		}}
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-h.cancel:
				return
			case <-burstC:
			}
			h.burstsFired.Add(1)
			var wg sync.WaitGroup
			for i := 0; i < chaosBurstSize; i++ {
				u := expensive[rng.Intn(len(expensive))]
				wg.Add(1)
				go func(u string) {
					defer wg.Done()
					h.burstReqs.Add(1)
					resp, err := hc.Get(base + u)
					if err != nil {
						h.burstErrors.Add(1)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case resp.StatusCode == http.StatusServiceUnavailable:
						h.burstShed.Add(1)
					case resp.StatusCode >= 500:
						h.burstErrors.Add(1)
					}
				}(u)
			}
			wg.Wait()
		}
	}()

	// Reload storm through the real SIGHUP path: the process signals
	// itself, the handler hot-reloads, both racing the serving traffic.
	// Each storm reload chases the fresh (cold) state with a burst.
	hup := make(chan os.Signal, 4)
	signal.Notify(hup, syscall.SIGHUP)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer signal.Stop(hup)
		for {
			select {
			case <-h.cancel:
				return
			case <-hup:
				h.reloads.Add(1)
				if err := h.srv.Reload(); err != nil {
					h.reloadFailed.Add(1)
				}
				select {
				case burstC <- struct{}{}:
				default:
				}
			}
		}
	}()
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for h.sleep(chaosReloadEvery) {
			syscall.Kill(os.Getpid(), syscall.SIGHUP)
		}
	}()

	// Corrupt-snapshot reload: one scripted sequence mid-run.
	go h.corruptReload(client)
}

// slowClientOnce runs one hostile-client cycle. It only counts cycles
// whose outcome it observed (cancellation mid-probe counts nothing), so
// cut==observed is the pass condition.
func (h *chaosHarness) slowClientOnce(addr string, loris bool) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		h.sleep(200 * time.Millisecond)
		return
	}
	defer conn.Close()
	observed, cut := h.probeSlow(conn, loris)
	if observed {
		h.slowObserved.Add(1)
		if cut {
			h.slowCut.Add(1)
		}
	}
}

func (h *chaosHarness) probeSlow(conn net.Conn, loris bool) (observed, cut bool) {
	if loris {
		// Trickle one header byte per chaosTrickle: far slower than
		// ReadHeaderTimeout allows. The cut surfaces as a write error
		// (RST after the server closes).
		req := "GET /v1/genres HTTP/1.1\r\nHost: chaos\r\nUser-Agent: slowloris\r\nAccept: application/json\r\n\r\n"
		for i := 0; i < len(req); i++ {
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			if _, err := conn.Write([]byte{req[i]}); err != nil {
				return true, true
			}
			if !h.sleep(chaosTrickle) {
				return false, false
			}
		}
	} else {
		// Send a full request, then go silent past the write and idle
		// deadlines: the server must not keep the connection around.
		if _, err := io.WriteString(conn, "GET /v1/genres HTTP/1.1\r\nHost: chaos\r\n\r\n"); err != nil {
			return false, false
		}
		if !h.sleep(chaosStall) {
			return false, false
		}
	}
	// Drain fast. A timeout-protected server has already closed the
	// connection, so EOF/reset must arrive within the grace window; a
	// read timeout here means the slow client was never cut.
	conn.SetReadDeadline(time.Now().Add(chaosGrace))
	buf := make([]byte, 32<<10)
	for {
		if _, err := conn.Read(buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return true, false
			}
			return true, true
		}
	}
}

// abortOnce reads the first bytes of a response and slams the
// connection shut with an RST mid-body.
func (h *chaosHarness) abortOnce(addr string) {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		h.sleep(200 * time.Millisecond)
		return
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /v1/genres HTTP/1.1\r\nHost: chaos\r\n\r\n"); err != nil {
		return
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 64)); err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST, not FIN: an abort, not a polite close
	}
	h.aborts.Add(1)
}

// corruptReload truncates the serving snapshot copy, proves the reload
// fails while the old state keeps serving (ETag unchanged), restores
// the bytes and proves a clean reload recovers. It runs concurrently
// with the SIGHUP storm on purpose: storm reloads during the corrupt
// window fail too, and must be equally harmless.
func (h *chaosHarness) corruptReload(client *query.Client) {
	defer close(h.corruptDone)
	if !h.sleep(chaosCorruptAfter) {
		return
	}
	info, err := client.Snapshot()
	if err != nil {
		return
	}
	orig, err := os.ReadFile(h.servePath)
	if err != nil {
		return
	}
	h.rep.CorruptReload.Attempted = true
	if err := os.WriteFile(h.servePath, orig[:len(orig)/2], 0o644); err != nil {
		return
	}
	if _, err := client.Reload(); err != nil {
		h.rep.CorruptReload.ReloadFailed = true
	}
	if again, err := client.Snapshot(); err == nil && again.ETag == info.ETag {
		h.rep.CorruptReload.ETagStable = true
	}
	if err := os.WriteFile(h.servePath, orig, 0o644); err != nil {
		return
	}
	if res, err := client.Reload(); err == nil && res.ETag == info.ETag {
		h.rep.CorruptReload.RecoveredReload = true
	}
}

// stop waits until every actor has evidence on the board, shuts the
// harness down and assembles the chaos report (fillFromRun adds the
// main mix's numbers afterwards).
func (h *chaosHarness) stop() *chaosReport {
	// The main mix may drain before the slower actors land their
	// evidence; keep the storm running until every claim has at least
	// one observation (bounded, so a broken actor still fails fast).
	deadline := time.Now().Add(45 * time.Second)
	for time.Now().Before(deadline) {
		if h.slowObserved.Load() > 0 && h.aborts.Load() > 0 &&
			h.reloads.Load() >= 2 && h.burstShed.Load() > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	<-h.corruptDone
	close(h.cancel)
	h.wg.Wait()
	os.RemoveAll(h.dir)

	r := h.rep
	r.SlowClients.Observed = h.slowObserved.Load()
	r.SlowClients.Cut = h.slowCut.Load()
	r.MidBodyAborts = h.aborts.Load()
	r.Bursts.Fired = h.burstsFired.Load()
	r.Bursts.Requests = h.burstReqs.Load()
	r.Bursts.Shed = h.burstShed.Load()
	r.Bursts.Errors = h.burstErrors.Load()
	r.Reloads.Attempted = h.reloads.Load()
	r.Reloads.Failed = h.reloadFailed.Load()
	return &r
}
