// Command steamqueryload drives a steamquery server with a seeded,
// weighted request mix and reports latency percentiles, throughput and
// the server's cache hit rate as BENCH_query.json.
//
// By default it is self-contained: it loads -snapshot, starts an
// in-process steamquery server on a loopback port, and hammers it over
// real HTTP. Point -url at an external server (serving the same
// snapshot file, which is still read locally to seed user lookups) to
// load-test across processes.
//
//	steamqueryload -snapshot steam.gob.gz -requests 1000000 -out BENCH_query.json
//
// The mix is deterministic for a given -seed: a few hundred distinct
// URLs spanning every /v1 endpoint, weighted so that hot resources
// (snapshot metadata, tables, genre slices, top-K boards) dominate,
// with a configurable fraction of conditional requests replaying the
// snapshot's ETag.
//
// Responses are classified, not just counted: 200s and 304s are the
// happy path, 503s are load shedding (the admission layer's explicit
// backpressure), other 5xx are server errors, and transport failures
// split into timeouts and everything else. -slo points at a threshold
// file (BENCH_query_slo.json) and the run exits non-zero when per-route
// p99, shed rate or error rate regress past it.
//
// -chaos turns the run into an overload proof (make querychaos): slow
// readers, mid-body aborts, request bursts, a SIGHUP reload storm and a
// corrupt-snapshot reload all run against the live server while the
// main mix measures the collateral damage; the run fails unless the
// server sheds instead of erroring, keeps its ETag through the corrupt
// reload, and cuts every slow client. See DESIGN.md §15.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"steamstudy/internal/climain"
	"steamstudy/internal/dataset"
	"steamstudy/internal/query"
	"steamstudy/internal/ratelimit"
	"steamstudy/internal/stats"
)

func main() {
	app := climain.New("steamqueryload")
	workers := app.WorkersFlag(0, "concurrent request workers (0 = one per CPU); the URL sequence each worker draws is seeded, so results are reproducible for a fixed -workers")
	var (
		snapshot    = flag.String("snapshot", "", "snapshot file: served in-process (default) and sampled for user-lookup targets")
		url         = flag.String("url", "", "load an external steamquery server at this base URL instead of self-serving")
		requests    = flag.Int("requests", 1_000_000, "total requests to issue")
		rate        = flag.Float64("rate", 0, "request budget in requests/second shared across workers (0 = unlimited), via the crawler's token-bucket limiter")
		seed        = flag.Int64("seed", 1, "seed for the URL mix")
		conditional = flag.Float64("conditional", 0.2, "fraction of requests sent with If-None-Match (expect 304s)")
		userURLs    = flag.Int("user-urls", 200, "distinct /v1/users/{id} targets sampled from the snapshot")
		cacheN      = flag.Int("cache", 0, "self-served server's result cache capacity (0 = default)")
		out         = flag.String("out", "", "write the JSON report here (empty = stdout)")
		reqTimeout  = flag.Duration("req-timeout", 10*time.Second, "per-request client timeout; expirations are classified as timeouts")
		sloPath     = flag.String("slo", "", "SLO threshold file (BENCH_query_slo.json); exit non-zero when the run regresses past it")
		chaos       = flag.Bool("chaos", false, "run the overload chaos harness alongside the load (self-serve only)")

		maxInflight = flag.Int("max-inflight", 0, "self-served server: admission-control in-flight cap (0 = server default)")
		queueWait   = flag.Duration("queue-wait", 0, "self-served server: admission queue deadline (0 = server default)")
		routeTO     = flag.Duration("route-timeout", 0, "self-served server: per-route deadline budget (0 = server default)")
		warmKeys    = flag.Int("warm-keys", 0, "self-served server: hottest keys warmed on reload (0 = server default)")
	)
	flag.Parse()
	app.MustSnapshotPath("snapshot", *snapshot)
	app.StartAdmin()
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	if *chaos && *url != "" {
		log.Fatal("-chaos needs the self-served server (reload storms and snapshot corruption act on the serving process); drop -url")
	}

	// The snapshot is read once, locally, for two jobs: seeding the
	// user-lookup URLs, and (without -url) serving itself.
	snap, err := dataset.Load(*snapshot)
	if err != nil {
		log.Fatal(err)
	}

	// Chaos serves from a scratch copy so the corrupt-reload actor can
	// truncate and restore the file without touching the input.
	servePath := *snapshot
	var ch *chaosHarness
	if *chaos {
		ch, err = newChaosHarness(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		servePath = ch.servePath
	}

	base := *url
	var srv *query.Server
	if base == "" {
		srv, err = query.Open(query.Config{
			SnapshotPath: servePath,
			CacheEntries: *cacheN,
			MaxInflight:  *maxInflight,
			QueueWait:    *queueWait,
			RouteTimeout: *routeTO,
			WarmKeys:     *warmKeys,
		})
		if err != nil {
			log.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := climain.NewHTTPServer(srv)
		if *chaos {
			// Short deadlines so the slow-client cuts land within the
			// run, not after a minute.
			hs.ReadHeaderTimeout = chaosWriteTimeout
			hs.WriteTimeout = chaosWriteTimeout
			hs.IdleTimeout = chaosWriteTimeout
		}
		go hs.Serve(lis)
		defer hs.Shutdown(context.Background())
		base = "http://" + lis.Addr().String()
		fmt.Fprintf(os.Stderr, "steamqueryload: self-serving %s at %s\n", servePath, base)
	}

	client := &query.Client{BaseURL: base, Timeout: *reqTimeout, HTTPClient: &http.Client{
		Timeout: *reqTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}}
	urls, etag, err := buildMix(client, snap, *seed, *userURLs)
	if err != nil {
		log.Fatal(err)
	}
	before, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}

	var limiter *ratelimit.Limiter
	if *rate > 0 {
		limiter = ratelimit.New(*rate, *workers)
	}
	fmt.Fprintf(os.Stderr, "steamqueryload: %d requests over %d distinct URLs, %d workers, seed %d%s\n",
		*requests, urls.distinct(), *workers, *seed, map[bool]string{true: ", CHAOS MODE", false: ""}[*chaos])

	if ch != nil {
		ch.start(srv, base, client, urls)
	}
	res := run(client.HTTPClient, base, urls, etag, *requests, *workers, *seed, *conditional, limiter)
	var chaosRes *chaosReport
	if ch != nil {
		chaosRes = ch.stop()
	}

	after, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	rep := buildReport(*snapshot, snap, urls, before, after, res, *requests, *workers, *rate, *seed, *conditional,
		*maxInflight, *queueWait, *routeTO)
	if chaosRes != nil {
		chaosRes.fillFromRun(rep, before, after)
	}
	writeReport(*out, rep, chaosRes)

	violations := checkSLO(*sloPath, rep, chaosRes)
	if chaosRes != nil {
		violations = append(violations, chaosRes.invariantViolations()...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "steamqueryload: SLO VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	if *sloPath != "" || chaosRes != nil {
		fmt.Fprintln(os.Stderr, "steamqueryload: all SLO checks passed")
	}
}

// mix is the weighted URL population: list[i] repeated weight[i] times,
// flattened into a cumulative table for O(log n) seeded draws. family
// labels each URL with its endpoint class for per-route latency SLOs.
type mix struct {
	list   []string
	family []string
	cum    []int // cumulative weights
	total  int
	counts map[string]int // endpoint family -> distinct URLs
}

func (m *mix) add(family string, weight int, u string) {
	m.list = append(m.list, u)
	m.family = append(m.family, family)
	m.total += weight
	m.cum = append(m.cum, m.total)
	if m.counts == nil {
		m.counts = make(map[string]int)
	}
	m.counts[family]++
}

func (m *mix) distinct() int { return len(m.list) }

// pick draws one URL (and its family) with the mix's weights from the
// caller's rng.
func (m *mix) pick(rng *rand.Rand) (string, string) {
	n := rng.Intn(m.total)
	i := sort.SearchInts(m.cum, n+1)
	return m.list[i], m.family[i]
}

// buildMix assembles the request population from the live server (genre
// names, runnable experiment IDs, the current ETag) and the local
// snapshot (user IDs). The shape mirrors a read-heavy dashboard: hot
// metadata and boards dominate, per-user lookups form the long tail.
func buildMix(c *query.Client, snap *dataset.Snapshot, seed int64, userURLs int) (*mix, string, error) {
	info, err := c.Snapshot()
	if err != nil {
		return nil, "", fmt.Errorf("snapshot info: %w", err)
	}
	exps, err := c.Experiments()
	if err != nil {
		return nil, "", fmt.Errorf("experiment index: %w", err)
	}
	genres, err := c.Genres()
	if err != nil {
		return nil, "", fmt.Errorf("genre index: %w", err)
	}

	m := &mix{}
	m.add("snapshot", 120, "/v1/snapshot")
	m.add("experiments", 40, "/v1/experiments")
	for _, e := range exps {
		if e.Available {
			m.add("experiment", 25, "/v1/experiments/"+e.ID)
		}
	}
	for _, attr := range []string{"friends", "games", "played", "groups", "total_hours", "twoweek_hours", "value_usd"} {
		m.add("percentiles", 8, "/v1/percentiles/"+attr)
		m.add("percentiles", 5, "/v1/percentiles/"+attr+"?p=50,90,99")
		m.add("percentiles", 3, "/v1/percentiles/"+attr+"?nonzero=true")
		m.add("percentiles", 2, "/v1/percentiles/"+attr+"?p=25,50,75&nonzero=true")
	}
	m.add("genres", 60, "/v1/genres")
	for _, g := range genres {
		m.add("genre", 10, "/v1/genres/"+g.Genre)
	}
	for _, by := range []string{"owners", "players", "playtime", "value"} {
		for _, n := range []int{5, 10, 25, 100} {
			m.add("games_top", 6, fmt.Sprintf("/v1/games/top?by=%s&n=%d", by, n))
		}
	}
	for _, n := range []int{10, 25, 100} {
		m.add("groups_top", 8, fmt.Sprintf("/v1/groups/top?n=%d", n))
	}
	// User lookups: a seeded sample of real SteamIDs, weight 1 each —
	// the cold tail that exercises cache fills and eviction.
	rng := rand.New(rand.NewSource(seed))
	if userURLs > len(snap.Users) {
		userURLs = len(snap.Users)
	}
	for _, i := range rng.Perm(len(snap.Users))[:userURLs] {
		id := snap.Users[i].SteamID
		m.add("user", 1, fmt.Sprintf("/v1/users/%d", id))
		if len(snap.Users[i].Friends) > 0 {
			m.add("friends", 1, fmt.Sprintf("/v1/users/%d/friends", id))
		}
	}
	return m, info.ETag, nil
}

// Outcome classes. Shed (503) is the server working as designed under
// overload; error5xx is it failing; the two must never be lumped
// together or a collapsing server looks like a shedding one.
const (
	outOK        = "ok"
	out304       = "not_modified"
	outShed      = "shed"
	outError5xx  = "error_5xx"
	outClientErr = "client_error"
	outTimeout   = "timeout"
	outTransport = "transport_error"
)

// classify maps one request's fate to its outcome class.
func classify(status int, err error) string {
	switch {
	case err != nil:
		if ne, ok := err.(interface{ Timeout() bool }); ok && ne.Timeout() {
			return outTimeout
		}
		// url.Error wraps the net error; unwrap one level for Timeout.
		type unwrapper interface{ Unwrap() error }
		if ue, ok := err.(unwrapper); ok {
			if ne, ok := ue.Unwrap().(interface{ Timeout() bool }); ok && ne.Timeout() {
				return outTimeout
			}
		}
		return outTransport
	case status == http.StatusOK:
		return outOK
	case status == http.StatusNotModified:
		return out304
	case status == http.StatusServiceUnavailable:
		return outShed
	case status >= 500:
		return outError5xx
	default:
		return outClientErr
	}
}

// result accumulates one run's measurements.
type result struct {
	latencies []float64 // seconds, one per completed (200/304) request
	outcomes  map[string]int
	status    map[int]int
	perRoute  map[string][]float64 // family -> 200/304 latencies
	elapsed   time.Duration
}

// run fires total requests from workers goroutines, each drawing from
// its own seeded rng so the sequence is reproducible, and collects
// per-request wall latency, classified per outcome and per route.
// Latency percentiles are computed over served (200/304) requests only:
// shed responses return in microseconds and would flatter the numbers.
func run(hc *http.Client, base string, urls *mix, etag string, total, workers int, seed int64, conditional float64, limiter *ratelimit.Limiter) result {
	type workerOut struct {
		lat      []float64
		outcomes map[string]int
		status   map[int]int
		perRoute map[string][]float64
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		n := total / workers
		if w < total%workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			o := workerOut{
				lat:      make([]float64, 0, n),
				outcomes: make(map[string]int),
				status:   make(map[int]int),
				perRoute: make(map[string][]float64),
			}
			for i := 0; i < n; i++ {
				if limiter != nil {
					limiter.Wait(context.Background())
				}
				u, family := urls.pick(rng)
				req, err := http.NewRequest("GET", base+u, nil)
				if err != nil {
					o.outcomes[outTransport]++
					continue
				}
				if etag != "" && rng.Float64() < conditional {
					req.Header.Set("If-None-Match", etag)
				}
				t0 := time.Now()
				resp, err := hc.Do(req)
				if err != nil {
					o.outcomes[classify(0, err)]++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat := time.Since(t0).Seconds()
				o.status[resp.StatusCode]++
				cls := classify(resp.StatusCode, nil)
				o.outcomes[cls]++
				if cls == outOK || cls == out304 {
					o.lat = append(o.lat, lat)
					o.perRoute[family] = append(o.perRoute[family], lat)
				}
			}
			outs[w] = o
		}(w, n)
	}
	wg.Wait()
	res := result{
		outcomes: make(map[string]int),
		status:   make(map[int]int),
		perRoute: make(map[string][]float64),
		elapsed:  time.Since(start),
	}
	for _, o := range outs {
		res.latencies = append(res.latencies, o.lat...)
		for k, v := range o.status {
			res.status[k] += v
		}
		for k, v := range o.outcomes {
			res.outcomes[k] += v
		}
		for k, v := range o.perRoute {
			res.perRoute[k] = append(res.perRoute[k], v...)
		}
	}
	return res
}

// latencySummary is p50/p99 over one latency population, in ms.
type latencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max,omitempty"`
}

func summarize(lat []float64) latencySummary {
	s := latencySummary{Count: len(lat)}
	if len(lat) == 0 {
		return s
	}
	ps := stats.Percentiles(lat, 50, 90, 99)
	s.P50, s.P90, s.P99 = ps[0]*1000, ps[1]*1000, ps[2]*1000
	for _, l := range lat {
		if ms := l * 1000; ms > s.Max {
			s.Max = ms
		}
	}
	return s
}

// classification is the outcome breakdown the SLO checks consume.
type classification struct {
	OK              int `json:"ok"`
	NotModified     int `json:"not_modified"`
	Shed            int `json:"shed"`
	Errors5xx       int `json:"errors_5xx"`
	ClientErrors    int `json:"client_errors"`
	Timeouts        int `json:"timeouts"`
	TransportErrors int `json:"transport_errors"`
}

func classificationOf(outcomes map[string]int) classification {
	return classification{
		OK:              outcomes[outOK],
		NotModified:     outcomes[out304],
		Shed:            outcomes[outShed],
		Errors5xx:       outcomes[outError5xx],
		ClientErrors:    outcomes[outClientErr],
		Timeouts:        outcomes[outTimeout],
		TransportErrors: outcomes[outTransport],
	}
}

func (c classification) total() int {
	return c.OK + c.NotModified + c.Shed + c.Errors5xx + c.ClientErrors + c.Timeouts + c.TransportErrors
}

// shedRate and errorRate are fractions of all issued requests. Sheds
// are intended behavior with their own budget; errors lump true 5xx,
// timeouts and transport failures — the things a healthy server never
// produces.
func (c classification) shedRate() float64 {
	if t := c.total(); t > 0 {
		return float64(c.Shed) / float64(t)
	}
	return 0
}

func (c classification) errorRate() float64 {
	if t := c.total(); t > 0 {
		return float64(c.Errors5xx+c.Timeouts+c.TransportErrors) / float64(t)
	}
	return 0
}

// benchReport is the BENCH_query.json schema; the header fields match
// the repo's other BENCH_*.json files. A chaos run preserves an
// existing file's bench numbers and replaces only the chaos section
// (and vice versa), so `make querybench` and `make querychaos` share
// the one file without clobbering each other.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`

	Snapshot     string  `json:"snapshot"`
	Users        int     `json:"users"`
	Games        int     `json:"games"`
	Groups       int     `json:"groups"`
	Requests     int     `json:"requests"`
	Workers      int     `json:"workers"`
	RateLimit    float64 `json:"rate_limit_rps"`
	Seed         int64   `json:"seed"`
	Conditional  float64 `json:"conditional_fraction"`
	DistinctURLs int     `json:"distinct_urls"`

	MaxInflight  int    `json:"max_inflight"`
	QueueWait    string `json:"queue_wait"`
	RouteTimeout string `json:"route_timeout"`

	DurationSeconds float64 `json:"duration_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	LatencyMs       struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Routes         map[string]latencySummary `json:"routes_latency_ms"`
	Classification classification            `json:"classification"`
	ShedRate       float64                   `json:"shed_rate"`
	ErrorRate      float64                   `json:"error_rate"`
	Status         map[string]int            `json:"status"`
	Cache          struct {
		Hits        int64   `json:"hits"`
		Misses      int64   `json:"misses"`
		HitRate     float64 `json:"hit_rate"`
		NotModified int64   `json:"not_modified"`
		Entries     int     `json:"entries"`
	} `json:"cache"`
	ServerShed     int64  `json:"server_shed"`
	ServerDeadline int64  `json:"server_deadline_exceeded"`
	ServerETag     string `json:"server_etag"`

	Chaos *chaosReport `json:"chaos,omitempty"`
}

func buildReport(snapPath string, snap *dataset.Snapshot, urls *mix, before, after query.StatsInfo, res result,
	requests, workers int, rate float64, seed int64, conditional float64,
	maxInflight int, queueWait, routeTO time.Duration) *benchReport {
	r := &benchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Snapshot:     snapPath,
		Users:        len(snap.Users),
		Games:        len(snap.Games),
		Groups:       len(snap.Groups),
		Requests:     requests,
		Workers:      workers,
		RateLimit:    rate,
		Seed:         seed,
		Conditional:  conditional,
		DistinctURLs: urls.distinct(),
		MaxInflight:  maxInflight,
		QueueWait:    queueWait.String(),
		RouteTimeout: routeTO.String(),
	}
	r.DurationSeconds = res.elapsed.Seconds()
	if r.DurationSeconds > 0 {
		r.ThroughputRPS = float64(res.outcomes[outOK]+res.outcomes[out304]) / r.DurationSeconds
	}
	sum := summarize(res.latencies)
	r.LatencyMs.P50, r.LatencyMs.P90, r.LatencyMs.P99, r.LatencyMs.Max = sum.P50, sum.P90, sum.P99, sum.Max
	r.Routes = make(map[string]latencySummary, len(res.perRoute))
	for family, lat := range res.perRoute {
		r.Routes[family] = summarize(lat)
	}
	r.Classification = classificationOf(res.outcomes)
	r.ShedRate = r.Classification.shedRate()
	r.ErrorRate = r.Classification.errorRate()
	r.Status = make(map[string]int, len(res.status))
	for k, v := range res.status {
		r.Status[fmt.Sprint(k)] += v
	}
	r.Cache.Hits = after.CacheHits - before.CacheHits
	r.Cache.Misses = after.CacheMisses - before.CacheMisses
	if t := r.Cache.Hits + r.Cache.Misses; t > 0 {
		r.Cache.HitRate = float64(r.Cache.Hits) / float64(t)
	}
	r.Cache.NotModified = after.NotModified - before.NotModified
	r.Cache.Entries = after.CacheEntries
	r.ServerShed = after.Shed - before.Shed
	r.ServerDeadline = after.Deadline - before.Deadline
	r.ServerETag = after.SnapshotETag
	return r
}

// writeReport writes (or merges into) the -out file. With chaos, an
// existing file keeps its bench-mode numbers and only the chaos section
// is replaced; without, an existing chaos section survives.
func writeReport(out string, r *benchReport, chaos *chaosReport) {
	if out != "" {
		if prev, err := os.ReadFile(out); err == nil {
			var existing benchReport
			if json.Unmarshal(prev, &existing) == nil && existing.Requests > 0 {
				if chaos != nil {
					*r = existing // keep calm-weather numbers; chaos section replaced below
				} else if existing.Chaos != nil {
					r.Chaos = existing.Chaos
				}
			}
		}
	}
	if chaos != nil {
		r.Chaos = chaos
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		log.Fatal(err)
	} else {
		fmt.Fprintf(os.Stderr, "steamqueryload: report written to %s\n", out)
	}
	cls, dur, rps, p50, p99 := r.Classification, r.DurationSeconds, r.ThroughputRPS, r.LatencyMs.P50, r.LatencyMs.P99
	if chaos != nil {
		cls, dur, rps, p50, p99 = chaos.Classification, chaos.DurationSeconds, chaos.ThroughputRPS, chaos.LatencyMs.P50, chaos.LatencyMs.P99
	}
	fmt.Fprintf(os.Stderr,
		"steamqueryload: %d ok + %d 304 in %.1fs (%.0f req/s), p50 %.3fms p99 %.3fms | shed %d, 5xx %d, timeouts %d, transport %d\n",
		cls.OK, cls.NotModified, dur, rps, p50, p99,
		cls.Shed, cls.Errors5xx, cls.Timeouts, cls.TransportErrors)
}
