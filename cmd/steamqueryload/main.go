// Command steamqueryload drives a steamquery server with a seeded,
// weighted request mix and reports latency percentiles, throughput and
// the server's cache hit rate as BENCH_query.json.
//
// By default it is self-contained: it loads -snapshot, starts an
// in-process steamquery server on a loopback port, and hammers it over
// real HTTP. Point -url at an external server (serving the same
// snapshot file, which is still read locally to seed user lookups) to
// load-test across processes.
//
//	steamqueryload -snapshot steam.gob.gz -requests 1000000 -out BENCH_query.json
//
// The mix is deterministic for a given -seed: a few hundred distinct
// URLs spanning every /v1 endpoint, weighted so that hot resources
// (snapshot metadata, tables, genre slices, top-K boards) dominate,
// with a configurable fraction of conditional requests replaying the
// snapshot's ETag.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"steamstudy/internal/climain"
	"steamstudy/internal/dataset"
	"steamstudy/internal/query"
	"steamstudy/internal/ratelimit"
	"steamstudy/internal/stats"
)

func main() {
	app := climain.New("steamqueryload")
	workers := app.WorkersFlag(0, "concurrent request workers (0 = one per CPU); the URL sequence each worker draws is seeded, so results are reproducible for a fixed -workers")
	var (
		snapshot    = flag.String("snapshot", "", "snapshot file: served in-process (default) and sampled for user-lookup targets")
		url         = flag.String("url", "", "load an external steamquery server at this base URL instead of self-serving")
		requests    = flag.Int("requests", 1_000_000, "total requests to issue")
		rate        = flag.Float64("rate", 0, "request budget in requests/second shared across workers (0 = unlimited), via the crawler's token-bucket limiter")
		seed        = flag.Int64("seed", 1, "seed for the URL mix")
		conditional = flag.Float64("conditional", 0.2, "fraction of requests sent with If-None-Match (expect 304s)")
		userURLs    = flag.Int("user-urls", 200, "distinct /v1/users/{id} targets sampled from the snapshot")
		cacheN      = flag.Int("cache", 0, "self-served server's result cache capacity (0 = default)")
		out         = flag.String("out", "", "write the JSON report here (empty = stdout)")
	)
	flag.Parse()
	app.MustSnapshotPath("snapshot", *snapshot)
	app.StartAdmin()
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}

	// The snapshot is read once, locally, for two jobs: seeding the
	// user-lookup URLs, and (without -url) serving itself.
	snap, err := dataset.Load(*snapshot)
	if err != nil {
		log.Fatal(err)
	}

	base := *url
	if base == "" {
		srv, err := query.Open(query.Config{SnapshotPath: *snapshot, CacheEntries: *cacheN})
		if err != nil {
			log.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(lis)
		defer hs.Shutdown(context.Background())
		base = "http://" + lis.Addr().String()
		fmt.Fprintf(os.Stderr, "steamqueryload: self-serving %s at %s\n", *snapshot, base)
	}

	client := &query.Client{BaseURL: base, HTTPClient: &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}}
	urls, etag, err := buildMix(client, snap, *seed, *userURLs)
	if err != nil {
		log.Fatal(err)
	}
	before, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}

	var limiter *ratelimit.Limiter
	if *rate > 0 {
		limiter = ratelimit.New(*rate, *workers)
	}
	fmt.Fprintf(os.Stderr, "steamqueryload: %d requests over %d distinct URLs, %d workers, seed %d\n",
		*requests, urls.distinct(), *workers, *seed)

	res := run(client.HTTPClient, base, urls, etag, *requests, *workers, *seed, *conditional, limiter)

	after, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	report(*out, *snapshot, snap, urls, before, after, res, *requests, *workers, *rate, *seed, *conditional)
}

// mix is the weighted URL population: list[i] repeated weight[i] times,
// flattened into a cumulative table for O(log n) seeded draws.
type mix struct {
	list   []string
	cum    []int // cumulative weights
	total  int
	counts map[string]int // endpoint family -> distinct URLs
}

func (m *mix) add(family string, weight int, u string) {
	m.list = append(m.list, u)
	m.total += weight
	m.cum = append(m.cum, m.total)
	if m.counts == nil {
		m.counts = make(map[string]int)
	}
	m.counts[family]++
}

func (m *mix) distinct() int { return len(m.list) }

// pick draws one URL with the mix's weights from the caller's rng.
func (m *mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	i := sort.SearchInts(m.cum, n+1)
	return m.list[i]
}

// buildMix assembles the request population from the live server (genre
// names, runnable experiment IDs, the current ETag) and the local
// snapshot (user IDs). The shape mirrors a read-heavy dashboard: hot
// metadata and boards dominate, per-user lookups form the long tail.
func buildMix(c *query.Client, snap *dataset.Snapshot, seed int64, userURLs int) (*mix, string, error) {
	info, err := c.Snapshot()
	if err != nil {
		return nil, "", fmt.Errorf("snapshot info: %w", err)
	}
	exps, err := c.Experiments()
	if err != nil {
		return nil, "", fmt.Errorf("experiment index: %w", err)
	}
	genres, err := c.Genres()
	if err != nil {
		return nil, "", fmt.Errorf("genre index: %w", err)
	}

	m := &mix{}
	m.add("snapshot", 120, "/v1/snapshot")
	m.add("experiments", 40, "/v1/experiments")
	for _, e := range exps {
		if e.Available {
			m.add("experiment", 25, "/v1/experiments/"+e.ID)
		}
	}
	for _, attr := range []string{"friends", "games", "played", "groups", "total_hours", "twoweek_hours", "value_usd"} {
		m.add("percentiles", 8, "/v1/percentiles/"+attr)
		m.add("percentiles", 5, "/v1/percentiles/"+attr+"?p=50,90,99")
		m.add("percentiles", 3, "/v1/percentiles/"+attr+"?nonzero=true")
		m.add("percentiles", 2, "/v1/percentiles/"+attr+"?p=25,50,75&nonzero=true")
	}
	m.add("genres", 60, "/v1/genres")
	for _, g := range genres {
		m.add("genre", 10, "/v1/genres/"+g.Genre)
	}
	for _, by := range []string{"owners", "players", "playtime", "value"} {
		for _, n := range []int{5, 10, 25, 100} {
			m.add("games_top", 6, fmt.Sprintf("/v1/games/top?by=%s&n=%d", by, n))
		}
	}
	for _, n := range []int{10, 25, 100} {
		m.add("groups_top", 8, fmt.Sprintf("/v1/groups/top?n=%d", n))
	}
	// User lookups: a seeded sample of real SteamIDs, weight 1 each —
	// the cold tail that exercises cache fills and eviction.
	rng := rand.New(rand.NewSource(seed))
	if userURLs > len(snap.Users) {
		userURLs = len(snap.Users)
	}
	for _, i := range rng.Perm(len(snap.Users))[:userURLs] {
		id := snap.Users[i].SteamID
		m.add("user", 1, fmt.Sprintf("/v1/users/%d", id))
		if len(snap.Users[i].Friends) > 0 {
			m.add("friends", 1, fmt.Sprintf("/v1/users/%d/friends", id))
		}
	}
	return m, info.ETag, nil
}

// result accumulates one run's measurements.
type result struct {
	latencies []float64 // seconds, one per request
	status    map[int]int
	elapsed   time.Duration
}

// run fires total requests from workers goroutines, each drawing from
// its own seeded rng so the sequence is reproducible, and collects
// per-request wall latency.
func run(hc *http.Client, base string, urls *mix, etag string, total, workers int, seed int64, conditional float64, limiter *ratelimit.Limiter) result {
	type workerOut struct {
		lat    []float64
		status map[int]int
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		n := total / workers
		if w < total%workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			o := workerOut{lat: make([]float64, 0, n), status: make(map[int]int)}
			for i := 0; i < n; i++ {
				if limiter != nil {
					limiter.Wait(context.Background())
				}
				u := urls.pick(rng)
				req, err := http.NewRequest("GET", base+u, nil)
				if err != nil {
					o.status[-1]++
					continue
				}
				if etag != "" && rng.Float64() < conditional {
					req.Header.Set("If-None-Match", etag)
				}
				t0 := time.Now()
				resp, err := hc.Do(req)
				if err != nil {
					o.status[-1]++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				o.lat = append(o.lat, time.Since(t0).Seconds())
				o.status[resp.StatusCode]++
			}
			outs[w] = o
		}(w, n)
	}
	wg.Wait()
	res := result{status: make(map[int]int), elapsed: time.Since(start)}
	for _, o := range outs {
		res.latencies = append(res.latencies, o.lat...)
		for k, v := range o.status {
			res.status[k] += v
		}
	}
	return res
}

// benchReport is the BENCH_query.json schema; the header fields match
// the repo's other BENCH_*.json files.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`

	Snapshot     string  `json:"snapshot"`
	Users        int     `json:"users"`
	Games        int     `json:"games"`
	Groups       int     `json:"groups"`
	Requests     int     `json:"requests"`
	Workers      int     `json:"workers"`
	RateLimit    float64 `json:"rate_limit_rps"`
	Seed         int64   `json:"seed"`
	Conditional  float64 `json:"conditional_fraction"`
	DistinctURLs int     `json:"distinct_urls"`

	DurationSeconds float64 `json:"duration_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	LatencyMs       struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Status map[string]int `json:"status"`
	Cache  struct {
		Hits        int64   `json:"hits"`
		Misses      int64   `json:"misses"`
		HitRate     float64 `json:"hit_rate"`
		NotModified int64   `json:"not_modified"`
		Entries     int     `json:"entries"`
	} `json:"cache"`
	ServerETag string `json:"server_etag"`
}

func report(out, snapPath string, snap *dataset.Snapshot, urls *mix, before, after query.StatsInfo, res result, requests, workers int, rate float64, seed int64, conditional float64) {
	r := benchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Snapshot:     snapPath,
		Users:        len(snap.Users),
		Games:        len(snap.Games),
		Groups:       len(snap.Groups),
		Requests:     requests,
		Workers:      workers,
		RateLimit:    rate,
		Seed:         seed,
		Conditional:  conditional,
		DistinctURLs: urls.distinct(),
	}
	r.DurationSeconds = res.elapsed.Seconds()
	if r.DurationSeconds > 0 {
		r.ThroughputRPS = float64(len(res.latencies)) / r.DurationSeconds
	}
	ps := stats.Percentiles(res.latencies, 50, 90, 99)
	r.LatencyMs.P50 = ps[0] * 1000
	r.LatencyMs.P90 = ps[1] * 1000
	r.LatencyMs.P99 = ps[2] * 1000
	for _, l := range res.latencies {
		if ms := l * 1000; ms > r.LatencyMs.Max {
			r.LatencyMs.Max = ms
		}
	}
	r.Status = make(map[string]int, len(res.status))
	for k, v := range res.status {
		key := fmt.Sprint(k)
		if k == -1 {
			key = "transport_error"
		}
		r.Status[key] += v
	}
	r.Cache.Hits = after.CacheHits - before.CacheHits
	r.Cache.Misses = after.CacheMisses - before.CacheMisses
	if t := r.Cache.Hits + r.Cache.Misses; t > 0 {
		r.Cache.HitRate = float64(r.Cache.Hits) / float64(t)
	}
	r.Cache.NotModified = after.NotModified - before.NotModified
	r.Cache.Entries = after.CacheEntries
	r.ServerETag = after.SnapshotETag

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		log.Fatal(err)
	} else {
		fmt.Fprintf(os.Stderr, "steamqueryload: report written to %s\n", out)
	}
	fmt.Fprintf(os.Stderr,
		"steamqueryload: %d requests in %.1fs (%.0f req/s), p50 %.3fms p99 %.3fms, cache hit rate %.1f%%, %d 304s\n",
		len(res.latencies), r.DurationSeconds, r.ThroughputRPS,
		r.LatencyMs.P50, r.LatencyMs.P99, 100*r.Cache.HitRate, r.Cache.NotModified)
}
