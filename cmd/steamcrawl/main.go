// Command steamcrawl runs the paper's §3.1 crawl methodology against a
// server speaking the Steam Web API wire format (see steamapiserver) and
// writes the assembled snapshot.
//
//	steamcrawl -url http://127.0.0.1:8080 -rate 85000 -workers 16 -out crawl.gob.gz
//
// The -rate flag is the crawler's voluntary budget; the paper throttled
// to 85 % of the API's allowance.
//
// Fleet mode (N cooperating crawler processes, one shared directory):
//
//	steamcrawl -fleet-dir ./fleet -worker-id w1 -url ...   # run until the space is exhausted
//	steamcrawl -fleet-dir ./fleet -fleet-status            # render the live lease table (read-only)
//	steamcrawl -fleet-dir ./fleet -merge -out crawl.jsonl  # stitch shard journals into one snapshot
//
// Workers lease fixed-size SteamID ranges from a file-based lease table,
// journal each shard under <fleet-dir>/shard-NNNNNN/, heartbeat while
// crawling, and reclaim shards whose owners died. The merged snapshot is
// byte-identical to a solo crawl for any fleet size or kill schedule.
//
// Maintenance modes (no crawl):
//
//	steamcrawl -fsck crawl.gob.gz                          # validate a snapshot
//	steamcrawl -fsck crawl.gob.gz -repair -checkpoint dir  # rebuild it from the journal
//	steamcrawl -compact -checkpoint dir                    # bound future replay time
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"steamstudy/internal/climain"
	"steamstudy/internal/crawler"
	"steamstudy/internal/dataset"
	"steamstudy/internal/fleet"
	"steamstudy/internal/obs"
	"steamstudy/internal/steamid"
)

func main() {
	app := climain.New("steamcrawl")
	workers := app.WorkersFlag(16, "worker pool width for crawl phases 2-5 and the snapshot codec (results are identical for any value)")
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "API base URL")
		key         = flag.String("key", "", "API key")
		rate        = flag.Float64("rate", 5000, "self-imposed requests/second budget (paper: 85% of the allowance)")
		maxUsers    = flag.Int("max", 0, "cap the crawl at this many accounts (0 = exhaustive; ignored in fleet mode)")
		checkpoint  = flag.String("checkpoint", "", "journal directory for resumable crawls")
		reqTimeout  = flag.Duration("timeout", 15*time.Second, "per-request timeout")
		maxBackoff  = flag.Duration("max-backoff", 30*time.Second, "exponential-backoff clamp")
		brThreshold = flag.Int("breaker-threshold", 5, "consecutive failures that open an endpoint's circuit breaker (negative disables)")
		brCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe")
		noAdaptive  = flag.Bool("no-adaptive", false, "disable AIMD adaptive throttling and pin the rate")
		progress    = flag.Duration("progress", 30*time.Second, "interval between progress/health lines (negative disables)")
		out         = flag.String("out", "crawl.gob.gz", "snapshot output path")
		fsckPath    = flag.String("fsck", "", "validate this snapshot file against its manifest and the paper's referential schema, then exit (no crawl)")
		repair      = flag.Bool("repair", false, "with -fsck and -checkpoint: rebuild a damaged snapshot from the journal, then re-validate")
		compact     = flag.Bool("compact", false, "seal the -checkpoint journal's replayed segments into a verified base snapshot and exit (no crawl)")

		fleetDir    = flag.String("fleet-dir", "", "fleet coordination directory: run as a fleet worker leasing SteamID-range shards (or the merge source with -merge)")
		workerID    = flag.String("worker-id", "", "fleet worker identity in the lease table (default hostname-pid)")
		fleetStart  = flag.Uint64("fleet-start", steamid.Base, "first SteamID64 of the fleet work space")
		fleetRange  = flag.Uint64("fleet-range", 65536, "SteamID64s per fleet shard")
		fleetTTL    = flag.Duration("fleet-ttl", 30*time.Second, "fleet lease time-to-live; a worker silent this long forfeits its shard")
		fleetPoll   = flag.Duration("fleet-poll", 250*time.Millisecond, "how often an idle fleet worker re-checks the lease table")
		merge       = flag.Bool("merge", false, "with -fleet-dir: stitch the completed fleet's shard journals into one snapshot at -out, then exit (no crawl)")
		collectedAt = flag.Int64("collected-at", 0, "CollectedAt (unix seconds) stamped on the -merge output; keep it fixed for reproducible bytes")
		fleetStatus = flag.Bool("fleet-status", false, "with -fleet-dir: render the live lease table (shard, state, worker, epoch, expiry, found) read-only and exit (no crawl)")
	)
	flag.Parse()
	if !*fleetStatus && !*merge && *fsckPath == "" && !*compact {
		// The crawl and merge modes write -out; die on a typo'd extension
		// before any network or journal work.
		app.MustSnapshotPath("out", *out)
	}

	app.StartAdmin()
	reg := app.Registry()

	if *fleetStatus {
		if *fleetDir == "" {
			log.Fatal("-fleet-status requires -fleet-dir")
		}
		os.Exit(runFleetStatus(*fleetDir))
	}
	if *merge {
		if *fleetDir == "" {
			log.Fatal("-merge requires -fleet-dir")
		}
		os.Exit(runMerge(*fleetDir, *out, *collectedAt, *workers, reg))
	}
	if *fsckPath != "" || *compact {
		os.Exit(runMaintenance(*fsckPath, *repair, *compact, *checkpoint, *workers, reg))
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "steamcrawl: "+format+"\n", args...)
	}
	crawlCfg := crawler.Config{
		BaseURL:                 *baseURL,
		APIKey:                  *key,
		RatePerSecond:           *rate,
		Workers:                 *workers,
		MaxAccounts:             *maxUsers,
		CheckpointPath:          *checkpoint,
		RequestTimeout:          *reqTimeout,
		MaxBackoff:              *maxBackoff,
		BreakerThreshold:        *brThreshold,
		BreakerCooldown:         *brCooldown,
		DisableAdaptiveThrottle: *noAdaptive,
		ProgressEvery:           *progress,
		Registry:                reg,
		Logf:                    logf,
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the crawl
	// context — in-flight requests finish, the journal is flushed and
	// closed (and in fleet mode the lease released) before the process
	// exits nonzero. A second signal force-quits.
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "steamcrawl: %v: finishing in-flight work, flushing journal (signal again to force-quit)\n", s)
		cancel()
		<-sig
		fmt.Fprintln(os.Stderr, "steamcrawl: second signal: exiting immediately")
		os.Exit(130)
	}()

	if *fleetDir != "" {
		os.Exit(runFleetWorker(ctx, *fleetDir, *workerID, fleet.Params{
			StartID:   *fleetStart,
			RangeSize: *fleetRange,
			LeaseTTL:  *fleetTTL,
		}, *fleetPoll, crawlCfg, reg, logf))
	}

	start := time.Now()
	c := crawler.New(crawlCfg)
	snap, err := c.Run(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			log.Printf("interrupted after %v: journal flushed and closed; rerun with the same -checkpoint to resume", time.Since(start).Round(time.Millisecond))
			os.Exit(1)
		}
		log.Fatalf("crawl failed after %v: %v (checkpoint, if enabled, allows resuming)", time.Since(start), err)
	}
	t := snap.Totals()
	m := c.Metrics.Snapshot()
	fmt.Fprintf(os.Stderr,
		"crawl complete in %v: %d users, %d games, %d groups, %d friendships, %d requests (%d rate-limited, %d errors, %d retries, %d breaker opens)\n",
		time.Since(start).Round(time.Millisecond),
		t.Users, t.Games, t.Groups, t.Friendships,
		m.Requests, m.RateLimited, m.Errors, m.Retries, m.BreakerOpens)
	if profile := c.DensityProfile(10); profile != nil {
		fmt.Fprintf(os.Stderr, "ID-space density by decile (§3.1):")
		for _, d := range profile {
			fmt.Fprintf(os.Stderr, " %.0f%%", d*100)
		}
		fmt.Fprintln(os.Stderr)
	}
	if err := snap.Save(*out, dataset.WithWorkers(*workers)); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snapshot written to %s (manifest: %s)\n", *out, dataset.ManifestPath(*out))
}

// runFleetWorker participates in the fleet at dir until the work space is
// exhausted. Interrupts release the lease (the shard journal survives for
// the next owner) and exit nonzero.
func runFleetWorker(ctx context.Context, dir, id string, params fleet.Params, poll time.Duration, crawlCfg crawler.Config, reg *obs.Registry, logf func(string, ...any)) int {
	crawlCfg.MaxAccounts = 0
	stats, err := fleet.RunWorker(ctx, fleet.Config{
		Dir:      dir,
		WorkerID: id,
		Params:   params,
		Crawl:    crawlCfg,
		Poll:     poll,
		Registry: reg,
		Logf:     logf,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			logf("interrupted: lease released, journal flushed and closed; restart any worker to resume (%d shards, %d users so far)",
				stats.Shards, stats.Users)
			return 1
		}
		log.Printf("fleet worker failed: %v", err)
		return 1
	}
	logf("fleet worker done: %d shards (%d empty), %d users, %d leases lost",
		stats.Shards, stats.EmptyShards, stats.Users, stats.LeasesLost)
	logf("merge with: steamcrawl -fleet-dir %s -merge -out <snapshot>", dir)
	return 0
}

// runFleetStatus renders the live lease table, read-only: the snapshot is
// taken under the table flock (a single file read — Status never writes),
// and all formatting happens after the lock and the table handle are
// gone, so a slow terminal cannot stall the fleet's workers.
func runFleetStatus(dir string) int {
	table, err := fleet.Load(dir, nil)
	if err != nil {
		log.Print(err)
		return 1
	}
	s, serr := table.Status()
	table.Close()
	if serr != nil {
		log.Print(serr)
		return 1
	}

	fmt.Printf("fleet %s\n", dir)
	fmt.Printf("  geometry: start %d, %d IDs/shard, lease TTL %v, empty-shard limit %d\n",
		s.StartID, s.RangeSize, s.LeaseTTL, s.EmptyShardLimit)
	fmt.Printf("  shards: %d issued (%d done, %d leased, %d open), %d workers alive\n",
		s.NextShard, s.Done, s.Leased, s.Open, s.WorkersAlive)
	switch {
	case s.Exhausted:
		fmt.Println("  state: exhausted — safe to merge")
	case s.FrontierClosed:
		fmt.Println("  state: frontier closed, shards still outstanding")
	default:
		fmt.Println("  state: frontier open")
	}
	if len(s.Shards) == 0 {
		return 0
	}
	fmt.Printf("\n  %-8s %-7s %-20s %6s %8s %-22s %s\n",
		"SHARD", "STATE", "WORKER", "EPOCH", "FOUND", "EXPIRES", "RANGE")
	for _, sh := range s.Shards {
		expiry := "-"
		if !sh.Expires.IsZero() {
			expiry = sh.Expires.UTC().Format(time.RFC3339)
		}
		worker := sh.Worker
		if worker == "" {
			worker = "-"
		}
		found := fmt.Sprintf("%d", sh.Found)
		if sh.State == "leased" || sh.State == "open" {
			found = "-"
		}
		fmt.Printf("  %-8d %-7s %-20s %6d %8s %-22s [%d,%d)\n",
			sh.Shard, sh.State, worker, sh.Epoch, found, expiry, sh.Start, sh.End)
	}
	return 0
}

// runMerge stitches a completed fleet's shard journals into one
// manifest-verified snapshot and proves it fsck-clean.
func runMerge(dir, out string, collectedAt int64, workers int, reg *obs.Registry) int {
	snap, err := fleet.Merge(dir, collectedAt)
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := snap.Save(out, dataset.WithWorkers(workers)); err != nil {
		log.Print(err)
		return 1
	}
	im := &dataset.IntegrityMetrics{}
	im.Register(reg)
	rep, err := dataset.FsckFile(out, im, dataset.WithWorkers(workers))
	if err != nil {
		log.Print(err)
		return 1
	}
	if !rep.Clean() {
		fmt.Print(rep.String())
		log.Printf("merged snapshot fails fsck")
		return 1
	}
	t := snap.Totals()
	sha := ""
	if man, err := dataset.ReadManifest(out); err == nil && man != nil {
		sha = man.FileSHA256
	}
	fmt.Fprintf(os.Stderr, "merged snapshot written to %s: %d users, %d games, %d groups (fsck clean, sha256 %s)\n",
		out, t.Users, t.Games, t.Groups, sha)
	return 0
}

// runMaintenance handles the no-crawl modes: -fsck (validate a snapshot,
// optionally repairing it from the journal) and -compact (seal the
// journal's replayed prefix into a base snapshot). Returns the exit code:
// zero only if every requested operation left a clean state.
func runMaintenance(fsckPath string, repair, compact bool, checkpoint string, workers int, reg *obs.Registry) int {
	im := &dataset.IntegrityMetrics{}
	im.Register(reg)
	code := 0
	if fsckPath != "" {
		// Decode progress streams into the registry as it happens, so an
		// -admin watcher sees a multi-gigabyte fsck advance section by
		// section instead of staring at a silent process.
		progress := func(section string, records int) {
			reg.Gauge("fsck_loaded_" + section).Set(float64(records))
		}
		rep, err := dataset.FsckFile(fsckPath, im,
			dataset.WithWorkers(workers), dataset.WithProgress(progress))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.String())
		if !rep.Clean() {
			if repair && checkpoint != "" {
				fmt.Fprintf(os.Stderr, "steamcrawl: repairing %s from journal %s\n", fsckPath, checkpoint)
				rep2, err := crawler.RepairSnapshot(checkpoint, fsckPath, im)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Print(rep2.String())
				if !rep2.Clean() {
					code = 1
				}
			} else {
				if repair {
					fmt.Fprintln(os.Stderr, "steamcrawl: -repair needs -checkpoint to name the journal")
				}
				code = 1
			}
		}
	}
	if compact {
		if checkpoint == "" {
			log.Fatal("-compact requires -checkpoint")
		}
		if err := crawler.CompactJournal(checkpoint); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "steamcrawl: journal %s compacted\n", checkpoint)
	}
	return code
}
