// Command steamgen generates a calibrated synthetic Steam universe and
// writes its snapshot to disk (.gob, .gob.gz, .jsonl or .jsonl.gz).
//
//	steamgen -users 100000 -seed 1 -out steam.gob.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"steamstudy"
	"steamstudy/internal/climain"
	"steamstudy/internal/dataset"
	"steamstudy/internal/simworld"
)

func main() {
	app := climain.New("steamgen")
	workers := app.WorkersFlag(0, "worker pool size for generation and the snapshot codec (0 = one per CPU, 1 = serial); output is identical for any value")
	var (
		users     = flag.Int("users", 100000, "population size (the paper measured 108.7M; statistics are scale-free)")
		seed      = flag.Int64("seed", 1, "deterministic generation seed")
		catalog   = flag.Int("catalog", 6156, "storefront catalog size (paper: 6,156)")
		out       = flag.String("out", "steam.gob.gz", "output path (.gob/.gob.gz/.jsonl/.jsonl.gz, or a .d shard directory)")
		shardSize = flag.Int("shard-size", 0, "with a .d -out: records per shard segment (0 = the format default)")
		stream    = flag.Bool("stream", false, "generate out-of-core: stream the universe straight into the snapshot writer, skipping the snapshot record copy and analysis vectors (the paper-scale path; identical bytes)")
	)
	flag.Parse()
	app.MustSnapshotPath("out", *out)
	app.StartAdmin()

	codec := []dataset.Option{dataset.WithWorkers(*workers)}
	if *shardSize > 0 {
		codec = append(codec, dataset.WithShardRecords(*shardSize))
	}

	if *stream {
		cfg := simworld.DefaultConfig(*users)
		cfg.CatalogSize = *catalog
		cfg.Workers = *workers
		uni, err := simworld.Generate(cfg, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %d users, %d games, %d groups, %d friendships\n",
			len(uni.Users), len(uni.Games), len(uni.Groups), len(uni.Friendships))
		if err := dataset.WriteUniverse(*out, uni, codec...); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot streamed to %s\n", *out)
		return
	}

	study, err := steamstudy.New(steamstudy.Options{
		Users: *users, Seed: *seed, CatalogSize: *catalog,
		SkipSecondSnapshot: true, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	h := study.Headline()
	fmt.Fprintf(os.Stderr,
		"generated %d users, %d games, %d groups, %d friendships, %d owned games, %.0f years of playtime, $%.0f market value\n",
		h.Users, h.Games, h.Groups, h.Friendships, h.OwnedGames, h.PlaytimeYears, h.MarketValueUSD)
	if err := study.SaveSnapshot(*out, codec...); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *out)
}
