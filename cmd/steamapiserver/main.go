// Command steamapiserver generates a synthetic universe and serves it
// over HTTP speaking the Steam Web API wire format, for crawling with
// steamcrawl (or any client written for the real API).
//
//	steamapiserver -users 50000 -addr 127.0.0.1:8080 -rate 100000 -key SECRET
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"context"
	"net"
	"net/http"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/climain"
	"steamstudy/internal/simworld"
)

func main() {
	app := climain.New("steamapiserver")
	var (
		users   = flag.Int("users", 50000, "population size")
		seed    = flag.Int64("seed", 1, "generation seed")
		catalog = flag.Int("catalog", 6156, "catalog size")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		rate    = flag.Float64("rate", 0, "per-key request rate limit (0 = unlimited)")
		burst   = flag.Int("burst", 0, "rate-limit burst")
		keys    = flag.String("keys", "", "comma-separated accepted API keys (empty = no auth)")
		fault   = flag.Float64("fault", 0, "inject HTTP 500s on this fraction of requests (legacy deterministic spacing)")

		fault500       = flag.Float64("fault-500", 0, "probability of an injected HTTP 500 per request")
		fault503       = flag.Float64("fault-503", 0, "probability of an injected HTTP 503 + Retry-After per request")
		faultReset     = flag.Float64("fault-reset", 0, "probability of a dropped connection per request")
		faultStall     = flag.Float64("fault-stall", 0, "probability of a stalled (late) response per request")
		faultTrunc     = flag.Float64("fault-truncate", 0, "probability of a truncated body per request")
		faultBadJSON   = flag.Float64("fault-malformed", 0, "probability of a non-JSON 200 body per request")
		faultWrongJSON = flag.Float64("fault-wrong-json", 0, "probability of a valid-but-wrong-shape JSON body per request")
		faultSeed      = flag.Int64("fault-seed", 1, "seed for the deterministic fault sequence")
		retryAfter     = flag.Duration("retry-after", time.Second, "Retry-After advertised on injected 503s")
		stallFor       = flag.Duration("stall-for", 2*time.Second, "delay applied by stall faults")
		outageEvery    = flag.Int("outage-every", 0, "schedule an outage window after every N requests (0 disables)")
		outageLen      = flag.Int("outage-len", 1, "requests rejected per outage window")
		maxKeys        = flag.Int("max-keys", 0, "cap on tracked per-key rate limiters (0 = default 1024)")
	)
	flag.Parse()

	spec := apiserver.FaultSpec{
		Error500:      *fault500,
		Unavail503:    *fault503,
		ConnReset:     *faultReset,
		Stall:         *faultStall,
		Truncate:      *faultTrunc,
		MalformedJSON: *faultBadJSON,
		WrongJSON:     *faultWrongJSON,
		RetryAfter:    *retryAfter,
		StallFor:      *stallFor,
	}
	var profile *apiserver.FaultProfile
	if spec.Error500+spec.Unavail503+spec.ConnReset+spec.Stall+
		spec.Truncate+spec.MalformedJSON+spec.WrongJSON > 0 || *outageEvery > 0 {
		profile = &apiserver.FaultProfile{
			Seed:             *faultSeed,
			Default:          spec,
			OutageEvery:      *outageEvery,
			OutageLen:        *outageLen,
			OutageRetryAfter: *retryAfter,
		}
	}

	cfg := simworld.DefaultConfig(*users)
	cfg.CatalogSize = *catalog
	u, err := simworld.Generate(cfg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	st := u.Stats()
	fmt.Fprintf(os.Stderr, "universe ready: %d users, %d games, %d groups, %d friendships\n",
		st.Users, st.Games, st.Groups, st.Friendships)

	var apiKeys []string
	if *keys != "" {
		apiKeys = strings.Split(*keys, ",")
	}
	handler := apiserver.New(u, apiserver.Config{
		APIKeys:        apiKeys,
		RatePerSecond:  *rate,
		Burst:          *burst,
		FaultRate:      *fault,
		Faults:         profile,
		MaxTrackedKeys: *maxKeys,
	})
	// The handler owns its registry and health checks; the shared admin
	// listener exposes those instead of creating empty ones.
	app.Adopt(handler.Obs(), handler.Health())
	app.StartAdmin()
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := climain.NewHTTPServer(handler)
	go func() {
		fmt.Fprintf(os.Stderr, "serving the Steam Web API at http://%s\n", lis.Addr())
		if err := srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "shutting down: %s\n", handler.Metrics.Snapshot())
	srv.Shutdown(context.Background())
}
