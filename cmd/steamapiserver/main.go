// Command steamapiserver generates a synthetic universe and serves it
// over HTTP speaking the Steam Web API wire format, for crawling with
// steamcrawl (or any client written for the real API).
//
//	steamapiserver -users 50000 -addr 127.0.0.1:8080 -rate 100000 -key SECRET
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"context"
	"net"
	"net/http"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/simworld"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("steamapiserver: ")
	var (
		users   = flag.Int("users", 50000, "population size")
		seed    = flag.Int64("seed", 1, "generation seed")
		catalog = flag.Int("catalog", 6156, "catalog size")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		rate    = flag.Float64("rate", 0, "per-key request rate limit (0 = unlimited)")
		burst   = flag.Int("burst", 0, "rate-limit burst")
		keys    = flag.String("keys", "", "comma-separated accepted API keys (empty = no auth)")
		fault   = flag.Float64("fault", 0, "inject HTTP 500s on this fraction of requests")
	)
	flag.Parse()

	cfg := simworld.DefaultConfig(*users)
	cfg.CatalogSize = *catalog
	u, err := simworld.Generate(cfg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	st := u.Stats()
	fmt.Fprintf(os.Stderr, "universe ready: %d users, %d games, %d groups, %d friendships\n",
		st.Users, st.Games, st.Groups, st.Friendships)

	var apiKeys []string
	if *keys != "" {
		apiKeys = strings.Split(*keys, ",")
	}
	handler := apiserver.New(u, apiserver.Config{
		APIKeys:       apiKeys,
		RatePerSecond: *rate,
		Burst:         *burst,
		FaultRate:     *fault,
	})
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go func() {
		fmt.Fprintf(os.Stderr, "serving the Steam Web API at http://%s\n", lis.Addr())
		if err := srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "shutting down: served %d requests (%d rate-limited, %d faults)\n",
		handler.Metrics.Requests.Load(), handler.Metrics.RateLimited.Load(), handler.Metrics.Faults.Load())
	srv.Shutdown(context.Background())
}
