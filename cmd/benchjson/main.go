// Command benchjson runs a benchmark suite and records its measurements
// in a machine-readable JSON file, seeding the repo's performance
// trajectory files (BENCH_analysis.json, BENCH_obs.json,
// BENCH_datapath.json, BENCH_scale.json).
//
//	go run ./cmd/benchjson -out BENCH_analysis.json
//
// It shells out to `go test -bench` so the numbers are exactly what the
// standard benchmark harness reports. Parallel suites run once with
// GOMAXPROCS=1 and once with every core, so a workers=max measurement is
// never mistaken for a parallel speedup on a machine that could not have
// produced one: each recorded result carries the GOMAXPROCS it actually
// ran under (parsed from the harness's -N name suffix), and the file
// header records the host's CPU count. On a single-CPU host the two
// passes coincide and only one is run. Every result also records the
// child process's MaxRSS, so the trajectory files track memory as well
// as time.
//
// With -scale it instead drives the out-of-core pipeline end to end —
// sharded generate → fsck → streaming Table 4 as separate processes
// under a fixed RSS budget — and records each stage's wall time and
// MaxRSS into BENCH_scale.json, exiting non-zero if any stage exceeds
// the budget:
//
//	go run ./cmd/benchjson -scale -users 5000000 -max-rss-mb 2048 -out BENCH_scale.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// tier2Pattern selects the benchmarks named in the perf acceptance
// criteria; their sub-benchmarks (workers=1 / workers=max, full / ranked)
// ride along automatically.
const tier2Pattern = "^(BenchmarkRunAllRender|BenchmarkHeavytailFit|BenchmarkTable4Classification|BenchmarkSpearman100k)$"

// Result is one benchmark measurement. BytesPerOp and AllocsPerOp are
// present only when the benchmark reports allocations. MaxRSSBytes is
// the peak resident set of the child process that produced the line —
// for `go test -bench` runs that is the whole test binary pass (shared
// by every result of the pass), for -scale stages it is the stage
// process alone.
type Result struct {
	Name        string  `json:"name"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MaxRSSBytes int64   `json:"max_rss_bytes,omitempty"`
}

// Scale describes a -scale pipeline run: the population, the shard
// geometry, the enforced budget, and the on-disk snapshot size.
type Scale struct {
	Users          int   `json:"users"`
	ShardRecords   int   `json:"shard_records"`
	MaxRSSBudgetMB int   `json:"max_rss_budget_mb"`
	SnapshotBytes  int64 `json:"snapshot_bytes"`
}

// File is the BENCH_*.json schema.
type File struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	NumCPU      int      `json:"num_cpu"`
	Gomaxprocs  []int    `json:"gomaxprocs_runs"`
	Pattern     string   `json:"pattern,omitempty"`
	Package     string   `json:"package,omitempty"`
	Scale       *Scale   `json:"scale,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches standard `go test -bench` output, with the optional
// allocation columns, e.g.
//
//	BenchmarkHeavytailFit/workers=1-8  12  95104250 ns/op  1024 B/op  17 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out       = flag.String("out", "BENCH_analysis.json", "output JSON path")
		pattern   = flag.String("bench", tier2Pattern, "benchmark regexp passed to -bench")
		benchtime = flag.String("benchtime", "", "optional -benchtime (e.g. 3x, 2s)")
		pkg       = flag.String("pkg", ".", "package containing the benchmarks")
		scale     = flag.Bool("scale", false, "run the out-of-core scale pipeline (generate -> fsck -> streaming Table 4) instead of a benchmark suite")
		users     = flag.Int("users", 5_000_000, "with -scale: population size")
		shardSize = flag.Int("shard-size", 250_000, "with -scale: records per shard segment")
		maxRSSMB  = flag.Int("max-rss-mb", 2048, "with -scale: per-stage RSS budget in MiB; any stage over budget fails the run (0 disables the gate)")
		workers   = flag.Int("workers", 0, "with -scale: worker pool size passed to each stage")
	)
	flag.Parse()

	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Pattern:     *pattern,
		Package:     *pkg,
	}
	if *scale {
		f.Pattern, f.Package = "", ""
		runScale(&f, *out, *users, *shardSize, *maxRSSMB, *workers)
		return
	}
	procs := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		procs = append(procs, n)
	}
	f.Gomaxprocs = procs

	for _, gmp := range procs {
		args := []string{"test", "-run", "^$", "-bench", *pattern, *pkg}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		cmd := exec.Command("go", args...)
		cmd.Env = append(os.Environ(), "GOMAXPROCS="+strconv.Itoa(gmp))
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			log.Fatalf("go %v (GOMAXPROCS=%d): %v", args, gmp, err)
		}
		results := parse(raw, gmp)
		// One test-binary pass produced every line, so they share its
		// peak RSS.
		rss := maxRSSBytes(cmd.ProcessState)
		for i := range results {
			results[i].MaxRSSBytes = rss
		}
		f.Benchmarks = append(f.Benchmarks, results...)
	}
	if len(f.Benchmarks) == 0 {
		log.Fatalf("no benchmark lines matched pattern %q", *pattern)
	}
	writeFile(&f, *out)
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(f.Benchmarks), *out)
	for _, r := range f.Benchmarks {
		alloc := ""
		if r.AllocsPerOp != nil {
			alloc = fmt.Sprintf("  %8d B/op %6d allocs/op", *r.BytesPerOp, *r.AllocsPerOp)
		}
		fmt.Printf("  %-55s P=%-3d %14.0f ns/op%s  rss=%dMB\n",
			r.Name, r.Gomaxprocs, r.NsPerOp, alloc, r.MaxRSSBytes>>20)
	}
}

// writeFile marshals the measurement file to disk.
func writeFile(f *File, out string) {
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
}

// parse extracts the measurements from one `go test -bench` run. The
// harness suffixes each name with the GOMAXPROCS it ran under; that
// suffix — not the value this process happens to see — is what gets
// recorded, with ranGomaxprocs only as the fallback for harnesses that
// omit the suffix at GOMAXPROCS=1.
func parse(raw []byte, ranGomaxprocs int) []Result {
	var out []Result
	for _, line := range bytes.Split(raw, []byte("\n")) {
		m := benchLine.FindSubmatch(line)
		if m == nil {
			continue
		}
		gmp := ranGomaxprocs
		if len(m[2]) > 0 {
			if v, err := strconv.Atoi(string(m[2])); err == nil {
				gmp = v
			}
		}
		iters, err := strconv.ParseInt(string(m[3]), 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(string(m[4]), 64)
		if err != nil {
			continue
		}
		r := Result{Name: string(m[1]), Gomaxprocs: gmp, Iterations: iters, NsPerOp: ns}
		if len(m[5]) > 0 && len(m[6]) > 0 {
			if bpo, err := strconv.ParseInt(string(m[5]), 10, 64); err == nil {
				if apo, err := strconv.ParseInt(string(m[6]), 10, 64); err == nil {
					r.BytesPerOp, r.AllocsPerOp = &bpo, &apo
				}
			}
		}
		out = append(out, r)
	}
	return out
}
