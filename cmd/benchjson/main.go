// Command benchjson runs the tier-2 analysis benchmarks and records their
// ns/op in a machine-readable JSON file, seeding the repo's performance
// trajectory: each sub-benchmark carries a workers=1 (serial baseline) and
// a workers=max (full pool) variant, so one file captures both sides of
// the parallel-analysis comparison.
//
//	go run ./cmd/benchjson -out BENCH_analysis.json
//
// It shells out to `go test -bench` so the numbers are exactly what the
// standard benchmark harness reports.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// tier2Pattern selects the benchmarks named in the perf acceptance
// criteria; their sub-benchmarks (workers=1 / workers=max, full / ranked)
// ride along automatically.
const tier2Pattern = "^(BenchmarkRunAllRender|BenchmarkHeavytailFit|BenchmarkTable4Classification|BenchmarkSpearman100k)$"

// Result is one benchmark measurement.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// File is the BENCH_analysis.json schema.
type File struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Pattern     string   `json:"pattern"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches standard `go test -bench` output, e.g.
// "BenchmarkHeavytailFit/workers=1-8   12   95104250 ns/op   ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out       = flag.String("out", "BENCH_analysis.json", "output JSON path")
		pattern   = flag.String("bench", tier2Pattern, "benchmark regexp passed to -bench")
		benchtime = flag.String("benchtime", "", "optional -benchtime (e.g. 3x, 2s)")
		pkg       = flag.String("pkg", ".", "package containing the benchmarks")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *pattern, *pkg}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("go %v: %v", args, err)
	}

	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Pattern:     *pattern,
	}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		m := benchLine.FindSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(string(m[2]), 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(string(m[3]), 64)
		if err != nil {
			continue
		}
		f.Benchmarks = append(f.Benchmarks, Result{
			Name: string(m[1]), Iterations: iters, NsPerOp: ns,
		})
	}
	if len(f.Benchmarks) == 0 {
		log.Fatalf("no benchmark lines matched pattern %q; raw output:\n%s", *pattern, raw)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(f.Benchmarks), *out)
	for _, r := range f.Benchmarks {
		fmt.Printf("  %-55s %14.0f ns/op\n", r.Name, r.NsPerOp)
	}
}
