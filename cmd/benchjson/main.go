// Command benchjson runs a benchmark suite and records its measurements
// in a machine-readable JSON file, seeding the repo's performance
// trajectory files (BENCH_analysis.json, BENCH_obs.json,
// BENCH_datapath.json).
//
//	go run ./cmd/benchjson -out BENCH_analysis.json
//
// It shells out to `go test -bench` so the numbers are exactly what the
// standard benchmark harness reports. Parallel suites run once with
// GOMAXPROCS=1 and once with every core, so a workers=max measurement is
// never mistaken for a parallel speedup on a machine that could not have
// produced one: each recorded result carries the GOMAXPROCS it actually
// ran under (parsed from the harness's -N name suffix), and the file
// header records the host's CPU count. On a single-CPU host the two
// passes coincide and only one is run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// tier2Pattern selects the benchmarks named in the perf acceptance
// criteria; their sub-benchmarks (workers=1 / workers=max, full / ranked)
// ride along automatically.
const tier2Pattern = "^(BenchmarkRunAllRender|BenchmarkHeavytailFit|BenchmarkTable4Classification|BenchmarkSpearman100k)$"

// Result is one benchmark measurement. BytesPerOp and AllocsPerOp are
// present only when the benchmark reports allocations.
type Result struct {
	Name        string  `json:"name"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	NumCPU      int      `json:"num_cpu"`
	Gomaxprocs  []int    `json:"gomaxprocs_runs"`
	Pattern     string   `json:"pattern"`
	Package     string   `json:"package"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches standard `go test -bench` output, with the optional
// allocation columns, e.g.
//
//	BenchmarkHeavytailFit/workers=1-8  12  95104250 ns/op  1024 B/op  17 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out       = flag.String("out", "BENCH_analysis.json", "output JSON path")
		pattern   = flag.String("bench", tier2Pattern, "benchmark regexp passed to -bench")
		benchtime = flag.String("benchtime", "", "optional -benchtime (e.g. 3x, 2s)")
		pkg       = flag.String("pkg", ".", "package containing the benchmarks")
	)
	flag.Parse()

	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Pattern:     *pattern,
		Package:     *pkg,
	}
	procs := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		procs = append(procs, n)
	}
	f.Gomaxprocs = procs

	for _, gmp := range procs {
		args := []string{"test", "-run", "^$", "-bench", *pattern, *pkg}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		cmd := exec.Command("go", args...)
		cmd.Env = append(os.Environ(), "GOMAXPROCS="+strconv.Itoa(gmp))
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			log.Fatalf("go %v (GOMAXPROCS=%d): %v", args, gmp, err)
		}
		f.Benchmarks = append(f.Benchmarks, parse(raw, gmp)...)
	}
	if len(f.Benchmarks) == 0 {
		log.Fatalf("no benchmark lines matched pattern %q", *pattern)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(f.Benchmarks), *out)
	for _, r := range f.Benchmarks {
		alloc := ""
		if r.AllocsPerOp != nil {
			alloc = fmt.Sprintf("  %8d B/op %6d allocs/op", *r.BytesPerOp, *r.AllocsPerOp)
		}
		fmt.Printf("  %-55s P=%-3d %14.0f ns/op%s\n", r.Name, r.Gomaxprocs, r.NsPerOp, alloc)
	}
}

// parse extracts the measurements from one `go test -bench` run. The
// harness suffixes each name with the GOMAXPROCS it ran under; that
// suffix — not the value this process happens to see — is what gets
// recorded, with ranGomaxprocs only as the fallback for harnesses that
// omit the suffix at GOMAXPROCS=1.
func parse(raw []byte, ranGomaxprocs int) []Result {
	var out []Result
	for _, line := range bytes.Split(raw, []byte("\n")) {
		m := benchLine.FindSubmatch(line)
		if m == nil {
			continue
		}
		gmp := ranGomaxprocs
		if len(m[2]) > 0 {
			if v, err := strconv.Atoi(string(m[2])); err == nil {
				gmp = v
			}
		}
		iters, err := strconv.ParseInt(string(m[3]), 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(string(m[4]), 64)
		if err != nil {
			continue
		}
		r := Result{Name: string(m[1]), Gomaxprocs: gmp, Iterations: iters, NsPerOp: ns}
		if len(m[5]) > 0 && len(m[6]) > 0 {
			if bpo, err := strconv.ParseInt(string(m[5]), 10, 64); err == nil {
				if apo, err := strconv.ParseInt(string(m[6]), 10, 64); err == nil {
					r.BytesPerOp, r.AllocsPerOp = &bpo, &apo
				}
			}
		}
		out = append(out, r)
	}
	return out
}
