// The -scale mode: drive the out-of-core pipeline end to end as
// separate processes — sharded generate, fsck, streaming Table 4 — and
// record each stage's wall time and peak RSS under an enforced budget.
// Separate processes matter: each stage's MaxRSS then proves that stage
// alone fits the budget, which is the acceptance criterion of the
// paper-scale path (the in-memory pipeline at the same population would
// hold the whole snapshot resident and blow straight through it).

package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"syscall"
	"time"
)

// maxRSSBytes reports the child's peak resident set in bytes, or 0 when
// the platform does not expose rusage.
func maxRSSBytes(ps *os.ProcessState) int64 {
	if ps == nil {
		return 0
	}
	ru, ok := ps.SysUsage().(*syscall.Rusage)
	if !ok {
		return 0
	}
	// Linux reports Maxrss in KiB.
	return int64(ru.Maxrss) * 1024
}

// runScale builds the pipeline binaries, runs generate → fsck →
// streaming Table 4 over a sharded snapshot in a scratch directory, and
// writes the per-stage measurements. Any stage whose MaxRSS exceeds the
// budget fails the run after the file is written, so the offending
// numbers are still on disk to look at.
func runScale(f *File, out string, users, shardSize, maxRSSMB, workers int) {
	dir, err := os.MkdirTemp("", "scalebench-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build once so stage RSS measures the tool, not the compiler.
	for _, tool := range []string{"steamgen", "steamstudy"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Run(); err != nil {
			log.Fatalf("build %s: %v", tool, err)
		}
	}

	// Keep the Go runtime honest about the budget: the soft memory limit
	// leaves headroom below the hard gate so GC runs before the kernel
	// sees the excess.
	env := os.Environ()
	if maxRSSMB > 0 {
		env = append(env, fmt.Sprintf("GOMEMLIMIT=%dMiB", maxRSSMB*85/100))
	}
	snap := filepath.Join(dir, "scale.d")
	w := strconv.Itoa(workers)
	stages := []struct {
		name string
		argv []string
	}{
		{"ScaleGenerate", []string{filepath.Join(dir, "steamgen"), "-stream",
			"-users", strconv.Itoa(users), "-seed", "1",
			"-shard-size", strconv.Itoa(shardSize), "-workers", w, "-out", snap}},
		{"ScaleFsck", []string{filepath.Join(dir, "steamstudy"),
			"-fsck", "-snapshot", snap, "-workers", w}},
		{"ScaleTable4Stream", []string{filepath.Join(dir, "steamstudy"),
			"-stream", "-snapshot", snap, "-workers", w}},
	}

	f.Scale = &Scale{Users: users, ShardRecords: shardSize, MaxRSSBudgetMB: maxRSSMB}
	gmp := runtime.GOMAXPROCS(0)
	var over []string
	for _, st := range stages {
		log.Printf("%s: %v", st.name, st.argv)
		cmd := exec.Command(st.argv[0], st.argv[1:]...)
		cmd.Env = env
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		start := time.Now()
		if err := cmd.Run(); err != nil {
			log.Fatalf("%s: %v", st.name, err)
		}
		r := Result{
			Name:        st.name,
			Gomaxprocs:  gmp,
			Iterations:  1,
			NsPerOp:     float64(time.Since(start).Nanoseconds()),
			MaxRSSBytes: maxRSSBytes(cmd.ProcessState),
		}
		f.Benchmarks = append(f.Benchmarks, r)
		log.Printf("%s: %v, rss %d MiB", st.name,
			time.Since(start).Round(time.Millisecond), r.MaxRSSBytes>>20)
		if maxRSSMB > 0 && r.MaxRSSBytes > int64(maxRSSMB)<<20 {
			over = append(over, st.name)
		}
		if st.name == "ScaleGenerate" {
			f.Scale.SnapshotBytes = treeBytes(snap)
		}
	}

	writeFile(f, out)
	fmt.Printf("benchjson: scale pipeline (%d users, %d B snapshot) -> %s\n",
		users, f.Scale.SnapshotBytes, out)
	if len(over) > 0 {
		log.Fatalf("RSS budget of %d MiB exceeded by: %v", maxRSSMB, over)
	}
}

// treeBytes sums the file sizes under path (path itself for a single
// file).
func treeBytes(path string) int64 {
	var n int64
	filepath.Walk(path, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			n += info.Size()
		}
		return nil
	})
	return n
}
