// Command steamstudy regenerates the paper's evaluation: every table
// (1-4) and figure (1-12) plus the §4.1, §7, §8 and §9 analyses, either
// over a freshly generated calibrated universe or over a snapshot file
// produced by steamgen or steamcrawl.
//
//	steamstudy -users 200000 -seed 1              # full study, text output
//	steamstudy -experiment T3                     # one table
//	steamstudy -snapshot crawl.gob.gz -experiment all
//	steamstudy -list                              # experiment index
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"steamstudy"
	"steamstudy/internal/climain"
	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
)

func main() {
	app := climain.New("steamstudy")
	workers := app.WorkersFlag(0, "worker pool size for generation, snapshot codec, fsck and analysis (0 = one per CPU, 1 = serial); output is identical for any value")
	var (
		users      = flag.Int("users", 200000, "population size when generating")
		seed       = flag.Int64("seed", 1, "generation seed")
		catalog    = flag.Int("catalog", 6156, "catalog size when generating")
		snapshot   = flag.String("snapshot", "", "analyze this snapshot file instead of generating")
		experiment = flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		noSecond   = flag.Bool("no-second-snapshot", false, "skip the §8 second snapshot")
		csvDir     = flag.String("csv", "", "also export every data series as CSV into this directory")
		seeds      = flag.Int("seeds", 0, "instead of one study, sweep this many seeds and report the stability of the headline statistics")
		timings    = flag.Bool("timings", false, "print per-experiment render timings to stderr after the run")
		fsck       = flag.Bool("fsck", false, "validate the -snapshot file (manifest checksums + referential integrity) and exit; non-zero exit if damaged")
		stream     = flag.Bool("stream", false, "with -snapshot: run the streaming Table 4 off the section readers without loading the snapshot (the paper-scale out-of-core path) and exit")
	)
	flag.Parse()
	if *snapshot != "" {
		app.MustSnapshotPath("snapshot", *snapshot)
	}

	if *fsck {
		if *snapshot == "" {
			log.Fatal("-fsck requires -snapshot to name the file to validate")
		}
		im := &dataset.IntegrityMetrics{}
		rep, err := dataset.FsckFile(*snapshot, im, dataset.WithWorkers(*workers))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.String())
		if !rep.Clean() {
			os.Exit(1)
		}
		return
	}

	if *stream {
		if *snapshot == "" {
			log.Fatal("-stream requires -snapshot to name the file to analyze")
		}
		start := time.Now()
		if err := steamstudy.StreamTable4(os.Stdout, *snapshot, "", nil, *workers); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "steamstudy: streaming Table 4 over %s in %v\n",
			*snapshot, time.Since(start).Round(time.Millisecond))
		return
	}

	if *timings {
		app.EnsureRegistry()
	}
	app.StartAdmin()
	reg := app.Registry()

	if *list {
		for _, e := range steamstudy.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *seeds > 0 {
		list := make([]int64, *seeds)
		for i := range list {
			list[i] = *seed + int64(i)
		}
		sweep, err := steamstudy.RobustnessSweep(steamstudy.Options{
			Users: *users, CatalogSize: *catalog,
		}, list)
		if err != nil {
			log.Fatal(err)
		}
		if err := steamstudy.RenderSweep(os.Stdout, list, sweep); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		study *steamstudy.Study
		err   error
	)
	start := time.Now()
	if *snapshot != "" {
		study, err = steamstudy.LoadSnapshot(*snapshot, dataset.WithWorkers(*workers))
		if err != nil {
			log.Fatal(err)
		}
		study.SetWorkers(*workers)
		fmt.Fprintf(os.Stderr, "steamstudy: snapshot %s loaded in %v\n", *snapshot, time.Since(start).Round(time.Millisecond))
	} else {
		study, err = steamstudy.New(steamstudy.Options{
			Users: *users, Seed: *seed, CatalogSize: *catalog,
			SkipSecondSnapshot: *noSecond, Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		h := study.Headline()
		fmt.Fprintf(os.Stderr,
			"steamstudy: universe generated in %v: %d users, %d games, %d groups, %d friendships, %.0f years of playtime, $%.0f market value\n",
			time.Since(start).Round(time.Millisecond),
			h.Users, h.Games, h.Groups, h.Friendships, h.PlaytimeYears, h.MarketValueUSD)
	}

	if *csvDir != "" {
		if err := study.ExportCSV(*csvDir); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "steamstudy: CSV series written to %s\n", *csvDir)
	}

	study.SetObserver(reg)
	if *experiment == "all" {
		if err := study.RunAll(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if err := study.Run(os.Stdout, *experiment); err != nil {
		log.Fatal(err)
	}
	if *timings {
		printTimings(reg)
	}
}

// printTimings dumps the per-experiment render spans the observer
// collected, slowest first.
func printTimings(reg *obs.Registry) {
	spans := reg.Snapshot().Spans
	ids := make([]string, 0, len(spans))
	for id := range spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		return spans[ids[a]].Seconds > spans[ids[b]].Seconds
	})
	fmt.Fprintln(os.Stderr, "steamstudy: render timings:")
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "  %-30s %8.1fms %s\n",
			id, spans[id].Seconds*1000, spans[id].State)
	}
}
