// Command steamquery serves the read-side /v1 query API over a snapshot
// file produced by steamgen or steamcrawl: every table and figure of the
// paper as a stable JSON (or text/plain) resource, plus ad-hoc
// percentile, genre, top-K and per-user lookups, behind a collapsing
// result cache keyed by the snapshot's manifest checksum.
//
//	steamquery -snapshot steam.gob.gz -addr 127.0.0.1:8090
//	curl http://127.0.0.1:8090/v1/snapshot
//
// Publishing a new snapshot is: write it over the -snapshot path
// (dataset.Save is atomic), then `kill -HUP` the process or POST
// /v1/admin/reload. In-flight requests finish against the snapshot they
// started with; the result cache swaps with the snapshot, which is the
// whole invalidation story.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"steamstudy/internal/climain"
	"steamstudy/internal/query"
)

func main() {
	app := climain.New("steamquery")
	workers := app.WorkersFlag(0, "worker pool size for snapshot decode and analysis (0 = one per CPU, 1 = serial); responses are identical for any value")
	var (
		snapshot    = flag.String("snapshot", "", "snapshot file to serve (.gob/.gob.gz/.jsonl/.jsonl.gz)")
		addr        = flag.String("addr", "127.0.0.1:8090", "listen address for the /v1 API")
		cacheN      = flag.Int("cache", 0, "result cache capacity in entries (0 = default, negative = unbounded)")
		lazy        = flag.Bool("lazy", false, "start serving (503s) before the first snapshot load finishes instead of load-or-die")
		maxInflight = flag.Int("max-inflight", 0, "admission control: max concurrently served data-route requests (0 = default 256, negative = unlimited)")
		queueWait   = flag.Duration("queue-wait", 0, "admission control: max FIFO wait for a slot before shedding 503 + Retry-After (0 = default 100ms, negative = shed immediately)")
		routeTO     = flag.Duration("route-timeout", 0, "per-request deadline budget; renderer routes get 4x (0 = default 5s, negative = none)")
		warmKeys    = flag.Int("warm-keys", 0, "hottest cache keys replayed into the new state on reload (0 = default 64, negative = no warming)")
	)
	flag.Parse()
	app.MustSnapshotPath("snapshot", *snapshot)

	cfg := query.Config{
		SnapshotPath: *snapshot,
		Workers:      *workers,
		CacheEntries: *cacheN,
		Obs:          app.EnsureRegistry(),
		Health:       app.Health(),
		MaxInflight:  *maxInflight,
		QueueWait:    *queueWait,
		RouteTimeout: *routeTO,
		WarmKeys:     *warmKeys,
	}
	var (
		srv *query.Server
		err error
	)
	if *lazy {
		srv = query.New(cfg)
		go func() {
			if err := srv.Reload(); err != nil {
				log.Printf("initial load: %v (serving 503s until a reload succeeds)", err)
			} else {
				log.Printf("snapshot loaded, etag %s", srv.ETag())
			}
		}()
	} else {
		srv, err = query.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	app.StartAdmin()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := climain.NewHTTPServer(srv)
	go func() {
		fmt.Fprintf(os.Stderr, "steamquery: serving /v1 at http://%s (snapshot %s)\n", lis.Addr(), *snapshot)
		if err := hs.Serve(lis); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	// SIGHUP hot-reloads the snapshot; SIGINT/SIGTERM drain and exit.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP {
			if err := srv.Reload(); err != nil {
				log.Printf("reload: %v (previous snapshot still serving)", err)
			} else {
				log.Printf("reloaded, etag %s", srv.ETag())
			}
			continue
		}
		break
	}
	fmt.Fprintln(os.Stderr, "steamquery: shutting down")
	hs.Shutdown(context.Background())
}
