module steamstudy

go 1.22
