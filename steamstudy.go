// Package steamstudy is the public entry point of the "Condensing Steam"
// (IMC 2016) reproduction: a calibrated synthetic Steam universe, a Steam
// Web API simulator, the paper's crawl methodology, the heavy-tail
// classification machinery, and analyses reproducing every table and
// figure of the evaluation. The heavy lifting lives in internal/core and
// the substrate packages under internal/; this package re-exports the
// stable API.
//
//	study, err := steamstudy.New(steamstudy.Options{Users: 100000, Seed: 1})
//	...
//	err = study.Run(os.Stdout, "T3")   // print Table 3
//	err = study.RunAll(os.Stdout)      // print the whole paper
package steamstudy

import (
	"steamstudy/internal/core"
	"steamstudy/internal/dataset"
)

// Options configure a study. See core.Options for field documentation.
type Options = core.Options

// Study holds a generated universe with its extracted snapshot(s), ready
// to run experiments.
type Study = core.Study

// Headline carries the study's aggregate counts (§1's bullet numbers).
type Headline = core.Headline

// Experiment describes one runnable reproduction target.
type Experiment = core.Experiment

// ServerOptions configure the Steam Web API simulator.
type ServerOptions = core.ServerOptions

// APIServer is a running Steam Web API simulator.
type APIServer = core.APIServer

// CrawlOptions configure a crawl through the facade.
type CrawlOptions = core.CrawlOptions

// New generates the universe(s) and prepares the attribute vectors.
func New(opts Options) (*Study, error) { return core.New(opts) }

// FromSnapshot builds a study over an existing snapshot (crawled or
// loaded from disk). Generator-bound experiments are skipped.
func FromSnapshot(snap *dataset.Snapshot) *Study { return core.FromSnapshot(snap) }

// LoadSnapshot reads a snapshot saved by SaveSnapshot or the crawler
// tools and wraps it in a Study. Options tune the snapshot codec (for
// example dataset.WithWorkers); the decoded study is identical for any.
func LoadSnapshot(path string, opts ...dataset.Option) (*Study, error) {
	return core.LoadSnapshot(path, opts...)
}

// Experiments lists the experiment registry in ID order.
func Experiments() []Experiment { return core.Experiments() }

// Crawl runs the paper's §3.1 methodology against a server speaking the
// Steam Web API wire format and returns the assembled snapshot.
func Crawl(opts CrawlOptions) (*dataset.Snapshot, error) { return core.Crawl(opts) }

// ServeUniverse starts the API simulator over a generated universe (see
// Study.Serve for the common path). Study also provides SaveSnapshot and
// ExportCSV (every data series as CSV for external plotting).
var ServeUniverse = core.ServeUniverse

// SweepStat is one headline statistic measured across generation seeds.
type SweepStat = core.SweepStat

// RobustnessSweep regenerates the universe under several seeds and
// measures the headline statistics each time — the seed-analog of the
// paper's §8 "is this an artifact of when we measured?" check.
func RobustnessSweep(opts Options, seeds []int64) ([]SweepStat, error) {
	return core.RobustnessSweep(opts, seeds)
}

// RenderSweep prints a robustness sweep as a table.
var RenderSweep = core.RenderSweep

// StreamTable4 renders the Table 4 classification directly off a
// snapshot file or shard directory without loading the snapshot — the
// paper-scale path (see core.StreamTable4).
var StreamTable4 = core.StreamTable4
