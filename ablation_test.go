package steamstudy

// Ablation benchmarks: each sweeps one generator design choice DESIGN.md
// calls out and reports the statistic that choice exists to control.
// Run with:
//
//	go test -bench=Ablation -benchtime=1x
//
// They double as sensitivity documentation: the reported metrics show how
// far each published statistic moves when its mechanism is weakened or
// removed.

import (
	"fmt"
	"testing"

	"steamstudy/internal/analysis"
	"steamstudy/internal/dataset"
	"steamstudy/internal/simworld"
)

const ablationUsers = 20000

func ablationVectors(b *testing.B, mutate func(*simworld.Config)) *analysis.Vectors {
	b.Helper()
	cfg := simworld.DefaultConfig(ablationUsers)
	cfg.CatalogSize = 1500
	if mutate != nil {
		mutate(&cfg)
	}
	u, err := simworld.Generate(cfg, 99)
	if err != nil {
		b.Fatal(err)
	}
	return analysis.Extract(dataset.FromUniverse(u))
}

// BenchmarkAblationHomophilyNoise sweeps the stub-pairing noise: the
// design claim is that rank-proximity matching with small noise is what
// produces the Fig 11 homophily. Larger noise should erase it.
func BenchmarkAblationHomophilyNoise(b *testing.B) {
	for _, noise := range []float64{0.003, 0.03, 0.3} {
		b.Run(fmt.Sprintf("noise=%g", noise), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ablationVectors(b, func(c *simworld.Config) { c.HomophilyNoise = noise })
				rows := analysis.Figure11Homophily(v)
				b.ReportMetric(rows[0].Rho, "value-homophily-rho")
			}
		})
	}
}

// BenchmarkAblationSocialNoise removes the wiring latent's attribute
// loadings entirely (pure noise): homophily must collapse to ~0,
// demonstrating it is produced by the social key, not by the degree
// structure.
func BenchmarkAblationSocialNoise(b *testing.B) {
	for _, pureNoise := range []bool{false, true} {
		b.Run(fmt.Sprintf("pure-noise=%v", pureNoise), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ablationVectors(b, func(c *simworld.Config) {
					if pureNoise {
						c.SocialWeights = simworld.SocialWeights{Noise: 1}
					}
				})
				rows := analysis.Figure11Homophily(v)
				b.ReportMetric(rows[0].Rho, "value-homophily-rho")
			}
		})
	}
}

// BenchmarkAblationDomesticWiring sweeps the domestic wiring share: the
// §4.1 international-friendship fraction should rise as the domestic pass
// shrinks.
func BenchmarkAblationDomesticWiring(b *testing.B) {
	for _, frac := range []float64{0.93, 0.5, 0.0} {
		b.Run(fmt.Sprintf("domestic=%g", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ablationVectors(b, func(c *simworld.Config) { c.DomesticWiringFrac = frac })
				loc := analysis.Section4Locality(v)
				b.ReportMetric(loc.InternationalFrac*100, "international-%")
			}
		})
	}
}

// BenchmarkAblationMultiplayerBoost sweeps the multiplayer playtime tilt:
// with no boost the §6.2 share should fall to the catalog share (~48.7 %),
// confirming the boost is what produces the paper's 57.7 %/67.7 %.
func BenchmarkAblationMultiplayerBoost(b *testing.B) {
	for _, boost := range []float64{1.0, 2.4, 4.0} {
		b.Run(fmt.Sprintf("boost=%g", boost), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ablationVectors(b, func(c *simworld.Config) {
					c.MultiplayerTotalBoost = boost
					c.MultiplayerTwoWeekBoost = boost * 1.9
				})
				res := analysis.Figure10MultiplayerShare(v.Snap)
				b.ReportMetric(res.TotalShare*100, "mp-total-share-%")
			}
		})
	}
}

// BenchmarkAblationCopula removes the latent correlations (identity
// matrix): the §7 correlations must vanish while Table 3's marginals stay
// intact — demonstrating the copula carries the dependence structure and
// the quantile splines carry the marginals, independently.
func BenchmarkAblationCopula(b *testing.B) {
	for _, independent := range []bool{false, true} {
		b.Run(fmt.Sprintf("independent=%v", independent), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ablationVectors(b, func(c *simworld.Config) {
					if independent {
						var zero [7][7]float64
						for d := 0; d < 7; d++ {
							zero[d][d] = 1
						}
						c.Spearman = zero
					}
				})
				rows := analysis.Section7Correlations(v)
				b.ReportMetric(rows[0].Rho, "games-friends-rho")
				// Marginals must hold either way.
				t3 := analysis.Table3Percentiles(v)
				b.ReportMetric(t3[0].P90, "friends-p90")
			}
		})
	}
}

// BenchmarkAblationCollectors removes the collector sub-population: the
// Fig 4/8 upticks and the §3.2 big-library anomalies should disappear.
func BenchmarkAblationCollectors(b *testing.B) {
	for _, frac := range []float64{0.0004, 0} {
		b.Run(fmt.Sprintf("collectors=%g", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ablationVectors(b, func(c *simworld.Config) { c.CollectorFrac = frac })
				res := analysis.Figure4Ownership(v)
				b.ReportMetric(float64(res.UptickOwners), "uptick-owners")
				b.ReportMetric(float64(res.NeverPlayedBigLibraries), "never-played-500plus")
			}
		})
	}
}
