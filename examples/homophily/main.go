// Homophily example: reproduce the paper's §7 / Fig 11 finding that
// players befriend players like themselves — in money spent, popularity,
// playtime and library size — and contrast it with the much weaker
// correlations *within* a player's own attributes.
//
//	go run ./examples/homophily
package main

import (
	"fmt"
	"log"
	"os"

	"steamstudy"
)

func main() {
	log.SetFlags(0)

	study, err := steamstudy.New(steamstudy.Options{
		Users: 40000, CatalogSize: 3000, Seed: 11,
		SkipSecondSnapshot: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Do gamers who own more games play more? (§7: only weakly.)")
	fmt.Println("Do gamers befriend gamers like themselves? (§7: strongly.)")
	fmt.Println()
	if err := study.Run(os.Stdout, "F11"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := study.Run(os.Stdout, "E4"); err != nil {
		log.Fatal(err)
	}
}
