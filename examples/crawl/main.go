// Crawl example: run the paper's §3.1 data-collection methodology end to
// end — an in-process Steam Web API simulator, the exhaustive ID-space
// crawler throttled to 85 % of the server allowance, and a comparison of
// the crawled snapshot against ground truth.
//
//	go run ./examples/crawl
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"steamstudy"
)

func main() {
	log.SetFlags(0)

	study, err := steamstudy.New(steamstudy.Options{
		Users: 2000, CatalogSize: 300, Seed: 7,
		SkipSecondSnapshot: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serve the universe as the Steam Web API, with an API key and a
	// server-side rate limit — the conditions the paper crawled under.
	const serverRate = 4000
	srv, err := study.Serve(steamstudy.ServerOptions{
		APIKeys:       []string{"EXAMPLE-KEY"},
		RatePerSecond: serverRate,
		Burst:         500,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	fmt.Printf("Steam Web API simulator at %s\n", srv.BaseURL)

	// Crawl it, voluntarily throttled to 85 %% of the allowance (§3.1).
	start := time.Now()
	snap, err := steamstudy.Crawl(steamstudy.CrawlOptions{
		BaseURL:       srv.BaseURL,
		APIKey:        "EXAMPLE-KEY",
		RatePerSecond: serverRate * 0.85,
		Workers:       8,
		Timeout:       5 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl finished in %v\n", time.Since(start).Round(time.Millisecond))

	// Compare against ground truth.
	truth := study.Headline()
	crawled := steamstudy.FromSnapshot(snap).Headline()
	fmt.Printf("%-14s %12s %12s\n", "", "ground truth", "crawled")
	row := func(name string, a, b any) { fmt.Printf("%-14s %12v %12v\n", name, a, b) }
	row("users", truth.Users, crawled.Users)
	row("games", truth.Games, crawled.Games)
	row("groups", truth.Groups, crawled.Groups)
	row("friendships", truth.Friendships, crawled.Friendships)
	row("owned games", truth.OwnedGames, crawled.OwnedGames)
	if truth.Users != crawled.Users || truth.Friendships != crawled.Friendships ||
		truth.OwnedGames != crawled.OwnedGames {
		log.Fatal("crawl does not match ground truth")
	}
	fmt.Println("crawl matches ground truth exactly")
}
