// Achievements example: the paper's §9 study — do achievements
// incentivize playtime? The correlation is moderate for games offering
// 1-90 achievements and vanishes beyond 90; completion rates differ by
// genre (Adventure highest) and the mean sits above the median because of
// achievement hunters.
//
//	go run ./examples/achievements
package main

import (
	"fmt"
	"log"
	"os"

	"steamstudy"
)

func main() {
	log.SetFlags(0)

	study, err := steamstudy.New(steamstudy.Options{
		Users: 30000, CatalogSize: 4000, Seed: 17,
		SkipSecondSnapshot: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := study.Run(os.Stdout, "E9"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading: within 1-90 achievements the correlation with playtime is")
	fmt.Println("moderate (paper: 0.53) but beyond 90 it disappears (paper: -0.02) —")
	fmt.Println("achievement-spam titles offer hundreds of achievements nobody plays for.")
}
