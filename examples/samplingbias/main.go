// Sampling-bias example: the paper's §2.2 argument for exhaustive
// crawling, demonstrated live. Two crawls run against the same simulated
// Steam Web API: the paper's exhaustive ID-space sweep, and a
// Becker/Blackburn-style snowball crawl that follows friend lists from a
// popular seed account. The snowball sample massively overestimates
// connectivity — friendless accounts (the majority!) are invisible to it.
//
//	go run ./examples/samplingbias
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"steamstudy"
	"steamstudy/internal/crawler"
	"steamstudy/internal/steamid"
)

func main() {
	log.SetFlags(0)

	study, err := steamstudy.New(steamstudy.Options{
		Users: 2500, CatalogSize: 200, Seed: 31,
		SkipSecondSnapshot: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := study.Serve(steamstudy.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	fmt.Printf("Steam Web API simulator at %s\n\n", srv.BaseURL)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Methodology A — the paper's exhaustive ID sweep (§3.1).
	exhaustive, err := steamstudy.Crawl(steamstudy.CrawlOptions{
		BaseURL: srv.BaseURL, Workers: 8, Timeout: 5 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Methodology B — a snowball crawl from the most popular account
	// (§2.2: how the prior 9M/12M-user studies collected their samples).
	var seed steamid.ID
	best := -1
	for i := range exhaustive.Users {
		if n := len(exhaustive.Users[i].Friends); n > best {
			best = n
			seed = steamid.ID(exhaustive.Users[i].SteamID)
		}
	}
	snowCrawler := crawler.New(crawler.Config{BaseURL: srv.BaseURL})
	snowball, err := snowCrawler.Snowball(ctx, []steamid.ID{seed}, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Compare what each methodology would report.
	meanFriends := func(users int, total int) float64 { return float64(total) / float64(users) }
	var exTotal, sbTotal int
	exZero := 0
	for i := range exhaustive.Users {
		n := len(exhaustive.Users[i].Friends)
		exTotal += n
		if n == 0 {
			exZero++
		}
	}
	for i := range snowball.Users {
		sbTotal += len(snowball.Users[i].Friends)
	}

	fmt.Printf("%-34s %12s %12s\n", "", "exhaustive", "snowball")
	fmt.Printf("%-34s %12d %12d\n", "accounts found", len(exhaustive.Users), len(snowball.Users))
	fmt.Printf("%-34s %12.2f %12.2f\n", "mean friends per account",
		meanFriends(len(exhaustive.Users), exTotal), meanFriends(len(snowball.Users), sbTotal))
	fmt.Printf("%-34s %11.1f%% %12s\n", "accounts with zero friends",
		float64(exZero)/float64(len(exhaustive.Users))*100, "invisible")
	fmt.Println()
	fmt.Println("The snowball crawl sees a far denser network than exists: it can only")
	fmt.Println("reach accounts that someone befriended. This is the §2.2 sampling bias")
	fmt.Println("the paper's exhaustive ID-space sweep was designed to avoid.")
}
