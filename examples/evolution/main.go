// Evolution example: the paper's §8 robustness check — a second snapshot
// of the same population a year later. The heavy tail inflates
// dramatically (the top collector's library nearly doubles) while the
// 80th percentile barely moves, and the distribution classifications stay
// the same.
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"
	"os"

	"steamstudy"
)

func main() {
	log.SetFlags(0)

	study, err := steamstudy.New(steamstudy.Options{
		Users: 30000, CatalogSize: 6156, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := study.Run(os.Stdout, "E8"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Classification stability across both snapshots (Table 4 with the")
	fmt.Println("second-snapshot rows included):")
	fmt.Println()
	if err := study.Run(os.Stdout, "T4"); err != nil {
		log.Fatal(err)
	}
}
