// Quickstart: generate a small calibrated Steam universe and reproduce
// the paper's headline table — the Table 3 percentiles — plus a heavy-tail
// classification of one distribution, in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"steamstudy"
)

func main() {
	log.SetFlags(0)

	// 25k users is plenty: every statistic the paper reports is
	// scale-free (percentiles, shares, correlation coefficients).
	study, err := steamstudy.New(steamstudy.Options{
		Users:       25000,
		CatalogSize: 2000,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	h := study.Headline()
	fmt.Printf("synthetic Steam universe: %d users, %d games, %d friendships, %d groups\n",
		h.Users, h.Games, h.Friendships, h.Groups)
	fmt.Printf("aggregate: %d owned games, %.0f years of playtime, $%.0f market value\n\n",
		h.OwnedGames, h.PlaytimeYears, h.MarketValueUSD)

	// Table 3 — the paper's percentile summary of gamer behaviour.
	if err := study.Run(os.Stdout, "T3"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Table 4 (excerpt) — is two-week playtime a truncated power law, as
	// the paper found? The classification pipeline decides.
	if err := study.Run(os.Stdout, "T4"); err != nil {
		log.Fatal(err)
	}
}
