// Package randx provides a deterministic, splittable random number
// generator and the samplers used to synthesize the Steam universe.
//
// Determinism is a hard requirement for this reproduction: every table and
// figure must be regenerable bit-for-bit from a single seed, and tests pin
// seeds to assert calibration targets. The generator is xoshiro256**,
// seeded through splitmix64 so that correlated seeds (0, 1, 2, ...) still
// produce decorrelated streams. Child streams are derived with Split, which
// hashes a label into the parent state, so independent subsystems (users,
// games, friendships, ...) can consume randomness in any order without
// perturbing each other.
package randx

import (
	"math"
)

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is NOT safe for concurrent use; derive per-goroutine streams with
// Split instead of sharing one RNG.
type RNG struct {
	s [4]uint64

	// cached spare normal deviate for NormFloat64 (Marsaglia polar method).
	haveSpare bool
	spare     float64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is used
// only for seeding, per the xoshiro authors' recommendation.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns an RNG seeded from seed. Distinct seeds, including adjacent
// integers, yield statistically independent streams.
func New(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// A state of all zeros is invalid for xoshiro; splitmix64 cannot emit
	// four zeros in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child stream identified by label. The parent
// is not advanced, so the set of child streams is a pure function of
// (parent seed, label).
func (r *RNG) Split(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return r.splitHash(h)
}

// SplitN derives an independent child stream identified by (label, i) —
// the index-keyed variant of Split. It lets a parallel fan-out give every
// unit of work (bootstrap replicate, worker, shard) its own stream as a
// pure function of (parent seed, label, index), without the allocation of
// formatting the index into the label. SplitN(label, i) hashes the index
// as eight extra FNV bytes, so streams for distinct indices are as
// decorrelated as streams for distinct labels.
func (r *RNG) SplitN(label string, i uint64) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for j := 0; j < len(label); j++ {
		h ^= uint64(label[j])
		h *= 1099511628211
	}
	for j := 0; j < 8; j++ {
		h ^= (i >> (8 * j)) & 0xff
		h *= 1099511628211
	}
	return r.splitHash(h)
}

// splitHash derives the child stream for a fully mixed label hash.
func (r *RNG) splitHash(h uint64) *RNG {
	c := &RNG{}
	x := r.s[0] ^ h
	for i := range c.s {
		c.s[i] = splitmix64(&x) ^ r.s[i]
	}
	if c.s[0]|c.s[1]|c.s[2]|c.s[3] == 0 {
		c.s[0] = h | 1
	}
	return c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly 0, which is
// convenient as input to quantile functions that diverge at the endpoints.
func (r *RNG) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("randx: Uint64n with zero n")
	}
	// Lemire's method with rejection for exact uniformity.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate (Marsaglia polar method,
// with one cached spare per pair).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential deviate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
