package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/64 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split("users")
	b := root.Split("games")
	a2 := New(7).Split("users")
	// Same label from the same parent state reproduces the stream.
	for i := 0; i < 32; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatalf("split stream not reproducible at %d", i)
		}
	}
	// Different labels diverge.
	c := New(7).Split("users")
	diff := false
	for i := 0; i < 32; i++ {
		if b.Uint64() != c.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split streams with different labels are identical")
	}
}

func TestSplitNReproducibleAndDistinct(t *testing.T) {
	root := New(11)
	// Same (label, index) from the same parent reproduces the stream.
	a := root.SplitN("rep", 5)
	a2 := New(11).SplitN("rep", 5)
	for i := 0; i < 32; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatalf("SplitN stream not reproducible at draw %d", i)
		}
	}
	// Distinct indices (including adjacent ones) diverge from each other
	// and from the plain Split of the same label.
	streams := []*RNG{
		root.SplitN("rep", 0), root.SplitN("rep", 1), root.SplitN("rep", 2),
		root.SplitN("rep", 1<<40), root.Split("rep"),
	}
	firsts := map[uint64]int{}
	for i, s := range streams {
		v := s.Uint64()
		if j, dup := firsts[v]; dup {
			t.Fatalf("streams %d and %d start identically", i, j)
		}
		firsts[v] = i
	}
}

func TestSplitNDoesNotAdvanceParent(t *testing.T) {
	a := New(13)
	b := New(13)
	_ = a.SplitN("x", 3)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitN advanced the parent state")
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn bucket %d count %d far from %v", k, c, want)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("negative exponential deviate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nBound(t *testing.T) {
	r := New(11)
	err := quick.Check(func(nRaw uint32) bool {
		n := uint64(nRaw) + 1
		v := r.Uint64n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(12)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}
