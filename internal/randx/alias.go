package randx

// Alias implements Walker's alias method for O(1) sampling from an arbitrary
// discrete distribution. It is used for popularity-weighted game selection,
// where millions of draws are made against a fixed weight vector.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table from the given non-negative weights.
// Weights need not be normalized. Panics if all weights are zero or the
// slice is empty.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("randx: NewAlias with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("randx: NewAlias with negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("randx: NewAlias with all-zero weights")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: p_i * n.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		// Only reachable through floating-point drift; treat as certain.
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a
}

// Sample draws an index distributed according to the weights.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// N returns the number of categories.
func (a *Alias) N() int { return len(a.prob) }
