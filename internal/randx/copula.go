package randx

import (
	"fmt"
	"math"
)

// Copula draws vectors of correlated uniforms through a Gaussian copula.
// The simulator uses it to give each synthetic user a joint draw of
// (friends, games owned, playtime, ...) whose Spearman rank correlations
// match the matrix published in §7 of the paper, while each marginal is
// shaped independently by its quantile function. Spearman correlation is
// invariant under the monotone marginal transforms, so calibrating the
// latent Gaussian correlation calibrates the final rank correlations
// exactly (in expectation).
type Copula struct {
	dim  int
	chol []float64 // lower-triangular Cholesky factor, row-major dim x dim
}

// SpearmanToPearson converts a target Spearman rank correlation into the
// Pearson correlation the latent Gaussian must carry:
// r = 2 sin(pi * rho / 6).
func SpearmanToPearson(rho float64) float64 {
	return 2 * math.Sin(math.Pi*rho/6)
}

// PearsonToSpearman is the inverse of SpearmanToPearson.
func PearsonToSpearman(r float64) float64 {
	return 6 / math.Pi * math.Asin(r/2)
}

// NewCopula builds a Gaussian copula from a symmetric Spearman correlation
// matrix (row-major, dim x dim, unit diagonal). If the implied Pearson
// matrix is not positive definite it is repaired by ridging the diagonal,
// which slightly shrinks all correlations toward zero; the repair amount is
// returned so callers can assert it stays negligible.
func NewCopula(dim int, spearman []float64) (*Copula, float64, error) {
	if len(spearman) != dim*dim {
		return nil, 0, fmt.Errorf("randx: copula matrix must be %d x %d", dim, dim)
	}
	pearson := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if i == j {
				pearson[i*dim+j] = 1
				continue
			}
			s := spearman[i*dim+j]
			if s != spearman[j*dim+i] {
				return nil, 0, fmt.Errorf("randx: copula matrix not symmetric at (%d, %d)", i, j)
			}
			if s <= -1 || s >= 1 {
				return nil, 0, fmt.Errorf("randx: correlation out of range at (%d, %d): %v", i, j, s)
			}
			pearson[i*dim+j] = SpearmanToPearson(s)
		}
	}
	ridge := 0.0
	for {
		chol, ok := cholesky(dim, pearson, ridge)
		if ok {
			return &Copula{dim: dim, chol: chol}, ridge, nil
		}
		if ridge == 0 {
			ridge = 1e-6
		} else {
			ridge *= 2
		}
		if ridge > 1.0 {
			return nil, ridge, fmt.Errorf("randx: correlation matrix too far from positive definite")
		}
	}
}

// cholesky computes the lower Cholesky factor of m + ridge*I (with the
// result rescaled so the diagonal of the implied covariance is 1). Returns
// ok=false if the matrix is not positive definite.
func cholesky(dim int, m []float64, ridge float64) ([]float64, bool) {
	a := make([]float64, dim*dim)
	scale := 1 / (1 + ridge)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			v := m[i*dim+j] * scale
			if i == j {
				v = 1
			}
			a[i*dim+j] = v
		}
	}
	l := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*dim+j]
			for k := 0; k < j; k++ {
				sum -= l[i*dim+k] * l[j*dim+k]
			}
			if i == j {
				if sum <= 1e-12 {
					return nil, false
				}
				l[i*dim+i] = math.Sqrt(sum)
			} else {
				l[i*dim+j] = sum / l[j*dim+j]
			}
		}
	}
	return l, true
}

// Dim returns the copula dimensionality.
func (c *Copula) Dim() int { return c.dim }

// Sample fills z with correlated standard normals and u with the
// corresponding uniforms Phi(z). Both slices must have length Dim().
// Scratch-free: allocates nothing.
func (c *Copula) Sample(r *RNG, z, u []float64) {
	if len(z) != c.dim || len(u) != c.dim {
		panic("randx: copula sample buffers have wrong length")
	}
	// Draw iid normals into u as scratch, then mix through the Cholesky
	// factor into z.
	for i := 0; i < c.dim; i++ {
		u[i] = r.NormFloat64()
	}
	for i := c.dim - 1; i >= 0; i-- {
		sum := 0.0
		for k := 0; k <= i; k++ {
			sum += c.chol[i*c.dim+k] * u[k]
		}
		z[i] = sum
	}
	for i := 0; i < c.dim; i++ {
		u[i] = NormalCDF(z[i])
	}
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
