package randx

import (
	"math"
	"sort"
	"testing"
)

func TestSpearmanPearsonRoundTrip(t *testing.T) {
	for _, rho := range []float64{-0.9, -0.5, 0, 0.3, 0.77, 0.95} {
		r := SpearmanToPearson(rho)
		back := PearsonToSpearman(r)
		if math.Abs(back-rho) > 1e-12 {
			t.Fatalf("round trip %v -> %v -> %v", rho, r, back)
		}
	}
}

func TestCopulaRejectsBadInput(t *testing.T) {
	if _, _, err := NewCopula(2, []float64{1, 0.5, 0.4, 1}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, _, err := NewCopula(2, []float64{1, 1.5, 1.5, 1}); err == nil {
		t.Fatal("out-of-range correlation accepted")
	}
	if _, _, err := NewCopula(3, []float64{1, 0, 0, 1}); err == nil {
		t.Fatal("wrong-size matrix accepted")
	}
}

// sampleSpearman estimates Spearman rho between two columns of copula draws.
func sampleSpearman(t *testing.T, c *Copula, n, i, j int) float64 {
	t.Helper()
	r := New(99)
	xi := make([]float64, n)
	xj := make([]float64, n)
	z := make([]float64, c.Dim())
	u := make([]float64, c.Dim())
	for k := 0; k < n; k++ {
		c.Sample(r, z, u)
		xi[k] = u[i]
		xj[k] = u[j]
	}
	return spearmanLocal(xi, xj)
}

// spearmanLocal is a minimal rank correlation for test use only (no ties in
// continuous copula output).
func spearmanLocal(x, y []float64) float64 {
	rx := ranksLocal(x)
	ry := ranksLocal(y)
	n := float64(len(x))
	var sx, sy, sxy, sxx, syy float64
	for i := range rx {
		sx += rx[i]
		sy += ry[i]
	}
	mx, my := sx/n, sy/n
	for i := range rx {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}

func ranksLocal(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, len(x))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

func TestCopulaAchievesTargetSpearman(t *testing.T) {
	target := 0.77
	m := []float64{
		1, target,
		target, 1,
	}
	c, ridge, err := NewCopula(2, m)
	if err != nil {
		t.Fatal(err)
	}
	if ridge != 0 {
		t.Fatalf("unexpected ridge %v for a 2x2 PD matrix", ridge)
	}
	got := sampleSpearman(t, c, 20000, 0, 1)
	if math.Abs(got-target) > 0.02 {
		t.Fatalf("sampled Spearman %v, want %v", got, target)
	}
}

func TestCopulaMarginalsUniform(t *testing.T) {
	m := []float64{
		1, 0.5, 0.2,
		0.5, 1, 0.1,
		0.2, 0.1, 1,
	}
	c, _, err := NewCopula(3, m)
	if err != nil {
		t.Fatal(err)
	}
	r := New(77)
	z := make([]float64, 3)
	u := make([]float64, 3)
	const n = 50000
	sums := make([]float64, 3)
	for k := 0; k < n; k++ {
		c.Sample(r, z, u)
		for d := 0; d < 3; d++ {
			if u[d] <= 0 || u[d] >= 1 {
				t.Fatalf("uniform out of (0,1): %v", u[d])
			}
			sums[d] += u[d]
		}
	}
	for d, s := range sums {
		if mean := s / n; math.Abs(mean-0.5) > 0.01 {
			t.Fatalf("copula marginal %d mean %v", d, mean)
		}
	}
}

func TestCopulaRepairsNearSingular(t *testing.T) {
	// Three variables each pairwise-correlated 0.99 against variable 0 but
	// weakly with each other: not positive definite as a Pearson matrix.
	m := []float64{
		1, 0.99, 0.99,
		0.99, 1, 0.5,
		0.99, 0.5, 1,
	}
	c, ridge, err := NewCopula(3, m)
	if err != nil {
		t.Fatal(err)
	}
	if ridge == 0 {
		t.Fatal("expected a ridge repair for a non-PD matrix")
	}
	if c == nil {
		t.Fatal("nil copula after repair")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0:     0.5,
		1.96:  0.9750021048517795,
		-1.96: 0.0249978951482205,
		3:     0.9986501019683699,
	}
	for x, want := range cases {
		if got := NormalCDF(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("NormalCDF(%v) = %v, want %v", x, got, want)
		}
	}
}
