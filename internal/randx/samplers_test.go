package randx

import (
	"math"
	"sort"
	"testing"
)

func TestLognormalMedian(t *testing.T) {
	r := New(20)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Lognormal(math.Log(10), 1.2)
	}
	sort.Float64s(xs)
	med := xs[n/2]
	if med < 9 || med > 11 {
		t.Fatalf("lognormal median %v, want ~10", med)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(21)
	const n = 200000
	alpha, xmin := 2.5, 1.0
	over2, over4 := 0, 0
	for i := 0; i < n; i++ {
		x := r.Pareto(alpha, xmin)
		if x < xmin {
			t.Fatalf("Pareto deviate %v below xmin", x)
		}
		if x > 2 {
			over2++
		}
		if x > 4 {
			over4++
		}
	}
	// CCDF(x) = (x/xmin)^-(alpha-1) = x^-1.5
	p2 := float64(over2) / n
	p4 := float64(over4) / n
	if math.Abs(p2-math.Pow(2, -1.5)) > 0.01 {
		t.Fatalf("P(X>2) = %v, want %v", p2, math.Pow(2, -1.5))
	}
	if math.Abs(p4-math.Pow(4, -1.5)) > 0.01 {
		t.Fatalf("P(X>4) = %v, want %v", p4, math.Pow(4, -1.5))
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := New(22)
	for i := 0; i < 10000; i++ {
		x := r.BoundedPareto(2.0, 1, 100)
		if x < 1 || x > 100 {
			t.Fatalf("BoundedPareto out of range: %v", x)
		}
	}
	// Degenerate bound collapses to xmin.
	if x := r.BoundedPareto(2.0, 5, 5); x != 5 {
		t.Fatalf("degenerate BoundedPareto = %v, want 5", x)
	}
}

func TestTruncatedPowerLawThinnerThanPareto(t *testing.T) {
	r := New(23)
	const n = 50000
	overTPL, overPL := 0, 0
	for i := 0; i < n; i++ {
		if r.TruncatedPowerLaw(1.8, 0.05, 1) > 30 {
			overTPL++
		}
		if r.Pareto(1.8, 1) > 30 {
			overPL++
		}
	}
	if overTPL >= overPL {
		t.Fatalf("truncated tail (%d) not thinner than pure power law (%d)", overTPL, overPL)
	}
}

func TestTruncatedPowerLawZeroLambda(t *testing.T) {
	a := New(24)
	b := New(24)
	for i := 0; i < 100; i++ {
		x := a.TruncatedPowerLaw(2.2, 0, 3)
		y := b.Pareto(2.2, 3)
		if x != y {
			t.Fatal("lambda=0 should reduce to Pareto draw-for-draw")
		}
	}
}

func TestDiscretePowerLawSupport(t *testing.T) {
	r := New(25)
	for i := 0; i < 20000; i++ {
		k := r.DiscretePowerLaw(2.5, 1)
		if k < 1 {
			t.Fatalf("discrete power law below kmin: %d", k)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(26)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(27)
	const n, p = 100000, 0.25
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	want := (1 - p) / p // mean of failures-counting geometric
	got := float64(sum) / n
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want %v", p, got, want)
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	r := New(28)
	const n = 100000
	pos, sum := 0, 0.0
	for i := 0; i < n; i++ {
		x := r.Laplace(2)
		if x > 0 {
			pos++
		}
		sum += math.Abs(x)
	}
	if frac := float64(pos) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Laplace positive fraction %v", frac)
	}
	// E|X| = scale
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("Laplace mean abs %v, want 2", mean)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(29)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {200, 0.1}, {1000, 0.9}} {
		const draws = 20000
		sum := 0
		for i := 0; i < draws; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial out of range: %d", k)
			}
			sum += k
		}
		want := float64(tc.n) * tc.p
		got := float64(sum) / draws
		if math.Abs(got-want) > 0.03*want+0.2 {
			t.Fatalf("Binomial(%d,%v) mean %v, want %v", tc.n, tc.p, got, want)
		}
	}
}

func TestGammaMean(t *testing.T) {
	r := New(30)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		got := sum / n
		if math.Abs(got-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean %v", shape, got)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(31)
	out := make([]float64, 8)
	for i := 0; i < 100; i++ {
		r.Dirichlet(0.7, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				t.Fatalf("negative Dirichlet component %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum %v", sum)
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(32)
	z := NewZipf(100, 1.0)
	const n = 200000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 0 should be ~2x rank 1 under s=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("Zipf rank0/rank1 ratio %v, want ~2", ratio)
	}
	if counts[99] >= counts[0] {
		t.Fatal("Zipf tail rank as popular as head")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(33)
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	if a.N() != 4 {
		t.Fatalf("alias N = %d", a.N())
	}
	const n = 400000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Fatalf("alias bucket %d count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasSingleBucket(t *testing.T) {
	a := NewAlias([]float64{5})
	r := New(34)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-bucket alias returned nonzero index")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAlias(%s) did not panic", name)
				}
			}()
			NewAlias(weights)
		}()
	}
}
