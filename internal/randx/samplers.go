package randx

import (
	"math"
)

// Lognormal returns a lognormal deviate with the given log-mean and
// log-standard-deviation: exp(mu + sigma*Z).
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a continuous power-law (Pareto) deviate with density
// p(x) ∝ x^-alpha for x >= xmin. Requires alpha > 1.
func (r *RNG) Pareto(alpha, xmin float64) float64 {
	if alpha <= 1 {
		panic("randx: Pareto requires alpha > 1")
	}
	u := r.Float64Open()
	return xmin * math.Pow(u, -1/(alpha-1))
}

// BoundedPareto returns a Pareto deviate truncated to [xmin, xmax] by
// inverse-CDF sampling of the truncated distribution (no rejection loop).
func (r *RNG) BoundedPareto(alpha, xmin, xmax float64) float64 {
	if xmax <= xmin {
		return xmin
	}
	if alpha == 1 {
		// p(x) ∝ 1/x: quantile is geometric interpolation.
		u := r.Float64()
		return xmin * math.Pow(xmax/xmin, u)
	}
	a1 := 1 - alpha
	lo := math.Pow(xmin, a1)
	hi := math.Pow(xmax, a1)
	u := r.Float64()
	return math.Pow(lo+u*(hi-lo), 1/a1)
}

// TruncatedPowerLaw returns a deviate with density p(x) ∝ x^-alpha e^-lambda*x
// for x >= xmin (a power law with exponential cutoff). Sampling is by
// rejection from a pure power law with acceptance probability
// exp(-lambda (x - xmin)), which is exact and efficient when
// lambda*xmin is small. Requires alpha > 1, lambda >= 0.
func (r *RNG) TruncatedPowerLaw(alpha, lambda, xmin float64) float64 {
	if lambda <= 0 {
		return r.Pareto(alpha, xmin)
	}
	for {
		x := r.Pareto(alpha, xmin)
		if r.Float64() < math.Exp(-lambda*(x-xmin)) {
			return x
		}
	}
}

// DiscretePowerLaw returns an integer deviate k >= kmin with P(k) ∝ k^-alpha,
// using the continuous-approximation method of Clauset et al. (2009),
// appendix D: round a continuous Pareto shifted by 1/2.
func (r *RNG) DiscretePowerLaw(alpha float64, kmin int) int {
	x := r.Pareto(alpha, float64(kmin)-0.5)
	return int(math.Floor(x + 0.5))
}

// Poisson returns a Poisson deviate with the given mean. Uses Knuth's
// multiplication method for small means and the PTRS transformed-rejection
// method is not needed at the scales used here; for large means a normal
// approximation with continuity correction is used.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation, adequate for mean >= 30.
	k := int(math.Floor(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5))
	if k < 0 {
		k = 0
	}
	return k
}

// Geometric returns a geometric deviate counting failures before the first
// success with success probability p (support {0, 1, 2, ...}).
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("randx: Geometric requires p in (0, 1]")
	}
	u := r.Float64Open()
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Laplace returns a Laplace (double exponential) deviate with location 0 and
// the given scale.
func (r *RNG) Laplace(scale float64) float64 {
	u := r.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// Binomial returns a binomial deviate with n trials and success probability p.
// Direct simulation for small n, normal approximation for large n.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Floor(mean + sd*r.NormFloat64() + 0.5))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Dirichlet fills out with a draw from a symmetric Dirichlet distribution of
// concentration alpha over len(out) categories. out sums to 1.
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	sum := 0.0
	for i := range out {
		g := r.Gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Gamma returns a gamma deviate with the given shape and unit scale, using
// the Marsaglia–Tsang squeeze method (with the shape<1 boost).
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("randx: Gamma requires shape > 0")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64Open()
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Zipf returns an integer in [0, n) with P(k) ∝ (k+1)^-s, sampled by
// bisection on a precomputed CDF held by the ZipfSampler. For one-off draws
// without a sampler, use NewZipf.
type ZipfSampler struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(n int, s float64) *ZipfSampler {
	if n <= 0 {
		panic("randx: NewZipf requires n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &ZipfSampler{cdf: cdf}
}

// Sample draws a rank in [0, n).
func (z *ZipfSampler) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks.
func (z *ZipfSampler) N() int { return len(z.cdf) }
