// Package dataset defines the snapshot format shared by the crawler (which
// assembles one from Steam Web API responses) and the analysis pipeline
// (which consumes one regardless of whether it was crawled or extracted
// straight from a synthetic universe). It also provides persistence (gob
// and JSON-lines) and the §8 two-snapshot comparison helpers.
package dataset

import (
	"fmt"
	"sort"
)

// FriendRecord is one friendship as seen from a user's friend list.
type FriendRecord struct {
	SteamID uint64
	Since   int64
}

// OwnershipRecord is one owned game with its playtimes in minutes.
type OwnershipRecord struct {
	AppID          uint32
	TotalMinutes   int64
	TwoWeekMinutes int32
}

// UserRecord is everything the crawl learns about one account.
type UserRecord struct {
	SteamID uint64
	Created int64
	Country string
	City    string
	Friends []FriendRecord
	Games   []OwnershipRecord
	Groups  []uint64
}

// TotalMinutes sums lifetime playtime over the library.
func (u *UserRecord) TotalMinutes() int64 {
	var s int64
	for _, g := range u.Games {
		s += g.TotalMinutes
	}
	return s
}

// TwoWeekMinutes sums two-week playtime over the library.
func (u *UserRecord) TwoWeekMinutes() int64 {
	var s int64
	for _, g := range u.Games {
		s += int64(g.TwoWeekMinutes)
	}
	return s
}

// AchievementRecord is one achievement with its global completion rate.
type AchievementRecord struct {
	Name    string
	Percent float64
}

// GameRecord is one storefront product.
type GameRecord struct {
	AppID        uint32
	Name         string
	Type         string
	Genres       []string
	Multiplayer  bool
	PriceCents   int64
	Metacritic   int
	ReleaseYear  int
	Developer    string
	Achievements []AchievementRecord
}

// HasGenre reports whether the game carries the named genre label.
func (g *GameRecord) HasGenre(name string) bool {
	for _, n := range g.Genres {
		if n == name {
			return true
		}
	}
	return false
}

// GroupRecord is one community group with its member accounts.
type GroupRecord struct {
	GID     uint64
	Name    string
	Type    string
	Members []uint64
}

// Snapshot is a complete crawl result.
type Snapshot struct {
	// CollectedAt is the nominal crawl end (Unix seconds).
	CollectedAt int64
	Users       []UserRecord
	Games       []GameRecord
	Groups      []GroupRecord
}

// Edge is one deduplicated, undirected friendship between user indices.
type Edge struct {
	A, B  int32
	Since int64
}

// UserIndex maps SteamIDs to indices into Users.
func (s *Snapshot) UserIndex() map[uint64]int32 {
	idx := make(map[uint64]int32, len(s.Users))
	for i := range s.Users {
		idx[s.Users[i].SteamID] = int32(i)
	}
	return idx
}

// GameIndex maps AppIDs to indices into Games.
func (s *Snapshot) GameIndex() map[uint32]int32 {
	idx := make(map[uint32]int32, len(s.Games))
	for i := range s.Games {
		idx[s.Games[i].AppID] = int32(i)
	}
	return idx
}

// FriendshipEdges deduplicates the per-user friend lists into undirected
// edges (each reciprocal pair appears once). Friends outside the snapshot
// are dropped, mirroring the paper's handling of dangling references.
func (s *Snapshot) FriendshipEdges() []Edge {
	idx := s.UserIndex()
	var edges []Edge
	for i := range s.Users {
		a := int32(i)
		for _, f := range s.Users[i].Friends {
			b, ok := idx[f.SteamID]
			if !ok || b == a {
				continue
			}
			if a < b { // count each undirected edge once
				edges = append(edges, Edge{A: a, B: b, Since: f.Since})
			}
		}
	}
	sort.Slice(edges, func(x, y int) bool { return edges[x].Since < edges[y].Since })
	return edges
}

// Totals summarizes the snapshot's headline aggregates (§1's bullets).
type Totals struct {
	Users       int
	Games       int
	Groups      int
	Friendships int
	Memberships int
	OwnedGames  int64
	PlaytimeYrs float64
	ValueUSD    float64
}

// Totals computes the aggregates; market value uses current storefront
// prices, the paper's §6 approximation.
func (s *Snapshot) Totals() Totals {
	t := Totals{Users: len(s.Users), Games: len(s.Games), Groups: len(s.Groups)}
	price := make(map[uint32]int64, len(s.Games))
	for i := range s.Games {
		price[s.Games[i].AppID] = s.Games[i].PriceCents
	}
	for i := range s.Users {
		u := &s.Users[i]
		t.OwnedGames += int64(len(u.Games))
		t.Memberships += len(u.Groups)
		for _, g := range u.Games {
			t.PlaytimeYrs += float64(g.TotalMinutes) / (60 * 24 * 365.25)
			t.ValueUSD += float64(price[g.AppID]) / 100
		}
	}
	t.Friendships = len(s.FriendshipEdges())
	return t
}

// Validate checks structural invariants of the snapshot and returns the
// first violation found.
func (s *Snapshot) Validate() error {
	seen := make(map[uint64]bool, len(s.Users))
	for i := range s.Users {
		u := &s.Users[i]
		if seen[u.SteamID] {
			return fmt.Errorf("dataset: duplicate user %d", u.SteamID)
		}
		seen[u.SteamID] = true
		gameSeen := map[uint32]bool{}
		for _, g := range u.Games {
			if gameSeen[g.AppID] {
				return fmt.Errorf("dataset: user %d owns app %d twice", u.SteamID, g.AppID)
			}
			gameSeen[g.AppID] = true
			if int64(g.TwoWeekMinutes) > g.TotalMinutes {
				return fmt.Errorf("dataset: user %d app %d two-week exceeds lifetime", u.SteamID, g.AppID)
			}
			if g.TotalMinutes < 0 || g.TwoWeekMinutes < 0 {
				return fmt.Errorf("dataset: user %d app %d negative playtime", u.SteamID, g.AppID)
			}
		}
	}
	apps := make(map[uint32]bool, len(s.Games))
	for i := range s.Games {
		if apps[s.Games[i].AppID] {
			return fmt.Errorf("dataset: duplicate app %d", s.Games[i].AppID)
		}
		apps[s.Games[i].AppID] = true
	}
	return nil
}
