package dataset

// Option tunes the snapshot pipeline without ever changing its results.
// One documented option set covers every variadic entry point — Save,
// Load, Fsck, FsckFile and MergeAt — so a caller composing a pipeline
// (load → merge → save → fsck) threads the same options through all of
// it. There are no save-only or load-only options: the parallel codec,
// the sharded fsck and the merge are deterministic, so every option is
// purely a throughput or observability knob and an entry point that has
// no use for a given option simply ignores it.
type Option func(*options)

type options struct {
	workers      int
	progress     ProgressFunc
	shardRecords int
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithWorkers sets the worker count for the chunked JSONL codec (encode
// and decode) and the sharded referential fsck. Values <= 0 mean one
// worker per logical CPU (the default); 1 forces the serial path. The
// output is byte-identical for any value — see internal/par for the
// determinism contract. MergeAt accepts the option for pipeline
// uniformity; the merge itself is a map-bound sequential pass.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithShardRecords sets the fixed record count per segment when writing
// the sharded directory layout (paths ending in ".d"); values <= 0 mean
// DefaultShardRecords. The count is a write-time layout choice recorded
// in the manifest — readers take segment boundaries from the directory,
// so the option is ignored by Load, Fsck and single-file writes.
func WithShardRecords(n int) Option {
	return func(o *options) { o.shardRecords = n }
}

// ProgressFunc receives periodic per-section record counts while a
// snapshot streams through an entry point. Section is "users", "games" or
// "groups"; records is the total processed so far for that section.
// Calls arrive from the processing goroutine in monotonically
// non-decreasing order per section.
type ProgressFunc func(section string, records int)

// WithProgress registers a progress callback: Load and FsckFile report
// decoded records, Save reports encoded records, and MergeAt reports
// merged records after each part folds in — so a multi-GB operation is
// observable (e.g. via obs gauges) instead of silent. The callback must
// be cheap; it is invoked once per processed window, not once per record.
func WithProgress(fn ProgressFunc) Option {
	return func(o *options) { o.progress = fn }
}
