package dataset

// Option tunes Save, Load, Fsck and FsckFile without changing their
// results: the parallel codec and the sharded fsck are deterministic, so
// every option is purely a throughput or observability knob.
type Option func(*options)

type options struct {
	workers  int
	progress ProgressFunc
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithWorkers sets the worker count for the chunked JSONL codec and the
// sharded referential fsck. Values <= 0 mean one worker per logical CPU
// (the default); 1 forces the serial path. The output is byte-identical
// for any value — see internal/par for the determinism contract.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// ProgressFunc receives periodic per-section record counts while a
// snapshot decodes. Section is "users", "games" or "groups"; records is
// the total decoded so far for that section. Calls arrive from the
// decoding goroutine in monotonically non-decreasing order per section.
type ProgressFunc func(section string, records int)

// WithProgress registers a decode progress callback on Load or FsckFile,
// so a multi-GB JSONL load is observable (e.g. via obs gauges) instead
// of silent. The callback must be cheap; it is invoked once per decoded
// window, not once per record.
func WithProgress(fn ProgressFunc) Option {
	return func(o *options) { o.progress = fn }
}
