package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// mergePartA/B overlap on user 2, game 20 and group 7, so the merge
// exercises supersession, value replacement and member-set union.
func mergePartA() *Snapshot {
	return &Snapshot{
		CollectedAt: 100,
		Users: []UserRecord{
			{SteamID: 1, Country: "DE"},
			{SteamID: 2, Country: "US", Games: []OwnershipRecord{{AppID: 10, TotalMinutes: 60}}},
			{SteamID: 3},
		},
		Games: []GameRecord{
			{AppID: 10, Name: "Alpha", Type: "game"},
			{AppID: 20, Name: "Beta", Type: "game"},
		},
		Groups: []GroupRecord{
			{GID: 7, Name: "seven", Members: []uint64{1, 2}},
			{GID: 9, Members: []uint64{3}},
		},
	}
}

func mergePartB() *Snapshot {
	return &Snapshot{
		CollectedAt: 200,
		Users: []UserRecord{
			{SteamID: 2, Country: "FR", Games: []OwnershipRecord{{AppID: 20, TotalMinutes: 90}}},
			{SteamID: 4},
		},
		Games: []GameRecord{
			{AppID: 20, Name: "Beta (updated)", Type: "game"},
			{AppID: 30, Name: "Gamma", Type: "dlc"},
		},
		Groups: []GroupRecord{
			{GID: 7, Type: "public", Members: []uint64{2, 3}},
			{GID: 8, Members: []uint64{4}},
		},
	}
}

// mergeReference runs the in-memory path and saves it as the byte-level
// ground truth for the streaming merge.
func mergeReference(t *testing.T, dir string, parts ...*Snapshot) string {
	t.Helper()
	merged, err := MergeAt(7, parts)
	if err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(dir, "ref.jsonl")
	if err := merged.Save(ref); err != nil {
		t.Fatal(err)
	}
	return ref
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The streaming k-way merge must be byte-identical to load-all + MergeAt
// + Save, manifest included.
func TestMergeFilesAtMatchesMergeAt(t *testing.T) {
	dir := t.TempDir()
	a, b := mergePartA(), mergePartB()
	pa, pb := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	if err := a.Save(pa); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(pb); err != nil {
		t.Fatal(err)
	}
	ref := mergeReference(t, dir, a, b)

	got := filepath.Join(dir, "got.jsonl")
	if err := MergeFilesAt(7, got, []string{pa, pb}); err != nil {
		t.Fatal(err)
	}
	if string(readFileT(t, got)) != string(readFileT(t, ref)) {
		t.Fatal("streaming merge bytes differ from in-memory merge")
	}
	gm, err := ReadManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := ReadManifest(ref)
	if err != nil {
		t.Fatal(err)
	}
	if gm.FileSHA256 != rm.FileSHA256 || !reflect.DeepEqual(gm.Sections, rm.Sections) {
		t.Fatal("streaming merge manifest differs from in-memory merge")
	}
}

// Sharded parts merge through the same streaming pass, and a sharded
// output's manifest SHA-256 (the hash of the concatenated segment
// stream) equals the single-file merge's — the layouts are
// interchangeable at the artifact-identity level.
func TestMergeFilesAtShardedPartsAndOutput(t *testing.T) {
	dir := t.TempDir()
	a, b := mergePartA(), mergePartB()
	pa, pb := filepath.Join(dir, "a.d"), filepath.Join(dir, "b.jsonl")
	if err := a.Save(pa, WithShardRecords(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(pb); err != nil {
		t.Fatal(err)
	}
	ref := mergeReference(t, dir, a, b)
	rm, err := ReadManifest(ref)
	if err != nil {
		t.Fatal(err)
	}

	got := filepath.Join(dir, "got.d")
	if err := MergeFilesAt(7, got, []string{pa, pb}, WithShardRecords(2)); err != nil {
		t.Fatal(err)
	}
	gm, err := ReadManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	if gm.FileSHA256 != rm.FileSHA256 {
		t.Fatalf("sharded merge stream SHA %s, single-file merge %s", gm.FileSHA256, rm.FileSHA256)
	}
	if !reflect.DeepEqual(gm.Sections, rm.Sections) {
		t.Fatal("section sums diverge across layouts")
	}

	// MergeAt over loaded sharded parts is the same snapshot again.
	la, err := Load(pa)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Load(pb)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeAt(7, []*Snapshot{la, lb})
	if err != nil {
		t.Fatal(err)
	}
	fromFiles, err := Load(got)
	if err != nil {
		t.Fatal(err)
	}
	if merged.ContentSignature() != fromFiles.ContentSignature() {
		t.Fatal("MergeAt over sharded parts diverges from streaming file merge")
	}
}

// An unsorted part cannot be deduplicated at the stream heads; the merge
// must fall back to the load-all path and still produce the reference
// bytes.
func TestMergeFilesAtUnsortedPartFallsBack(t *testing.T) {
	dir := t.TempDir()
	a := mergePartA()
	c := &Snapshot{
		CollectedAt: 200,
		Users:       []UserRecord{{SteamID: 5}, {SteamID: 4}},
		Games:       []GameRecord{{AppID: 30, Name: "Gamma"}},
	}
	pa, pc := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "c.jsonl")
	if err := a.Save(pa); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(pc); err != nil {
		t.Fatal(err)
	}
	ref := mergeReference(t, dir, a, c)

	got := filepath.Join(dir, "got.jsonl")
	if err := MergeFilesAt(7, got, []string{pa, pc}); err != nil {
		t.Fatal(err)
	}
	if string(readFileT(t, got)) != string(readFileT(t, ref)) {
		t.Fatal("fallback merge bytes differ from in-memory merge")
	}
}

// Gob parts cannot stream; the merge silently takes the load-all path.
func TestMergeFilesAtGobPartFallsBack(t *testing.T) {
	dir := t.TempDir()
	a, b := mergePartA(), mergePartB()
	pa, pb := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.gob")
	if err := a.Save(pa); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(pb); err != nil {
		t.Fatal(err)
	}
	ref := mergeReference(t, dir, a, b)

	got := filepath.Join(dir, "got.jsonl")
	if err := MergeFilesAt(7, got, []string{pa, pb}); err != nil {
		t.Fatal(err)
	}
	if string(readFileT(t, got)) != string(readFileT(t, ref)) {
		t.Fatal("gob fallback merge bytes differ from in-memory merge")
	}
}

// A merge whose winning record violates the snapshot invariants fails
// with MergeAt's exact error and leaves no output behind.
func TestMergeFilesAtInvalidResult(t *testing.T) {
	dir := t.TempDir()
	a := mergePartA()
	bad := &Snapshot{
		CollectedAt: 200,
		Users: []UserRecord{{SteamID: 6, Games: []OwnershipRecord{
			{AppID: 10, TotalMinutes: 1}, {AppID: 10, TotalMinutes: 2},
		}}},
	}
	pa, pbad := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "bad.jsonl")
	if err := a.Save(pa); err != nil {
		t.Fatal(err)
	}
	if err := bad.Save(pbad); err != nil {
		t.Fatal(err)
	}
	_, wantErr := MergeAt(7, []*Snapshot{a, bad})
	if wantErr == nil {
		t.Fatal("reference merge unexpectedly valid")
	}

	got := filepath.Join(dir, "got.jsonl")
	err := MergeFilesAt(7, got, []string{pa, pbad})
	if err == nil {
		t.Fatal("expected invalid-result error")
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("error mismatch:\nstreaming %v\nin-memory %v", err, wantErr)
	}
	if !strings.Contains(err.Error(), "merge produced an invalid snapshot") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, statErr := os.Stat(got); !os.IsNotExist(statErr) {
		t.Fatal("failed merge left output behind")
	}
}

func TestMergeFilesAtEmptyParts(t *testing.T) {
	if err := MergeFilesAt(7, filepath.Join(t.TempDir(), "out.jsonl"), nil); err == nil {
		t.Fatal("expected error for empty part list")
	}
}
