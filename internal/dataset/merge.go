package dataset

import (
	"fmt"
	"sort"
)

// Merge combines partial snapshots into one, deduplicating by SteamID,
// AppID and GID. The paper's phase-2 crawl ran for six months across many
// sessions; merging lets partial crawls (different ID ranges, resumed
// runs, parallel crawlers) be combined into the final dataset. When the
// same user appears in several parts, the record from the latest part
// wins (a re-crawl supersedes an older observation). The merged
// CollectedAt is the latest of the parts'.
func Merge(parts ...*Snapshot) (*Snapshot, error) {
	return mergeParts(parts, nil)
}

func mergeParts(parts []*Snapshot, progress ProgressFunc) (*Snapshot, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: nothing to merge")
	}
	out := &Snapshot{}
	userAt := map[uint64]int{}
	gameAt := map[uint32]int{}
	groupAt := map[uint64]int{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.CollectedAt > out.CollectedAt {
			out.CollectedAt = p.CollectedAt
		}
		for i := range p.Users {
			u := p.Users[i]
			if at, ok := userAt[u.SteamID]; ok {
				out.Users[at] = u // later part supersedes
				continue
			}
			userAt[u.SteamID] = len(out.Users)
			out.Users = append(out.Users, u)
		}
		for i := range p.Games {
			g := p.Games[i]
			if at, ok := gameAt[g.AppID]; ok {
				out.Games[at] = g
				continue
			}
			gameAt[g.AppID] = len(out.Games)
			out.Games = append(out.Games, g)
		}
		for i := range p.Groups {
			g := p.Groups[i]
			if at, ok := groupAt[g.GID]; ok {
				// Union the member sets: different crawl parts see the
				// members they crawled.
				out.Groups[at].Members = unionUint64(out.Groups[at].Members, g.Members)
				if out.Groups[at].Type == "" {
					out.Groups[at].Type = g.Type
				}
				if out.Groups[at].Name == "" {
					out.Groups[at].Name = g.Name
				}
				continue
			}
			groupAt[g.GID] = len(out.Groups)
			out.Groups = append(out.Groups, g)
		}
		if progress != nil {
			progress("users", len(out.Users))
			progress("games", len(out.Games))
			progress("groups", len(out.Groups))
		}
	}
	sort.Slice(out.Users, func(a, b int) bool { return out.Users[a].SteamID < out.Users[b].SteamID })
	sort.Slice(out.Games, func(a, b int) bool { return out.Games[a].AppID < out.Games[b].AppID })
	sort.Slice(out.Groups, func(a, b int) bool { return out.Groups[a].GID < out.Groups[b].GID })
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: merge produced an invalid snapshot: %w", err)
	}
	return out, nil
}

// MergeAt merges like Merge but stamps the result with an explicit
// CollectedAt instead of the latest of the parts'. Deterministic pipelines
// (the fleet merge, repeatable tests) need the timestamp pinned so the
// merged file's bytes — and therefore its manifest SHA-256 — depend only
// on the crawled records.
//
// MergeAt shares the snapshot pipeline's single option set (see Option):
// WithProgress reports per-section merged record counts after each part
// folds in; WithWorkers is accepted for uniformity. The merged snapshot
// is identical for any combination of options.
func MergeAt(collectedAt int64, parts []*Snapshot, opts ...Option) (*Snapshot, error) {
	o := buildOptions(opts)
	out, err := mergeParts(parts, o.progress)
	if err != nil {
		return nil, err
	}
	out.CollectedAt = collectedAt
	return out, nil
}

func unionUint64(a, b []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(a)+len(b))
	out := make([]uint64, 0, len(a)+len(b))
	for _, v := range a {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, v := range b {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
