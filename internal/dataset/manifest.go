// Snapshot manifests. The paper's §3.1 promises the "full dataset
// available for download"; at 108.7M accounts the snapshot file *is* the
// artifact, so every Save emits a sidecar manifest recording what the
// file must contain — a format version, per-section record counts and
// CRC-32C checksums over a canonical encoding of each section, and a
// whole-file SHA-256 of the on-disk bytes. Load verifies the manifest
// when present and localizes damage ("games section checksum mismatch")
// instead of surfacing a cryptic decode failure; fsck uses the same
// checks in accumulate-everything mode.

package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// SnapshotFormatVersion is stamped into every manifest this code writes.
// Load refuses manifests from a newer version rather than guessing.
const SnapshotFormatVersion = 1

// Section names used in manifests and fsck reports.
const (
	sectionUsers  = "users"
	sectionGames  = "games"
	sectionGroups = "groups"
)

// SectionSum records one section's expected shape.
type SectionSum struct {
	// Records is the number of records in the section.
	Records int `json:"records"`
	// CRC32C is a Castagnoli CRC over the section's canonical binary
	// encoding (see canon below), independent of the container format —
	// the same snapshot saved as .gob and .jsonl carries the same
	// section checksums.
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the sidecar integrity record written next to every saved
// snapshot as <path>.manifest.json.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Encoding      string `json:"encoding"` // "gob" or "jsonl"
	Compressed    bool   `json:"compressed"`
	CollectedAt   int64  `json:"collected_at"`
	// FileBytes and FileSHA256 cover the exact on-disk byte stream
	// (post-compression), catching truncation and bit rot before any
	// decode is attempted.
	FileBytes  int64                 `json:"file_bytes"`
	FileSHA256 string                `json:"file_sha256"`
	Sections   map[string]SectionSum `json:"sections"`
	// ShardRecords and Shards describe the sharded directory layout
	// (format version 2, shard.go). Both are omitted from single-file
	// manifests, keeping version-1 manifest bytes identical to what
	// pre-shard builds wrote.
	ShardRecords int        `json:"shard_records,omitempty"`
	Shards       []ShardSum `json:"shards,omitempty"`
}

// ManifestPath returns the sidecar path for a snapshot path.
func ManifestPath(path string) string { return path + ".manifest.json" }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// canon feeds a fixed, hand-rolled binary encoding of the record types
// into a CRC hash: varints for integers and lengths, IEEE-754 bits for
// floats, length-prefixed strings, fields in declaration order. The
// encoding is defined here and nowhere else, so the checksum of a section
// depends only on its values — NOT on the container format and not on
// incidental process state. (An earlier draft hashed gob output; gob
// assigns type IDs from a process-global counter, so the same records
// hashed differently depending on what else the process had encoded.)
type canon struct {
	h   hash.Hash32
	buf [binary.MaxVarintLen64]byte
}

func (c *canon) u64(v uint64)  { c.h.Write(c.buf[:binary.PutUvarint(c.buf[:], v)]) }
func (c *canon) i64(v int64)   { c.h.Write(c.buf[:binary.PutVarint(c.buf[:], v)]) }
func (c *canon) f64(v float64) { c.u64(math.Float64bits(v)) }
func (c *canon) str(s string)  { c.u64(uint64(len(s))); io.WriteString(c.h, s) }
func (c *canon) boolean(b bool) {
	if b {
		c.u64(1)
	} else {
		c.u64(0)
	}
}

func (c *canon) user(u *UserRecord) {
	c.u64(u.SteamID)
	c.i64(u.Created)
	c.str(u.Country)
	c.str(u.City)
	c.u64(uint64(len(u.Friends)))
	for _, f := range u.Friends {
		c.u64(f.SteamID)
		c.i64(f.Since)
	}
	c.u64(uint64(len(u.Games)))
	for _, g := range u.Games {
		c.u64(uint64(g.AppID))
		c.i64(g.TotalMinutes)
		c.i64(int64(g.TwoWeekMinutes))
	}
	c.u64(uint64(len(u.Groups)))
	for _, gid := range u.Groups {
		c.u64(gid)
	}
}

func (c *canon) game(g *GameRecord) {
	c.u64(uint64(g.AppID))
	c.str(g.Name)
	c.str(g.Type)
	c.u64(uint64(len(g.Genres)))
	for _, s := range g.Genres {
		c.str(s)
	}
	c.boolean(g.Multiplayer)
	c.i64(g.PriceCents)
	c.i64(int64(g.Metacritic))
	c.i64(int64(g.ReleaseYear))
	c.str(g.Developer)
	c.u64(uint64(len(g.Achievements)))
	for _, a := range g.Achievements {
		c.str(a.Name)
		c.f64(a.Percent)
	}
}

func (c *canon) group(g *GroupRecord) {
	c.u64(g.GID)
	c.str(g.Name)
	c.str(g.Type)
	c.u64(uint64(len(g.Members)))
	for _, m := range g.Members {
		c.u64(m)
	}
}

// sectionCRCUsers and friends compute the canonical checksum of each
// section, reproducible from decoded data regardless of which container
// format carried it.
func sectionCRCUsers(recs []UserRecord) uint32 {
	c := canon{h: crc32.New(castagnoli)}
	for i := range recs {
		c.user(&recs[i])
	}
	return c.h.Sum32()
}

func sectionCRCGames(recs []GameRecord) uint32 {
	c := canon{h: crc32.New(castagnoli)}
	for i := range recs {
		c.game(&recs[i])
	}
	return c.h.Sum32()
}

func sectionCRCGroups(recs []GroupRecord) uint32 {
	c := canon{h: crc32.New(castagnoli)}
	for i := range recs {
		c.group(&recs[i])
	}
	return c.h.Sum32()
}

// buildManifest assembles the manifest for a snapshot whose on-disk form
// is fileBytes bytes hashing to fileSHA256.
func (s *Snapshot) buildManifest(encoding string, compressed bool, fileBytes int64, fileSHA256 string) *Manifest {
	return &Manifest{
		FormatVersion: SnapshotFormatVersion,
		Encoding:      encoding,
		Compressed:    compressed,
		CollectedAt:   s.CollectedAt,
		FileBytes:     fileBytes,
		FileSHA256:    fileSHA256,
		Sections: map[string]SectionSum{
			sectionUsers:  {Records: len(s.Users), CRC32C: sectionCRCUsers(s.Users)},
			sectionGames:  {Records: len(s.Games), CRC32C: sectionCRCGames(s.Games)},
			sectionGroups: {Records: len(s.Groups), CRC32C: sectionCRCGroups(s.Groups)},
		},
	}
}

// ContentSignature returns a stable hex digest of the snapshot's decoded
// content: a SHA-256 over the per-section canonical CRC-32C checksums,
// record counts and CollectedAt. Two snapshots with identical records
// share a signature regardless of container format, compression, or
// whether a manifest sidecar exists — so it serves as an ETag-grade
// identity for in-memory snapshots whose file hash is unavailable (a
// merged result not yet saved, a snapshot loaded from a pre-manifest
// file). It is NOT the manifest's FileSHA256, which covers on-disk bytes.
func (s *Snapshot) ContentSignature() string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) { h.Write(buf[:binary.PutUvarint(buf[:], v)]) }
	put(uint64(SnapshotFormatVersion))
	put(uint64(int64(s.CollectedAt)))
	put(uint64(len(s.Users)))
	put(uint64(sectionCRCUsers(s.Users)))
	put(uint64(len(s.Games)))
	put(uint64(sectionCRCGames(s.Games)))
	put(uint64(len(s.Groups)))
	put(uint64(sectionCRCGroups(s.Groups)))
	return hex.EncodeToString(h.Sum(nil))
}

// ReadManifest reads the sidecar manifest for a snapshot path. A missing
// sidecar returns (nil, nil) — pre-manifest snapshots load unverified —
// while an unreadable or unparsable one is an error, because a manifest
// that exists but cannot be trusted must not silently disable checking.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(ManifestPath(path))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: reading manifest for %s: %w", path, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("dataset: manifest for %s is not valid JSON: %w", path, err)
	}
	return &m, nil
}

// writeManifestTemp writes the manifest to a synced temp file in dir and
// returns its path; the caller renames it into place after the data file
// rename so a crash never pairs a new manifest with old data.
func writeManifestTemp(dir string, m *Manifest) (string, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("dataset: encoding manifest: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-manifest-")
	if err != nil {
		return "", fmt.Errorf("dataset: creating manifest temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(append(b, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("dataset: writing manifest temp: %w", err)
	}
	return tmp, nil
}

// verifyFile checks the raw on-disk bytes against the manifest's size and
// whole-file hash, before any decoding.
func (m *Manifest) verifyFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("dataset: hashing %s: %w", path, err)
	}
	if n != m.FileBytes {
		return fmt.Errorf("dataset: %s is %d bytes, manifest records %d (truncated or partially overwritten)", path, n, m.FileBytes)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != m.FileSHA256 {
		return fmt.Errorf("dataset: %s file hash mismatch (got %s, manifest %s): on-disk corruption", path, got, m.FileSHA256)
	}
	return nil
}

// verifySections re-derives each section's count and checksum from the
// decoded snapshot and reports every mismatch, localized to the damaged
// section. The fail-fast Load path surfaces the first one; fsck keeps all.
func (m *Manifest) verifySections(s *Snapshot) []Violation {
	var out []Violation
	check := func(name string, records int, crc uint32) {
		want, ok := m.Sections[name]
		if !ok {
			out = append(out, Violation{Class: ViolationSectionCount,
				Detail: fmt.Sprintf("%s section missing from manifest", name)})
			return
		}
		if want.Records != records {
			out = append(out, Violation{Class: ViolationSectionCount,
				Detail: fmt.Sprintf("%s section has %d records, manifest records %d", name, records, want.Records)})
		}
		if want.CRC32C != crc {
			out = append(out, Violation{Class: ViolationSectionChecksum,
				Detail: fmt.Sprintf("%s section checksum mismatch (file %08x, manifest %08x)", name, crc, want.CRC32C)})
		}
	}
	check(sectionUsers, len(s.Users), sectionCRCUsers(s.Users))
	check(sectionGames, len(s.Games), sectionCRCGames(s.Games))
	check(sectionGroups, len(s.Groups), sectionCRCGroups(s.Groups))
	if s.CollectedAt != m.CollectedAt {
		out = append(out, Violation{Class: ViolationHeader,
			Detail: fmt.Sprintf("header CollectedAt %d, manifest records %d", s.CollectedAt, m.CollectedAt)})
	}
	return out
}

// removeStaleManifest retires the previous manifest before the data-file
// rename, so no crash window pairs fresh data with a stale manifest.
func removeStaleManifest(path string) error {
	err := os.Remove(ManifestPath(path))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("dataset: removing stale manifest for %s: %w", path, err)
	}
	return nil
}
