package dataset

import (
	"bufio"
	"bytes"
	"io"
	"sync"
	"testing"

	"steamstudy/internal/simworld"
)

// The datapath benchmarks measure the parallel data plane end to end at
// paper-adjacent scale: a 500k-user universe generated, encoded, decoded
// and fsck'd at workers=1 (the serial baseline) and workers=max (one
// worker per GOMAXPROCS). `make bench` records them in
// BENCH_datapath.json; on a single-CPU host the two variants necessarily
// coincide — the honest gomaxprocs field in that file says which case
// was measured.
const benchUsers = 500_000

var (
	datapathOnce sync.Once
	datapathSnap *Snapshot
	datapathRaw  []byte
)

func datapathSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	datapathOnce.Do(func() {
		cfg := simworld.DefaultConfig(benchUsers)
		u := simworld.MustGenerate(cfg, 1)
		datapathSnap = FromUniverse(u)
	})
	return datapathSnap
}

func datapathJSONL(b *testing.B) []byte {
	b.Helper()
	s := datapathSnapshot(b)
	if datapathRaw == nil {
		var buf bytes.Buffer
		if err := s.writeJSONL(&buf, 0, nil); err != nil {
			b.Fatal(err)
		}
		datapathRaw = buf.Bytes()
	}
	return datapathRaw
}

func workerVariants(b *testing.B, run func(b *testing.B, workers int)) {
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=max", func(b *testing.B) { run(b, 0) })
}

func BenchmarkDatapathGenerate500k(b *testing.B) {
	workerVariants(b, func(b *testing.B, workers int) {
		cfg := simworld.DefaultConfig(benchUsers)
		cfg.Workers = workers
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			simworld.MustGenerate(cfg, 1)
		}
	})
}

func BenchmarkDatapathEncode500k(b *testing.B) {
	s := datapathSnapshot(b)
	raw := datapathJSONL(b)
	workerVariants(b, func(b *testing.B, workers int) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if err := s.writeJSONL(io.Discard, workers, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDatapathDecode500k(b *testing.B) {
	raw := datapathJSONL(b)
	workerVariants(b, func(b *testing.B, workers int) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			var s Snapshot
			br := bufio.NewReaderSize(bytes.NewReader(raw), 1<<20)
			if err := s.readJSONL(br, workers, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDatapathFsck500k(b *testing.B) {
	s := datapathSnapshot(b)
	workerVariants(b, func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := newReport()
			s.fsckInto(r, workers)
			if !r.Clean() {
				b.Fatal("bench universe is dirty")
			}
		}
	})
}
