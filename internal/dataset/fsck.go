// Snapshot fsck. A six-month crawl's snapshot is only as good as the last
// integrity check anyone ran on it; fsck is that check. It validates two
// layers: structural integrity of the on-disk artifact (format version,
// manifest checksums, decodability) and referential integrity of the
// paper's schema (friend edges reference known accounts and are
// symmetric, owned app IDs exist in the catalog, group memberships are
// reciprocal with crawled groups), producing a typed report with counts
// per violation class instead of stopping at the first problem.

package dataset

import (
	"fmt"
	"sort"
	"strings"

	"steamstudy/internal/obs"
	"steamstudy/internal/par"
)

// ViolationClass names one kind of integrity failure.
type ViolationClass string

// Structural (artifact-level) violation classes.
const (
	// ViolationManifest: the sidecar exists but cannot be read or parsed.
	ViolationManifest ViolationClass = "manifest-invalid"
	// ViolationFormatVersion: the manifest's format version is newer than
	// this build understands.
	ViolationFormatVersion ViolationClass = "format-version"
	// ViolationFileHash: the raw file bytes fail the manifest's size or
	// SHA-256 — truncation, partial overwrite, or bit rot.
	ViolationFileHash ViolationClass = "file-hash-mismatch"
	// ViolationDecode: the container failed to decode.
	ViolationDecode ViolationClass = "decode-error"
	// ViolationSectionChecksum: a section's re-derived CRC-32C disagrees
	// with the manifest; the detail names the damaged section.
	ViolationSectionChecksum ViolationClass = "section-checksum"
	// ViolationSectionCount: a section's record count disagrees with the
	// manifest.
	ViolationSectionCount ViolationClass = "section-count"
	// ViolationHeader: the snapshot header (CollectedAt) disagrees with
	// the manifest.
	ViolationHeader ViolationClass = "header-mismatch"
)

// Referential (schema-level) violation classes, from the paper's schema.
const (
	ViolationDuplicateUser        ViolationClass = "duplicate-user"
	ViolationDuplicateGame        ViolationClass = "duplicate-game"
	ViolationDuplicateGroup       ViolationClass = "duplicate-group"
	ViolationDuplicateOwnership   ViolationClass = "duplicate-ownership"
	ViolationPlaytimeInvariant    ViolationClass = "playtime-invariant"
	ViolationFriendUnknown        ViolationClass = "friend-unknown"
	ViolationFriendAsymmetric     ViolationClass = "friend-asymmetric"
	ViolationSelfFriend           ViolationClass = "self-friend"
	ViolationOwnedAppUnknown      ViolationClass = "owned-app-unknown"
	ViolationMembershipUnknown    ViolationClass = "membership-group-unknown"
	ViolationMemberUnknown        ViolationClass = "member-unknown"
	ViolationMembershipAsymmetric ViolationClass = "membership-asymmetric"
)

// Violation is one concrete integrity failure.
type Violation struct {
	Class  ViolationClass
	Detail string
}

// maxSamplesPerClass bounds the retained detail strings so an fsck of a
// thoroughly damaged snapshot reports counts, not gigabytes of examples.
const maxSamplesPerClass = 3

// Report is the typed result of an fsck pass.
type Report struct {
	// Path is the checked file ("" for an in-memory check).
	Path string
	// Users, Games, Groups are the decoded section sizes.
	Users, Games, Groups int
	// ManifestVerified reports whether a sidecar manifest was present and
	// its file/section checks all ran (regardless of their outcome).
	ManifestVerified bool
	// RecordsVerified counts records that passed through verification.
	RecordsVerified int64
	// Counts tallies violations per class; Samples keeps the first few
	// detail strings of each class.
	Counts  map[ViolationClass]int
	Samples map[ViolationClass][]string
}

func newReport() *Report {
	return &Report{
		Counts:  make(map[ViolationClass]int),
		Samples: make(map[ViolationClass][]string),
	}
}

func (r *Report) add(class ViolationClass, format string, args ...any) {
	r.Counts[class]++
	if len(r.Samples[class]) < maxSamplesPerClass {
		r.Samples[class] = append(r.Samples[class], fmt.Sprintf(format, args...))
	}
}

func (r *Report) addViolation(v Violation) { r.add(v.Class, "%s", v.Detail) }

// merge folds a shard's sub-report into r. Shards are merged in index
// order, so counts and the per-class sample prefixes come out exactly as
// a serial pass would have produced them.
func (r *Report) merge(sub *Report) {
	r.RecordsVerified += sub.RecordsVerified
	for class, n := range sub.Counts {
		r.Counts[class] += n
		for _, s := range sub.Samples[class] {
			if len(r.Samples[class]) >= maxSamplesPerClass {
				break
			}
			r.Samples[class] = append(r.Samples[class], s)
		}
	}
}

// Violations is the total count across every class.
func (r *Report) Violations() int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// Clean reports whether the snapshot passed every check.
func (r *Report) Clean() bool { return r.Violations() == 0 }

// String renders the report for the CLI: a header line, then one line per
// violation class with its count and sample details.
func (r *Report) String() string {
	var b strings.Builder
	name := r.Path
	if name == "" {
		name = "snapshot"
	}
	fmt.Fprintf(&b, "fsck %s: %d users, %d games, %d groups", name, r.Users, r.Games, r.Groups)
	if r.ManifestVerified {
		b.WriteString(", manifest verified")
	} else {
		b.WriteString(", no manifest")
	}
	if r.Clean() {
		fmt.Fprintf(&b, ": clean (%d records verified)\n", r.RecordsVerified)
		return b.String()
	}
	fmt.Fprintf(&b, ": %d violations\n", r.Violations())
	classes := make([]string, 0, len(r.Counts))
	for c := range r.Counts {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		class := ViolationClass(c)
		fmt.Fprintf(&b, "  %-26s %6d", c, r.Counts[class])
		if s := r.Samples[class]; len(s) > 0 {
			fmt.Fprintf(&b, "  e.g. %s", s[0])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// IntegrityMetrics counts fsck and repair activity. The fields are obs
// counters; Register them to surface integrity results on /metrics.
type IntegrityMetrics struct {
	RecordsVerified  obs.Counter
	ChecksumFailures obs.Counter
	Violations       obs.Counter
	Repairs          obs.Counter
}

// Register adopts the counters into a registry under dataset_ names.
// Safe on a nil registry.
func (m *IntegrityMetrics) Register(r *obs.Registry) {
	r.RegisterCounters("dataset_", m)
}

// Fsck checks the in-memory snapshot's structural and referential
// integrity against the paper's schema and returns the full report. It
// never stops early: a damaged snapshot yields counts per violation
// class, which is what decides between re-crawling and journal repair.
//
// Options: WithWorkers shards the per-user and per-group referential
// checks; shard reports are merged in index order, so counts and sample
// details are identical to a serial pass.
func (s *Snapshot) Fsck(opts ...Option) *Report {
	o := buildOptions(opts)
	r := newReport()
	s.fsckInto(r, o.workers)
	return r
}

// fsckShard is the fixed number of records per fsck shard — part of the
// work partition, not derived from the worker count, so shard boundaries
// are stable and the merged report is identical for any Workers value.
const fsckShard = 2048

// fsckPair is a directed friend edge, for the symmetry check.
type fsckPair struct{ a, b uint64 }

// fsckIndex is the read-only state shared by every verification shard.
type fsckIndex struct {
	apps     map[uint32]bool
	userAt   map[uint64]int
	friends  map[fsckPair]bool
	memberOf map[uint64]map[uint64]bool
}

func (s *Snapshot) fsckInto(r *Report, workers int) {
	r.Users, r.Games, r.Groups = len(s.Users), len(s.Games), len(s.Groups)

	// Index build: sequential map construction, recording duplicate IDs
	// as we go. The expensive part — per-record verification — is what
	// gets sharded below.
	ix := &fsckIndex{
		apps:     make(map[uint32]bool, len(s.Games)),
		userAt:   make(map[uint64]int, len(s.Users)),
		friends:  make(map[fsckPair]bool),
		memberOf: make(map[uint64]map[uint64]bool, len(s.Groups)),
	}
	for i := range s.Games {
		id := s.Games[i].AppID
		if ix.apps[id] {
			r.add(ViolationDuplicateGame, "app %d appears more than once in the catalog", id)
			continue
		}
		ix.apps[id] = true
	}
	for i := range s.Users {
		id := s.Users[i].SteamID
		if _, dup := ix.userAt[id]; dup {
			r.add(ViolationDuplicateUser, "user %d appears more than once", id)
			continue
		}
		ix.userAt[id] = i
	}
	groupAt := make(map[uint64]int, len(s.Groups))
	for i := range s.Groups {
		id := s.Groups[i].GID
		if _, dup := groupAt[id]; dup {
			r.add(ViolationDuplicateGroup, "group %d appears more than once", id)
			continue
		}
		groupAt[id] = i
	}
	for i := range s.Users {
		u := &s.Users[i]
		for _, f := range u.Friends {
			ix.friends[fsckPair{u.SteamID, f.SteamID}] = true
		}
	}
	for i := range s.Groups {
		g := &s.Groups[i]
		set := make(map[uint64]bool, len(g.Members))
		for _, m := range g.Members {
			set[m] = true
		}
		ix.memberOf[g.GID] = set
	}

	// Referential verification, sharded over fixed index ranges. Each
	// shard reads the shared indices (never writes) and accumulates into
	// its own report; the merge in shard order reproduces the serial
	// violation order per class.
	runShards(workers, len(s.Users), r, func(lo, hi int, sub *Report) {
		for i := lo; i < hi; i++ {
			s.fsckUser(ix, i, sub)
		}
	})
	r.RecordsVerified += int64(len(s.Games))
	runShards(workers, len(s.Groups), r, func(lo, hi int, sub *Report) {
		for i := lo; i < hi; i++ {
			s.fsckGroup(ix, i, sub)
		}
	})
}

// runShards partitions [0, n) into fsckShard-wide ranges, verifies them
// on the pool, and merges the shard reports into r in index order.
func runShards(workers, n int, r *Report, verify func(lo, hi int, sub *Report)) {
	ns := (n + fsckShard - 1) / fsckShard
	if ns <= 1 {
		verify(0, n, r)
		return
	}
	if par.N(workers) <= 1 {
		// Sequential fast path: one effective worker gains nothing from
		// the fan-out plumbing (BENCH_datapath showed workers=max slower
		// than workers=1 on a single-CPU host), so verify shard by shard
		// straight into one sub-report. Shard boundaries and merge order
		// match the parallel path, so the report — samples included — is
		// identical.
		sub := newReport()
		for si := 0; si < ns; si++ {
			verify(si*fsckShard, min((si+1)*fsckShard, n), sub)
		}
		r.merge(sub)
		return
	}
	subs := make([]*Report, ns)
	par.For(workers, ns, func(si int) {
		sub := newReport()
		verify(si*fsckShard, min((si+1)*fsckShard, n), sub)
		subs[si] = sub
	})
	for _, sub := range subs {
		r.merge(sub)
	}
}

// fsckUser runs the per-user referential checks against the shared
// index, accumulating into the shard report.
func (s *Snapshot) fsckUser(ix *fsckIndex, i int, r *Report) {
	u := &s.Users[i]
	r.RecordsVerified++

	// Friend edges: every reference resolves to a crawled account and
	// is reciprocated (the paper's friendship graph is undirected).
	for _, f := range u.Friends {
		if f.SteamID == u.SteamID {
			r.add(ViolationSelfFriend, "user %d lists itself as a friend", u.SteamID)
			continue
		}
		if _, ok := ix.userAt[f.SteamID]; !ok {
			r.add(ViolationFriendUnknown, "user %d lists unknown account %d as a friend", u.SteamID, f.SteamID)
			continue
		}
		if !ix.friends[fsckPair{f.SteamID, u.SteamID}] {
			r.add(ViolationFriendAsymmetric, "user %d lists %d but %d does not list %d", u.SteamID, f.SteamID, f.SteamID, u.SteamID)
		}
	}

	// Ownership: app IDs exist in the catalog, playtimes respect the
	// two-week <= lifetime >= 0 invariants, no app owned twice.
	owned := make(map[uint32]bool, len(u.Games))
	for _, g := range u.Games {
		if owned[g.AppID] {
			r.add(ViolationDuplicateOwnership, "user %d owns app %d twice", u.SteamID, g.AppID)
		}
		owned[g.AppID] = true
		if !ix.apps[g.AppID] {
			r.add(ViolationOwnedAppUnknown, "user %d owns app %d which is not in the catalog", u.SteamID, g.AppID)
		}
		if g.TotalMinutes < 0 || g.TwoWeekMinutes < 0 {
			r.add(ViolationPlaytimeInvariant, "user %d app %d has negative playtime", u.SteamID, g.AppID)
		} else if int64(g.TwoWeekMinutes) > g.TotalMinutes {
			r.add(ViolationPlaytimeInvariant, "user %d app %d two-week playtime exceeds lifetime", u.SteamID, g.AppID)
		}
	}

	// Memberships: every group a user lists was crawled, and that
	// group lists the user back.
	for _, gid := range u.Groups {
		set, ok := ix.memberOf[gid]
		if !ok {
			r.add(ViolationMembershipUnknown, "user %d belongs to uncrawled group %d", u.SteamID, gid)
			continue
		}
		if !set[u.SteamID] {
			r.add(ViolationMembershipAsymmetric, "user %d lists group %d but the group does not list the user", u.SteamID, gid)
		}
	}
}

// fsckGroup checks one group's member list: every member is a crawled
// account that lists the group back.
func (s *Snapshot) fsckGroup(ix *fsckIndex, i int, r *Report) {
	g := &s.Groups[i]
	r.RecordsVerified++
	for _, m := range g.Members {
		ui, ok := ix.userAt[m]
		if !ok {
			r.add(ViolationMemberUnknown, "group %d lists unknown account %d as a member", g.GID, m)
			continue
		}
		found := false
		for _, gid := range s.Users[ui].Groups {
			if gid == g.GID {
				found = true
				break
			}
		}
		if !found {
			r.add(ViolationMembershipAsymmetric, "group %d lists user %d but the user does not list the group", g.GID, m)
		}
	}
}

// FsckFile runs the full integrity check on a snapshot file: manifest
// presence and checksums (localizing damage to the section that rotted),
// container decodability, then the referential checks of Fsck. Unlike
// Load it accumulates every violation instead of failing fast. The error
// is non-nil only for environmental problems (unknown extension, missing
// file); corruption is reported in the Report. Metrics, when non-nil,
// receive the verified-record and failure counts.
//
// Options: WithWorkers parallelizes the JSONL decode and shards the
// referential checks; WithProgress reports decode progress per section.
func FsckFile(path string, m *IntegrityMetrics, opts ...Option) (*Report, error) {
	o := buildOptions(opts)
	encoding, gzipped, sharded, err := snapshotPath(path)
	if err != nil {
		return nil, err
	}
	r := newReport()
	r.Path = path
	if sharded {
		// Sharded directories take the streaming passes in fsckstream.go,
		// which never decode more than a bounded window of records.
		if err := fsckShardDir(path, r, o); err != nil {
			return nil, err
		}
		fsckRecordMetrics(r, m)
		return r, nil
	}

	man, merr := ReadManifest(path)
	switch {
	case merr != nil:
		r.add(ViolationManifest, "%v", merr)
	case man == nil:
		// Pre-manifest snapshot: structural checks are limited to
		// decodability; referential checks still run in full.
	case man.FormatVersion > SnapshotFormatVersion:
		r.add(ViolationFormatVersion, "manifest format version %d is newer than this build supports (%d)",
			man.FormatVersion, SnapshotFormatVersion)
		man = nil
	default:
		r.ManifestVerified = true
		if err := man.verifyFile(path); err != nil {
			r.add(ViolationFileHash, "%v", err)
		}
	}

	s, derr := decodeSnapshotFile(path, encoding, gzipped, o)
	if derr != nil {
		r.add(ViolationDecode, "%v", derr)
	}
	if s != nil && derr == nil {
		if man != nil && r.ManifestVerified {
			for _, v := range man.verifySections(s) {
				r.addViolation(v)
			}
		}
		s.fsckInto(r, o.workers)
	} else if s != nil {
		// Partially decoded (JSONL tail damage): still report its shape.
		r.Users, r.Games, r.Groups = len(s.Users), len(s.Games), len(s.Groups)
	}

	fsckRecordMetrics(r, m)
	return r, nil
}

func fsckRecordMetrics(r *Report, m *IntegrityMetrics) {
	if m == nil {
		return
	}
	m.RecordsVerified.Add(r.RecordsVerified)
	m.ChecksumFailures.Add(int64(r.Counts[ViolationFileHash] + r.Counts[ViolationSectionChecksum]))
	m.Violations.Add(int64(r.Violations()))
}
