package dataset

import (
	"path/filepath"
	"reflect"
	"testing"

	"steamstudy/internal/simworld"
)

// The streaming generate→encode path must be byte-identical to the
// materializing path, in both layouts, manifests included.
func TestWriteUniverseMatchesFromUniverseSave(t *testing.T) {
	cfg := simworld.DefaultConfig(1500)
	cfg.CatalogSize = 200
	uni := simworld.MustGenerate(cfg, 3)

	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.jsonl")
	if err := FromUniverse(uni).Save(ref); err != nil {
		t.Fatal(err)
	}

	got := filepath.Join(dir, "got.jsonl")
	if err := WriteUniverse(got, uni); err != nil {
		t.Fatal(err)
	}
	if string(readFileT(t, got)) != string(readFileT(t, ref)) {
		t.Fatal("streamed universe bytes differ from FromUniverse+Save")
	}
	gm, err := ReadManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := ReadManifest(ref)
	if err != nil {
		t.Fatal(err)
	}
	if gm.FileSHA256 != rm.FileSHA256 || !reflect.DeepEqual(gm.Sections, rm.Sections) {
		t.Fatal("streamed universe manifest differs from FromUniverse+Save")
	}

	// Sharded layout: the concatenated segment stream carries the same
	// identity, and the snapshot loads back equal to the reference.
	shard := filepath.Join(dir, "got.d")
	if err := WriteUniverse(shard, uni, WithShardRecords(128)); err != nil {
		t.Fatal(err)
	}
	sm, err := ReadManifest(shard)
	if err != nil {
		t.Fatal(err)
	}
	if sm.FileSHA256 != rm.FileSHA256 {
		t.Fatalf("sharded stream SHA %s, single-file %s", sm.FileSHA256, rm.FileSHA256)
	}
	loaded, err := Load(shard)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ContentSignature() != FromUniverse(uni).ContentSignature() {
		t.Fatal("sharded streamed universe loads back different content")
	}
}

// FriendCSR must reproduce Adjacency's per-user neighbor order — the
// byte identity above depends on it, and this pins the contract
// directly.
func TestFriendCSRMatchesAdjacency(t *testing.T) {
	cfg := simworld.DefaultConfig(800)
	cfg.CatalogSize = 120
	uni := simworld.MustGenerate(cfg, 5)

	adj := uni.Adjacency()
	offsets, edges := uni.FriendCSR()
	for i := range adj {
		got := edges[offsets[i]:offsets[i+1]]
		if len(got) != len(adj[i]) {
			t.Fatalf("user %d degree: CSR %d, Adjacency %d", i, len(got), len(adj[i]))
		}
		for k, e := range got {
			f := uni.Friendships[e]
			peer := f.A
			if peer == int32(i) {
				peer = f.B
			}
			if peer != adj[i][k] {
				t.Fatalf("user %d neighbor %d: CSR %d, Adjacency %d", i, k, peer, adj[i][k])
			}
		}
	}
}
