package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// saveBoth writes the same snapshot as a single file and a shard
// directory (small shards so every section spans several segments) and
// returns both paths.
func saveBoth(t *testing.T, s *Snapshot) (single, sharded string) {
	t.Helper()
	dir := t.TempDir()
	single = filepath.Join(dir, "snap.jsonl")
	sharded = filepath.Join(dir, "snap.d")
	if err := s.Save(single); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(sharded, WithShardRecords(64)); err != nil {
		t.Fatal(err)
	}
	return single, sharded
}

// compareReports asserts the streaming sharded fsck produced the same
// report as the in-memory single-file fsck: shape, verification counts,
// and every violation class with its sample prefix.
func compareReports(t *testing.T, single, sharded *Report) {
	t.Helper()
	if single.Users != sharded.Users || single.Games != sharded.Games || single.Groups != sharded.Groups {
		t.Fatalf("shape: single %d/%d/%d, sharded %d/%d/%d",
			single.Users, single.Games, single.Groups, sharded.Users, sharded.Games, sharded.Groups)
	}
	if single.ManifestVerified != sharded.ManifestVerified {
		t.Fatalf("ManifestVerified: single %v, sharded %v", single.ManifestVerified, sharded.ManifestVerified)
	}
	if single.RecordsVerified != sharded.RecordsVerified {
		t.Fatalf("RecordsVerified: single %d, sharded %d", single.RecordsVerified, sharded.RecordsVerified)
	}
	if !reflect.DeepEqual(single.Counts, sharded.Counts) {
		t.Fatalf("Counts diverge:\nsingle  %v\nsharded %v", single.Counts, sharded.Counts)
	}
	if !reflect.DeepEqual(single.Samples, sharded.Samples) {
		t.Fatalf("Samples diverge:\nsingle  %v\nsharded %v", single.Samples, sharded.Samples)
	}
}

// firstOwner returns the index of the first user owning at least one
// game (not every generated account has a library).
func firstOwner(s *Snapshot) int {
	for i := range s.Users {
		if len(s.Users[i].Games) > 0 {
			return i
		}
	}
	panic("no user owns a game")
}

// The streaming fsck must produce the same report as the in-memory pass
// on a clean generated universe — large enough that sections span many
// segments and the ID census, edge index and membership index all get
// real traffic.
func TestFsckShardedMatchesInMemoryClean(t *testing.T) {
	s := testSnapshot(t)
	single, sharded := saveBoth(t, s)
	rs, err := FsckFile(single, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := FsckFile(sharded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Clean() || !rd.Clean() {
		t.Fatalf("expected clean reports:\nsingle: %s\nsharded: %s", rs, rd)
	}
	compareReports(t, rs, rd)
}

// Every referential violation class must be detected by the streaming
// pass with the same counts and sample strings as the in-memory pass.
// The mutations are stacked into one thoroughly dirty snapshot so the
// cross-pass bookkeeping (duplicate IDs colliding with asymmetry checks,
// unknown references interleaved with valid ones) is exercised together,
// then each class is also checked in isolation.
func TestFsckShardedMatchesInMemoryDirty(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"friend-unknown", func(s *Snapshot) {
			s.Users[0].Friends = append(s.Users[0].Friends, FriendRecord{SteamID: 999})
		}},
		{"friend-asymmetric", func(s *Snapshot) {
			s.Users[1].Friends = nil
		}},
		{"self-friend", func(s *Snapshot) {
			s.Users[0].Friends = append(s.Users[0].Friends, FriendRecord{SteamID: s.Users[0].SteamID})
		}},
		{"owned-app-unknown", func(s *Snapshot) {
			s.Users[0].Games = append(s.Users[0].Games, OwnershipRecord{AppID: 4040404, TotalMinutes: 1})
		}},
		{"duplicate-ownership", func(s *Snapshot) {
			u := &s.Users[firstOwner(s)]
			u.Games = append(u.Games, u.Games[0])
		}},
		{"playtime-invariant", func(s *Snapshot) {
			s.Users[firstOwner(s)].Games[0].TwoWeekMinutes = 1 << 30
		}},
		{"membership-group-unknown", func(s *Snapshot) {
			s.Users[0].Groups = append(s.Users[0].Groups, 40404)
		}},
		{"membership-asymmetric-user-side", func(s *Snapshot) {
			s.Groups[0].Members = nil
		}},
		{"membership-asymmetric-group-side", func(s *Snapshot) {
			s.Groups[0].Members = append(s.Groups[0].Members, s.Users[2].SteamID)
		}},
		{"member-unknown", func(s *Snapshot) {
			s.Groups[0].Members = append(s.Groups[0].Members, 999)
		}},
		{"duplicate-user", func(s *Snapshot) {
			s.Users = append(s.Users, UserRecord{SteamID: s.Users[0].SteamID,
				Friends: []FriendRecord{{SteamID: s.Users[1].SteamID}}})
		}},
		{"duplicate-game", func(s *Snapshot) {
			s.Games = append(s.Games, s.Games[0])
		}},
		{"duplicate-group", func(s *Snapshot) {
			s.Groups = append(s.Groups, GroupRecord{GID: s.Groups[0].GID, Members: s.Groups[0].Members})
		}},
	}

	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			s := testSnapshot(t)
			tc.mutate(s)
			single, sharded := saveBoth(t, s)
			rs, err := FsckFile(single, nil)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := FsckFile(sharded, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Clean() {
				t.Fatalf("mutation %s produced a clean report", tc.name)
			}
			compareReports(t, rs, rd)
		})
	}

	t.Run("all-stacked", func(t *testing.T) {
		s := testSnapshot(t)
		for _, tc := range mutations {
			tc.mutate(s)
		}
		single, sharded := saveBoth(t, s)
		rs, err := FsckFile(single, nil)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := FsckFile(sharded, nil)
		if err != nil {
			t.Fatal(err)
		}
		compareReports(t, rs, rd)
	})
}

// Segment corruption must be localized: the report names the damaged
// segment under file-hash-mismatch, keeps ManifestVerified, and the
// referential checks still run on the decodable remainder.
func TestFsckShardedDetectsSegmentCorruption(t *testing.T) {
	s := testSnapshot(t)
	_, sharded := saveBoth(t, s)
	seg := filepath.Join(sharded, "users-0001.jsonl")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.IndexByte(string(b), '5')
	if i < 0 {
		t.Fatal("no digit to flip")
	}
	b[i] = '6'
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckFile(sharded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ManifestVerified {
		t.Fatal("manifest checks should still run")
	}
	if rep.Counts[ViolationFileHash] == 0 {
		t.Fatalf("corruption not detected:\n%s", rep)
	}
	found := false
	for _, sample := range rep.Samples[ViolationFileHash] {
		if strings.Contains(sample, "users-0001.jsonl") {
			found = true
		}
	}
	if !found {
		t.Fatalf("damage not localized to segment: %v", rep.Samples[ViolationFileHash])
	}
}

// A truncated segment is reported as both a byte-count mismatch and,
// through the canonical section checksum, a section-level violation.
func TestFsckShardedDetectsTruncatedSegment(t *testing.T) {
	s := testSnapshot(t)
	_, sharded := saveBoth(t, s)
	seg := filepath.Join(sharded, "users-0002.jsonl")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	cut := strings.Index(string(b), "\n")
	if err := os.WriteFile(seg, b[:cut+1], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckFile(sharded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts[ViolationFileHash] == 0 {
		t.Fatalf("truncation not detected in raw pass:\n%s", rep)
	}
	if rep.Counts[ViolationSectionCount] == 0 {
		t.Fatalf("truncation not detected in section counts:\n%s", rep)
	}
}

// A missing manifest downgrades structural coverage (no checksum pass)
// but the referential scan still runs in full, like the single-file path.
func TestFsckShardedNoManifest(t *testing.T) {
	s := testSnapshot(t)
	_, sharded := saveBoth(t, s)
	if err := os.Remove(ManifestPath(sharded)); err != nil {
		t.Fatal(err)
	}
	rep, err := FsckFile(sharded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ManifestVerified {
		t.Fatal("ManifestVerified without a manifest")
	}
	if !rep.Clean() {
		t.Fatalf("clean data reported dirty without manifest:\n%s", rep)
	}
	if rep.RecordsVerified == 0 {
		t.Fatal("referential checks did not run")
	}
}

// Pointing fsck at a bare segment file is an environmental error (the
// caller named the wrong artifact), not a corruption report.
func TestFsckShardedRejectsBareSegment(t *testing.T) {
	s := testSnapshot(t)
	_, sharded := saveBoth(t, s)
	_, err := FsckFile(filepath.Join(sharded, "users-0000.jsonl"), nil)
	if err == nil {
		t.Fatal("expected error for bare segment path")
	}
}
