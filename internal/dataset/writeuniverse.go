// Out-of-core generate→encode. FromUniverse materializes a full
// []UserRecord copy of the universe — per-user Friends/Games/Groups
// slices included — before Save writes a byte; at paper scale that copy
// is a second multi-gigabyte resident set. WriteUniverse instead walks
// the universe's slab-backed columns (the CSR adjacency from FriendCSR,
// the library and membership slabs) and streams each record through the
// snapshot Writer, reusing one scratch record per section, so encoding
// adds O(1) record memory on top of the universe itself.

package dataset

import (
	"steamstudy/internal/simworld"
)

// WriteUniverse streams the ground-truth snapshot of u to path,
// byte-identical (file bytes and manifest) to Save of FromUniverse(u) —
// the crawler-equivalence tests pin that identity — for both the single
// file and the sharded directory layouts.
func WriteUniverse(path string, u *simworld.Universe, opts ...Option) error {
	w, err := NewWriter(path, u.CollectedAt, opts...)
	if err != nil {
		return err
	}
	defer w.Abort()

	var achs []AchievementRecord
	for i := range u.Games {
		g := &u.Games[i]
		achs = achs[:0]
		for _, a := range g.Achievements {
			achs = append(achs, AchievementRecord{Name: a.Name, Percent: a.GlobalPercent})
		}
		rec := GameRecord{
			AppID:        g.AppID,
			Name:         g.Name,
			Type:         g.Type.String(),
			Genres:       g.Genres.Names(),
			Multiplayer:  g.Multiplayer,
			PriceCents:   g.PriceCents,
			Metacritic:   g.Metacritic,
			ReleaseYear:  g.ReleaseYear,
			Developer:    g.Developer,
			Achievements: nilIfEmpty(achs),
		}
		if err := w.WriteGame(&rec); err != nil {
			return err
		}
	}

	offsets, edges := u.FriendCSR()
	var friends []FriendRecord
	var games []OwnershipRecord
	var groups []uint64
	for i := range u.Users {
		user := &u.Users[i]
		friends = friends[:0]
		for _, e := range edges[offsets[i]:offsets[i+1]] {
			f := &u.Friendships[e]
			peer := f.A
			if peer == int32(i) {
				peer = f.B
			}
			friends = append(friends, FriendRecord{SteamID: uint64(u.Users[peer].ID), Since: f.Since})
		}
		games = games[:0]
		for _, g := range user.Library {
			games = append(games, OwnershipRecord{
				AppID:          u.Games[g.GameIdx].AppID,
				TotalMinutes:   g.TotalMinutes,
				TwoWeekMinutes: g.TwoWeekMinutes,
			})
		}
		groups = groups[:0]
		for _, g := range user.Groups {
			groups = append(groups, u.Groups[g].ID)
		}
		rec := UserRecord{
			SteamID: uint64(user.ID),
			Created: user.Created,
			Country: user.Country,
			City:    user.City,
			Friends: nilIfEmpty(friends),
			Games:   nilIfEmpty(games),
			Groups:  nilIfEmpty(groups),
		}
		if err := w.WriteUser(&rec); err != nil {
			return err
		}
	}

	var members []uint64
	for i := range u.Groups {
		g := &u.Groups[i]
		members = members[:0]
		for _, m := range g.Members {
			members = append(members, uint64(u.Users[m].ID))
		}
		rec := GroupRecord{
			GID:     g.ID,
			Name:    g.Name,
			Type:    g.Type.String(),
			Members: nilIfEmpty(members),
		}
		if err := w.WriteGroup(&rec); err != nil {
			return err
		}
	}

	_, err = w.Close()
	return err
}

// nilIfEmpty maps a zero-length scratch slice to nil so the encoded form
// matches FromUniverse's append-to-nil construction (the JSONL codec
// distinguishes null from []).
func nilIfEmpty[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	return s
}
