package dataset

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"steamstudy/internal/simworld"
)

// shardedFixture builds a snapshot large enough that the fsck shard
// partition genuinely splits it (several fsckShard widths of users),
// seeded with at least one violation of every referential class, spread
// across different shards so the merge order matters.
func shardedFixture() *Snapshot {
	const n = 3*fsckShard + 500
	s := &Snapshot{CollectedAt: 77}
	s.Games = []GameRecord{{AppID: 10, Name: "Alpha", Type: "game"}}
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		u := UserRecord{SteamID: id, Country: "DE",
			Games:  []OwnershipRecord{{AppID: 10, TotalMinutes: 100, TwoWeekMinutes: 10}},
			Groups: []uint64{7}}
		prev, next := id-1, id+1
		if i > 0 {
			u.Friends = append(u.Friends, FriendRecord{SteamID: prev, Since: 5})
		}
		if i < n-1 {
			u.Friends = append(u.Friends, FriendRecord{SteamID: next, Since: 5})
		}
		s.Users = append(s.Users, u)
	}
	members := make([]uint64, n)
	for i := range members {
		members[i] = uint64(i + 1)
	}
	s.Groups = []GroupRecord{{GID: 7, Name: "grp", Type: "Open", Members: members}}

	// One violation of each referential class, scattered across shards.
	at := func(shard, off int) *UserRecord { return &s.Users[shard*fsckShard+off] }
	at(0, 10).Friends = append(at(0, 10).Friends, FriendRecord{SteamID: 999_999})           // friend-unknown
	at(1, 20).Friends = append(at(1, 20).Friends, FriendRecord{SteamID: at(1, 20).SteamID}) // self-friend
	at(2, 30).Friends = append(at(2, 30).Friends, FriendRecord{SteamID: 3})                 // asymmetric (3 doesn't list them)
	at(0, 40).Games = append(at(0, 40).Games, OwnershipRecord{AppID: 404})                  // owned-app-unknown
	at(1, 50).Games = append(at(1, 50).Games, s.Users[fsckShard+50].Games[0])               // duplicate-ownership
	at(2, 60).Games[0].TwoWeekMinutes = 500                                                 // playtime-invariant
	at(3, 70).Groups = append(at(3, 70).Groups, 404)                                        // membership-group-unknown
	at(3, 80).Groups = nil                                                                  // membership-asymmetric (group lists them)
	s.Groups[0].Members = append(s.Groups[0].Members, 888_888)                              // member-unknown
	s.Users = append(s.Users, UserRecord{SteamID: 1})                                       // duplicate-user
	s.Games = append(s.Games, s.Games[0])                                                   // duplicate-game
	s.Groups = append(s.Groups, GroupRecord{GID: 7})                                        // duplicate-group
	return s
}

// Sharded fsck is a pure throughput knob: for every worker count the
// report — counts, retained samples, records verified — is identical to
// the serial pass.
func TestFsckShardedMatchesSequential(t *testing.T) {
	s := shardedFixture()
	base := s.Fsck(WithWorkers(1))
	if base.Clean() {
		t.Fatal("fixture should be dirty")
	}
	// Every referential class the schema defines must be represented, so
	// the equivalence below covers them all.
	for _, class := range []ViolationClass{
		ViolationDuplicateUser, ViolationDuplicateGame, ViolationDuplicateGroup,
		ViolationDuplicateOwnership, ViolationPlaytimeInvariant, ViolationFriendUnknown,
		ViolationFriendAsymmetric, ViolationSelfFriend, ViolationOwnedAppUnknown,
		ViolationMembershipUnknown, ViolationMemberUnknown, ViolationMembershipAsymmetric,
	} {
		if base.Counts[class] == 0 {
			t.Fatalf("fixture seeds no %s violation", class)
		}
	}
	for _, w := range []int{2, 3, 0} {
		got := s.Fsck(WithWorkers(w))
		if !reflect.DeepEqual(base.Counts, got.Counts) {
			t.Fatalf("workers=%d: counts diverge\n seq: %v\n par: %v", w, base.Counts, got.Counts)
		}
		if !reflect.DeepEqual(base.Samples, got.Samples) {
			t.Fatalf("workers=%d: samples diverge\n seq: %v\n par: %v", w, base.Samples, got.Samples)
		}
		if base.RecordsVerified != got.RecordsVerified {
			t.Fatalf("workers=%d: records verified %d vs %d", w, got.RecordsVerified, base.RecordsVerified)
		}
	}
}

// Sample retention under sharding keeps the serial semantics: the first
// maxSamplesPerClass violations in index order, even when they span a
// shard boundary.
func TestFsckShardedSampleOrderSpansShards(t *testing.T) {
	s := shardedFixture()
	// Ten unknown-friend violations straddling the shard-1/shard-2 line.
	for off := fsckShard*2 - 5; off < fsckShard*2+5; off++ {
		s.Users[off].Friends = append(s.Users[off].Friends,
			FriendRecord{SteamID: uint64(1_000_000 + off)})
	}
	base := s.Fsck(WithWorkers(1))
	got := s.Fsck(WithWorkers(3))
	if len(base.Samples[ViolationFriendUnknown]) != maxSamplesPerClass {
		t.Fatalf("want %d retained samples, got %d", maxSamplesPerClass, len(base.Samples[ViolationFriendUnknown]))
	}
	if !reflect.DeepEqual(base.Samples[ViolationFriendUnknown], got.Samples[ViolationFriendUnknown]) {
		t.Fatalf("sharded sample order diverges:\n seq: %v\n par: %v",
			base.Samples[ViolationFriendUnknown], got.Samples[ViolationFriendUnknown])
	}
	if base.Counts[ViolationFriendUnknown] != got.Counts[ViolationFriendUnknown] {
		t.Fatalf("counts diverge: %d vs %d",
			base.Counts[ViolationFriendUnknown], got.Counts[ViolationFriendUnknown])
	}
}

// The progress callback reports monotonically non-decreasing per-section
// counts and ends at the decoded totals.
func TestLoadProgressCallback(t *testing.T) {
	s := shardedFixture()
	path := t.TempDir() + "/snap.jsonl"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	last := map[string]int{}
	calls := 0
	got, err := Load(path, WithWorkers(2), WithProgress(func(section string, records int) {
		calls++
		if records < last[section] {
			t.Fatalf("progress went backwards for %s: %d -> %d", section, last[section], records)
		}
		last[section] = records
	}))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	want := map[string]int{"users": len(got.Users), "games": len(got.Games), "groups": len(got.Groups)}
	if !reflect.DeepEqual(last, want) {
		t.Fatalf("final progress %v, want %v", last, want)
	}
	if len(got.Users) != len(s.Users) {
		t.Fatalf("decoded %d users, want %d", len(got.Users), len(s.Users))
	}
	// Several windows' worth of records means several progress calls, not
	// one terminal report.
	if calls < 3 {
		t.Fatalf("want windowed progress, got %d calls", calls)
	}
}

// The full pipeline — parallel generation through the parallel codec —
// lands on one snapshot SHA-256 regardless of how many workers either
// stage used: the manifest hash is a pure function of (config, seed).
func TestGeneratedSnapshotSHAWorkerInvariant(t *testing.T) {
	dir := t.TempDir()
	var ref string
	for _, w := range []int{1, 2, 3, 0} {
		cfg := simworld.DefaultConfig(2000)
		cfg.CatalogSize = 80
		cfg.Workers = w
		u := simworld.MustGenerate(cfg, 42)
		path := filepath.Join(dir, fmt.Sprintf("gen-w%d.snap.jsonl", w))
		if err := FromUniverse(u).Save(path, WithWorkers(w)); err != nil {
			t.Fatal(err)
		}
		man, err := ReadManifest(path)
		if err != nil || man == nil {
			t.Fatalf("workers=%d: manifest: %v", w, err)
		}
		if ref == "" {
			ref = man.FileSHA256
		} else if man.FileSHA256 != ref {
			t.Fatalf("workers=%d: snapshot SHA-256 %s differs from %s", w, man.FileSHA256, ref)
		}
	}
}
