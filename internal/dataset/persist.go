package dataset

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"steamstudy/internal/par"
)

// Container encodings.
const (
	encGob   = "gob"
	encJSONL = "jsonl"
)

// snapshotFormat maps a path to its encoding by explicit suffix. Unknown
// extensions are rejected up front — better a clear error at the CLI than
// a gob decoder chewing on a CSV.
func snapshotFormat(path string) (encoding string, gzipped bool, err error) {
	switch {
	case strings.HasSuffix(path, ".gob"):
		return encGob, false, nil
	case strings.HasSuffix(path, ".gob.gz"):
		return encGob, true, nil
	case strings.HasSuffix(path, ".jsonl"):
		return encJSONL, false, nil
	case strings.HasSuffix(path, ".jsonl.gz"):
		return encJSONL, true, nil
	default:
		return "", false, fmt.Errorf("dataset: %s: unknown snapshot extension (want .gob, .gob.gz, .jsonl or .jsonl.gz)", path)
	}
}

// CheckSnapshotPath reports whether path names a snapshot this package
// can read or write, judging by the path alone (the file need not
// exist): a single file by extension, or the sharded directory layout by
// its ".d" suffix. CLIs use it to reject a typo'd -snapshot flag before
// any work happens; the error names the accepted forms, and a path that
// points at a segment file inside a sharded directory fails with
// ErrShardSegment (the caller wants the directory).
func CheckSnapshotPath(path string) error {
	_, _, _, err := snapshotPath(path)
	return err
}

// saveCrashHook, when non-nil, is consulted at the named stages of Save's
// write protocol; returning an error aborts the save there. It exists so
// the crash-chaos tests can prove each intermediate on-disk state is safe.
// Stages: "temp-written" (payload durable, nothing published),
// "manifest-retired" (old sidecar gone, old data still in place),
// "data-renamed" (new data published, sidecar not yet).
var saveCrashHook func(stage string) error

func saveCrash(stage string) error {
	if h := saveCrashHook; h != nil {
		return h(stage)
	}
	return nil
}

// countingWriter counts the bytes passed through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Save writes the snapshot to path, durably and atomically. The format is
// selected by extension: ".gob" / ".gob.gz" for the compact binary form,
// ".jsonl" / ".jsonl.gz" for a line-oriented JSON export (one record per
// line with a type tag), matching the "full dataset available for
// download" spirit of §3.1.
//
// The write protocol never exposes a torn file: the payload goes to a
// temp file in the destination directory, is fsynced, and only then
// renamed over path; the parent directory is fsynced so the rename
// itself is durable. A sidecar manifest (<path>.manifest.json) recording
// the format version, per-section record counts and CRC-32C checksums,
// and the whole-file SHA-256 is published after the data file. A crash at
// any instant leaves either the old snapshot+manifest, the old snapshot
// alone, the new snapshot alone, or the new pair — never a mix that
// fails verification, and never a half-written snapshot. Stale ".tmp-*"
// files from a crashed save are inert and may be deleted freely.
//
// Options: WithWorkers parallelizes the JSONL encoding (chunks encoded
// concurrently, written in index order through the same single hashing
// pass), producing byte-identical files for any worker count;
// WithProgress reports per-section record counts as they are encoded.
// No option changes the bytes written.
func (s *Snapshot) Save(path string, opts ...Option) (err error) {
	o := buildOptions(opts)
	encoding, gzipped, sharded, err := snapshotPath(path)
	if err != nil {
		return err
	}
	if sharded {
		return s.saveSharded(path, opts)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("dataset: creating temp for %s: %w", path, err)
	}
	tmp := f.Name()
	closed := false
	defer func() {
		// Abort path: the destination has not been renamed over, so the
		// previous snapshot (if any) is untouched; drop the temp and
		// report the first error exactly once.
		if err != nil {
			if !closed {
				f.Close()
			}
			os.Remove(tmp)
		}
	}()

	hash := sha256.New()
	cw := &countingWriter{w: io.MultiWriter(f, hash)}
	var payload io.Writer = cw
	var gz *gzip.Writer
	if gzipped {
		gz = gzip.NewWriter(cw)
		payload = gz
	}
	bw := bufio.NewWriterSize(payload, 1<<20)
	if encoding == encJSONL {
		err = s.writeJSONL(bw, o.workers, o.progress)
	} else {
		err = gob.NewEncoder(bw).Encode(s)
		if err == nil && o.progress != nil {
			// Gob encodes in one shot; report the final shape so callers
			// see the same section events for either container format.
			o.progress(sectionGames, len(s.Games))
			o.progress(sectionUsers, len(s.Users))
			o.progress(sectionGroups, len(s.Groups))
		}
	}
	if err != nil {
		return fmt.Errorf("dataset: encoding %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if gz != nil {
		if err = gz.Close(); err != nil {
			return fmt.Errorf("dataset: compressing %s: %w", path, err)
		}
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("dataset: fsync %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("dataset: closing temp for %s: %w", path, err)
	}
	closed = true
	if err = saveCrash("temp-written"); err != nil {
		return err
	}

	man := s.buildManifest(encoding, gzipped, cw.n, hex.EncodeToString(hash.Sum(nil)))
	manTmp, err := writeManifestTemp(dir, man)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(manTmp)
		}
	}()

	// Publish. Retire the old manifest first: every crash window then
	// holds either a (data, manifest) pair that verifies, or data with no
	// manifest — never fresh data checked against a stale sidecar.
	if err = removeStaleManifest(path); err != nil {
		return err
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	if err = saveCrash("manifest-retired"); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("dataset: publishing %s: %w", path, err)
	}
	if err = saveCrash("data-renamed"); err != nil {
		return err
	}
	if err = os.Rename(manTmp, ManifestPath(path)); err != nil {
		return fmt.Errorf("dataset: publishing manifest for %s: %w", path, err)
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss. Filesystems that cannot sync directories report EINVAL/ENOTSUP;
// the rename is still atomic there, so that is tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("dataset: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("dataset: fsync dir %s: %w", dir, err)
	}
	return nil
}

// Load reads a snapshot written by Save. When the sidecar manifest is
// present the snapshot is verified against it — format version, decoded
// section counts and checksums, then the whole-file hash — and damage is
// reported localized to the failing section ("games section checksum
// mismatch") rather than as a bare decode error. Snapshots without a
// manifest (pre-manifest files, or a crash that published data before its
// sidecar) load unverified.
//
// Options: WithWorkers parallelizes the JSONL chunk decoding (lines are
// still read in one pass and records appended in file order);
// WithProgress reports per-section record counts as they decode.
func Load(path string, opts ...Option) (*Snapshot, error) {
	o := buildOptions(opts)
	encoding, gzipped, sharded, err := snapshotPath(path)
	if err != nil {
		return nil, err
	}
	if sharded {
		return loadSharded(path, o)
	}
	man, err := ReadManifest(path)
	if err != nil {
		return nil, err
	}
	var hashErr error
	if man != nil {
		if man.FormatVersion > SnapshotFormatVersion {
			return nil, fmt.Errorf("dataset: %s: manifest format version %d is newer than this build supports (%d)",
				path, man.FormatVersion, SnapshotFormatVersion)
		}
		// Remember raw-byte damage but prefer reporting it per section
		// below: "games section checksum mismatch" localizes the rot,
		// "file hash mismatch" merely confirms it.
		hashErr = man.verifyFile(path)
	}
	s, err := decodeSnapshotFile(path, encoding, gzipped, o)
	if err != nil {
		if hashErr != nil {
			return nil, fmt.Errorf("%w (raw-byte check also failed: %v)", err, hashErr)
		}
		return nil, err
	}
	if man != nil {
		if v := man.verifySections(s); len(v) > 0 {
			return nil, fmt.Errorf("dataset: %s: %s", path, v[0].Detail)
		}
		if hashErr != nil {
			return nil, hashErr
		}
	}
	return s, nil
}

// decodeSnapshotFile decodes the container without any manifest checks.
// For JSONL the returned snapshot holds every record decoded before an
// error, so fsck can still describe a partially readable file.
func decodeSnapshotFile(path, encoding string, gzipped bool, o options) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if gzipped {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: gzip header: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	br := bufio.NewReaderSize(r, 1<<20)
	s := &Snapshot{}
	if encoding == encJSONL {
		if err := s.readJSONL(br, o.workers, o.progress); err != nil {
			return s, fmt.Errorf("dataset: decoding %s: %w", path, err)
		}
		return s, nil
	}
	if err := gob.NewDecoder(br).Decode(s); err != nil {
		return &Snapshot{}, fmt.Errorf("dataset: decoding %s: %w", path, err)
	}
	if o.progress != nil {
		// Gob decodes in one shot; report the final shape so callers see
		// the same section events for either container format.
		o.progress(sectionGames, len(s.Games))
		o.progress(sectionUsers, len(s.Users))
		o.progress(sectionGroups, len(s.Groups))
	}
	return s, nil
}

// jsonlLine is the tagged union for the JSONL export.
type jsonlLine struct {
	Kind        string       `json:"kind"`
	CollectedAt int64        `json:"collected_at,omitempty"`
	User        *UserRecord  `json:"user,omitempty"`
	Game        *GameRecord  `json:"game,omitempty"`
	Group       *GroupRecord `json:"group,omitempty"`
}

// jsonlChunk is the fixed number of records per encoded or decoded
// chunk. Like simworld's genChunk it is part of the work partition, not
// derived from the worker count, so chunk boundaries — and therefore the
// bytes, errors and record order — are identical for any Workers value.
const jsonlChunk = 512

// chunkBufPool recycles chunk encode buffers across sections and saves.
var chunkBufPool = sync.Pool{New: func() any { return new([]byte) }}

type encodedChunk struct {
	buf *[]byte
	err error
}

// writeJSONL streams the export: chunks of records are encoded by the
// hand-rolled codec on the worker pool while the caller's goroutine
// writes them in index order through the single bufio+hash pass.
func (s *Snapshot) writeJSONL(w io.Writer, workers int, progress ProgressFunc) error {
	if _, err := w.Write(appendHeaderLine(nil, s.CollectedAt)); err != nil {
		return err
	}
	if err := writeSection(w, workers, len(s.Games), sectionGames, progress, func(b []byte, i int) ([]byte, error) {
		return appendGameLine(b, &s.Games[i])
	}); err != nil {
		return err
	}
	if err := writeSection(w, workers, len(s.Users), sectionUsers, progress, func(b []byte, i int) ([]byte, error) {
		return appendUserLine(b, &s.Users[i])
	}); err != nil {
		return err
	}
	return writeSection(w, workers, len(s.Groups), sectionGroups, progress, func(b []byte, i int) ([]byte, error) {
		return appendGroupLine(b, &s.Groups[i])
	})
}

func writeSection(w io.Writer, workers, n int, section string, progress ProgressFunc, enc func(b []byte, i int) ([]byte, error)) error {
	nc := (n + jsonlChunk - 1) / jsonlChunk
	if par.N(workers) <= 1 {
		// Sequential fast path: with one effective worker the pipeline has
		// no parallelism to buy back its plumbing, so encode chunk by chunk
		// into a single reused buffer. Chunk boundaries and encode order
		// match the pooled path exactly, so the byte stream is identical.
		buf := chunkBufPool.Get().(*[]byte)
		defer chunkBufPool.Put(buf)
		for c := 0; c < nc; c++ {
			b := (*buf)[:0]
			lo, hi := c*jsonlChunk, min((c+1)*jsonlChunk, n)
			var err error
			for i := lo; i < hi && err == nil; i++ {
				b, err = enc(b, i)
			}
			*buf = b
			if err != nil {
				return err
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
			if progress != nil {
				progress(section, hi)
			}
		}
		return nil
	}
	return par.Ordered(workers, nc, func(c int) encodedChunk {
		buf := chunkBufPool.Get().(*[]byte)
		b := (*buf)[:0]
		lo, hi := c*jsonlChunk, min((c+1)*jsonlChunk, n)
		var err error
		for i := lo; i < hi && err == nil; i++ {
			b, err = enc(b, i)
		}
		*buf = b
		return encodedChunk{buf: buf, err: err}
	}, func(c int, ec encodedChunk) error {
		defer chunkBufPool.Put(ec.buf)
		if ec.err != nil {
			return ec.err
		}
		if _, err := w.Write(*ec.buf); err != nil {
			return err
		}
		if progress != nil {
			progress(section, min((c+1)*jsonlChunk, n))
		}
		return nil
	})
}

// rawLine is one non-blank input line with its 1-based file line number
// (blank lines are skipped but still numbered, like the serial decoder).
type rawLine struct {
	no int
	b  []byte
}

type decodedChunk struct {
	recs []decodedLine
	// err, if non-nil, occurred at line errLine; recs holds everything
	// decoded before it, preserving the serial decoder's partial result.
	err     error
	errLine int
}

// decodeChunk parses one batch of lines: the strict fast path for the
// canonical layout, encoding/json for anything else, with identical
// errors either way.
func decodeChunk(lines []rawLine) decodedChunk {
	var out decodedChunk
	out.recs = make([]decodedLine, 0, len(lines))
	// One interner per chunk: duplicate strings collapse within the chunk
	// with no cross-goroutine sharing, so the parallel decode stays
	// lock-free. Cross-chunk duplicates cost one instance per chunk.
	var in interner
	for _, ln := range lines {
		trimmed := bytes.TrimSpace(ln.b)
		var rec decodedLine
		if !decodeLineFast(trimmed, &rec, &in) {
			var line jsonlLine
			if uerr := json.Unmarshal(trimmed, &line); uerr != nil {
				out.err, out.errLine = uerr, ln.no
				return out
			}
			switch line.Kind {
			case "header":
				rec = decodedLine{kind: 'h', collectedAt: line.CollectedAt}
			case "game":
				if line.Game == nil {
					out.err = fmt.Errorf("game record without payload")
					out.errLine = ln.no
					return out
				}
				rec = decodedLine{kind: 'g', game: *line.Game}
			case "user":
				if line.User == nil {
					out.err = fmt.Errorf("user record without payload")
					out.errLine = ln.no
					return out
				}
				rec = decodedLine{kind: 'u', user: *line.User}
			case "group":
				if line.Group == nil {
					out.err = fmt.Errorf("group record without payload")
					out.errLine = ln.no
					return out
				}
				rec = decodedLine{kind: 'p', group: *line.Group}
			default:
				out.err = fmt.Errorf("unknown record kind %q", line.Kind)
				out.errLine = ln.no
				return out
			}
		}
		out.recs = append(out.recs, rec)
	}
	return out
}

// readJSONL decodes the line-oriented export: one goroutine reads lines
// in a single pass, windows of fixed-width chunks are parsed on the
// worker pool, and records are appended in file order. Every error still
// carries the offending line number — on a 100M-record export
// "line 83441972: unknown record kind" beats an anonymous decode failure
// — and everything decoded before the error is kept, so fsck can
// describe a partially readable file.
func (s *Snapshot) readJSONL(br *bufio.Reader, workers int, progress ProgressFunc) error {
	w := par.N(workers)
	if w <= 1 {
		return s.readJSONLSerial(br, progress)
	}
	window := 2 * w // chunks decoded per barrier; bounds memory
	lineNo := 0
	report := func() {
		if progress != nil {
			progress(sectionGames, len(s.Games))
			progress(sectionUsers, len(s.Users))
			progress(sectionGroups, len(s.Groups))
		}
	}
	for {
		// Fill a window of chunks from the reader.
		var chunks [][]rawLine
		var cur []rawLine
		var ioErr error
		ioErrLine := 0
		eof := false
		for len(chunks) < window && !eof && ioErr == nil {
			lineNo++
			raw, err := br.ReadBytes('\n')
			if len(raw) == 0 || (err != nil && err != io.EOF) {
				if err == io.EOF {
					eof = true
					break
				}
				ioErr, ioErrLine = err, lineNo
				break
			}
			if len(bytes.TrimSpace(raw)) != 0 {
				cur = append(cur, rawLine{no: lineNo, b: raw})
				if len(cur) == jsonlChunk {
					chunks = append(chunks, cur)
					cur = nil
				}
			}
			if err == io.EOF {
				eof = true
			}
		}
		if len(cur) > 0 {
			chunks = append(chunks, cur)
		}

		// Decode the window on the pool, then merge in file order.
		results := make([]decodedChunk, len(chunks))
		par.For(workers, len(chunks), func(i int) { results[i] = decodeChunk(chunks[i]) })
		for _, dc := range results {
			for i := range dc.recs {
				switch rec := &dc.recs[i]; rec.kind {
				case 'h':
					s.CollectedAt = rec.collectedAt
				case 'g':
					s.Games = append(s.Games, rec.game)
				case 'u':
					s.Users = append(s.Users, rec.user)
				case 'p':
					s.Groups = append(s.Groups, rec.group)
				}
			}
			if dc.err != nil {
				report()
				return fmt.Errorf("line %d: %w", dc.errLine, dc.err)
			}
		}
		report()
		if ioErr != nil {
			return fmt.Errorf("line %d: %w", ioErrLine, ioErr)
		}
		if eof {
			return nil
		}
	}
}

// readJSONLSerial is the one-effective-worker decode path: each chunk is
// parsed and merged as soon as its lines are read, with no window
// buffering and no pool barrier. Chunk boundaries, partial results,
// errors and line numbers all match the windowed path exactly.
func (s *Snapshot) readJSONLSerial(br *bufio.Reader, progress ProgressFunc) error {
	lineNo := 0
	report := func() {
		if progress != nil {
			progress(sectionGames, len(s.Games))
			progress(sectionUsers, len(s.Users))
			progress(sectionGroups, len(s.Groups))
		}
	}
	var cur []rawLine
	// flush decodes the pending chunk; like the windowed path it keeps
	// everything decoded before an error and reports before returning it.
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		dc := decodeChunk(cur)
		cur = cur[:0]
		for i := range dc.recs {
			switch rec := &dc.recs[i]; rec.kind {
			case 'h':
				s.CollectedAt = rec.collectedAt
			case 'g':
				s.Games = append(s.Games, rec.game)
			case 'u':
				s.Users = append(s.Users, rec.user)
			case 'p':
				s.Groups = append(s.Groups, rec.group)
			}
		}
		if dc.err != nil {
			report()
			return fmt.Errorf("line %d: %w", dc.errLine, dc.err)
		}
		return nil
	}
	for {
		lineNo++
		raw, err := br.ReadBytes('\n')
		if len(raw) == 0 || (err != nil && err != io.EOF) {
			if ferr := flush(); ferr != nil {
				return ferr
			}
			report()
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if len(bytes.TrimSpace(raw)) != 0 {
			cur = append(cur, rawLine{no: lineNo, b: raw})
			if len(cur) == jsonlChunk {
				if ferr := flush(); ferr != nil {
					return ferr
				}
				report()
			}
		}
		if err == io.EOF {
			if ferr := flush(); ferr != nil {
				return ferr
			}
			report()
			return nil
		}
	}
}
