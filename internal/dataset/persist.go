package dataset

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Save writes the snapshot to path. The format is selected by extension:
// ".gob" / ".gob.gz" for the compact binary form, ".jsonl" / ".jsonl.gz"
// for a line-oriented JSON export (one record per line with a type tag),
// matching the "full dataset available for download" spirit of §3.1.
func (s *Snapshot) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: creating %s: %w", path, err)
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var encErr error
	switch {
	case strings.Contains(path, ".jsonl"):
		encErr = s.writeJSONL(bw)
	default:
		encErr = gob.NewEncoder(bw).Encode(s)
	}
	if encErr != nil {
		return fmt.Errorf("dataset: encoding %s: %w", path, encErr)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// Load reads a snapshot written by Save.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: gzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	br := bufio.NewReaderSize(r, 1<<20)
	s := &Snapshot{}
	if strings.Contains(path, ".jsonl") {
		if err := s.readJSONL(br); err != nil {
			return nil, fmt.Errorf("dataset: decoding %s: %w", path, err)
		}
		return s, nil
	}
	if err := gob.NewDecoder(br).Decode(s); err != nil {
		return nil, fmt.Errorf("dataset: decoding %s: %w", path, err)
	}
	return s, nil
}

// jsonlLine is the tagged union for the JSONL export.
type jsonlLine struct {
	Kind        string       `json:"kind"`
	CollectedAt int64        `json:"collected_at,omitempty"`
	User        *UserRecord  `json:"user,omitempty"`
	Game        *GameRecord  `json:"game,omitempty"`
	Group       *GroupRecord `json:"group,omitempty"`
}

func (s *Snapshot) writeJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(jsonlLine{Kind: "header", CollectedAt: s.CollectedAt}); err != nil {
		return err
	}
	for i := range s.Games {
		if err := enc.Encode(jsonlLine{Kind: "game", Game: &s.Games[i]}); err != nil {
			return err
		}
	}
	for i := range s.Users {
		if err := enc.Encode(jsonlLine{Kind: "user", User: &s.Users[i]}); err != nil {
			return err
		}
	}
	for i := range s.Groups {
		if err := enc.Encode(jsonlLine{Kind: "group", Group: &s.Groups[i]}); err != nil {
			return err
		}
	}
	return nil
}

func (s *Snapshot) readJSONL(r io.Reader) error {
	dec := json.NewDecoder(r)
	for {
		var line jsonlLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		switch line.Kind {
		case "header":
			s.CollectedAt = line.CollectedAt
		case "game":
			s.Games = append(s.Games, *line.Game)
		case "user":
			s.Users = append(s.Users, *line.User)
		case "group":
			s.Groups = append(s.Groups, *line.Group)
		default:
			return fmt.Errorf("unknown record kind %q", line.Kind)
		}
	}
}
