package dataset

import (
	"strconv"

	"steamstudy/internal/simworld"
)

// FromUniverse extracts the ground-truth snapshot of a synthetic universe,
// bypassing the API/crawler path. Analyses accept either this or a crawled
// snapshot; the crawler integration tests assert the two are identical.
func FromUniverse(u *simworld.Universe) *Snapshot {
	s := &Snapshot{CollectedAt: u.CollectedAt}

	s.Games = make([]GameRecord, len(u.Games))
	for i := range u.Games {
		g := &u.Games[i]
		rec := GameRecord{
			AppID:       g.AppID,
			Name:        g.Name,
			Type:        g.Type.String(),
			Genres:      g.Genres.Names(),
			Multiplayer: g.Multiplayer,
			PriceCents:  g.PriceCents,
			Metacritic:  g.Metacritic,
			ReleaseYear: g.ReleaseYear,
			Developer:   g.Developer,
		}
		for _, a := range g.Achievements {
			rec.Achievements = append(rec.Achievements, AchievementRecord{
				Name: a.Name, Percent: a.GlobalPercent,
			})
		}
		s.Games[i] = rec
	}

	adj := u.Adjacency()
	// Edge timestamps, addressable per pair.
	since := make(map[uint64]int64, len(u.Friendships))
	for _, f := range u.Friendships {
		since[edgeKey(f.A, f.B)] = f.Since
	}

	s.Users = make([]UserRecord, len(u.Users))
	for i := range u.Users {
		user := &u.Users[i]
		rec := UserRecord{
			SteamID: uint64(user.ID),
			Created: user.Created,
			Country: user.Country,
			City:    user.City,
		}
		for _, j := range adj[i] {
			rec.Friends = append(rec.Friends, FriendRecord{
				SteamID: uint64(u.Users[j].ID),
				Since:   since[edgeKey(int32(i), j)],
			})
		}
		for _, g := range user.Library {
			rec.Games = append(rec.Games, OwnershipRecord{
				AppID:          u.Games[g.GameIdx].AppID,
				TotalMinutes:   g.TotalMinutes,
				TwoWeekMinutes: g.TwoWeekMinutes,
			})
		}
		for _, g := range user.Groups {
			rec.Groups = append(rec.Groups, u.Groups[g].ID)
		}
		s.Users[i] = rec
	}

	s.Groups = make([]GroupRecord, len(u.Groups))
	for i := range u.Groups {
		g := &u.Groups[i]
		rec := GroupRecord{
			GID:  g.ID,
			Name: g.Name,
			Type: g.Type.String(),
		}
		for _, m := range g.Members {
			rec.Members = append(rec.Members, uint64(u.Users[m].ID))
		}
		s.Groups[i] = rec
	}
	return s
}

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(uint32(b))
}

// GroupTypeNames lists the Table 2 type labels in display order, exposed
// for report rendering without importing simworld.
var GroupTypeNames = []string{
	simworld.GroupGameServer.String(),
	simworld.GroupSingleGame.String(),
	simworld.GroupGamingCommunity.String(),
	simworld.GroupSpecialInterest.String(),
	simworld.GroupSteam.String(),
	simworld.GroupPublisher.String(),
}

// GenreNames lists the genre labels in display order.
var GenreNames = func() []string {
	out := make([]string, len(simworld.GenreNames))
	copy(out, simworld.GenreNames[:])
	return out
}()

// FormatGID renders a group ID the way the API does.
func FormatGID(gid uint64) string { return strconv.FormatUint(gid, 10) }
