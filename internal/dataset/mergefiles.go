// Out-of-core merge. MergeAt needs every part decoded in memory at once;
// at paper scale the parts are tens of gigabytes each, so MergeFilesAt
// merges on disk instead: one k-way pass per section over the parts'
// streaming readers, deduplicating against only the records currently at
// the heads of the streams. The pass requires each part's sections sorted
// by record ID — which every snapshot this package writes satisfies,
// because Merge sorts and the generator emits in ID order. A part that
// turns out unsorted mid-stream demotes the whole merge to the load-all
// path, trading memory for correctness on foreign data.
//
// The result is byte-identical to Load-all + MergeAt + Save: same winner
// per duplicate key (last occurrence in part-major order), same group
// member-set unions, same validation failure on invalid output.

package dataset

import (
	"errors"
	"fmt"
)

// errUnsortedPart demotes the streaming merge to the load-all path.
var errUnsortedPart = errors.New("part not sorted by record ID")

// MergeFilesAt merges the snapshot files at parts into out, stamped with
// collectedAt, deduplicating exactly like MergeAt: the latest part's
// record wins per SteamID/AppID, group member sets union. JSONL parts
// with ID-sorted sections (every file this package writes) merge in one
// streaming pass holding only the stream heads; gob containers or
// unsorted parts fall back to loading everything, preserving behavior at
// a memory cost.
//
// Options apply to out's encoding (WithShardRecords for a .d directory)
// and to the fallback path's decode; WithProgress reports per-section
// merged record counts.
func MergeFilesAt(collectedAt int64, out string, parts []string, opts ...Option) error {
	if len(parts) == 0 {
		return fmt.Errorf("dataset: nothing to merge")
	}
	streamable := func(p string) bool {
		enc, _, _, err := snapshotPath(p)
		return err == nil && enc == encJSONL
	}
	canStream := streamable(out)
	for _, p := range parts {
		canStream = canStream && streamable(p)
	}
	if canStream {
		err := mergeFilesStreaming(collectedAt, out, parts, opts)
		if err == nil || !errors.Is(err, errUnsortedPart) {
			return err
		}
	}
	return mergeFilesLoaded(collectedAt, out, parts, opts)
}

// mergeFilesLoaded is the reference path: decode every part, MergeAt,
// Save. Gob containers and unsorted parts land here.
func mergeFilesLoaded(collectedAt int64, out string, parts []string, opts []Option) error {
	loaded := make([]*Snapshot, len(parts))
	for i, p := range parts {
		s, err := Load(p, opts...)
		if err != nil {
			return err
		}
		loaded[i] = s
	}
	merged, err := MergeAt(collectedAt, loaded, opts...)
	if err != nil {
		return err
	}
	return merged.Save(out, opts...)
}

// mergeStream is one part's cursor through a section.
type mergeStream struct {
	r   *Reader
	rec Record
	key uint64
	ok  bool
}

func mergeKey(rec *Record) uint64 {
	switch rec.Kind {
	case KindGame:
		return uint64(rec.Game.AppID)
	case KindGroup:
		return rec.Group.GID
	default:
		return rec.User.SteamID
	}
}

// advance pulls the next record, watching for sort-order violations that
// would make head-of-stream deduplication unsound.
func (ms *mergeStream) advance() error {
	prev, had := ms.key, ms.ok
	ok, err := ms.r.Next(&ms.rec)
	if err != nil {
		return err
	}
	if !ok {
		ms.ok = false
		return nil
	}
	ms.key = mergeKey(&ms.rec)
	ms.ok = true
	if had && ms.key < prev {
		return fmt.Errorf("dataset: %s: %w", ms.r.path, errUnsortedPart)
	}
	return nil
}

func mergeFilesStreaming(collectedAt int64, out string, parts []string, opts []Option) error {
	o := buildOptions(opts)
	w, err := NewWriter(out, collectedAt, opts...)
	if err != nil {
		return err
	}
	defer w.Abort()

	for _, section := range []string{sectionGames, sectionUsers, sectionGroups} {
		emitted := 0
		err := mergeSection(parts, section, func(rec *Record) error {
			emitted++
			switch rec.Kind {
			case KindGame:
				return w.WriteGame(&rec.Game)
			case KindGroup:
				return w.WriteGroup(&rec.Group)
			default:
				// The in-memory path validates the merged snapshot before
				// writing; the per-user invariants are the only ones a
				// deduplicated merge can still violate, so check them at
				// emit with MergeAt's exact failure.
				u := &rec.User
				seen := make(map[uint32]bool, len(u.Games))
				for _, g := range u.Games {
					if seen[g.AppID] {
						return mergeInvalid("dataset: user %d owns app %d twice", u.SteamID, g.AppID)
					}
					seen[g.AppID] = true
					if int64(g.TwoWeekMinutes) > g.TotalMinutes {
						return mergeInvalid("dataset: user %d app %d two-week exceeds lifetime", u.SteamID, g.AppID)
					}
					if g.TotalMinutes < 0 || g.TwoWeekMinutes < 0 {
						return mergeInvalid("dataset: user %d app %d negative playtime", u.SteamID, g.AppID)
					}
				}
				return w.WriteUser(u)
			}
		})
		if err != nil {
			return err
		}
		if o.progress != nil {
			o.progress(section, emitted)
		}
	}
	_, err = w.Close()
	return err
}

func mergeInvalid(format string, args ...any) error {
	return fmt.Errorf("dataset: merge produced an invalid snapshot: %w", fmt.Errorf(format, args...))
}

// mergeSection k-way merges one section across the parts and emits the
// deduplicated records in ascending key order.
func mergeSection(parts []string, section string, emit func(*Record) error) error {
	streams := make([]*mergeStream, len(parts))
	closeAll := func() {
		for _, ms := range streams {
			if ms != nil {
				ms.r.Close()
			}
		}
	}
	defer closeAll()
	for i, p := range parts {
		r, err := OpenSection(p, section)
		if err != nil {
			return err
		}
		streams[i] = &mergeStream{r: r}
		if err := streams[i].advance(); err != nil {
			return err
		}
	}

	for {
		// Lowest key across the stream heads; k is a fleet's part count,
		// small enough that a linear scan beats heap bookkeeping.
		best := -1
		for i, ms := range streams {
			if ms.ok && (best < 0 || ms.key < streams[best].key) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		key := streams[best].key

		// Drain every occurrence of key in part-major, record-minor order
		// — exactly the encounter order of the in-memory merge, where the
		// last occurrence supersedes and group members union in sorted-set
		// form (order-insensitive).
		var winner Record
		var groups []GroupRecord
		for i := best; i < len(streams); i++ {
			ms := streams[i]
			for ms.ok && ms.key == key {
				if ms.rec.Kind == KindGroup {
					groups = append(groups, ms.rec.Group)
				}
				winner = ms.rec
				if err := ms.advance(); err != nil {
					return err
				}
			}
		}
		if len(groups) > 1 {
			g := groups[0]
			for _, occ := range groups[1:] {
				g.Members = unionUint64(g.Members, occ.Members)
				if g.Type == "" {
					g.Type = occ.Type
				}
				if g.Name == "" {
					g.Name = occ.Name
				}
			}
			winner.Group = g
		}
		if err := emit(&winner); err != nil {
			return err
		}
	}
}
