package dataset

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestOptionsGolden proves the unified option set is purely observational:
// for every container format, saving the same snapshot with no options,
// with every worker-count variant, and with a progress callback produces
// byte-identical files and byte-identical manifests. The committed
// example snapshot doubles as the golden input so the assertion is pinned
// to real bytes in the tree, not to whatever this build happens to emit.
func TestOptionsGolden(t *testing.T) {
	snap, err := Load(filepath.Join("testdata", "example.snap.jsonl"))
	if err != nil {
		t.Fatalf("loading example snapshot: %v", err)
	}
	dir := t.TempDir()
	for _, ext := range []string{".jsonl", ".jsonl.gz", ".gob", ".gob.gz"} {
		variants := []struct {
			name string
			opts []Option
		}{
			{"none", nil},
			{"workers1", []Option{WithWorkers(1)}},
			{"workers4", []Option{WithWorkers(4)}},
			{"progress", []Option{WithProgress(func(string, int) {}), WithWorkers(2)}},
		}
		var goldData, goldMan []byte
		for _, v := range variants {
			path := filepath.Join(dir, "snap-"+v.name+ext)
			if err := snap.Save(path, v.opts...); err != nil {
				t.Fatalf("%s/%s: save: %v", ext, v.name, err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			man, err := os.ReadFile(ManifestPath(path))
			if err != nil {
				t.Fatal(err)
			}
			if goldData == nil {
				goldData, goldMan = data, man
				continue
			}
			if string(data) != string(goldData) {
				t.Errorf("%s/%s: snapshot bytes differ from the no-option save", ext, v.name)
			}
			if string(man) != string(goldMan) {
				t.Errorf("%s/%s: manifest differs from the no-option save:\n%s\nvs\n%s", ext, v.name, man, goldMan)
			}
		}
	}
}

// TestOptionsGoldenRoundTrip proves a re-save of the committed example
// snapshot reproduces its committed manifest exactly — same section CRCs,
// same counts, same whole-file SHA-256 — i.e. the codec has not drifted
// from the bytes already in the tree.
func TestOptionsGoldenRoundTrip(t *testing.T) {
	src := filepath.Join("testdata", "example.snap.jsonl")
	snap, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := ReadManifest(src)
	if err != nil {
		t.Fatal(err)
	}
	if committed == nil {
		t.Fatal("example snapshot has no committed manifest")
	}
	resaved := filepath.Join(t.TempDir(), "resave.jsonl")
	if err := snap.Save(resaved, WithWorkers(3)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, committed) {
		t.Errorf("re-saved manifest differs from committed manifest:\ngot  %+v\nwant %+v", got, committed)
	}
}

// TestMergeAtOptions proves MergeAt's options are observational too: the
// merged snapshot is identical with and without them, and the progress
// callback sees monotonically non-decreasing per-section counts ending at
// the final section sizes.
func TestMergeAtOptions(t *testing.T) {
	snap, err := Load(filepath.Join("testdata", "example.snap.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	half := len(snap.Users) / 2
	lo := &Snapshot{CollectedAt: snap.CollectedAt, Users: snap.Users[:half], Games: snap.Games, Groups: snap.Groups}
	hi := &Snapshot{CollectedAt: snap.CollectedAt, Users: snap.Users[half:], Games: snap.Games, Groups: snap.Groups}
	parts := []*Snapshot{lo, hi}

	plain, err := MergeAt(42, parts)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]int{}
	withOpts, err := MergeAt(42, parts, WithWorkers(2), WithProgress(func(section string, records int) {
		if records < last[section] {
			t.Errorf("progress for %s went backwards: %d then %d", section, last[section], records)
		}
		last[section] = records
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withOpts) {
		t.Error("MergeAt result differs with options")
	}
	if sig1, sig2 := plain.ContentSignature(), withOpts.ContentSignature(); sig1 != sig2 {
		t.Errorf("content signatures differ: %s vs %s", sig1, sig2)
	}
	if last["users"] != len(withOpts.Users) {
		t.Errorf("final users progress %d, merged has %d", last["users"], len(withOpts.Users))
	}
	if last["games"] != len(withOpts.Games) {
		t.Errorf("final games progress %d, merged has %d", last["games"], len(withOpts.Games))
	}
	if last["groups"] != len(withOpts.Groups) {
		t.Errorf("final groups progress %d, merged has %d", last["groups"], len(withOpts.Groups))
	}
}
