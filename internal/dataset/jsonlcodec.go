// Hand-rolled JSONL codec. The line-oriented export used to go through
// encoding/json record by record; at 108.7M accounts the reflection walk
// and per-record allocations dominate save/load time. This codec emits
// and parses the exact same bytes with append-style encoders and a
// strict scanner, so the on-disk format — including the committed golden
// snapshot and every manifest hash — is unchanged down to the byte.
//
// Byte compatibility is a hard requirement, not an aspiration: the
// encoder reproduces encoding/json's field order (declaration order, no
// tags on the record types), HTML-escaped strings ('<', '>', '&'
// become their \u003c-style escapes), the literal six characters
// \ufffd for invalid UTF-8, \u2028 and \u2029 escapes, the float formatting of json's floatEncoder, null for nil
// slices, and omitempty on the line envelope. The decoder's fast path
// accepts exactly what the encoder emits; any line it does not
// recognize — foreign field order, whitespace, escapes the fast path
// skips — falls back to encoding/json for that line, so hand-written or
// third-party JSONL keeps working with identical error messages.

package dataset

import (
	"encoding/json"
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// jsonSafe reports whether byte c passes through encoding/json's
// HTML-escaping string encoder unchanged (htmlSafeSet).
func jsonSafe(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}

// appendString appends s as a JSON string, byte-identical with
// encoding/json's default (HTML-escaping) encoder.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe(c) {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control chars plus '<', '>', '&'.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendFloat appends f exactly as encoding/json's floatEncoder would.
// ok is false for NaN and infinities, which JSON cannot represent; the
// caller falls back to encoding/json to surface the identical error.
func appendFloat(b []byte, f float64) (_ []byte, ok bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// appendHeaderLine appends the envelope line for the snapshot header,
// including the trailing newline json.Encoder.Encode writes.
func appendHeaderLine(b []byte, collectedAt int64) []byte {
	b = append(b, `{"kind":"header"`...)
	if collectedAt != 0 { // omitempty on the envelope
		b = append(b, `,"collected_at":`...)
		b = strconv.AppendInt(b, collectedAt, 10)
	}
	return append(b, '}', '\n')
}

func appendGameLine(b []byte, g *GameRecord) ([]byte, error) {
	mark := len(b)
	b = append(b, `{"kind":"game","game":`...)
	b, ok := appendGame(b, g)
	if !ok {
		// Non-finite float: re-encode through encoding/json purely to
		// produce its exact UnsupportedValueError.
		_, err := json.Marshal(jsonlLine{Kind: "game", Game: g})
		return b[:mark], err
	}
	return append(b, '}', '\n'), nil
}

func appendGame(b []byte, g *GameRecord) ([]byte, bool) {
	b = append(b, `{"AppID":`...)
	b = strconv.AppendUint(b, uint64(g.AppID), 10)
	b = append(b, `,"Name":`...)
	b = appendString(b, g.Name)
	b = append(b, `,"Type":`...)
	b = appendString(b, g.Type)
	b = append(b, `,"Genres":`...)
	if g.Genres == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i, s := range g.Genres {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendString(b, s)
		}
		b = append(b, ']')
	}
	b = append(b, `,"Multiplayer":`...)
	b = strconv.AppendBool(b, g.Multiplayer)
	b = append(b, `,"PriceCents":`...)
	b = strconv.AppendInt(b, g.PriceCents, 10)
	b = append(b, `,"Metacritic":`...)
	b = strconv.AppendInt(b, int64(g.Metacritic), 10)
	b = append(b, `,"ReleaseYear":`...)
	b = strconv.AppendInt(b, int64(g.ReleaseYear), 10)
	b = append(b, `,"Developer":`...)
	b = appendString(b, g.Developer)
	b = append(b, `,"Achievements":`...)
	if g.Achievements == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i := range g.Achievements {
			if i > 0 {
				b = append(b, ',')
			}
			a := &g.Achievements[i]
			b = append(b, `{"Name":`...)
			b = appendString(b, a.Name)
			b = append(b, `,"Percent":`...)
			var ok bool
			if b, ok = appendFloat(b, a.Percent); !ok {
				return b, false
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}'), true
}

func appendUserLine(b []byte, u *UserRecord) ([]byte, error) {
	b = append(b, `{"kind":"user","user":{"SteamID":`...)
	b = strconv.AppendUint(b, u.SteamID, 10)
	b = append(b, `,"Created":`...)
	b = strconv.AppendInt(b, u.Created, 10)
	b = append(b, `,"Country":`...)
	b = appendString(b, u.Country)
	b = append(b, `,"City":`...)
	b = appendString(b, u.City)
	b = append(b, `,"Friends":`...)
	if u.Friends == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i := range u.Friends {
			if i > 0 {
				b = append(b, ',')
			}
			f := &u.Friends[i]
			b = append(b, `{"SteamID":`...)
			b = strconv.AppendUint(b, f.SteamID, 10)
			b = append(b, `,"Since":`...)
			b = strconv.AppendInt(b, f.Since, 10)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"Games":`...)
	if u.Games == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i := range u.Games {
			if i > 0 {
				b = append(b, ',')
			}
			g := &u.Games[i]
			b = append(b, `{"AppID":`...)
			b = strconv.AppendUint(b, uint64(g.AppID), 10)
			b = append(b, `,"TotalMinutes":`...)
			b = strconv.AppendInt(b, g.TotalMinutes, 10)
			b = append(b, `,"TwoWeekMinutes":`...)
			b = strconv.AppendInt(b, int64(g.TwoWeekMinutes), 10)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"Groups":`...)
	b = appendUint64s(b, u.Groups)
	return append(b, '}', '}', '\n'), nil
}

func appendGroupLine(b []byte, g *GroupRecord) ([]byte, error) {
	b = append(b, `{"kind":"group","group":{"GID":`...)
	b = strconv.AppendUint(b, g.GID, 10)
	b = append(b, `,"Name":`...)
	b = appendString(b, g.Name)
	b = append(b, `,"Type":`...)
	b = appendString(b, g.Type)
	b = append(b, `,"Members":`...)
	b = appendUint64s(b, g.Members)
	return append(b, '}', '}', '\n'), nil
}

func appendUint64s(b []byte, v []uint64) []byte {
	if v == nil {
		return append(b, `null`...)
	}
	b = append(b, '[')
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, x, 10)
	}
	return append(b, ']')
}

// --- decoding -----------------------------------------------------------

// interner dedups bounded-cardinality strings during decode. Country and
// city codes, game/group types, genres and developers are drawn from
// small fixed vocabularies, so a 500k-user decode otherwise allocates
// millions of copies of the same few hundred values; interning keeps one
// instance per distinct value per decode chunk. Lookups convert []byte
// keys without allocating (the compiler recognizes m[string(b)]).
type interner struct{ m map[string]string }

func (in *interner) intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if in.m == nil {
		in.m = make(map[string]string, 64)
	}
	in.m[s] = s
	return s
}

// lineScanner is a strict cursor over one trimmed JSONL line. Every
// method reports failure instead of guessing; the caller treats any
// failure as "not the canonical layout" and falls back to encoding/json.
type lineScanner struct {
	b   []byte
	pos int
	in  *interner
}

func (p *lineScanner) lit(s string) bool {
	if len(p.b)-p.pos < len(s) || string(p.b[p.pos:p.pos+len(s)]) != s {
		return false
	}
	p.pos += len(s)
	return true
}

func (p *lineScanner) done() bool { return p.pos == len(p.b) }

func (p *lineScanner) uint64v() (uint64, bool) {
	start := p.pos
	for p.pos < len(p.b) && p.b[p.pos] >= '0' && p.b[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, false
	}
	v, err := strconv.ParseUint(string(p.b[start:p.pos]), 10, 64)
	return v, err == nil
}

func (p *lineScanner) int64v() (int64, bool) {
	start := p.pos
	if p.pos < len(p.b) && p.b[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.b) && p.b[p.pos] >= '0' && p.b[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.b[start] == '-') {
		return 0, false
	}
	v, err := strconv.ParseInt(string(p.b[start:p.pos]), 10, 64)
	return v, err == nil
}

// float64v scans a JSON number token. Exponents and fractions are
// delegated to strconv, which accepts exactly the token the encoder
// emitted.
func (p *lineScanner) float64v() (float64, bool) {
	start := p.pos
	for p.pos < len(p.b) {
		c := p.b[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(p.b[start:p.pos]), 64)
	return v, err == nil
}

// stringv scans a JSON string. Escape sequences are rare in this data
// (game names and country codes are plain text), so the fast path only
// handles escape-free strings and punts anything with a backslash to the
// encoding/json fallback for the whole line.
func (p *lineScanner) stringBytes() ([]byte, bool) {
	if p.pos >= len(p.b) || p.b[p.pos] != '"' {
		return nil, false
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.b) {
		switch p.b[p.pos] {
		case '"':
			b := p.b[start:p.pos]
			p.pos++
			return b, true
		case '\\':
			return nil, false
		}
		p.pos++
	}
	return nil, false
}

func (p *lineScanner) stringv() (string, bool) {
	b, ok := p.stringBytes()
	if !ok {
		return "", false
	}
	return string(b), true
}

// stringvI is stringv for fields with bounded vocabularies; values are
// interned when the scanner carries an interner.
func (p *lineScanner) stringvI() (string, bool) {
	b, ok := p.stringBytes()
	if !ok {
		return "", false
	}
	if p.in != nil {
		return p.in.intern(b), true
	}
	return string(b), true
}

func (p *lineScanner) boolv() (bool, bool) {
	if p.lit("true") {
		return true, true
	}
	if p.lit("false") {
		return false, true
	}
	return false, false
}

func (p *lineScanner) uint64sField(key string) ([]uint64, bool) {
	if !p.lit(key) {
		return nil, false
	}
	if p.lit("null") {
		return nil, true
	}
	if !p.lit("[") {
		return nil, false
	}
	out := []uint64{}
	for !p.lit("]") {
		if len(out) > 0 && !p.lit(",") {
			return nil, false
		}
		v, ok := p.uint64v()
		if !ok {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// decodedLine is one parsed JSONL record, kind-tagged like jsonlLine but
// value-typed so chunk decoding allocates nothing per line beyond the
// record payloads themselves.
type decodedLine struct {
	kind        byte // 'h', 'g', 'u', 'p' (group)
	collectedAt int64
	game        GameRecord
	user        UserRecord
	group       GroupRecord
}

// decodeLineFast parses one trimmed line of the canonical encoder
// layout. ok=false means "not canonical" — not an error; the caller
// retries with encoding/json.
func decodeLineFast(trimmed []byte, out *decodedLine, in *interner) bool {
	p := lineScanner{b: trimmed, in: in}
	if !p.lit(`{"kind":"`) {
		return false
	}
	switch {
	case p.lit(`header"`):
		out.kind = 'h'
		out.collectedAt = 0
		if p.lit(`}`) {
			return p.done()
		}
		if !p.lit(`,"collected_at":`) {
			return false
		}
		v, ok := p.int64v()
		if !ok {
			return false
		}
		out.collectedAt = v
		return p.lit(`}`) && p.done()
	case p.lit(`game","game":`):
		out.kind = 'g'
		return decodeGameFast(&p, &out.game) && p.lit(`}`) && p.done()
	case p.lit(`user","user":`):
		out.kind = 'u'
		return decodeUserFast(&p, &out.user) && p.lit(`}`) && p.done()
	case p.lit(`group","group":`):
		out.kind = 'p'
		return decodeGroupFast(&p, &out.group) && p.lit(`}`) && p.done()
	}
	return false
}

func decodeGameFast(p *lineScanner, g *GameRecord) bool {
	*g = GameRecord{}
	if !p.lit(`{"AppID":`) {
		return false
	}
	appID, ok := p.uint64v()
	if !ok || appID > math.MaxUint32 {
		return false
	}
	g.AppID = uint32(appID)
	if !p.lit(`,"Name":`) {
		return false
	}
	if g.Name, ok = p.stringv(); !ok {
		return false
	}
	if !p.lit(`,"Type":`) {
		return false
	}
	if g.Type, ok = p.stringvI(); !ok {
		return false
	}
	if !p.lit(`,"Genres":`) {
		return false
	}
	if !p.lit("null") {
		if !p.lit("[") {
			return false
		}
		g.Genres = []string{}
		for !p.lit("]") {
			if len(g.Genres) > 0 && !p.lit(",") {
				return false
			}
			s, ok := p.stringvI()
			if !ok {
				return false
			}
			g.Genres = append(g.Genres, s)
		}
	}
	if !p.lit(`,"Multiplayer":`) {
		return false
	}
	if g.Multiplayer, ok = p.boolv(); !ok {
		return false
	}
	if !p.lit(`,"PriceCents":`) {
		return false
	}
	if g.PriceCents, ok = p.int64v(); !ok {
		return false
	}
	if !p.lit(`,"Metacritic":`) {
		return false
	}
	mc, ok := p.int64v()
	if !ok {
		return false
	}
	g.Metacritic = int(mc)
	if !p.lit(`,"ReleaseYear":`) {
		return false
	}
	ry, ok := p.int64v()
	if !ok {
		return false
	}
	g.ReleaseYear = int(ry)
	if !p.lit(`,"Developer":`) {
		return false
	}
	if g.Developer, ok = p.stringvI(); !ok {
		return false
	}
	if !p.lit(`,"Achievements":`) {
		return false
	}
	if !p.lit("null") {
		if !p.lit("[") {
			return false
		}
		g.Achievements = []AchievementRecord{}
		for !p.lit("]") {
			if len(g.Achievements) > 0 && !p.lit(",") {
				return false
			}
			var a AchievementRecord
			if !p.lit(`{"Name":`) {
				return false
			}
			if a.Name, ok = p.stringv(); !ok {
				return false
			}
			if !p.lit(`,"Percent":`) {
				return false
			}
			if a.Percent, ok = p.float64v(); !ok {
				return false
			}
			if !p.lit("}") {
				return false
			}
			g.Achievements = append(g.Achievements, a)
		}
	}
	return p.lit("}")
}

func decodeUserFast(p *lineScanner, u *UserRecord) bool {
	*u = UserRecord{}
	if !p.lit(`{"SteamID":`) {
		return false
	}
	var ok bool
	if u.SteamID, ok = p.uint64v(); !ok {
		return false
	}
	if !p.lit(`,"Created":`) {
		return false
	}
	if u.Created, ok = p.int64v(); !ok {
		return false
	}
	if !p.lit(`,"Country":`) {
		return false
	}
	if u.Country, ok = p.stringvI(); !ok {
		return false
	}
	if !p.lit(`,"City":`) {
		return false
	}
	if u.City, ok = p.stringvI(); !ok {
		return false
	}
	if !p.lit(`,"Friends":`) {
		return false
	}
	if !p.lit("null") {
		if !p.lit("[") {
			return false
		}
		u.Friends = []FriendRecord{}
		for !p.lit("]") {
			if len(u.Friends) > 0 && !p.lit(",") {
				return false
			}
			var f FriendRecord
			if !p.lit(`{"SteamID":`) {
				return false
			}
			if f.SteamID, ok = p.uint64v(); !ok {
				return false
			}
			if !p.lit(`,"Since":`) {
				return false
			}
			if f.Since, ok = p.int64v(); !ok {
				return false
			}
			if !p.lit("}") {
				return false
			}
			u.Friends = append(u.Friends, f)
		}
	}
	if !p.lit(`,"Games":`) {
		return false
	}
	if !p.lit("null") {
		if !p.lit("[") {
			return false
		}
		u.Games = []OwnershipRecord{}
		for !p.lit("]") {
			if len(u.Games) > 0 && !p.lit(",") {
				return false
			}
			var g OwnershipRecord
			if !p.lit(`{"AppID":`) {
				return false
			}
			appID, ok := p.uint64v()
			if !ok || appID > math.MaxUint32 {
				return false
			}
			g.AppID = uint32(appID)
			if !p.lit(`,"TotalMinutes":`) {
				return false
			}
			if g.TotalMinutes, ok = p.int64v(); !ok {
				return false
			}
			if !p.lit(`,"TwoWeekMinutes":`) {
				return false
			}
			tw, ok := p.int64v()
			if !ok || tw > math.MaxInt32 || tw < math.MinInt32 {
				return false
			}
			g.TwoWeekMinutes = int32(tw)
			if !p.lit("}") {
				return false
			}
			u.Games = append(u.Games, g)
		}
	}
	groups, ok := p.uint64sField(`,"Groups":`)
	if !ok {
		return false
	}
	u.Groups = groups
	return p.lit("}")
}

func decodeGroupFast(p *lineScanner, g *GroupRecord) bool {
	*g = GroupRecord{}
	if !p.lit(`{"GID":`) {
		return false
	}
	var ok bool
	if g.GID, ok = p.uint64v(); !ok {
		return false
	}
	if !p.lit(`,"Name":`) {
		return false
	}
	if g.Name, ok = p.stringv(); !ok {
		return false
	}
	if !p.lit(`,"Type":`) {
		return false
	}
	if g.Type, ok = p.stringvI(); !ok {
		return false
	}
	members, ok := p.uint64sField(`,"Members":`)
	if !ok {
		return false
	}
	g.Members = members
	return p.lit("}")
}
