package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// small snapshot for persistence tests — big enough that sections occupy
// distinct file regions, small enough to corrupt surgically.
func persistSnapshot() *Snapshot {
	s := &Snapshot{CollectedAt: 1_400_000_000}
	for id := uint64(1); id <= 20; id++ {
		u := UserRecord{SteamID: id, Created: int64(id) * 1000, Country: "DE"}
		if id > 1 {
			u.Friends = append(u.Friends, FriendRecord{SteamID: id - 1, Since: 50})
		}
		if id < 20 {
			u.Friends = append(u.Friends, FriendRecord{SteamID: id + 1, Since: 50})
		}
		u.Games = append(u.Games, OwnershipRecord{AppID: 10, TotalMinutes: 600, TwoWeekMinutes: 30})
		s.Users = append(s.Users, u)
	}
	s.Games = []GameRecord{
		{AppID: 10, Name: "Alpha", Type: "game", Genres: []string{"Action"}, PriceCents: 999,
			Achievements: []AchievementRecord{{Name: "ACH_0", Percent: 42.5}}},
		{AppID: 20, Name: "Beta", Type: "game"},
	}
	s.Groups = []GroupRecord{{GID: 7, Name: "grp", Type: "Single Game"}}
	return s
}

func TestSaveRejectsUnknownExtension(t *testing.T) {
	s := persistSnapshot()
	for _, name := range []string{"snap.json", "snap.gob.bak", "snapjson", "snap.jsonl.zip", "snap"} {
		err := s.Save(filepath.Join(t.TempDir(), name))
		if err == nil || !strings.Contains(err.Error(), "unknown snapshot extension") {
			t.Fatalf("%s: want unknown-extension error, got %v", name, err)
		}
	}
	// The old substring sniff accepted things like "x.jsonl.bak"; explicit
	// suffix matching must not.
	if err := s.Save(filepath.Join(t.TempDir(), "x.jsonl.bak")); err == nil {
		t.Fatal("jsonl-infix path with unknown suffix accepted")
	}
}

func TestLoadRejectsUnknownExtension(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "snap.csv")); err == nil ||
		!strings.Contains(err.Error(), "unknown snapshot extension") {
		t.Fatalf("want unknown-extension error, got %v", err)
	}
}

func TestSaveWritesManifestSidecar(t *testing.T) {
	s := persistSnapshot()
	for _, name := range []string{"snap.gob", "snap.gob.gz", "snap.jsonl", "snap.jsonl.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := s.Save(path); err != nil {
			t.Fatal(err)
		}
		man, err := ReadManifest(path)
		if err != nil {
			t.Fatal(err)
		}
		if man == nil {
			t.Fatalf("%s: no manifest written", name)
		}
		if man.FormatVersion != SnapshotFormatVersion {
			t.Fatalf("%s: manifest version %d", name, man.FormatVersion)
		}
		if man.Sections["users"].Records != len(s.Users) ||
			man.Sections["games"].Records != len(s.Games) ||
			man.Sections["groups"].Records != len(s.Groups) {
			t.Fatalf("%s: manifest counts %+v", name, man.Sections)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if man.FileBytes != info.Size() {
			t.Fatalf("%s: manifest records %d bytes, file is %d", name, man.FileBytes, info.Size())
		}
		if _, err := Load(path); err != nil {
			t.Fatalf("%s: verified load failed: %v", name, err)
		}
	}
}

// The section checksums are canonical: the same snapshot saved in every
// container format carries identical per-section CRCs.
func TestManifestSectionChecksumsFormatIndependent(t *testing.T) {
	s := persistSnapshot()
	dir := t.TempDir()
	var ref map[string]SectionSum
	for _, name := range []string{"a.gob", "b.gob.gz", "c.jsonl", "d.jsonl.gz"} {
		path := filepath.Join(dir, name)
		if err := s.Save(path); err != nil {
			t.Fatal(err)
		}
		man, err := ReadManifest(path)
		if err != nil || man == nil {
			t.Fatalf("manifest for %s: %v", name, err)
		}
		if ref == nil {
			ref = man.Sections
		} else if !reflect.DeepEqual(ref, man.Sections) {
			t.Fatalf("%s: section sums diverge: %+v vs %+v", name, man.Sections, ref)
		}
	}
}

// Atomicity: aborting Save at any crashpoint leaves the previous
// snapshot+manifest loadable and leaves no state that fails verification.
func TestSaveCrashpointsNeverExposeTornState(t *testing.T) {
	defer func() { saveCrashHook = nil }()
	injected := errors.New("simulated crash")
	s1 := persistSnapshot()
	s2 := persistSnapshot()
	s2.CollectedAt++
	// Visibly different second version (still referentially sound).
	s2.Users = append(s2.Users, UserRecord{SteamID: 99, Created: 99_000, Country: "SE"})

	for _, stage := range []string{"temp-written", "manifest-retired", "data-renamed"} {
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.gob")
		saveCrashHook = nil
		if err := s1.Save(path); err != nil {
			t.Fatal(err)
		}
		saveCrashHook = func(at string) error {
			if at == stage {
				return injected
			}
			return nil
		}
		err := s2.Save(path)
		if !errors.Is(err, injected) {
			t.Fatalf("stage %s: want injected crash, got %v", stage, err)
		}
		saveCrashHook = nil

		got, err := Load(path)
		if err != nil {
			t.Fatalf("stage %s: load after crash failed: %v", stage, err)
		}
		// Before the data rename the old snapshot survives; after it the
		// new one is fully published (manifest pending, so unverified) —
		// either way a complete, consistent snapshot.
		wantUsers := len(s1.Users)
		if stage == "data-renamed" {
			wantUsers = len(s2.Users)
		}
		if len(got.Users) != wantUsers {
			t.Fatalf("stage %s: loaded %d users, want %d", stage, len(got.Users), wantUsers)
		}
		rep, err := FsckFile(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("stage %s: post-crash fsck dirty:\n%s", stage, rep)
		}
	}
}

// The abort path removes its temp files and reports the error exactly
// once (the old code left a truncated destination behind on encode
// failure and raced two Closes).
func TestSaveAbortLeavesNoTempLitter(t *testing.T) {
	defer func() { saveCrashHook = nil }()
	injected := errors.New("simulated crash")
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob.gz")
	saveCrashHook = func(string) error { return injected }
	if err := persistSnapshot().Save(path); !errors.Is(err, injected) {
		t.Fatalf("want injected error, got %v", err)
	}
	saveCrashHook = nil
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("aborted save left temp file %s", e.Name())
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("aborted save published a destination file: %v", err)
	}
}

func TestLoadDetectsTruncatedGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob.gz")
	s := persistSnapshot()
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-20); err != nil {
		t.Fatal(err)
	}
	// With the manifest: the raw size check localizes it as truncation.
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", err)
	}
	// Without the manifest: the decode still fails with a wrapped,
	// descriptive error — never a panic.
	if err := os.Remove(ManifestPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "decoding") {
		t.Fatalf("want wrapped decode error, got %v", err)
	}
}

func TestLoadDetectsBitFlippedGob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob")
	s := persistSnapshot()
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x41
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("bit-flipped gob loaded without error")
	}
	// fsck names what failed instead of stopping at the first error.
	rep, err := FsckFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck of bit-flipped gob reported clean")
	}
	if rep.Counts[ViolationFileHash] == 0 {
		t.Fatalf("fsck missed the raw-byte damage:\n%s", rep)
	}
}

// A value-level corruption that still decodes (the nastiest case: no
// decoder error at all) is caught by the section checksum and the error
// names the damaged section.
func TestLoadLocalizesDamagedSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	s := persistSnapshot()
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the Alpha game's price: still valid JSON, still
	// decodes, but the games section no longer matches its checksum.
	mutated := strings.Replace(string(b), `"PriceCents":999`, `"PriceCents":998`, 1)
	if mutated == string(b) {
		t.Fatal("test setup: price field not found")
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil || !strings.Contains(err.Error(), "games section checksum mismatch") {
		t.Fatalf("want games-section checksum error, got %v", err)
	}
	rep, err := FsckFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts[ViolationSectionChecksum] == 0 {
		t.Fatalf("fsck missed the section damage:\n%s", rep)
	}
	found := false
	for _, sample := range rep.Samples[ViolationSectionChecksum] {
		if strings.Contains(sample, "games") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck did not name the games section:\n%s", rep)
	}
}

func TestLoadReportsJSONLLineNumbers(t *testing.T) {
	dir := t.TempDir()

	// Unknown record kind mid-stream.
	path := filepath.Join(dir, "kind.jsonl")
	content := `{"kind":"header","collected_at":5}
{"kind":"game","game":{"AppID":10,"Name":"Alpha"}}
{"kind":"mystery"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("want line-3 unknown-kind error, got %v", err)
	}

	// Malformed JSON.
	path = filepath.Join(dir, "syntax.jsonl")
	content = `{"kind":"header","collected_at":5}
{"kind":"game","game":{"AppID":10,`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 syntax error, got %v", err)
	}

	// Payload missing for its kind.
	path = filepath.Join(dir, "payload.jsonl")
	content = `{"kind":"header","collected_at":5}
{"kind":"user"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 missing-payload error, got %v", err)
	}
}

func TestLoadCorruptManifestIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob")
	if err := persistSnapshot().Save(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ManifestPath(path), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("want manifest error, got %v", err)
	}
}

func TestLoadRefusesNewerFormatVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob")
	if err := persistSnapshot().Save(path); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	man.FormatVersion = SnapshotFormatVersion + 1
	tmp, err := writeManifestTemp(filepath.Dir(path), man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, ManifestPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("want format-version error, got %v", err)
	}
}

func TestLoadWithoutManifestStillWorks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.jsonl.gz")
	s := persistSnapshot()
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ManifestPath(path)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("manifest-less load failed: %v", err)
	}
	if !reflect.DeepEqual(got.Users, s.Users) {
		t.Fatal("round trip without manifest lost data")
	}
}
