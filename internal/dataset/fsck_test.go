package dataset

import (
	"path/filepath"
	"strings"
	"testing"

	"steamstudy/internal/obs"
)

// fsckFixture is a minimal snapshot that passes every referential check;
// the violation tests each break exactly one thing in a copy of it.
func fsckFixture() *Snapshot {
	return &Snapshot{
		CollectedAt: 100,
		Users: []UserRecord{
			{SteamID: 1,
				Friends: []FriendRecord{{SteamID: 2, Since: 10}},
				Games:   []OwnershipRecord{{AppID: 10, TotalMinutes: 120, TwoWeekMinutes: 60}},
				Groups:  []uint64{7}},
			{SteamID: 2,
				Friends: []FriendRecord{{SteamID: 1, Since: 10}}},
		},
		Games:  []GameRecord{{AppID: 10, Name: "Alpha", Type: "game"}},
		Groups: []GroupRecord{{GID: 7, Name: "grp", Members: []uint64{1}}},
	}
}

// The section checksums are part of the on-disk format: a manifest
// written today must verify in any future build and in any process,
// whatever it happened to encode beforehand. Pin the fixture's CRCs.
// (Regression: an earlier draft hashed gob output, whose bytes depend on
// the process-global gob type-ID counter — the same snapshot checksummed
// differently depending on what the process had encoded first.)
func TestSectionChecksumsAreStable(t *testing.T) {
	f := fsckFixture()
	if got := sectionCRCUsers(f.Users); got != 0xd6730c03 {
		t.Errorf("users CRC = %08x, want d6730c03", got)
	}
	if got := sectionCRCGames(f.Games); got != 0x6a46096c {
		t.Errorf("games CRC = %08x, want 6a46096c", got)
	}
	if got := sectionCRCGroups(f.Groups); got != 0x641af34a {
		t.Errorf("groups CRC = %08x, want 641af34a", got)
	}
}

func TestFsckCleanFixture(t *testing.T) {
	rep := fsckFixture().Fsck()
	if !rep.Clean() {
		t.Fatalf("fixture should be clean:\n%s", rep)
	}
	if rep.RecordsVerified != 4 { // 2 users + 1 game + 1 group
		t.Fatalf("RecordsVerified = %d, want 4", rep.RecordsVerified)
	}
}

func TestFsckReferentialViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		class  ViolationClass
	}{
		{"friend references unknown account", func(s *Snapshot) {
			s.Users[0].Friends = append(s.Users[0].Friends, FriendRecord{SteamID: 999})
		}, ViolationFriendUnknown},
		{"friendship not reciprocated", func(s *Snapshot) {
			s.Users[1].Friends = nil
		}, ViolationFriendAsymmetric},
		{"user lists itself as a friend", func(s *Snapshot) {
			s.Users[0].Friends = append(s.Users[0].Friends, FriendRecord{SteamID: 1})
		}, ViolationSelfFriend},
		{"owned app missing from catalog", func(s *Snapshot) {
			s.Users[0].Games = append(s.Users[0].Games, OwnershipRecord{AppID: 404, TotalMinutes: 1})
		}, ViolationOwnedAppUnknown},
		{"app owned twice", func(s *Snapshot) {
			s.Users[0].Games = append(s.Users[0].Games, s.Users[0].Games[0])
		}, ViolationDuplicateOwnership},
		{"two-week playtime exceeds lifetime", func(s *Snapshot) {
			s.Users[0].Games[0].TwoWeekMinutes = 500
		}, ViolationPlaytimeInvariant},
		{"negative playtime", func(s *Snapshot) {
			s.Users[0].Games[0].TotalMinutes = -1
		}, ViolationPlaytimeInvariant},
		{"membership in uncrawled group", func(s *Snapshot) {
			s.Users[0].Groups = append(s.Users[0].Groups, 404)
		}, ViolationMembershipUnknown},
		{"user lists group, group omits user", func(s *Snapshot) {
			s.Groups[0].Members = nil
		}, ViolationMembershipAsymmetric},
		{"group lists user, user omits group", func(s *Snapshot) {
			s.Users[0].Groups = nil
		}, ViolationMembershipAsymmetric},
		{"group lists unknown account", func(s *Snapshot) {
			s.Groups[0].Members = append(s.Groups[0].Members, 999)
		}, ViolationMemberUnknown},
		{"duplicate user record", func(s *Snapshot) {
			s.Users = append(s.Users, UserRecord{SteamID: 1})
		}, ViolationDuplicateUser},
		{"duplicate game record", func(s *Snapshot) {
			s.Games = append(s.Games, s.Games[0])
		}, ViolationDuplicateGame},
		{"duplicate group record", func(s *Snapshot) {
			s.Groups = append(s.Groups, GroupRecord{GID: 7})
		}, ViolationDuplicateGroup},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := fsckFixture()
			tc.mutate(s)
			rep := s.Fsck()
			if rep.Counts[tc.class] == 0 {
				t.Fatalf("expected %s violation, report:\n%s", tc.class, rep)
			}
		})
	}
}

// A thoroughly damaged snapshot keeps counting instead of stopping at the
// first violation, and caps retained samples.
func TestFsckAccumulatesAndCapsSamples(t *testing.T) {
	s := fsckFixture()
	for id := uint64(100); id < 110; id++ {
		s.Users[0].Friends = append(s.Users[0].Friends, FriendRecord{SteamID: id})
	}
	s.Users[0].Games[0].TwoWeekMinutes = 500
	rep := s.Fsck()
	if rep.Counts[ViolationFriendUnknown] != 10 {
		t.Fatalf("counted %d unknown friends, want 10", rep.Counts[ViolationFriendUnknown])
	}
	if rep.Counts[ViolationPlaytimeInvariant] != 1 {
		t.Fatalf("playtime violation lost: %v", rep.Counts)
	}
	if n := len(rep.Samples[ViolationFriendUnknown]); n != maxSamplesPerClass {
		t.Fatalf("retained %d samples, want %d", n, maxSamplesPerClass)
	}
	if rep.Violations() != 11 {
		t.Fatalf("Violations() = %d, want 11", rep.Violations())
	}
}

// The generator's output must satisfy the full referential schema — the
// same bar the crawler's snapshots are held to.
func TestFsckGeneratedUniverseClean(t *testing.T) {
	rep := testSnapshot(t).Fsck()
	if !rep.Clean() {
		t.Fatalf("generated universe fails fsck:\n%s", rep)
	}
}

// End-to-end file check on a clean snapshot, with metrics wiring.
func TestFsckFileCleanAndMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.gob.gz")
	if err := fsckFixture().Save(path); err != nil {
		t.Fatal(err)
	}
	im := &IntegrityMetrics{}
	im.Register(obs.NewRegistry())
	rep, err := FsckFile(path, im)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || !rep.ManifestVerified {
		t.Fatalf("clean file reported dirty:\n%s", rep)
	}
	if im.RecordsVerified.Load() != rep.RecordsVerified {
		t.Fatalf("metrics records=%d, report=%d", im.RecordsVerified.Load(), rep.RecordsVerified)
	}
	if im.ChecksumFailures.Load() != 0 || im.Violations.Load() != 0 {
		t.Fatal("clean fsck incremented failure counters")
	}
	if !strings.Contains(rep.String(), "clean") {
		t.Fatalf("report rendering: %s", rep)
	}
}

// The committed example snapshot (testdata) must stay fsck-clean; it is
// the fixture `make fsck` and the README demonstrate against.
func TestFsckCommittedExample(t *testing.T) {
	rep, err := FsckFile(filepath.Join("testdata", "example.snap.jsonl"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("committed example snapshot is dirty:\n%s", rep)
	}
	if !rep.ManifestVerified {
		t.Fatal("committed example snapshot has no verified manifest")
	}
}
