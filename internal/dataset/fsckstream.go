// Streaming fsck for sharded snapshot directories. The in-memory fsck
// decodes the whole snapshot and then cross-references it; at paper scale
// that decode is exactly what the sharded layout exists to avoid. This
// file runs the same checks as multiple bounded-memory passes over the
// section iterators:
//
//	raw bytes    per-segment CRC-32C + byte counts, concatenated SHA-256
//	games        catalog set, duplicate detection, canonical CRC
//	groups #1    member-set index (sorted copies), duplicates, CRC
//	users #1     SteamID census, duplicate detection, canonical CRC
//	users #2     friend-edge index + ownership/playtime/membership checks
//	users #3     self-friend / friend-unknown / friend-asymmetric
//	groups #2    member-unknown / membership-asymmetric (group side)
//
// What stays resident is index data — packed int32-pair edge and
// membership arrays, the sorted ID census, sorted member slabs — a few
// dozen bytes per relation instead of the decoded records themselves.
//
// The report is identical to what Fsck produces on the decoded snapshot:
// every violation class is emitted by exactly one pass in record order,
// and Report keys samples per class, so per-class counts and sample
// prefixes match the in-memory pass (the property tests assert this).
// The one representational difference: user and group references are
// resolved through first-occurrence indexes over the ID census, exactly
// mirroring the in-memory index maps (userAt first-wins, memberOf
// last-wins, friend edges keyed by ID pairs).

package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
)

// fsckShardDir runs FsckFile's checks over a sharded directory. The error
// is environmental (unreadable directory); corruption lands in r.
func fsckShardDir(path string, r *Report, o options) error {
	man, merr := ReadManifest(path)
	switch {
	case merr != nil:
		r.add(ViolationManifest, "%v", merr)
		man = nil
	case man == nil:
		// No sidecar: structural checks are limited to decodability.
	case man.FormatVersion > SnapshotShardFormatVersion:
		r.add(ViolationFormatVersion, "manifest format version %d is newer than this build supports (%d)",
			man.FormatVersion, SnapshotShardFormatVersion)
		man = nil
	default:
		r.ManifestVerified = true
		verifyShardBytes(path, man, r)
	}

	st, derr := fsckScan(path, man, o)
	if st != nil {
		r.Users, r.Games, r.Groups = st.users, st.games, st.groups
	}
	if derr != nil {
		// Mirror the in-memory path: a decode failure reports the shape
		// seen so far and the decode violation; referential results from
		// the aborted scan are discarded, not half-reported.
		r.add(ViolationDecode, "%v", derr)
		return nil
	}
	if man != nil && r.ManifestVerified {
		for _, v := range st.verifySections(man) {
			r.addViolation(v)
		}
	}
	r.merge(st.sub)
	return nil
}

// verifyShardBytes is verifyFile for the sharded layout: every segment's
// raw bytes are checked against the manifest's per-shard byte count and
// CRC-32C, and the concatenated stream against FileBytes/FileSHA256.
// Damage localizes to a segment name; all failures land in r as
// ViolationFileHash.
func verifyShardBytes(dir string, man *Manifest, r *Report) {
	sha := sha256.New()
	var total int64
	for i := range man.Shards {
		s := &man.Shards[i]
		crc := crc32.New(castagnoli)
		f, err := os.Open(filepath.Join(dir, s.File))
		if err != nil {
			r.add(ViolationFileHash, "%v", fmt.Errorf("dataset: %s: segment %s: %v", dir, s.File, err))
			continue
		}
		n, err := io.Copy(io.MultiWriter(crc, sha), f)
		f.Close()
		total += n
		if err != nil {
			r.add(ViolationFileHash, "%v", fmt.Errorf("dataset: %s: segment %s: %v", dir, s.File, err))
			continue
		}
		if n != s.Bytes {
			r.add(ViolationFileHash, "dataset: %s: segment %s is %d bytes, manifest records %d (truncated or partially overwritten)",
				dir, s.File, n, s.Bytes)
		} else if got := crc.Sum32(); got != s.CRC32C {
			r.add(ViolationFileHash, "dataset: %s: segment %s checksum mismatch (file %08x, manifest %08x): on-disk corruption",
				dir, s.File, got, s.CRC32C)
		}
	}
	if total != man.FileBytes {
		r.add(ViolationFileHash, "dataset: %s is %d bytes, manifest records %d (truncated or partially overwritten)",
			dir, total, man.FileBytes)
	} else if got := hex.EncodeToString(sha.Sum(nil)); got != man.FileSHA256 {
		r.add(ViolationFileHash, "dataset: %s stream hash mismatch (got %s, manifest %s): on-disk corruption", dir, got, man.FileSHA256)
	}
}

// fsckScanState accumulates the streaming referential scan.
type fsckScanState struct {
	users, games, groups int
	collectedAt          int64
	crc                  map[string]uint32 // canonical section CRCs
	sub                  *Report           // referential violations + RecordsVerified
}

// verifySections mirrors Manifest.verifySections against the streamed
// counts and checksums, with identical detail strings.
func (st *fsckScanState) verifySections(m *Manifest) []Violation {
	var out []Violation
	check := func(name string, records int, crc uint32) {
		want, ok := m.Sections[name]
		if !ok {
			out = append(out, Violation{Class: ViolationSectionCount,
				Detail: fmt.Sprintf("%s section missing from manifest", name)})
			return
		}
		if want.Records != records {
			out = append(out, Violation{Class: ViolationSectionCount,
				Detail: fmt.Sprintf("%s section has %d records, manifest records %d", name, records, want.Records)})
		}
		if want.CRC32C != crc {
			out = append(out, Violation{Class: ViolationSectionChecksum,
				Detail: fmt.Sprintf("%s section checksum mismatch (file %08x, manifest %08x)", name, crc, want.CRC32C)})
		}
	}
	check(sectionUsers, st.users, st.crc[sectionUsers])
	check(sectionGames, st.games, st.crc[sectionGames])
	check(sectionGroups, st.groups, st.crc[sectionGroups])
	if st.collectedAt != m.CollectedAt {
		out = append(out, Violation{Class: ViolationHeader,
			Detail: fmt.Sprintf("header CollectedAt %d, manifest records %d", st.collectedAt, m.CollectedAt)})
	}
	return out
}

// idCensus is the streaming stand-in for the in-memory userAt map: every
// streamed SteamID in record order, plus a (sorted id, position) view for
// binary-search lookups. For duplicate IDs find returns the first
// occurrence, matching userAt's first-wins insert.
type idCensus struct {
	ids  []uint64 // stream order
	keys []uint64 // sorted
	pos  []int32  // keys[i] appeared at stream position pos[i]
}

func (c *idCensus) build() {
	n := len(c.ids)
	c.pos = make([]int32, n)
	for i := range c.pos {
		c.pos[i] = int32(i)
	}
	sort.SliceStable(c.pos, func(a, b int) bool { return c.ids[c.pos[a]] < c.ids[c.pos[b]] })
	c.keys = make([]uint64, n)
	for i, p := range c.pos {
		c.keys[i] = c.ids[p]
	}
}

// find returns the first stream position of id.
func (c *idCensus) find(id uint64) (int32, bool) {
	i, ok := slices.BinarySearch(c.keys, id)
	if !ok {
		return 0, false
	}
	return c.pos[i], true
}

// packPair packs two int32 indexes into a sortable uint64 key.
func packPair(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

func hasPair(sorted []uint64, key uint64) bool {
	_, ok := slices.BinarySearch(sorted, key)
	return ok
}

// streamSection iterates one section of the snapshot with segment
// verification off (the raw pass already judged the bytes), returning the
// header timestamp.
func streamSection(path, section string, fn func(rec *Record)) (int64, error) {
	r, err := openSectionRaw(path, section)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	var rec Record
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			return r.CollectedAt(), err
		}
		if !ok {
			return r.CollectedAt(), nil
		}
		fn(&rec)
	}
}

// fsckScan runs the referential passes. A decode error aborts the scan,
// returning the per-section counts seen so far; options are accepted for
// pipeline uniformity (the passes are sequential — each one is a single
// ordered stream whose indexes the next pass depends on).
func fsckScan(path string, man *Manifest, _ options) (*fsckScanState, error) {
	st := &fsckScanState{crc: map[string]uint32{}, sub: newReport()}
	est := func(section string) int {
		if man == nil {
			return 0
		}
		return man.Sections[section].Records
	}

	// Games: catalog census, duplicates, canonical checksum.
	apps := make(map[uint32]bool, est(sectionGames))
	c := canon{h: crc32.New(castagnoli)}
	collectedAt, err := streamSection(path, sectionGames, func(rec *Record) {
		g := &rec.Game
		c.game(g)
		st.games++
		if apps[g.AppID] {
			st.sub.add(ViolationDuplicateGame, "app %d appears more than once in the catalog", g.AppID)
			return
		}
		apps[g.AppID] = true
	})
	st.collectedAt = collectedAt
	if err != nil {
		return st, err
	}
	st.crc[sectionGames] = c.h.Sum32()
	st.sub.RecordsVerified += int64(st.games)

	// Groups, pass 1: the memberOf index. gidIndex is last-wins like the
	// in-memory memberOf map (a duplicate GID's later member set is the
	// one user-side checks consult); members are copied and sorted so the
	// user-side membership check is a binary search, not a set per group.
	gidIndex := make(map[uint64]int32, est(sectionGroups))
	var members [][]uint64
	groupSeen := make(map[uint64]bool, est(sectionGroups))
	c = canon{h: crc32.New(castagnoli)}
	_, err = streamSection(path, sectionGroups, func(rec *Record) {
		g := &rec.Group
		c.group(g)
		sorted := slices.Clone(g.Members)
		slices.Sort(sorted)
		members = append(members, sorted)
		gidIndex[g.GID] = int32(st.groups)
		if groupSeen[g.GID] {
			st.sub.add(ViolationDuplicateGroup, "group %d appears more than once", g.GID)
		}
		groupSeen[g.GID] = true
		st.groups++
	})
	if err != nil {
		return st, err
	}
	st.crc[sectionGroups] = c.h.Sum32()

	// Users, pass 1: the SteamID census and canonical checksum.
	census := &idCensus{ids: make([]uint64, 0, est(sectionUsers))}
	c = canon{h: crc32.New(castagnoli)}
	_, err = streamSection(path, sectionUsers, func(rec *Record) {
		c.user(&rec.User)
		census.ids = append(census.ids, rec.User.SteamID)
		st.users++
	})
	if err != nil {
		return st, err
	}
	st.crc[sectionUsers] = c.h.Sum32()
	census.build()
	for i, id := range census.ids {
		if at, _ := census.find(id); at != int32(i) {
			st.sub.add(ViolationDuplicateUser, "user %d appears more than once", id)
		}
	}

	// Users, pass 2: pack the friend-edge index (canonical indexes stand
	// in for the in-memory ID-pair set — duplicate-ID records collapse
	// onto one index exactly as map keys collapse onto one ID) and run
	// every per-user check that needs no global edge view: ownership,
	// playtime, membership. Membership pairs feed the group-side pass and
	// come from first occurrences only, because the in-memory group check
	// consults userAt's first-wins record.
	var edges, pairs []uint64
	owned := make(map[uint32]bool)
	streamPos := int32(0)
	_, err = streamSection(path, sectionUsers, func(rec *Record) {
		u := &rec.User
		i := streamPos
		streamPos++
		ci, _ := census.find(u.SteamID)
		st.sub.RecordsVerified++
		for _, f := range u.Friends {
			if fi, ok := census.find(f.SteamID); ok {
				edges = append(edges, packPair(ci, fi))
			}
		}
		clear(owned)
		for _, g := range u.Games {
			if owned[g.AppID] {
				st.sub.add(ViolationDuplicateOwnership, "user %d owns app %d twice", u.SteamID, g.AppID)
			}
			owned[g.AppID] = true
			if !apps[g.AppID] {
				st.sub.add(ViolationOwnedAppUnknown, "user %d owns app %d which is not in the catalog", u.SteamID, g.AppID)
			}
			if g.TotalMinutes < 0 || g.TwoWeekMinutes < 0 {
				st.sub.add(ViolationPlaytimeInvariant, "user %d app %d has negative playtime", u.SteamID, g.AppID)
			} else if int64(g.TwoWeekMinutes) > g.TotalMinutes {
				st.sub.add(ViolationPlaytimeInvariant, "user %d app %d two-week playtime exceeds lifetime", u.SteamID, g.AppID)
			}
		}
		for _, gid := range u.Groups {
			gi, ok := gidIndex[gid]
			if !ok {
				st.sub.add(ViolationMembershipUnknown, "user %d belongs to uncrawled group %d", u.SteamID, gid)
				continue
			}
			if _, found := slices.BinarySearch(members[gi], u.SteamID); !found {
				st.sub.add(ViolationMembershipAsymmetric, "user %d lists group %d but the group does not list the user", u.SteamID, gid)
			}
			if ci == i {
				pairs = append(pairs, packPair(ci, gi))
			}
		}
	})
	if err != nil {
		return st, err
	}
	slices.Sort(edges)
	slices.Sort(pairs)

	// Users, pass 3: friend checks against the complete edge index.
	_, err = streamSection(path, sectionUsers, func(rec *Record) {
		u := &rec.User
		ci, _ := census.find(u.SteamID)
		for _, f := range u.Friends {
			if f.SteamID == u.SteamID {
				st.sub.add(ViolationSelfFriend, "user %d lists itself as a friend", u.SteamID)
				continue
			}
			fi, ok := census.find(f.SteamID)
			if !ok {
				st.sub.add(ViolationFriendUnknown, "user %d lists unknown account %d as a friend", u.SteamID, f.SteamID)
				continue
			}
			if !hasPair(edges, packPair(fi, ci)) {
				st.sub.add(ViolationFriendAsymmetric, "user %d lists %d but %d does not list %d", u.SteamID, f.SteamID, f.SteamID, u.SteamID)
			}
		}
	})
	if err != nil {
		return st, err
	}

	// Groups, pass 2: group-side member checks. The membership lookup
	// resolves the group's GID through gidIndex so duplicate GIDs match a
	// user listing that GID value, exactly as the in-memory check
	// compares GID values.
	_, err = streamSection(path, sectionGroups, func(rec *Record) {
		g := &rec.Group
		st.sub.RecordsVerified++
		gi := gidIndex[g.GID]
		for _, m := range g.Members {
			ui, ok := census.find(m)
			if !ok {
				st.sub.add(ViolationMemberUnknown, "group %d lists unknown account %d as a member", g.GID, m)
				continue
			}
			if !hasPair(pairs, packPair(ui, gi)) {
				st.sub.add(ViolationMembershipAsymmetric, "group %d lists user %d but the user does not list the group", g.GID, m)
			}
		}
	})
	if err != nil {
		return st, err
	}
	return st, nil
}
