// Streaming snapshot iterators. Writer emits records one at a time into
// either a single JSONL file or the sharded directory layout (shard.go),
// accumulating the manifest (section CRCs, per-shard sums, whole-stream
// SHA-256) as it goes, so a snapshot too large to materialize — the
// paper-scale generate→encode path — is written with a bounded record
// window and still publishes atomically with full integrity metadata.
// Reader is the inverse: it iterates records in canonical order (header,
// games, users, groups) from either layout, optionally restricted to one
// section, decoding a fixed chunk of lines at a time. Multi-pass
// algorithms (streaming fsck, the Table 4 extraction) open a section
// several times instead of decoding the snapshot once into memory.
//
// Byte identity: Writer's single-record encode path uses the same
// append-style codec as Save, so a Writer-produced single file is
// byte-identical to Save of the equivalent snapshot, and a sharded
// directory's concatenated segments are byte-identical to that same
// single file. The manifests agree on every section checksum and on
// FileSHA256.

package dataset

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// RecordKind tags one streamed snapshot record.
type RecordKind uint8

const (
	// KindGame is a catalog record.
	KindGame RecordKind = iota + 1
	// KindUser is an account record.
	KindUser
	// KindGroup is a community-group record.
	KindGroup
)

// Record is the streaming iterator's tagged union: exactly one of the
// payload fields is meaningful, selected by Kind. The header line is not
// surfaced as a Record; Reader.CollectedAt carries it.
type Record struct {
	Kind  RecordKind
	Game  GameRecord
	User  UserRecord
	Group GroupRecord
}

// writerSections orders the record sections as the container does.
var writerSections = [3]string{sectionGames, sectionUsers, sectionGroups}

// Writer streams one snapshot into path — a ".d" sharded directory or a
// single ".jsonl"/".jsonl.gz" file — without ever holding more than the
// record being written. Records must arrive in section order (games, then
// users, then groups); a section may be empty. Close finalizes the data,
// builds the manifest from the accumulated checksums, and publishes both
// with the same atomic temp→fsync→rename protocol as Save. On error (or
// if Close is never reached) Abort discards the temporaries, leaving any
// previous snapshot at path untouched.
//
// The gob container is not supported: gob encodes the whole Snapshot
// value in one shot, which is exactly what a streaming writer exists to
// avoid.
type Writer struct {
	path        string
	collectedAt int64
	o           options
	sharded     bool
	gzipped     bool

	// Single-file plumbing, mirroring Save's stack.
	f   *os.File
	tmp string
	cw  *countingWriter
	gzw *gzip.Writer
	bw  *bufio.Writer

	// Sharded plumbing.
	tmpDir     string
	seg        *os.File
	segBW      *bufio.Writer
	segCRC     hash.Hash32
	segBytes   int64
	segRecords int
	segIdx     int
	shards     []ShardSum

	// Shared accumulators.
	sha     hash.Hash
	total   int64 // bytes of the (uncompressed, concatenated) stream
	section int   // index into writerSections of the section being written
	crc     [3]canon
	counts  [3]int
	buf     []byte
	err     error
	closed  bool
}

// NewWriter opens a streaming snapshot writer for path, stamping
// collectedAt into the header line. Options: WithShardRecords sets the
// fixed per-segment record count for the sharded layout (ignored for
// single files); WithProgress reports per-section record counts as
// segments complete. WithWorkers is accepted for pipeline uniformity —
// the per-record encode is inherently serial.
func NewWriter(path string, collectedAt int64, opts ...Option) (*Writer, error) {
	o := buildOptions(opts)
	encoding, gzipped, sharded, err := snapshotPath(path)
	if err != nil {
		return nil, err
	}
	if encoding != encJSONL {
		return nil, fmt.Errorf("dataset: %s: the streaming writer requires a JSONL container (.jsonl, .jsonl.gz or a .d directory)", path)
	}
	w := &Writer{
		path:        path,
		collectedAt: collectedAt,
		o:           o,
		sharded:     sharded,
		gzipped:     gzipped,
		sha:         sha256.New(),
	}
	for i := range w.crc {
		w.crc[i] = canon{h: crc32.New(castagnoli)}
	}
	dir := filepath.Dir(path)
	if sharded {
		w.tmpDir, err = os.MkdirTemp(dir, ".tmp-"+filepath.Base(path)+"-")
		if err != nil {
			return nil, fmt.Errorf("dataset: creating temp dir for %s: %w", path, err)
		}
		// The header is its own segment so the concatenation order is
		// manifest order and every byte of the stream is CRC-covered.
		hdr := appendHeaderLine(nil, collectedAt)
		if err := w.writeHeaderSegment(hdr); err != nil {
			w.Abort()
			return nil, err
		}
		return w, nil
	}
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return nil, fmt.Errorf("dataset: creating temp for %s: %w", path, err)
	}
	w.f, w.tmp = f, f.Name()
	w.cw = &countingWriter{w: io.MultiWriter(f, w.sha)}
	var payload io.Writer = w.cw
	if gzipped {
		w.gzw = gzip.NewWriter(w.cw)
		payload = w.gzw
	}
	w.bw = bufio.NewWriterSize(payload, 1<<20)
	hdr := appendHeaderLine(nil, collectedAt)
	if _, err := w.bw.Write(hdr); err != nil {
		w.Abort()
		return nil, fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	w.total += int64(len(hdr))
	return w, nil
}

// writeHeaderSegment writes header.jsonl into the temp directory and
// records its shard sum.
func (w *Writer) writeHeaderSegment(hdr []byte) error {
	name := "header.jsonl"
	f, err := os.Create(filepath.Join(w.tmpDir, name))
	if err != nil {
		return fmt.Errorf("dataset: creating %s segment: %w", name, err)
	}
	if _, err = f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("dataset: writing %s segment: %w", name, err)
	}
	w.sha.Write(hdr)
	w.total += int64(len(hdr))
	w.shards = append(w.shards, ShardSum{
		File: name, Section: sectionHeader, Records: 1,
		Bytes: int64(len(hdr)), CRC32C: crc32.Checksum(hdr, castagnoli),
	})
	return nil
}

// shardRecords resolves the per-segment record count.
func (w *Writer) shardRecords() int {
	if w.o.shardRecords > 0 {
		return w.o.shardRecords
	}
	return DefaultShardRecords
}

// WriteGame appends one catalog record. Must precede every user record.
func (w *Writer) WriteGame(g *GameRecord) error {
	return w.write(0, func(b []byte) ([]byte, error) { return appendGameLine(b, g) }, func(c *canon) { c.game(g) })
}

// WriteUser appends one account record. Must precede every group record.
func (w *Writer) WriteUser(u *UserRecord) error {
	return w.write(1, func(b []byte) ([]byte, error) { return appendUserLine(b, u) }, func(c *canon) { c.user(u) })
}

// WriteGroup appends one community-group record.
func (w *Writer) WriteGroup(g *GroupRecord) error {
	return w.write(2, func(b []byte) ([]byte, error) { return appendGroupLine(b, g) }, func(c *canon) { c.group(g) })
}

func (w *Writer) write(sec int, enc func([]byte) ([]byte, error), sum func(*canon)) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return w.fail(fmt.Errorf("dataset: %s: write after Close", w.path))
	}
	if sec < w.section {
		return w.fail(fmt.Errorf("dataset: %s: %s record after the %s section started (sections must arrive in games, users, groups order)",
			w.path, writerSections[sec], writerSections[w.section]))
	}
	if sec > w.section {
		if err := w.finishSegment(); err != nil {
			return w.fail(err)
		}
		w.section = sec
		w.segIdx = 0
	}
	b, err := enc(w.buf[:0])
	w.buf = b
	if err != nil {
		return w.fail(err)
	}
	sum(&w.crc[sec])
	w.counts[sec]++
	if !w.sharded {
		// The single-file sha is fed post-compression through the counting
		// writer, exactly as Save feeds it.
		if _, err := w.bw.Write(b); err != nil {
			return w.fail(fmt.Errorf("dataset: writing %s: %w", w.path, err))
		}
		return nil
	}
	w.sha.Write(b)
	w.total += int64(len(b))
	if w.seg == nil {
		if err := w.openSegment(); err != nil {
			return w.fail(err)
		}
	}
	if _, err := w.segBW.Write(b); err != nil {
		return w.fail(fmt.Errorf("dataset: writing segment %s: %w", w.segName(), err))
	}
	w.segCRC.Write(b)
	w.segBytes += int64(len(b))
	w.segRecords++
	if w.segRecords >= w.shardRecords() {
		if err := w.finishSegment(); err != nil {
			return w.fail(err)
		}
	}
	return nil
}

func (w *Writer) segName() string { return shardFileName(writerSections[w.section], w.segIdx) }

func (w *Writer) openSegment() error {
	f, err := os.Create(filepath.Join(w.tmpDir, w.segName()))
	if err != nil {
		return fmt.Errorf("dataset: creating segment %s: %w", w.segName(), err)
	}
	w.seg = f
	w.segBW = bufio.NewWriterSize(f, 1<<20)
	w.segCRC = crc32.New(castagnoli)
	w.segBytes, w.segRecords = 0, 0
	return nil
}

// finishSegment closes the open segment (if any), records its shard sum,
// and resets the per-segment state for the next one. Called on roll-over,
// section advance, and Close.
func (w *Writer) finishSegment() error {
	if w.seg == nil {
		return nil
	}
	name := w.segName()
	err := w.segBW.Flush()
	if err == nil {
		err = w.seg.Sync()
	}
	if cerr := w.seg.Close(); err == nil {
		err = cerr
	}
	w.seg, w.segBW = nil, nil
	if err != nil {
		return fmt.Errorf("dataset: finishing segment %s: %w", name, err)
	}
	w.shards = append(w.shards, ShardSum{
		File: name, Section: writerSections[w.section], Records: w.segRecords,
		Bytes: w.segBytes, CRC32C: w.segCRC.Sum32(),
	})
	if w.o.progress != nil {
		w.o.progress(writerSections[w.section], w.counts[w.section])
	}
	w.segIdx++
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Abort discards the writer's temporaries. Safe to call at any point,
// including after Close; a successful Close makes it a no-op.
func (w *Writer) Abort() {
	if w.closed && w.err == nil {
		return
	}
	if w.seg != nil {
		w.seg.Close()
		w.seg = nil
	}
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if w.tmpDir != "" {
		os.RemoveAll(w.tmpDir)
		w.tmpDir = ""
	}
	if w.tmp != "" {
		os.Remove(w.tmp)
		w.tmp = ""
	}
	w.closed = true
	if w.err == nil {
		w.err = fmt.Errorf("dataset: %s: writer aborted", w.path)
	}
}

// manifest assembles the manifest for the written stream.
func (w *Writer) manifest() *Manifest {
	m := &Manifest{
		FormatVersion: SnapshotFormatVersion,
		Encoding:      encJSONL,
		Compressed:    w.gzipped,
		CollectedAt:   w.collectedAt,
		FileBytes:     w.total,
		FileSHA256:    hex.EncodeToString(w.sha.Sum(nil)),
		Sections: map[string]SectionSum{
			sectionGames:  {Records: w.counts[0], CRC32C: w.crc[0].h.Sum32()},
			sectionUsers:  {Records: w.counts[1], CRC32C: w.crc[1].h.Sum32()},
			sectionGroups: {Records: w.counts[2], CRC32C: w.crc[2].h.Sum32()},
		},
	}
	if w.sharded {
		m.FormatVersion = SnapshotShardFormatVersion
		m.ShardRecords = w.shardRecords()
		m.Shards = w.shards
	}
	return m
}

// Close finishes the stream and publishes data + manifest atomically,
// returning the manifest it wrote. For single files FileBytes/FileSHA256
// cover the on-disk (post-compression) bytes, exactly as Save records
// them; for sharded directories they cover the concatenated uncompressed
// stream, which equals the single-file equivalent's values.
func (w *Writer) Close() (*Manifest, error) {
	if w.err != nil {
		w.Abort()
		return nil, w.err
	}
	if w.closed {
		return nil, fmt.Errorf("dataset: %s: Close called twice", w.path)
	}
	if err := w.closeData(); err != nil {
		w.fail(err)
		w.Abort()
		return nil, err
	}
	man := w.manifest()
	if err := w.publish(man); err != nil {
		w.fail(err)
		w.Abort()
		return nil, err
	}
	w.closed = true
	return man, nil
}

// closeData finalizes the temp payload (single file: flush + sync; dir:
// close the open segment and sync the directory).
func (w *Writer) closeData() error {
	if w.sharded {
		if err := w.finishSegment(); err != nil {
			return err
		}
		return syncDir(w.tmpDir)
	}
	// For single files the sha covers post-compression bytes, which only
	// exist once the gzip stream is closed; w.total tracked the
	// uncompressed stream, so recompute from the counting writer.
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("dataset: writing %s: %w", w.path, err)
	}
	if w.gzw != nil {
		if err := w.gzw.Close(); err != nil {
			return fmt.Errorf("dataset: compressing %s: %w", w.path, err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dataset: fsync %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("dataset: closing temp for %s: %w", w.path, err)
	}
	w.f = nil
	w.total = w.cw.n
	return nil
}

// publish runs Save's atomic publication protocol for either layout. For
// the directory layout the old directory (if any) is renamed aside before
// the new one renames in; the window where neither is at path is the cost
// of POSIX's lack of an atomic directory swap and is documented in
// DESIGN.md — a crash there leaves the old snapshot intact under a
// ".tmp-*-old" name, never a half-written mixture at path.
func (w *Writer) publish(man *Manifest) (err error) {
	dir := filepath.Dir(w.path)
	if err = saveCrash("temp-written"); err != nil {
		return err
	}
	manTmp, err := writeManifestTemp(dir, man)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			os.Remove(manTmp)
		}
	}()
	if err = removeStaleManifest(w.path); err != nil {
		return err
	}
	if err = syncDir(dir); err != nil {
		return err
	}
	if err = saveCrash("manifest-retired"); err != nil {
		return err
	}
	if w.sharded {
		old := ""
		if _, serr := os.Stat(w.path); serr == nil {
			old = w.tmpDir + "-old"
			if err = os.Rename(w.path, old); err != nil {
				return fmt.Errorf("dataset: retiring previous %s: %w", w.path, err)
			}
		}
		if err = os.Rename(w.tmpDir, w.path); err != nil {
			return fmt.Errorf("dataset: publishing %s: %w", w.path, err)
		}
		w.tmpDir = ""
		if old != "" {
			if err = os.RemoveAll(old); err != nil {
				return fmt.Errorf("dataset: removing previous %s: %w", w.path, err)
			}
		}
	} else {
		if err = os.Rename(w.tmp, w.path); err != nil {
			return fmt.Errorf("dataset: publishing %s: %w", w.path, err)
		}
		w.tmp = ""
	}
	if err = saveCrash("data-renamed"); err != nil {
		return err
	}
	if err = os.Rename(manTmp, ManifestPath(w.path)); err != nil {
		return fmt.Errorf("dataset: publishing manifest for %s: %w", w.path, err)
	}
	return syncDir(dir)
}

// --- Reader -------------------------------------------------------------

// Reader iterates a snapshot's records in canonical order from either
// layout, decoding a fixed chunk of lines at a time so memory stays
// bounded by the decode window, not the snapshot. Open with OpenReader
// for every section or OpenSection for one; sharded directories then
// read only that section's segments, while single files scan the whole
// container and skip foreign lines with a cheap kind sniff (no decode).
//
// When a sharded directory carries a manifest, every fully read segment
// is verified against its recorded byte count and CRC-32C; a mismatch
// surfaces as an error from Next naming the damaged segment.
type Reader struct {
	path    string
	sharded bool
	gzipped bool
	filter  byte // 0 = every section; else 'g'/'u'/'p'

	collectedAt int64
	man         *Manifest
	segs        []segmentInfo
	segAt       int // index of the segment currently open

	f       *os.File
	gz      *gzip.Reader
	br      *bufio.Reader
	curPath string
	lineNo  int
	segCRC  hash.Hash32
	segN    int64
	sha     hash.Hash // concatenated-stream hash (sharded, unfiltered)

	pending    []decodedLine
	pi         int
	lines      []rawLine
	eof        bool
	err        error
	verifySegs bool
	// deferredErr is a decode error whose chunk yielded some records;
	// those stay consumable (matching the partial results the in-memory
	// decoder keeps for fsck) and the error surfaces once they drain.
	deferredErr error
}

// OpenReader opens a streaming reader over every record in the snapshot
// at path (single JSONL file or sharded directory; gob is not streamable
// and is rejected). The header is consumed internally — CollectedAt is
// available once the first record (or end of stream) has been reached;
// for sharded layouts it is read eagerly at open.
func OpenReader(path string, opts ...Option) (*Reader, error) {
	return openReader(path, 0, true, opts)
}

// Exported section names for OpenSection.
const (
	SectionGames  = sectionGames
	SectionUsers  = sectionUsers
	SectionGroups = sectionGroups
)

// OpenSection opens a streaming reader over one section ("games",
// "users" or "groups") of the snapshot at path. Multi-pass algorithms
// call this repeatedly; for sharded directories each pass touches only
// that section's segments.
func OpenSection(path, section string, opts ...Option) (*Reader, error) {
	var filter byte
	switch section {
	case sectionGames:
		filter = 'g'
	case sectionUsers:
		filter = 'u'
	case sectionGroups:
		filter = 'p'
	default:
		return nil, fmt.Errorf("dataset: unknown snapshot section %q", section)
	}
	return openReader(path, filter, true, opts)
}

// openSectionRaw is OpenSection for the accumulate-everything fsck path:
// per-segment checksum mismatches, a corrupt manifest or a too-new format
// version do not stop the scan — the structural pass has already recorded
// them, and fsck still wants every decodable record.
func openSectionRaw(path, section string) (*Reader, error) {
	var filter byte
	switch section {
	case sectionGames:
		filter = 'g'
	case sectionUsers:
		filter = 'u'
	case sectionGroups:
		filter = 'p'
	}
	return openReader(path, filter, false, nil)
}

func openReader(path string, filter byte, verify bool, opts []Option) (*Reader, error) {
	_ = buildOptions(opts) // options accepted for pipeline uniformity
	encoding, gzipped, sharded, err := snapshotPath(path)
	if err != nil {
		return nil, err
	}
	if encoding != encJSONL {
		return nil, fmt.Errorf("dataset: %s: the streaming reader requires a JSONL container (.jsonl, .jsonl.gz or a .d directory)", path)
	}
	r := &Reader{path: path, sharded: sharded, gzipped: gzipped, filter: filter}
	if !sharded {
		if err := r.openFile(path, gzipped); err != nil {
			return nil, err
		}
		return r, nil
	}
	man, err := ReadManifest(path)
	if err != nil {
		if verify {
			return nil, err
		}
		man = nil // fsck recorded the manifest violation; scan by directory
	}
	if man != nil && man.FormatVersion > SnapshotShardFormatVersion {
		if verify {
			return nil, fmt.Errorf("dataset: %s: manifest format version %d is newer than this build supports (%d)",
				path, man.FormatVersion, SnapshotShardFormatVersion)
		}
		man = nil
	}
	r.man = man
	r.verifySegs = verify
	segs, err := shardSegments(path, man)
	if err != nil {
		return nil, err
	}
	// Keep the header plus the wanted sections. An unfiltered read hashes
	// the concatenated stream for whole-snapshot verification.
	for _, seg := range segs {
		if filter == 0 || seg.section == sectionHeader || seg.section == sectionName(filter) {
			r.segs = append(r.segs, seg)
		}
	}
	if filter == 0 {
		r.sha = sha256.New()
	}
	r.segAt = -1
	// Prime the header eagerly so CollectedAt is valid right after open.
	if len(r.segs) > 0 && r.segs[0].section == sectionHeader {
		if err := r.fill(); err != nil {
			r.Close()
			return nil, err
		}
		for r.pi < len(r.pending) && r.pending[r.pi].kind == 'h' {
			r.collectedAt = r.pending[r.pi].collectedAt
			r.pi++
		}
	}
	return r, nil
}

func sectionName(filter byte) string {
	switch filter {
	case 'g':
		return sectionGames
	case 'u':
		return sectionUsers
	case 'p':
		return sectionGroups
	}
	return ""
}

func (r *Reader) openFile(path string, gzipped bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: opening %s: %w", path, err)
	}
	r.f, r.curPath, r.lineNo = f, path, 0
	if gzipped {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("dataset: %s: gzip header: %w", path, err)
		}
		r.gz = gz
		r.br = bufio.NewReaderSize(gz, 1<<20)
	} else {
		r.br = bufio.NewReaderSize(f, 1<<20)
	}
	return nil
}

// CollectedAt returns the header timestamp. For sharded layouts it is
// valid immediately after open; for single files once the first record
// has been read (the header is the first line of the stream).
func (r *Reader) CollectedAt() int64 { return r.collectedAt }

// Manifest returns the sharded layout's sidecar manifest, nil for single
// files (use ReadManifest) or manifest-less directories.
func (r *Reader) Manifest() *Manifest { return r.man }

// FileSHA256 returns the hex SHA-256 of the concatenated stream read so
// far. Meaningful only after an unfiltered sharded read reaches EOF,
// where it must equal the manifest's FileSHA256; returns "" otherwise.
func (r *Reader) FileSHA256() string {
	if r.sha == nil {
		return ""
	}
	return hex.EncodeToString(r.sha.Sum(nil))
}

// Close releases the reader's file handles. Safe to call twice.
func (r *Reader) Close() error {
	var err error
	if r.gz != nil {
		err = r.gz.Close()
		r.gz = nil
	}
	if r.f != nil {
		if cerr := r.f.Close(); err == nil {
			err = cerr
		}
		r.f = nil
	}
	return err
}

// Next decodes the next record into rec, returning false at the end of
// the stream. On decode or integrity errors it returns false with the
// error; rec is unspecified. The error names the file (segment, for
// sharded layouts) and line that failed, matching Load's diagnostics.
func (r *Reader) Next(rec *Record) (bool, error) {
	if r.err != nil {
		return false, r.err
	}
	for {
		for r.pi < len(r.pending) {
			d := &r.pending[r.pi]
			r.pi++
			switch d.kind {
			case 'h':
				r.collectedAt = d.collectedAt
				continue
			case 'g':
				if r.filter != 0 && r.filter != 'g' {
					continue
				}
				rec.Kind, rec.Game = KindGame, d.game
				return true, nil
			case 'u':
				if r.filter != 0 && r.filter != 'u' {
					continue
				}
				rec.Kind, rec.User = KindUser, d.user
				return true, nil
			case 'p':
				if r.filter != 0 && r.filter != 'p' {
					continue
				}
				rec.Kind, rec.Group = KindGroup, d.group
				return true, nil
			}
		}
		if r.eof {
			if r.deferredErr != nil {
				r.err = r.deferredErr
				return false, r.err
			}
			return false, nil
		}
		if err := r.fill(); err != nil {
			r.err = err
			return false, err
		}
	}
}

// kindSniff classifies a canonical-layout line by its prefix without
// decoding. Returns 0 when the line is not in canonical layout (the
// caller must fully decode it to learn its kind).
func kindSniff(trimmed []byte) byte {
	const p = `{"kind":"`
	if len(trimmed) < len(p)+1 || string(trimmed[:len(p)]) != p {
		return 0
	}
	rest := trimmed[len(p):]
	switch {
	case bytes.HasPrefix(rest, []byte(`header"`)):
		return 'h'
	case bytes.HasPrefix(rest, []byte(`game"`)):
		return 'g'
	case bytes.HasPrefix(rest, []byte(`group"`)):
		return 'p'
	case bytes.HasPrefix(rest, []byte(`user"`)):
		return 'u'
	}
	return 0
}

// fill reads the next chunk of lines and decodes it into r.pending.
func (r *Reader) fill() error {
	r.pending, r.pi = r.pending[:0], 0
	r.lines = r.lines[:0]
	for len(r.lines) < jsonlChunk {
		if r.br == nil {
			ok, err := r.advanceSegment()
			if err != nil {
				return err
			}
			if !ok {
				r.eof = true
				break
			}
		}
		r.lineNo++
		raw, err := r.br.ReadBytes('\n')
		if len(raw) > 0 {
			if r.segCRC != nil {
				r.segCRC.Write(raw)
				r.segN += int64(len(raw))
			}
			if r.sha != nil {
				r.sha.Write(raw)
			}
			trimmed := bytes.TrimSpace(raw)
			if len(trimmed) != 0 {
				// Filtered single-file scans skip foreign canonical lines
				// here, before any decode; header lines always pass so
				// CollectedAt is picked up.
				k := kindSniff(trimmed)
				if r.filter == 0 || k == 0 || k == 'h' || k == r.filter {
					// ReadBytes returns a fresh slice, so the line is safe to
					// keep without copying.
					r.lines = append(r.lines, rawLine{no: r.lineNo, b: raw})
				}
			}
		}
		if err == io.EOF {
			if ferr := r.finishSegmentRead(); ferr != nil {
				return ferr
			}
			if !r.sharded {
				r.eof = true
				break
			}
			continue
		}
		if err != nil {
			return fmt.Errorf("dataset: decoding %s: line %d: %w", r.curPath, r.lineNo, err)
		}
	}
	if len(r.lines) == 0 {
		return nil
	}
	dc := decodeChunk(r.lines)
	r.pending = append(r.pending, dc.recs...)
	if dc.err != nil {
		r.deferredErr = fmt.Errorf("dataset: decoding %s: line %d: %w", r.curPath, dc.errLine, dc.err)
		r.eof = true
	}
	return nil
}

// advanceSegment opens the next segment of a sharded read; ok=false at
// the end of the segment list (or immediately for single files, whose
// only "segment" is opened at construction).
func (r *Reader) advanceSegment() (bool, error) {
	if !r.sharded {
		return false, nil
	}
	r.segAt++
	if r.segAt >= len(r.segs) {
		return false, nil
	}
	seg := r.segs[r.segAt]
	if err := r.openFile(filepath.Join(r.path, seg.file), false); err != nil {
		return false, err
	}
	if seg.sum != nil && r.verifySegs {
		r.segCRC = crc32.New(castagnoli)
		r.segN = 0
	}
	return true, nil
}

// finishSegmentRead closes the finished segment and, when the manifest
// recorded its shape, verifies byte count and CRC-32C.
func (r *Reader) finishSegmentRead() error {
	if r.br == nil {
		return nil
	}
	cerr := r.Close()
	r.br = nil
	if cerr != nil {
		return fmt.Errorf("dataset: closing %s: %w", r.curPath, cerr)
	}
	if r.segCRC != nil {
		sum := r.segs[r.segAt].sum
		if r.segN != sum.Bytes {
			return fmt.Errorf("dataset: %s: segment %s is %d bytes, manifest records %d (truncated or partially overwritten)",
				r.path, sum.File, r.segN, sum.Bytes)
		}
		if got := r.segCRC.Sum32(); got != sum.CRC32C {
			return fmt.Errorf("dataset: %s: segment %s checksum mismatch (file %08x, manifest %08x): on-disk corruption",
				r.path, sum.File, got, sum.CRC32C)
		}
		r.segCRC = nil
	}
	return nil
}

// --- sharded Save / Load ------------------------------------------------

// saveSharded streams an in-memory snapshot through the Writer into a
// sharded directory. The per-record encode is serial (the Writer owns the
// hash state); at the scales where encode throughput matters the caller
// should be emitting records through the Writer directly instead of
// materializing a Snapshot first.
func (s *Snapshot) saveSharded(path string, opts []Option) error {
	w, err := NewWriter(path, s.CollectedAt, opts...)
	if err != nil {
		return err
	}
	defer w.Abort()
	for i := range s.Games {
		if err := w.WriteGame(&s.Games[i]); err != nil {
			return err
		}
	}
	for i := range s.Users {
		if err := w.WriteUser(&s.Users[i]); err != nil {
			return err
		}
	}
	for i := range s.Groups {
		if err := w.WriteGroup(&s.Groups[i]); err != nil {
			return err
		}
	}
	_, err = w.Close()
	return err
}

// loadSharded reads a sharded directory into memory, verifying per-shard
// checksums while streaming and the section checksums + whole-stream hash
// once decoded, with the same damage localization as single-file Load.
func loadSharded(path string, o options) (*Snapshot, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	s := &Snapshot{}
	var rec Record
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch rec.Kind {
		case KindGame:
			s.Games = append(s.Games, rec.Game)
		case KindUser:
			s.Users = append(s.Users, rec.User)
		case KindGroup:
			s.Groups = append(s.Groups, rec.Group)
		}
		if o.progress != nil && (len(s.Users)+len(s.Games)+len(s.Groups))%jsonlChunk == 0 {
			o.progress(sectionGames, len(s.Games))
			o.progress(sectionUsers, len(s.Users))
			o.progress(sectionGroups, len(s.Groups))
		}
	}
	s.CollectedAt = r.CollectedAt()
	if o.progress != nil {
		o.progress(sectionGames, len(s.Games))
		o.progress(sectionUsers, len(s.Users))
		o.progress(sectionGroups, len(s.Groups))
	}
	if man := r.Manifest(); man != nil {
		if v := man.verifySections(s); len(v) > 0 {
			return nil, fmt.Errorf("dataset: %s: %s", path, v[0].Detail)
		}
		if got := r.FileSHA256(); got != man.FileSHA256 {
			return nil, fmt.Errorf("dataset: %s stream hash mismatch (got %s, manifest %s): on-disk corruption", path, got, man.FileSHA256)
		}
	}
	return s, nil
}

