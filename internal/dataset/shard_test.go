package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// readShardStream concatenates a sharded directory's segments in manifest
// order — the byte stream the layout promises is identical to the
// single-file export.
func readShardStream(t *testing.T, dir string) []byte {
	t.Helper()
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := shardSegments(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, seg := range segs {
		b, err := os.ReadFile(filepath.Join(dir, seg.file))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	s := persistSnapshot()
	dir := filepath.Join(t.TempDir(), "snap.d")
	// Shard size 7 forces multiple user segments plus partial tails.
	if err := s.Save(dir, WithShardRecords(7)); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.FormatVersion != SnapshotShardFormatVersion {
		t.Fatalf("manifest = %+v, want format version %d", man, SnapshotShardFormatVersion)
	}
	if man.ShardRecords != 7 {
		t.Fatalf("ShardRecords = %d, want 7", man.ShardRecords)
	}
	// 20 users at 7/segment → 3 user segments; 2 games and 1 group fit in
	// one segment each; plus the header segment.
	wantSegs := 1 + 1 + 3 + 1
	if len(man.Shards) != wantSegs {
		t.Fatalf("len(Shards) = %d, want %d: %+v", len(man.Shards), wantSegs, man.Shards)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("sharded round trip changed the snapshot")
	}
	if got.ContentSignature() != s.ContentSignature() {
		t.Fatal("sharded round trip changed the content signature")
	}
}

func TestShardedStreamMatchesSingleFileBytes(t *testing.T) {
	s := persistSnapshot()
	tmp := t.TempDir()
	single := filepath.Join(tmp, "snap.jsonl")
	dir := filepath.Join(tmp, "snap.d")
	if err := s.Save(single, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir, WithShardRecords(3)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if got := readShardStream(t, dir); !bytes.Equal(got, want) {
		t.Fatal("concatenated shard segments differ from the single-file export")
	}
	sman, err := ReadManifest(single)
	if err != nil {
		t.Fatal(err)
	}
	dman, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sman.FileSHA256 != dman.FileSHA256 || sman.FileBytes != dman.FileBytes {
		t.Fatalf("file hash/bytes differ across layouts: single %s/%d, sharded %s/%d",
			sman.FileSHA256, sman.FileBytes, dman.FileSHA256, dman.FileBytes)
	}
	if !reflect.DeepEqual(sman.Sections, dman.Sections) {
		t.Fatalf("section sums differ across layouts: %+v vs %+v", sman.Sections, dman.Sections)
	}
}

// TestShardedRoundTripMatrix is the layout-parity property test: every
// container × worker-count combination must produce the same decoded
// content (ContentSignature), and the JSONL-bearing layouts the same
// stream hash.
func TestShardedRoundTripMatrix(t *testing.T) {
	s := persistSnapshot()
	wantSig := s.ContentSignature()
	var jsonlSHA string
	for _, name := range []string{"snap.gob", "snap.gob.gz", "snap.jsonl", "snap.jsonl.gz", "snap.d"} {
		for _, workers := range []int{1, 2, 0} {
			path := filepath.Join(t.TempDir(), name)
			opts := []Option{WithWorkers(workers)}
			if strings.HasSuffix(name, ".d") {
				opts = append(opts, WithShardRecords(5))
			}
			if err := s.Save(path, opts...); err != nil {
				t.Fatalf("%s workers=%d: save: %v", name, workers, err)
			}
			got, err := Load(path, WithWorkers(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: load: %v", name, workers, err)
			}
			if sig := got.ContentSignature(); sig != wantSig {
				t.Fatalf("%s workers=%d: content signature %s, want %s", name, workers, sig, wantSig)
			}
			if name == "snap.jsonl" || name == "snap.d" {
				man, err := ReadManifest(path)
				if err != nil {
					t.Fatal(err)
				}
				if jsonlSHA == "" {
					jsonlSHA = man.FileSHA256
				} else if man.FileSHA256 != jsonlSHA {
					t.Fatalf("%s workers=%d: stream hash %s, want %s", name, workers, man.FileSHA256, jsonlSHA)
				}
			}
		}
	}
}

func TestCheckSnapshotPathAcceptsShardDir(t *testing.T) {
	for _, p := range []string{"snap.d", "out/snap.d", "snap.d/"} {
		if err := CheckSnapshotPath(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	for _, p := range []string{"snap.d/users-0000.jsonl", "out/snap.d/header.jsonl", "snap.d/groups-0012.jsonl"} {
		err := CheckSnapshotPath(p)
		if !errors.Is(err, ErrShardSegment) {
			t.Fatalf("%s: want ErrShardSegment, got %v", p, err)
		}
	}
	// A .jsonl file that merely lives inside some unrelated directory is
	// still a snapshot.
	if err := CheckSnapshotPath("outdir/snap.jsonl"); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRejectsOutOfOrderSections(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "snap.d"), 1, WithShardRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.WriteUser(&UserRecord{SteamID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteGame(&GameRecord{AppID: 10}); err == nil ||
		!strings.Contains(err.Error(), "order") {
		t.Fatalf("want section-order error, got %v", err)
	}
}

func TestWriterRejectsGob(t *testing.T) {
	if _, err := NewWriter(filepath.Join(t.TempDir(), "snap.gob"), 1); err == nil {
		t.Fatal("gob writer accepted")
	}
}

func TestWriterSingleFileMatchesSave(t *testing.T) {
	s := persistSnapshot()
	for _, name := range []string{"snap.jsonl", "snap.jsonl.gz"} {
		tmp := t.TempDir()
		saved := filepath.Join(tmp, "saved-"+name)
		streamed := filepath.Join(tmp, name)
		if err := s.Save(saved, WithWorkers(1)); err != nil {
			t.Fatal(err)
		}
		w, err := NewWriter(streamed, s.CollectedAt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s.Games {
			if err := w.WriteGame(&s.Games[i]); err != nil {
				t.Fatal(err)
			}
		}
		for i := range s.Users {
			if err := w.WriteUser(&s.Users[i]); err != nil {
				t.Fatal(err)
			}
		}
		for i := range s.Groups {
			if err := w.WriteGroup(&s.Groups[i]); err != nil {
				t.Fatal(err)
			}
		}
		man, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(saved)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(streamed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: streamed bytes differ from Save", name)
		}
		saveMan, err := ReadManifest(saved)
		if err != nil {
			t.Fatal(err)
		}
		if man.FileSHA256 != saveMan.FileSHA256 || !reflect.DeepEqual(man.Sections, saveMan.Sections) {
			t.Fatalf("%s: streamed manifest differs from Save's", name)
		}
	}
}

func TestOpenSectionYieldsOneSection(t *testing.T) {
	s := persistSnapshot()
	tmp := t.TempDir()
	for _, name := range []string{"snap.jsonl", "snap.jsonl.gz", "snap.d"} {
		path := filepath.Join(tmp, name)
		if err := s.Save(path, WithShardRecords(6)); err != nil {
			t.Fatal(err)
		}
		r, err := OpenSection(path, "users")
		if err != nil {
			t.Fatal(err)
		}
		var got []UserRecord
		var rec Record
		for {
			ok, err := r.Next(&rec)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !ok {
				break
			}
			if rec.Kind != KindUser {
				t.Fatalf("%s: kind %d leaked through the users filter", name, rec.Kind)
			}
			got = append(got, rec.User)
		}
		if r.CollectedAt() != s.CollectedAt {
			t.Fatalf("%s: CollectedAt %d, want %d", name, r.CollectedAt(), s.CollectedAt)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s.Users) {
			t.Fatalf("%s: streamed users differ from the snapshot", name)
		}
	}
	if _, err := OpenSection(filepath.Join(tmp, "snap.d"), "nope"); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestOpenReaderStreamsAllSectionsInOrder(t *testing.T) {
	s := persistSnapshot()
	path := filepath.Join(t.TempDir(), "snap.d")
	if err := s.Save(path, WithShardRecords(4)); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.CollectedAt() != s.CollectedAt {
		t.Fatalf("CollectedAt %d before first record, want %d (sharded readers prime the header)",
			r.CollectedAt(), s.CollectedAt)
	}
	got := &Snapshot{CollectedAt: r.CollectedAt()}
	var rec Record
	var order []RecordKind
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		order = append(order, rec.Kind)
		switch rec.Kind {
		case KindGame:
			got.Games = append(got.Games, rec.Game)
		case KindUser:
			got.Users = append(got.Users, rec.User)
		case KindGroup:
			got.Groups = append(got.Groups, rec.Group)
		}
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("streamed snapshot differs")
	}
	// Canonical order: games, then users, then groups, never interleaved.
	last := RecordKind(0)
	for _, k := range order {
		if k < last {
			t.Fatalf("records out of section order: %v", order)
		}
		last = k
	}
	if sha := r.FileSHA256(); sha == "" || sha != r.Manifest().FileSHA256 {
		t.Fatalf("reader stream hash %q, manifest %q", sha, r.Manifest().FileSHA256)
	}
}

func TestShardedLoadDetectsSegmentCorruption(t *testing.T) {
	s := persistSnapshot()
	dir := filepath.Join(t.TempDir(), "snap.d")
	if err := s.Save(dir, WithShardRecords(7)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "users-0001.jsonl")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit inside a numeric field: still valid JSONL, so only
	// the checksums can catch it.
	i := bytes.Index(b, []byte(`"TotalMinutes":600`))
	if i < 0 {
		t.Fatalf("marker not found in %s", seg)
	}
	b[i+len(`"TotalMinutes":`)] = '7'
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil || !strings.Contains(err.Error(), "users-0001.jsonl") {
		t.Fatalf("want error naming the damaged segment, got %v", err)
	}
}

func TestShardedLoadDetectsTruncatedSegment(t *testing.T) {
	s := persistSnapshot()
	dir := filepath.Join(t.TempDir(), "snap.d")
	if err := s.Save(dir, WithShardRecords(7)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "users-0002.jsonl")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil || !strings.Contains(err.Error(), "users-0002.jsonl") {
		t.Fatalf("want error naming the truncated segment, got %v", err)
	}
}

func TestShardedLoadWithoutManifest(t *testing.T) {
	s := persistSnapshot()
	dir := filepath.Join(t.TempDir(), "snap.d")
	if err := s.Save(dir, WithShardRecords(7)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ManifestPath(dir)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("manifest-less sharded load differs")
	}
}

func TestShardSegmentsRejectsGap(t *testing.T) {
	s := persistSnapshot()
	dir := filepath.Join(t.TempDir(), "snap.d")
	if err := s.Save(dir, WithShardRecords(7)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ManifestPath(dir)); err != nil {
		t.Fatal(err)
	}
	// With the manifest gone the scan must notice a missing middle
	// segment instead of silently truncating the section.
	if err := os.Remove(filepath.Join(dir, "users-0001.jsonl")); err != nil {
		t.Fatal(err)
	}
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "users-0001.jsonl missing") {
		t.Fatalf("want gap error, got %v", err)
	}
}

func TestShardedSaveReplacesExisting(t *testing.T) {
	s := persistSnapshot()
	dir := filepath.Join(t.TempDir(), "snap.d")
	if err := s.Save(dir, WithShardRecords(3)); err != nil {
		t.Fatal(err)
	}
	smaller := &Snapshot{CollectedAt: s.CollectedAt, Users: s.Users[:5], Games: s.Games, Groups: nil}
	if err := smaller.Save(dir, WithShardRecords(100)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != 5 || len(got.Groups) != 0 {
		t.Fatalf("reload after replace: %d users / %d groups, want 5 / 0", len(got.Users), len(got.Groups))
	}
	// No leftovers from the first save (its extra segments, temp dirs).
	entries, err := os.ReadDir(filepath.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp litter after replace: %s", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "users-0001.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("old segment survived the replace: %v", err)
	}
}

func TestWriterAbortLeavesNoLitter(t *testing.T) {
	tmp := t.TempDir()
	for _, name := range []string{"snap.d", "snap.jsonl"} {
		w, err := NewWriter(filepath.Join(tmp, name), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteUser(&UserRecord{SteamID: 1}); err != nil {
			t.Fatal(err)
		}
		w.Abort()
		if _, err := w.Close(); err == nil {
			t.Fatal("Close after Abort succeeded")
		}
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("aborted writers left litter: %v", entries)
	}
}
