// Sharded snapshot layout. A snapshot path ending in ".d" names a
// directory of fixed-record-count JSONL segments:
//
//	snap.d/
//	  header.jsonl      the single header line
//	  games-0000.jsonl  catalog records, ShardRecords per segment
//	  users-0000.jsonl  user records
//	  users-0001.jsonl  ...
//	  groups-0000.jsonl group records
//
// The segments are a pure byte-split of the canonical single-file JSONL
// stream: concatenating header + games + users + groups segments in index
// order reproduces, byte for byte, what Save would have written to a
// single ".jsonl" file. The sidecar manifest (<dir>.manifest.json) is the
// same Manifest schema stamped with format version 2, extended with the
// per-shard record counts, byte counts and CRC-32C checksums; FileBytes
// and FileSHA256 cover the concatenated stream, so a sharded snapshot and
// its single-file equivalent share the file hash and every section
// checksum. That identity is what lets MergeFilesAt and the property
// tests compare the two layouts by manifest SHA alone.
//
// Why shards: at paper scale (108.7M accounts) the single-file snapshot
// cannot be decoded into memory. Segments give the streaming Reader and
// Writer (stream.go) natural section boundaries — fsck and analysis
// iterate one section at a time, several times if needed, without ever
// holding more than a decode window of records — and give integrity
// checks sub-file granularity ("users-0003.jsonl checksum mismatch"
// localizes rot to one 100k-record segment).

package dataset

import (
	"errors"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SnapshotShardFormatVersion is stamped into sharded-directory manifests.
// Single-file manifests keep SnapshotFormatVersion (1); the sharded
// layout is a superset reader-side, so version gates compare against the
// layout's own maximum.
const SnapshotShardFormatVersion = 2

// DefaultShardRecords is the fixed per-segment record count used when
// WithShardRecords is not given. It is part of the written layout (and
// recorded in the manifest), not a tuning knob read back at load time.
const DefaultShardRecords = 100_000

// sectionHeader names the header pseudo-section in shard manifests.
const sectionHeader = "header"

// ShardSum records one segment's expected shape in a version-2 manifest:
// the file name within the directory, its section, and the raw byte
// count + CRC-32C of the segment's on-disk bytes (unlike the section
// checksums, which cover the canonical record encoding, these cover the
// JSONL bytes — cheap to verify without decoding).
type ShardSum struct {
	File    string `json:"file"`
	Section string `json:"section"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	CRC32C  uint32 `json:"crc32c"`
}

// ErrShardSegment reports a snapshot path that points at one segment file
// inside a sharded directory. Segments are not self-contained snapshots
// (no header, no manifest, one section's slice of records), so the caller
// almost certainly wants the enclosing directory.
var ErrShardSegment = errors.New("path names a shard segment inside a .d snapshot directory; pass the directory itself")

// shardSegmentRe matches segment file basenames.
var shardSegmentRe = regexp.MustCompile(`^(?:header|(?:games|users|groups)-\d+)\.jsonl$`)

// pathSharded reports whether path names the sharded directory layout.
func pathSharded(path string) bool {
	return strings.HasSuffix(strings.TrimRight(path, "/"), ".d")
}

// snapshotPath classifies a snapshot path: the sharded directory layout
// (".d" suffix), or a single file by extension. A path that names a
// segment file inside a sharded directory is rejected with
// ErrShardSegment so the mistake is caught before any work happens.
func snapshotPath(path string) (encoding string, gzipped, sharded bool, err error) {
	clean := strings.TrimRight(path, "/")
	if pathSharded(clean) {
		return encJSONL, false, true, nil
	}
	if i := strings.LastIndexByte(clean, '/'); i >= 0 {
		dir, base := clean[:i], clean[i+1:]
		if pathSharded(dir) && shardSegmentRe.MatchString(base) {
			return "", false, false, fmt.Errorf("dataset: %s: %w", path, ErrShardSegment)
		}
	}
	encoding, gzipped, err = snapshotFormat(clean)
	return encoding, gzipped, false, err
}

// shardFileName returns the canonical segment file name for a section
// index. Four digits cover 10k segments (1B records at the default shard
// size); larger indexes simply widen.
func shardFileName(section string, idx int) string {
	return fmt.Sprintf("%s-%04d.jsonl", section, idx)
}

// segmentInfo is one segment in concatenation order.
type segmentInfo struct {
	file    string // basename within the directory
	section string
	// sum is the manifest's expectation for this segment, nil when the
	// directory has no manifest.
	sum *ShardSum
}

// shardSegments lists a sharded directory's segments in canonical
// concatenation order (header, games, users, groups; ascending index).
// With a manifest the listed shards are authoritative; without one the
// directory is scanned and segment indexes must be contiguous from zero,
// so a missing middle segment is an error rather than silent truncation.
func shardSegments(dir string, man *Manifest) ([]segmentInfo, error) {
	if man != nil && len(man.Shards) > 0 {
		out := make([]segmentInfo, len(man.Shards))
		for i := range man.Shards {
			s := &man.Shards[i]
			out[i] = segmentInfo{file: s.File, section: s.Section, sum: s}
		}
		return out, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading snapshot directory %s: %w", dir, err)
	}
	byIdx := map[string]map[int]string{sectionGames: {}, sectionUsers: {}, sectionGroups: {}}
	var out []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if name == "header.jsonl" {
			out = append(out, segmentInfo{file: name, section: sectionHeader})
			continue
		}
		if !shardSegmentRe.MatchString(name) {
			continue // manifests, temp files, foreign clutter
		}
		dash := strings.LastIndexByte(name, '-')
		section := name[:dash]
		idx, err := strconv.Atoi(strings.TrimSuffix(name[dash+1:], ".jsonl"))
		if err != nil {
			continue
		}
		byIdx[section][idx] = name
	}
	// Header first (if present), then sections in canonical order.
	sort.SliceStable(out, func(a, b int) bool { return out[a].section == sectionHeader })
	for _, section := range []string{sectionGames, sectionUsers, sectionGroups} {
		files := byIdx[section]
		for idx := 0; idx < len(files); idx++ {
			name, ok := files[idx]
			if !ok {
				return nil, fmt.Errorf("dataset: %s: segment %s missing (found %d %s segments with a gap)",
					dir, shardFileName(section, idx), len(files), section)
			}
			out = append(out, segmentInfo{file: name, section: section})
		}
	}
	return out, nil
}
