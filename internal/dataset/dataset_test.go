package dataset

import (
	"path/filepath"
	"reflect"
	"testing"

	"steamstudy/internal/simworld"
)

func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	cfg := simworld.DefaultConfig(1500)
	cfg.CatalogSize = 200
	u := simworld.MustGenerate(cfg, 3)
	return FromUniverse(u)
}

func TestFromUniverseValid(t *testing.T) {
	s := testSnapshot(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Users) != 1500 || len(s.Games) != 200 {
		t.Fatalf("sizes: %d users, %d games", len(s.Users), len(s.Games))
	}
}

func TestFromUniverseMatchesUniverseAggregates(t *testing.T) {
	cfg := simworld.DefaultConfig(1500)
	cfg.CatalogSize = 200
	u := simworld.MustGenerate(cfg, 3)
	s := FromUniverse(u)
	us := u.Stats()
	tot := s.Totals()
	if tot.Friendships != us.Friendships {
		t.Fatalf("friendships %d vs %d", tot.Friendships, us.Friendships)
	}
	if tot.OwnedGames != us.OwnedGames {
		t.Fatalf("owned games %d vs %d", tot.OwnedGames, us.OwnedGames)
	}
	if tot.Memberships != us.Memberships {
		t.Fatalf("memberships %d vs %d", tot.Memberships, us.Memberships)
	}
}

func TestFriendshipEdgesReciprocalOnce(t *testing.T) {
	s := testSnapshot(t)
	edges := s.FriendshipEdges()
	seen := map[[2]int32]bool{}
	for _, e := range edges {
		if e.A == e.B {
			t.Fatal("self edge")
		}
		key := [2]int32{e.A, e.B}
		if e.A > e.B {
			key = [2]int32{e.B, e.A}
		}
		if seen[key] {
			t.Fatal("edge counted twice")
		}
		seen[key] = true
	}
	// Every user's friend list length sums to exactly 2x the edge count
	// (full reciprocity inside the snapshot).
	sum := 0
	for i := range s.Users {
		sum += len(s.Users[i].Friends)
	}
	if sum != 2*len(edges) {
		t.Fatalf("friend list total %d, want %d", sum, 2*len(edges))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := testSnapshot(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicate user.
	bad := *s
	bad.Users = append(append([]UserRecord{}, s.Users...), s.Users[0])
	if bad.Validate() == nil {
		t.Fatal("duplicate user not caught")
	}
	// Two-week exceeding lifetime.
	bad2 := *s
	bad2.Users = append([]UserRecord{}, s.Users...)
	var target int
	for i := range bad2.Users {
		if len(bad2.Users[i].Games) > 0 {
			target = i
			break
		}
	}
	games := append([]OwnershipRecord{}, bad2.Users[target].Games...)
	games[0].TwoWeekMinutes = int32(games[0].TotalMinutes + 100)
	bad2.Users[target].Games = games
	if bad2.Validate() == nil {
		t.Fatal("two-week > lifetime not caught")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := testSnapshot(t)
	dir := t.TempDir()
	for _, name := range []string{"snap.gob", "snap.gob.gz", "snap.jsonl", "snap.jsonl.gz"} {
		path := filepath.Join(dir, name)
		if err := s.Save(path); err != nil {
			t.Fatalf("save %s: %v", name, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if got.CollectedAt != s.CollectedAt {
			t.Fatalf("%s: CollectedAt mismatch", name)
		}
		if !reflect.DeepEqual(got.Users, s.Users) {
			t.Fatalf("%s: users differ after round trip", name)
		}
		if !reflect.DeepEqual(got.Games, s.Games) {
			t.Fatalf("%s: games differ after round trip", name)
		}
		if !reflect.DeepEqual(got.Groups, s.Groups) {
			t.Fatalf("%s: groups differ after round trip", name)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("missing file load succeeded")
	}
}

func TestUserRecordSums(t *testing.T) {
	u := UserRecord{Games: []OwnershipRecord{
		{AppID: 1, TotalMinutes: 100, TwoWeekMinutes: 10},
		{AppID: 2, TotalMinutes: 50, TwoWeekMinutes: 5},
	}}
	if u.TotalMinutes() != 150 || u.TwoWeekMinutes() != 15 {
		t.Fatalf("sums: %d, %d", u.TotalMinutes(), u.TwoWeekMinutes())
	}
}

func TestHasGenre(t *testing.T) {
	g := GameRecord{Genres: []string{"Action", "RPG"}}
	if !g.HasGenre("Action") || g.HasGenre("Casual") {
		t.Fatal("HasGenre broken")
	}
}

func TestGameIndexAndUserIndex(t *testing.T) {
	s := testSnapshot(t)
	gi := s.GameIndex()
	for i := range s.Games {
		if gi[s.Games[i].AppID] != int32(i) {
			t.Fatal("game index wrong")
		}
	}
	ui := s.UserIndex()
	for i := range s.Users {
		if ui[s.Users[i].SteamID] != int32(i) {
			t.Fatal("user index wrong")
		}
	}
}

func TestMergeDisjointParts(t *testing.T) {
	s := testSnapshot(t)
	mid := len(s.Users) / 2
	a := &Snapshot{CollectedAt: 100, Users: s.Users[:mid], Games: s.Games, Groups: s.Groups}
	b := &Snapshot{CollectedAt: 200, Users: s.Users[mid:], Games: s.Games, Groups: s.Groups}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Users) != len(s.Users) {
		t.Fatalf("merged %d users, want %d", len(merged.Users), len(s.Users))
	}
	if merged.CollectedAt != 200 {
		t.Fatalf("merged CollectedAt %d", merged.CollectedAt)
	}
	if len(merged.Games) != len(s.Games) {
		t.Fatal("catalog duplicated or lost")
	}
	for i := 1; i < len(merged.Users); i++ {
		if merged.Users[i].SteamID <= merged.Users[i-1].SteamID {
			t.Fatal("merged users not ID-sorted")
		}
	}
}

func TestMergeLaterPartSupersedes(t *testing.T) {
	s := testSnapshot(t)
	old := *s
	old.Users = append([]UserRecord{}, s.Users...)
	// A re-crawl where user 0 gained a game.
	newer := &Snapshot{CollectedAt: s.CollectedAt + 1}
	updated := s.Users[0]
	updated.Games = append(append([]OwnershipRecord{}, updated.Games...),
		OwnershipRecord{AppID: s.Games[len(s.Games)-1].AppID + 1000, TotalMinutes: 5})
	newer.Users = []UserRecord{updated}
	merged, err := Merge(&old, newer)
	if err != nil {
		t.Fatal(err)
	}
	got := merged.Users[0]
	if len(got.Games) != len(updated.Games) {
		t.Fatalf("later observation did not supersede: %d games, want %d",
			len(got.Games), len(updated.Games))
	}
}

func TestMergeGroupMemberUnion(t *testing.T) {
	a := &Snapshot{Groups: []GroupRecord{{GID: 7, Members: []uint64{1, 2}}}}
	b := &Snapshot{Groups: []GroupRecord{{GID: 7, Type: "Game Server", Members: []uint64{2, 3}}}}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	g := merged.Groups[0]
	if len(g.Members) != 3 {
		t.Fatalf("member union = %v", g.Members)
	}
	if g.Type != "Game Server" {
		t.Fatalf("type not filled from the later part: %q", g.Type)
	}
}

func TestMergeRejectsEmpty(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
	if m, err := Merge(nil, testSnapshot(t)); err != nil || len(m.Users) == 0 {
		t.Fatalf("nil part not skipped: %v", err)
	}
}
