package dataset

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// nastySnapshot exercises every encoder edge the record types can carry:
// HTML-escaped characters, control characters, invalid UTF-8, the JS
// line separators, nil vs. empty slices, float formatting boundaries.
func nastySnapshot() *Snapshot {
	names := []string{
		"",
		"plain ascii",
		`<script>alert("x&y")</script>`,
		"back\\slash \"quote\"",
		"newline\ntab\tcr\rbell\x01",
		"del\x7fchar",
		"invalid \xff utf8 \x80 bytes",
		"line\u2028and\u2029separators",
		"héllo 日本語 🎮",
	}
	floats := []float64{
		0, 1, -1, 42.5, 0.1, -0.0001,
		1e-6, 9.999999e-7, 1e-7, 5e-324,
		1e21, 9.99e20, 1.5e22, -2.5e-9,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	s := &Snapshot{CollectedAt: 1_400_000_000}
	for i, name := range names {
		g := GameRecord{
			AppID:       uint32(10 + i),
			Name:        name,
			Type:        "game",
			Multiplayer: i%2 == 0,
			PriceCents:  int64(i) * 99,
			Metacritic:  -1 + i,
			ReleaseYear: 2000 + i,
			Developer:   names[len(names)-1-i],
		}
		switch i % 3 {
		case 0: // nil slices stay nil -> "null"
		case 1: // empty non-nil slices -> "[]"
			g.Genres = []string{}
			g.Achievements = []AchievementRecord{}
		default:
			g.Genres = []string{"Action", name}
			for j, f := range floats {
				g.Achievements = append(g.Achievements,
					AchievementRecord{Name: fmt.Sprintf("ACH_%d_%s", j, name), Percent: f})
			}
		}
		s.Games = append(s.Games, g)
		u := UserRecord{SteamID: uint64(i + 1), Created: int64(i) * 1000, Country: "DE", City: name}
		switch i % 3 {
		case 0:
		case 1:
			u.Friends = []FriendRecord{}
			u.Games = []OwnershipRecord{}
			u.Groups = []uint64{}
		default:
			u.Friends = []FriendRecord{{SteamID: uint64(i), Since: -5}, {SteamID: math.MaxUint64, Since: 0}}
			u.Games = []OwnershipRecord{{AppID: uint32(10 + i), TotalMinutes: math.MaxInt64, TwoWeekMinutes: math.MaxInt32}}
			u.Groups = []uint64{7, math.MaxUint64}
		}
		s.Users = append(s.Users, u)
		grp := GroupRecord{GID: uint64(100 + i), Name: name, Type: "Single Game"}
		if i%2 == 0 {
			grp.Members = []uint64{1, 2, 3}
		}
		s.Groups = append(s.Groups, grp)
	}
	return s
}

// stdlibJSONL is the reference encoding: the exact code path the export
// used before the hand-rolled codec.
func stdlibJSONL(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(jsonlLine{Kind: "header", CollectedAt: s.CollectedAt}); err != nil {
		t.Fatal(err)
	}
	for i := range s.Games {
		if err := enc.Encode(jsonlLine{Kind: "game", Game: &s.Games[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range s.Users {
		if err := enc.Encode(jsonlLine{Kind: "user", User: &s.Users[i]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range s.Groups {
		if err := enc.Encode(jsonlLine{Kind: "group", Group: &s.Groups[i]}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// The hand-rolled encoder must reproduce encoding/json byte for byte on
// every edge case the record types can express — the manifests' file
// hashes depend on it.
func TestJSONLEncoderMatchesStdlib(t *testing.T) {
	for _, s := range []*Snapshot{nastySnapshot(), {CollectedAt: 0}, persistSnapshot()} {
		want := stdlibJSONL(t, s)
		var got bytes.Buffer
		if err := s.writeJSONL(&got, 1, nil); err != nil {
			t.Fatal(err)
		}
		if d := firstDiff(got.Bytes(), want); d != -1 {
			lo, hi := max(0, d-40), min(len(want), d+40)
			t.Fatalf("encoding diverges at byte %d:\n hand:   %q\n stdlib: %q",
				d, got.Bytes()[lo:min(len(got.Bytes()), hi)], want[lo:hi])
		}
	}
}

// A NaN completion rate must fail the save with the stdlib error, not be
// silently mangled.
func TestJSONLEncoderRejectsNaNLikeStdlib(t *testing.T) {
	s := &Snapshot{Games: []GameRecord{{AppID: 1,
		Achievements: []AchievementRecord{{Name: "bad", Percent: math.NaN()}}}}}
	err := s.writeJSONL(io.Discard, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "unsupported value") {
		t.Fatalf("want json unsupported-value error, got %v", err)
	}
}

// Round trip through the fast decoder (and, for escaped strings, its
// stdlib fallback): the decoded snapshot is DeepEqual to what the
// encoding/json decoder produces from the same bytes, including
// nil-vs-empty slice identity. (Comparing against the *source* would be
// wrong: invalid UTF-8 legitimately round-trips to U+FFFD, exactly as
// it always did with encoding/json.)
func TestJSONLDecoderRoundTripsNastyRecords(t *testing.T) {
	s := nastySnapshot()
	var buf bytes.Buffer
	if err := s.writeJSONL(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	want := stdlibDecodeJSONL(t, buf.Bytes())
	for _, workers := range []int{1, 3} {
		got := &Snapshot{}
		if err := got.readJSONL(bufio.NewReader(bytes.NewReader(buf.Bytes())), workers, nil); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: round trip diverged from stdlib decode", workers)
		}
	}
}

// stdlibDecodeJSONL replays the pre-codec decoder: one json.Unmarshal
// per line.
func stdlibDecodeJSONL(t testing.TB, b []byte) *Snapshot {
	t.Helper()
	s := &Snapshot{}
	for _, raw := range bytes.Split(b, []byte{'\n'}) {
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var line jsonlLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		switch line.Kind {
		case "header":
			s.CollectedAt = line.CollectedAt
		case "game":
			s.Games = append(s.Games, *line.Game)
		case "user":
			s.Users = append(s.Users, *line.User)
		case "group":
			s.Groups = append(s.Groups, *line.Group)
		}
	}
	return s
}

// The fast path must also agree with encoding/json on lines it accepts:
// decode each canonical line both ways and compare.
func TestJSONLFastPathAgreesWithStdlib(t *testing.T) {
	s := nastySnapshot()
	var buf bytes.Buffer
	if err := s.writeJSONL(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	for lineNo, raw := range bytes.Split(buf.Bytes(), []byte{'\n'}) {
		if len(raw) == 0 {
			continue
		}
		var rec decodedLine
		if !decodeLineFast(raw, &rec, nil) {
			// Escaped strings legitimately punt to the fallback; anything
			// else should have been accepted.
			if !bytes.Contains(raw, []byte{'\\'}) {
				t.Fatalf("line %d: fast path rejected canonical escape-free line %q", lineNo+1, raw)
			}
			continue
		}
		var line jsonlLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("line %d: stdlib rejected what fast path accepted: %v", lineNo+1, err)
		}
		switch rec.kind {
		case 'h':
			if rec.collectedAt != line.CollectedAt {
				t.Fatalf("line %d: header mismatch", lineNo+1)
			}
		case 'g':
			if !reflect.DeepEqual(rec.game, *line.Game) {
				t.Fatalf("line %d: game mismatch\n fast:   %+v\n stdlib: %+v", lineNo+1, rec.game, *line.Game)
			}
		case 'u':
			if !reflect.DeepEqual(rec.user, *line.User) {
				t.Fatalf("line %d: user mismatch\n fast:   %+v\n stdlib: %+v", lineNo+1, rec.user, *line.User)
			}
		case 'p':
			if !reflect.DeepEqual(rec.group, *line.Group) {
				t.Fatalf("line %d: group mismatch\n fast:   %+v\n stdlib: %+v", lineNo+1, rec.group, *line.Group)
			}
		}
	}
}

// The committed example snapshot was written by the encoding/json
// version of this exporter. Re-saving its decoded form must reproduce
// the committed file byte for byte — the strongest possible evidence
// that the codec swap changed nothing on disk.
func TestSaveReproducesCommittedExampleBytes(t *testing.T) {
	src := filepath.Join("testdata", "example.snap.jsonl")
	s, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "example.snap.jsonl")
	if err := s.Save(out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if d := firstDiff(got, want); d != -1 {
		lo, hi := max(0, d-60), min(len(want), d+60)
		t.Fatalf("re-saved example diverges from committed bytes at offset %d:\n got:  %q\n want: %q",
			d, got[lo:min(len(got), hi)], want[lo:hi])
	}
}

// Snapshot bytes are part of the determinism contract: saving the same
// snapshot at any worker count must produce identical files (the
// manifest's SHA-256 doubles as the witness).
func TestSaveBytesIdenticalAcrossWorkers(t *testing.T) {
	s := testSnapshot(t)
	dir := t.TempDir()
	var ref string
	for _, w := range []int{1, 2, 3, 0} {
		path := filepath.Join(dir, fmt.Sprintf("w%d.snap.jsonl", w))
		if err := s.Save(path, WithWorkers(w)); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sum := fmt.Sprintf("%x", sha256.Sum256(b))
		man, err := ReadManifest(path)
		if err != nil || man == nil {
			t.Fatalf("workers=%d: manifest: %v", w, err)
		}
		if man.FileSHA256 != sum {
			t.Fatalf("workers=%d: manifest hash %s != file hash %s", w, man.FileSHA256, sum)
		}
		if ref == "" {
			ref = sum
		} else if sum != ref {
			t.Fatalf("workers=%d: snapshot bytes differ (%s vs %s)", w, sum, ref)
		}
	}
}

// Decoding is equally worker-independent, including the reported errors
// and the partial prefix decoded before one.
func TestLoadIdenticalAcrossWorkers(t *testing.T) {
	s := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	base, err := Load(path, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 0} {
		got, err := Load(path, WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: loaded snapshot differs", w)
		}
	}
}

// A decode error deep in the file reports the same line number and
// message for any worker count, with the same decoded prefix retained.
func TestDecodeErrorsWorkerIndependent(t *testing.T) {
	s := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(b, []byte{'\n'})
	badAt := len(lines) * 2 / 3
	lines[badAt] = []byte(`{"kind":"mystery"}`)
	if err := os.WriteFile(path, bytes.Join(lines, []byte{'\n'}), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ManifestPath(path)); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Sprintf("line %d: unknown record kind \"mystery\"", badAt+1)
	var refUsers, refGames = -1, -1
	for _, w := range []int{1, 2, 3, 0} {
		got, err := Load(path, WithWorkers(w))
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("workers=%d: want %q, got %v", w, wantErr, err)
		}
		// Load returns nil on decode error; fsck sees the partial decode.
		_ = got
		rep, ferr := FsckFile(path, nil, WithWorkers(w))
		if ferr != nil {
			t.Fatal(ferr)
		}
		if refUsers == -1 {
			refUsers, refGames = rep.Users, rep.Games
		} else if rep.Users != refUsers || rep.Games != refGames {
			t.Fatalf("workers=%d: partial decode shape %d/%d, want %d/%d",
				w, rep.Users, rep.Games, refUsers, refGames)
		}
	}
}

// --- benchmarks ---------------------------------------------------------

func benchCodecSnapshot(b *testing.B) *Snapshot {
	b.Helper()
	// Records shaped like real export data, enough of them that encoder
	// throughput dominates the loop overhead.
	s := &Snapshot{CollectedAt: 1_400_000_000}
	for i := 0; i < 64; i++ {
		g := GameRecord{AppID: uint32(10 * (i + 1)), Name: fmt.Sprintf("Game %05d", i),
			Type: "game", Genres: []string{"Action", "Indie"}, Multiplayer: i%3 == 0,
			PriceCents: 1999, Metacritic: 80, ReleaseYear: 2012, Developer: "Studio 42"}
		for j := 0; j < 12; j++ {
			g.Achievements = append(g.Achievements,
				AchievementRecord{Name: fmt.Sprintf("ACH_%d_%03d", g.AppID, j), Percent: 42.5 - float64(j)})
		}
		s.Games = append(s.Games, g)
	}
	for i := 0; i < 2000; i++ {
		u := UserRecord{SteamID: uint64(76561197960265728 + i), Created: 1_200_000_000, Country: "US", City: "Springfield"}
		for j := 0; j < 8; j++ {
			u.Friends = append(u.Friends, FriendRecord{SteamID: uint64(76561197960265728 + (i+j+1)%2000), Since: 1_300_000_000})
		}
		for j := 0; j < 16; j++ {
			u.Games = append(u.Games, OwnershipRecord{AppID: uint32(10 * (j + 1)), TotalMinutes: int64(j) * 600, TwoWeekMinutes: int32(j)})
		}
		u.Groups = []uint64{103582791429521408, 103582791429521409}
		s.Users = append(s.Users, u)
	}
	for i := 0; i < 40; i++ {
		grp := GroupRecord{GID: uint64(103582791429521408 + i), Name: fmt.Sprintf("group %d", i), Type: "Open"}
		for j := 0; j < 50; j++ {
			grp.Members = append(grp.Members, uint64(76561197960265728+(i*37+j)%2000))
		}
		s.Groups = append(s.Groups, grp)
	}
	return s
}

func BenchmarkJSONLEncodeHand(b *testing.B) {
	s := benchCodecSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.writeJSONL(io.Discard, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONLEncodeStdlib(b *testing.B) {
	s := benchCodecSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stdlibJSONL(b, s)
	}
}

func BenchmarkJSONLDecodeHand(b *testing.B) {
	s := benchCodecSnapshot(b)
	var buf bytes.Buffer
	if err := s.writeJSONL(&buf, 1, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := &Snapshot{}
		if err := got.readJSONL(bufio.NewReader(bytes.NewReader(buf.Bytes())), 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONLDecodeStdlib(b *testing.B) {
	s := benchCodecSnapshot(b)
	var buf bytes.Buffer
	if err := s.writeJSONL(&buf, 1, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := &Snapshot{}
		br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
		for lineNo := 1; ; lineNo++ {
			raw, err := br.ReadBytes('\n')
			if len(raw) == 0 {
				break
			}
			var line jsonlLine
			if uerr := json.Unmarshal(bytes.TrimSpace(raw), &line); uerr != nil {
				b.Fatal(uerr)
			}
			switch line.Kind {
			case "header":
				got.CollectedAt = line.CollectedAt
			case "game":
				got.Games = append(got.Games, *line.Game)
			case "user":
				got.Users = append(got.Users, *line.User)
			case "group":
				got.Groups = append(got.Groups, *line.Group)
			}
			if err == io.EOF {
				break
			}
		}
	}
}
