// Package graph provides the friendship-graph analyses of §4: the
// compressed adjacency structure, cumulative network-evolution series
// (Fig 1), per-year and cumulative degree distributions (Fig 2), neighbor
// attribute aggregates for the §7 homophily correlations, connected
// components, and degree assortativity.
package graph

import (
	"math"
	"sort"
	"time"
)

// Edge is one undirected friendship with its formation time (Unix secs).
type Edge struct {
	A, B  int32
	Since int64
}

// Graph is an undirected graph in CSR (compressed sparse row) form, which
// keeps adjacency iteration cache-friendly for the multi-hundred-thousand
// node universes this repository analyzes.
type Graph struct {
	n       int
	offsets []int32
	targets []int32
	// edges retains the original timestamped edge list (sorted by Since).
	edges []Edge
}

// Build constructs the CSR graph for n nodes from the edge list. Edges
// must reference nodes in [0, n); duplicates are the caller's concern.
func Build(n int, edges []Edge) *Graph {
	g := &Graph{n: n, edges: edges}
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e.A]++
		deg[e.B]++
	}
	g.offsets = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.offsets[i+1] = g.offsets[i] + deg[i]
	}
	g.targets = make([]int32, g.offsets[n])
	fill := make([]int32, n)
	for _, e := range edges {
		g.targets[g.offsets[e.A]+fill[e.A]] = e.B
		fill[e.A]++
		g.targets[g.offsets[e.B]+fill[e.B]] = e.A
		fill[e.B]++
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the edge count.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency slice of node v (do not modify).
func (g *Graph) Neighbors(v int32) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// Degrees returns every node's degree.
func (g *Graph) Degrees() []int {
	out := make([]int, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = g.Degree(int32(i))
	}
	return out
}

// EvolutionPoint is one point of the Fig 1 series: cumulative counts at
// the end of a month.
type EvolutionPoint struct {
	Year, Month int
	// Users is the cumulative number of accounts created by then.
	Users int
	// Friendships is the cumulative number of edges formed by then.
	Friendships int
}

// Evolution computes the Fig 1 monthly series between from and to (Unix
// seconds) given account creation times. Only friendships with Since >=
// from are counted, reflecting that Steam recorded no timestamps before
// September 2008 — the reason Fig 1 does not reach the full edge total.
func (g *Graph) Evolution(created []int64, from, to int64) []EvolutionPoint {
	sortedCreated := append([]int64(nil), created...)
	sort.Slice(sortedCreated, func(a, b int) bool { return sortedCreated[a] < sortedCreated[b] })

	var out []EvolutionPoint
	t := time.Unix(from, 0).UTC()
	t = time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
	end := time.Unix(to, 0).UTC()
	ei := 0
	edgeCount := 0
	for !t.After(end) {
		next := t.AddDate(0, 1, 0)
		cutoff := next.Unix()
		for ei < len(g.edges) && g.edges[ei].Since < cutoff {
			if g.edges[ei].Since >= from {
				edgeCount++
			}
			ei++
		}
		users := sort.Search(len(sortedCreated), func(i int) bool {
			return sortedCreated[i] >= cutoff
		})
		out = append(out, EvolutionPoint{
			Year: t.Year(), Month: int(t.Month()),
			Users: users, Friendships: edgeCount,
		})
		t = next
	}
	return out
}

// DegreesAt returns each node's degree counting only edges formed strictly
// before cutoff — the basis of Fig 2's "through year Y" distributions.
func (g *Graph) DegreesAt(cutoff int64) []int {
	deg := make([]int, g.n)
	for _, e := range g.edges {
		if e.Since >= cutoff {
			break // edges are sorted by Since
		}
		deg[e.A]++
		deg[e.B]++
	}
	return deg
}

// DegreesAdded returns each node's degree gain within [from, to) — the
// basis of Fig 2's "year Y only" distributions.
func (g *Graph) DegreesAdded(from, to int64) []int {
	deg := make([]int, g.n)
	for _, e := range g.edges {
		if e.Since >= to {
			break
		}
		if e.Since >= from {
			deg[e.A]++
			deg[e.B]++
		}
	}
	return deg
}

// NeighborAverages returns, for every node with at least minDegree
// neighbors, the pair (own attribute, mean neighbor attribute). This is
// the Fig 11 homophily computation.
func (g *Graph) NeighborAverages(attr []float64, minDegree int) (own, nbr []float64) {
	if minDegree < 1 {
		minDegree = 1
	}
	for v := int32(0); int(v) < g.n; v++ {
		ns := g.Neighbors(v)
		if len(ns) < minDegree {
			continue
		}
		sum := 0.0
		for _, u := range ns {
			sum += attr[u]
		}
		own = append(own, attr[v])
		nbr = append(nbr, sum/float64(len(ns)))
	}
	return own, nbr
}

// Components labels connected components and returns (labels, sizes)
// with labels in [0, len(sizes)). Runs an iterative BFS (no recursion, so
// giant components do not exhaust the stack).
func (g *Graph) Components() ([]int32, []int) {
	labels := make([]int32, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var sizes []int
	var queue []int32
	for start := int32(0); int(start) < g.n; start++ {
		if labels[start] != -1 {
			continue
		}
		label := int32(len(sizes))
		size := 0
		queue = append(queue[:0], start)
		labels[start] = label
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, u := range g.Neighbors(v) {
				if labels[u] == -1 {
					labels[u] = label
					queue = append(queue, u)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// LargestComponent returns the size of the largest connected component
// and its share of all nodes with at least one edge.
func (g *Graph) LargestComponent() (size int, shareOfConnected float64) {
	_, sizes := g.Components()
	connected := 0
	for v := int32(0); int(v) < g.n; v++ {
		if g.Degree(v) > 0 {
			connected++
		}
	}
	for _, s := range sizes {
		if s > size {
			size = s
		}
	}
	if connected == 0 {
		return 0, 0
	}
	// Singleton components of isolated nodes inflate sizes; the largest
	// component is what matters, measured against connected nodes.
	return size, float64(size) / float64(connected)
}

// DegreeAssortativity computes the Pearson correlation of degrees across
// edges (Newman's r): positive values mean high-degree users befriend
// high-degree users, the §10.3 "network of friends" signature.
func (g *Graph) DegreeAssortativity() float64 {
	if len(g.edges) == 0 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(g.edges) * 2)
	for _, e := range g.edges {
		// Each undirected edge contributes both orientations, which makes
		// the measure symmetric.
		da, db := float64(g.Degree(e.A)), float64(g.Degree(e.B))
		sx += da + db
		sy += db + da
		sxx += da*da + db*db
		syy += db*db + da*da
		sxy += 2 * da * db
	}
	mx, my := sx/n, sy/n
	cov := sxy/n - mx*my
	vx := sxx/n - mx*mx
	vy := syy/n - my*my
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
