package graph

import (
	"math"

	"steamstudy/internal/randx"
)

// SmallWorldStats corroborates the Becker et al. finding the paper cites
// in §2.2 — the Steam friendship graph shows small-world characteristics:
// clustering far above an Erdős–Rényi random graph of the same density,
// with comparably short paths.
type SmallWorldStats struct {
	// Nodes and Edges of the graph; MeanDegree over connected nodes.
	Nodes, Edges int
	MeanDegree   float64
	// Clustering is the mean local clustering coefficient over sampled
	// nodes of degree >= 2.
	Clustering float64
	// RandomClustering is the Erdős–Rényi expectation k/N for comparison.
	RandomClustering float64
	// AvgPathLength is the mean shortest-path length between sampled
	// node pairs of the largest component; RandomPathLength is the
	// ln(N)/ln(k) random-graph expectation.
	AvgPathLength    float64
	RandomPathLength float64
	// LargestComponentShare is the fraction of connected nodes inside the
	// giant component (the component Becker's crawl was limited to).
	LargestComponentShare float64
}

// IsSmallWorld applies the standard criterion: clustering well above the
// random expectation with paths of the same order.
func (s SmallWorldStats) IsSmallWorld() bool {
	return s.Clustering > 5*s.RandomClustering &&
		s.AvgPathLength < 3*s.RandomPathLength
}

// SmallWorld estimates the small-world statistics by sampling: local
// clustering over up to sampleNodes nodes, and path lengths by BFS from
// up to sampleBFS sources within the largest component. Deterministic in
// seed.
func (g *Graph) SmallWorld(seed int64, sampleNodes, sampleBFS int) SmallWorldStats {
	if sampleNodes <= 0 {
		sampleNodes = 2000
	}
	if sampleBFS <= 0 {
		sampleBFS = 24
	}
	rng := randx.New(seed).Split("smallworld")

	stats := SmallWorldStats{Nodes: g.n, Edges: g.M()}
	connected := make([]int32, 0, g.n)
	for v := int32(0); int(v) < g.n; v++ {
		if g.Degree(v) > 0 {
			connected = append(connected, v)
		}
	}
	if len(connected) == 0 {
		return stats
	}
	stats.MeanDegree = 2 * float64(g.M()) / float64(len(connected))
	stats.RandomClustering = stats.MeanDegree / float64(len(connected))
	if stats.MeanDegree > 1 {
		stats.RandomPathLength = math.Log(float64(len(connected))) / math.Log(stats.MeanDegree)
	}

	// Local clustering over sampled nodes with degree >= 2.
	var cSum float64
	cN := 0
	for try := 0; try < sampleNodes*4 && cN < sampleNodes; try++ {
		v := connected[rng.Intn(len(connected))]
		ns := g.Neighbors(v)
		if len(ns) < 2 {
			continue
		}
		set := make(map[int32]struct{}, len(ns))
		for _, u := range ns {
			set[u] = struct{}{}
		}
		links := 0
		for _, u := range ns {
			for _, w := range g.Neighbors(u) {
				if w == v || w == u {
					continue
				}
				if _, ok := set[w]; ok {
					links++
				}
			}
		}
		// Each closed pair counted twice across the neighbor loop.
		possible := len(ns) * (len(ns) - 1)
		cSum += float64(links) / float64(possible)
		cN++
	}
	if cN > 0 {
		stats.Clustering = cSum / float64(cN)
	}

	// Largest component and path lengths within it.
	labels, sizes := g.Components()
	best := int32(0)
	for l := range sizes {
		if sizes[l] > sizes[best] {
			best = int32(l)
		}
	}
	var giant []int32
	for _, v := range connected {
		if labels[v] == best {
			giant = append(giant, v)
		}
	}
	stats.LargestComponentShare = float64(len(giant)) / float64(len(connected))
	if len(giant) < 2 {
		return stats
	}
	var dSum float64
	dN := 0
	dist := make([]int32, g.n)
	for b := 0; b < sampleBFS; b++ {
		src := giant[rng.Intn(len(giant))]
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int32{src}
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, u := range g.Neighbors(v) {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for _, v := range giant {
			if dist[v] > 0 {
				dSum += float64(dist[v])
				dN++
			}
		}
	}
	if dN > 0 {
		stats.AvgPathLength = dSum / float64(dN)
	}
	return stats
}
