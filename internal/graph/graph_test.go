package graph

import (
	"math"
	"testing"
	"time"

	"steamstudy/internal/randx"
	"steamstudy/internal/stats"
)

func ts(year int, month time.Month) int64 {
	return time.Date(year, month, 15, 0, 0, 0, 0, time.UTC).Unix()
}

func triangleGraph() *Graph {
	return Build(4, []Edge{
		{A: 0, B: 1, Since: ts(2009, 1)},
		{A: 1, B: 2, Since: ts(2010, 6)},
		{A: 0, B: 2, Since: ts(2011, 3)},
	})
}

func TestBuildDegreesAndNeighbors(t *testing.T) {
	g := triangleGraph()
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	wantDeg := []int{2, 2, 2, 0}
	for i, d := range g.Degrees() {
		if d != wantDeg[i] {
			t.Fatalf("degree[%d] = %d, want %d", i, d, wantDeg[i])
		}
	}
	ns := g.Neighbors(0)
	seen := map[int32]bool{}
	for _, u := range ns {
		seen[u] = true
	}
	if !seen[1] || !seen[2] || len(ns) != 2 {
		t.Fatalf("neighbors(0) = %v", ns)
	}
	if len(g.Neighbors(3)) != 0 {
		t.Fatal("isolated node has neighbors")
	}
}

func TestDegreesAtCutoff(t *testing.T) {
	g := triangleGraph()
	deg := g.DegreesAt(ts(2010, 1))
	// Only the 2009 edge exists before 2010-01.
	if deg[0] != 1 || deg[1] != 1 || deg[2] != 0 {
		t.Fatalf("DegreesAt = %v", deg)
	}
	all := g.DegreesAt(ts(2012, 1))
	if all[0] != 2 || all[1] != 2 || all[2] != 2 {
		t.Fatalf("DegreesAt(after all) = %v", all)
	}
}

func TestDegreesAdded(t *testing.T) {
	g := triangleGraph()
	deg := g.DegreesAdded(ts(2010, 1), ts(2011, 1))
	// Only the 2010 edge is inside the window.
	if deg[1] != 1 || deg[2] != 1 || deg[0] != 0 {
		t.Fatalf("DegreesAdded = %v", deg)
	}
}

func TestEvolutionMonotone(t *testing.T) {
	g := triangleGraph()
	created := []int64{ts(2008, 10), ts(2008, 12), ts(2010, 2), ts(2012, 5)}
	pts := g.Evolution(created, ts(2008, 9), ts(2012, 12))
	if len(pts) < 12 {
		t.Fatalf("too few evolution points: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Users < pts[i-1].Users || pts[i].Friendships < pts[i-1].Friendships {
			t.Fatal("evolution series not monotone")
		}
	}
	last := pts[len(pts)-1]
	if last.Users != 4 || last.Friendships != 3 {
		t.Fatalf("final cumulative point = %+v", last)
	}
}

func TestEvolutionExcludesPreWindowEdges(t *testing.T) {
	g := Build(2, []Edge{{A: 0, B: 1, Since: ts(2005, 6)}})
	pts := g.Evolution([]int64{ts(2004, 1), ts(2004, 2)}, ts(2008, 9), ts(2009, 9))
	for _, p := range pts {
		if p.Friendships != 0 {
			t.Fatal("pre-2008 edge counted despite the timestamp-recording cutoff")
		}
	}
}

func TestNeighborAverages(t *testing.T) {
	g := triangleGraph()
	attr := []float64{10, 20, 30, 99}
	own, nbr := g.NeighborAverages(attr, 1)
	if len(own) != 3 {
		t.Fatalf("expected 3 connected nodes, got %d", len(own))
	}
	// Node 0's neighbors are 1 and 2: average 25.
	found := false
	for i := range own {
		if own[i] == 10 && math.Abs(nbr[i]-25) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 0 neighbor average missing: own=%v nbr=%v", own, nbr)
	}
	own5, _ := g.NeighborAverages(attr, 5)
	if len(own5) != 0 {
		t.Fatal("minDegree filter ignored")
	}
}

func TestComponents(t *testing.T) {
	g := Build(6, []Edge{
		{A: 0, B: 1}, {A: 1, B: 2}, {A: 3, B: 4},
	})
	labels, sizes := g.Components()
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("triangle chain not one component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("pair component mislabeled")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated node joined a component")
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 6 {
		t.Fatalf("component sizes sum to %d", total)
	}
	size, share := g.LargestComponent()
	if size != 3 {
		t.Fatalf("largest component size %d", size)
	}
	if math.Abs(share-3.0/5.0) > 1e-12 {
		t.Fatalf("largest component share %v", share)
	}
}

func TestComponentsLargeChainNoStackOverflow(t *testing.T) {
	const n = 200000
	edges := make([]Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = Edge{A: int32(i), B: int32(i + 1)}
	}
	g := Build(n, edges)
	_, sizes := g.Components()
	if len(sizes) != 1 || sizes[0] != n {
		t.Fatalf("chain components wrong: %v components", len(sizes))
	}
}

func TestDegreeAssortativitySigns(t *testing.T) {
	// Assortative graph: two cliques of distinct sizes.
	var edges []Edge
	for i := int32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			edges = append(edges, Edge{A: i, B: j})
		}
	}
	edges = append(edges, Edge{A: 6, B: 7}, Edge{A: 8, B: 9})
	g := Build(10, edges)
	if r := g.DegreeAssortativity(); r < 0.8 {
		t.Fatalf("clique-plus-pairs assortativity = %v, want strongly positive", r)
	}
	// Star graph: perfectly disassortative.
	var star []Edge
	for i := int32(1); i <= 8; i++ {
		star = append(star, Edge{A: 0, B: i})
	}
	if r := Build(9, star).DegreeAssortativity(); r > -0.9 {
		t.Fatalf("star assortativity = %v, want ~-1", r)
	}
	if r := Build(2, nil).DegreeAssortativity(); r != 0 {
		t.Fatalf("empty graph assortativity = %v", r)
	}
}

func TestHomophilousWiringDetectedEndToEnd(t *testing.T) {
	// Synthetic homophilous graph: nodes sorted by attribute, edges to
	// nearby ranks. NeighborAverages + Spearman must detect it strongly.
	r := randx.New(5)
	const n = 5000
	attr := make([]float64, n)
	for i := range attr {
		attr[i] = float64(i) + r.NormFloat64() // monotone-ish attribute
	}
	var edges []Edge
	seen := map[[2]int32]bool{}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := i + 1 + r.Intn(50)
			if j >= n {
				continue
			}
			key := [2]int32{int32(i), int32(j)}
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, Edge{A: int32(i), B: int32(j)})
		}
	}
	g := Build(n, edges)
	own, nbr := g.NeighborAverages(attr, 1)
	if rho := stats.Spearman(own, nbr); rho < 0.9 {
		t.Fatalf("homophily on rank-local graph = %v, want > 0.9", rho)
	}
}

func TestSmallWorldDetectsStructure(t *testing.T) {
	r := randx.New(7)
	const n = 3000
	// A ring lattice with k=6 neighbors plus a few shortcuts: the classic
	// Watts-Strogatz small-world construction.
	var edges []Edge
	for i := 0; i < n; i++ {
		for d := 1; d <= 3; d++ {
			edges = append(edges, Edge{A: int32(i), B: int32((i + d) % n)})
		}
	}
	for i := 0; i < n/5; i++ {
		a, b := int32(r.Intn(n)), int32(r.Intn(n))
		if a != b {
			edges = append(edges, Edge{A: a, B: b})
		}
	}
	g := Build(n, edges)
	sw := g.SmallWorld(1, 1000, 12)
	if sw.Clustering < 0.3 {
		t.Fatalf("lattice clustering %v, want >= 0.3 (C=0.6 for a k=6 ring)", sw.Clustering)
	}
	if sw.Clustering < 20*sw.RandomClustering {
		t.Fatalf("clustering %v not far above random %v", sw.Clustering, sw.RandomClustering)
	}
	if !sw.IsSmallWorld() {
		t.Fatalf("ring-with-shortcuts not detected as small world: %+v", sw)
	}
	if sw.LargestComponentShare < 0.99 {
		t.Fatalf("giant component share %v", sw.LargestComponentShare)
	}
}

func TestSmallWorldRandomGraphIsNotClustered(t *testing.T) {
	r := randx.New(9)
	const n = 3000
	var edges []Edge
	seen := map[[2]int32]bool{}
	for len(edges) < 3*n {
		a, b := int32(r.Intn(n)), int32(r.Intn(n))
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int32{a, b}] {
			continue
		}
		seen[[2]int32{a, b}] = true
		edges = append(edges, Edge{A: a, B: b})
	}
	g := Build(n, edges)
	sw := g.SmallWorld(1, 1000, 12)
	// An Erdos-Renyi graph's clustering matches the k/N expectation.
	if sw.Clustering > 10*sw.RandomClustering {
		t.Fatalf("random graph clustering %v suspiciously high vs %v", sw.Clustering, sw.RandomClustering)
	}
}

func TestSmallWorldEmptyGraph(t *testing.T) {
	g := Build(10, nil)
	sw := g.SmallWorld(1, 100, 4)
	if sw.Clustering != 0 || sw.AvgPathLength != 0 {
		t.Fatalf("empty graph stats: %+v", sw)
	}
}
