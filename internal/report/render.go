// Package report renders analysis results as aligned text tables, ASCII
// plots (log-log scatter, CDF curves, bar charts, the Fig 12 shade
// matrix), and CSV series for external plotting. The steamstudy command
// uses it to print the paper's tables and figures; each renderer takes an
// io.Writer so tests can assert on the output.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes an aligned ASCII table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes headers plus rows as CSV.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Point is one (x, y) plot coordinate.
type Point struct{ X, Y float64 }

// PlotOptions configure the ASCII scatter/line plot.
type PlotOptions struct {
	Width, Height int
	LogX, LogY    bool
	Title         string
	XLabel        string
	YLabel        string
}

func (o PlotOptions) withDefaults() PlotOptions {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// Plot renders one or more series as an ASCII scatter plot; each series
// gets its own glyph (*, +, o, x, ...).
func Plot(w io.Writer, series [][]Point, opts PlotOptions) error {
	opts = opts.withDefaults()
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if opts.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if opts.LogY {
			return math.Log10(v)
		}
		return v
	}
	any := false
	for _, s := range series {
		for _, p := range s {
			if opts.LogX && p.X <= 0 || opts.LogY && p.Y <= 0 {
				continue
			}
			x, y := tx(p.X), ty(p.Y)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			any = true
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s {
			if opts.LogX && p.X <= 0 || opts.LogY && p.Y <= 0 {
				continue
			}
			cx := int((tx(p.X) - minX) / (maxX - minX) * float64(opts.Width-1))
			cy := int((ty(p.Y) - minY) / (maxY - minY) * float64(opts.Height-1))
			row := opts.Height - 1 - cy
			grid[row][cx] = g
		}
	}
	if opts.Title != "" {
		if _, err := fmt.Fprintln(w, opts.Title); err != nil {
			return err
		}
	}
	yLo, yHi := minY, maxY
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = axisLabel(yHi, opts.LogY)
		case opts.Height - 1:
			label = axisLabel(yLo, opts.LogY)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", opts.Width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s  %-*s%s\n", "",
		opts.Width-len(axisLabel(maxX, opts.LogX)), axisLabel(minX, opts.LogX), axisLabel(maxX, opts.LogX))
	if err != nil {
		return err
	}
	if opts.XLabel != "" {
		if _, err := fmt.Fprintf(w, "%10s  %s\n", "", opts.XLabel); err != nil {
			return err
		}
	}
	return nil
}

func axisLabel(v float64, isLog bool) string {
	if isLog {
		v = math.Pow(10, v)
	}
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.1e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Bars renders a horizontal bar chart with proportional widths.
func Bars(w io.Writer, labels []string, values []float64, width int) error {
	if width <= 0 {
		width = 50
	}
	maxV, maxL := 0.0, 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if _, err := fmt.Fprintf(w, "%-*s |%s %s\n",
			maxL, labels[i], strings.Repeat("#", n), axisLabel(v, false)); err != nil {
			return err
		}
	}
	return nil
}

// shadeRamp maps an intensity in [0, 1] to a display character, dark to
// light like the paper's Fig 12 (here: heavier play = denser glyph).
var shadeRamp = []byte(" .:-=+*#%@")

// ShadeMatrix renders rows of intensities in [0, 1] as a shaded matrix;
// values outside [0,1] are clamped. Each row is downsampled to width
// columns by averaging.
func ShadeMatrix(w io.Writer, rows [][]float64, rowLabels []string, width int) error {
	if width <= 0 {
		width = 72
	}
	for r, row := range rows {
		line := make([]byte, width)
		for c := 0; c < width; c++ {
			if len(row) == 0 {
				line[c] = shadeRamp[0]
				continue
			}
			lo := c * len(row) / width
			hi := (c + 1) * len(row) / width
			if hi <= lo {
				hi = lo + 1
			}
			if hi > len(row) {
				hi = len(row)
				if lo >= hi {
					lo = hi - 1
				}
			}
			sum := 0.0
			for k := lo; k < hi; k++ {
				sum += clamp01(row[k])
			}
			avg := sum / float64(hi-lo)
			idx := int(avg * float64(len(shadeRamp)-1))
			line[c] = shadeRamp[idx]
		}
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		if _, err := fmt.Fprintf(w, "%10s |%s|\n", label, string(line)); err != nil {
			return err
		}
	}
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Pct formats a fraction as a percentage cell.
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", frac*100) }

// USD formats dollars.
func USD(v float64) string { return fmt.Sprintf("$%.2f", v) }
