package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"Name", "Value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22222"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count %d: %q", len(lines), buf.String())
	}
	// The separator is as wide as the widest cell per column.
	if !strings.HasPrefix(lines[1], strings.Repeat("-", len("a-much-longer-name"))) {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	if !strings.Contains(lines[3], "22222") {
		t.Fatalf("value missing: %q", lines[3])
	}
}

func TestCSVQuotesAndRows(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"a", "b"}, [][]string{{"1", "has,comma"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"has,comma\"\n"
	if buf.String() != want {
		t.Fatalf("CSV output %q, want %q", buf.String(), want)
	}
}

func TestPlotBasics(t *testing.T) {
	var buf bytes.Buffer
	pts := []Point{{1, 1}, {10, 100}, {100, 10000}}
	err := Plot(&buf, [][]Point{pts}, PlotOptions{LogX: true, LogY: true, Width: 40, Height: 10, Title: "t"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "t\n") {
		t.Fatal("title missing")
	}
	if strings.Count(out, "*") != 3 {
		t.Fatalf("expected 3 glyphs, output:\n%s", out)
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(&buf, [][]Point{{}}, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty plot not flagged")
	}
	// Log axes drop non-positive points; all-non-positive means no data.
	buf.Reset()
	if err := Plot(&buf, [][]Point{{{X: -1, Y: 2}}}, PlotOptions{LogX: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("non-positive log points not dropped")
	}
	// A single point (degenerate range) must not panic.
	buf.Reset()
	if err := Plot(&buf, [][]Point{{{X: 5, Y: 5}}}, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestBarsProportional(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, []string{"a", "b"}, []float64{10, 5}, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if strings.Count(lines[0], "#") != 20 {
		t.Fatalf("max bar not full width: %q", lines[0])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
}

func TestShadeMatrix(t *testing.T) {
	var buf bytes.Buffer
	rows := [][]float64{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
	}
	if err := ShadeMatrix(&buf, rows, []string{"lo", "hi"}, 8); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if !strings.Contains(lines[0], "        ") {
		t.Fatalf("zero row not blank: %q", lines[0])
	}
	if !strings.Contains(lines[1], "@@@@@@@@") {
		t.Fatalf("full row not dense: %q", lines[1])
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		0.05:    "0.0500",
		1234.5:  "1234",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Fatalf("F(%v) = %q, want %q", v, got, want)
		}
	}
	if Pct(0.824) != "82.40%" {
		t.Fatalf("Pct = %q", Pct(0.824))
	}
	if USD(150.88) != "$150.88" {
		t.Fatalf("USD = %q", USD(150.88))
	}
}

func TestThinPts(t *testing.T) {
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{X: float64(i), Y: float64(i)}
	}
	th := thinPts(pts, 100)
	if len(th) != 100 {
		t.Fatalf("thinned to %d", len(th))
	}
	if th[0].X != 0 || th[99].X != 999 {
		t.Fatalf("endpoints lost: %v %v", th[0], th[99])
	}
	same := thinPts(pts[:50], 100)
	if len(same) != 50 {
		t.Fatal("under-cap series modified")
	}
}

func TestShadeMatrixEmptyRows(t *testing.T) {
	var buf bytes.Buffer
	if err := ShadeMatrix(&buf, [][]float64{{}, {0.5}}, []string{"a", "b"}, 8); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", buf.String())
	}
}
