package report

import (
	"fmt"
	"io"
	"sort"

	"steamstudy/internal/analysis"
	"steamstudy/internal/graph"
	"steamstudy/internal/stats"
)

// Paper-value constants quoted inline next to reproduced numbers, so every
// rendered table carries its own paper-vs-measured comparison.

// Table1 renders the reported-country breakdown beside Table 1's values.
func Table1(w io.Writer, t analysis.CountryTable) error {
	fmt.Fprintf(w, "Table 1 — reported-country breakdown (%.1f%% of users report; paper: 10.7%%)\n",
		t.ReportFraction*100)
	rows := make([][]string, 0, len(t.Rows)+1)
	for _, r := range t.Rows {
		rows = append(rows, []string{
			fmt.Sprint(r.Rank), r.Country, fmt.Sprintf("%.2f%%", r.Percent),
		})
	}
	rows = append(rows, []string{"", fmt.Sprintf("Other (%d)", t.OtherCount),
		fmt.Sprintf("%.2f%%", t.OtherPercent)})
	return Table(w, []string{"Rank", "Country", "Percent"}, rows)
}

// Table2 renders the top-group type mix beside Table 2's values.
func Table2(w io.Writer, rows []analysis.GroupTypeRow) error {
	fmt.Fprintln(w, "Table 2 — types of the largest groups"+
		" (paper: Game Server 45.6%, Single Game 20.4%, Community 17.2%,"+
		" Special Interest 14.0%, Steam 1.6%, Publisher 1.2%)")
	out := make([][]string, 0, len(rows))
	total := 0
	for _, r := range rows {
		out = append(out, []string{r.Type, fmt.Sprint(r.Count), fmt.Sprintf("%.1f%%", r.Percent)})
		total += r.Count
	}
	out = append(out, []string{"Total", fmt.Sprint(total), "100.0%"})
	return Table(w, []string{"Group Type", "Count", "Percent"}, out)
}

// Table3 renders the percentile table beside Table 3's values.
func Table3(w io.Writer, rows []analysis.PercentileRow) error {
	fmt.Fprintln(w, "Table 3 — percentiles of gamer attributes (paper values in DESIGN.md §4)")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Attribute, F(r.P50), F(r.P80), F(r.P90), F(r.P95), F(r.P99),
		})
	}
	return Table(w, []string{"Attribute", "50th", "80th", "90th", "95th", "99th"}, out)
}

// Table4 renders the classification table in the Appendix layout.
func Table4(w io.Writer, rows []analysis.ClassificationRow) error {
	fmt.Fprintln(w, "Table 4 — heavy-tail classification (R/p per comparison, as in the Appendix)")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		if r.Err != "" {
			out = append(out, []string{r.Distribution, "-", "-", "-", "-", "error: " + r.Err})
			continue
		}
		fmtCmp := func(R, P float64) string { return fmt.Sprintf("%.1f/%.2g", R, P) }
		class := r.Class.String()
		if r.LowResolution {
			class += " (low resolution)"
		}
		out = append(out, []string{
			r.Distribution,
			fmtCmp(r.Comparisons.PLvsExp.R, r.Comparisons.PLvsExp.P),
			fmtCmp(r.Comparisons.PLvsLN.R, r.Comparisons.PLvsLN.P),
			fmtCmp(r.Comparisons.TPLvsPL.R, r.Comparisons.TPLvsPL.P),
			fmtCmp(r.Comparisons.TPLvsLN.R, r.Comparisons.TPLvsLN.P),
			class,
		})
	}
	return Table(w, []string{
		"Distribution", "PL vs exp", "PL vs LN", "TPL vs PL", "TPL vs LN", "Classification",
	}, out)
}

// Figure1Evolution renders Fig 1 as two cumulative series.
func Figure1Evolution(w io.Writer, pts []graph.EvolutionPoint) error {
	fmt.Fprintln(w, "Figure 1 — evolution of the friendship graph (cumulative, monthly)")
	var users, friends []Point
	for i, p := range pts {
		x := float64(i)
		users = append(users, Point{X: x, Y: float64(p.Users)})
		friends = append(friends, Point{X: x, Y: float64(p.Friendships)})
	}
	if err := Plot(w, [][]Point{users, friends}, PlotOptions{
		Height: 16, Title: "  * users    + friendships", XLabel: "months since Sep 2008",
	}); err != nil {
		return err
	}
	last := pts[len(pts)-1]
	_, err := fmt.Fprintf(w, "final: %d users, %d friendships (timestamped window)\n",
		last.Users, last.Friendships)
	return err
}

// Figure2 renders the degree distributions on log-log axes.
func Figure2(w io.Writer, series []analysis.DegreeSeries, dips analysis.CapDipStats) error {
	fmt.Fprintln(w, "Figure 2 — friend-count distributions (log-log)")
	var plots [][]Point
	var legend string
	for i, s := range series {
		var pts []Point
		for k, v := range s.Hist {
			pts = append(pts, Point{X: float64(k), Y: float64(v)})
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
		plots = append(plots, pts)
		legend += fmt.Sprintf("  %c %s", "*+ox#@%&"[i%8], s.Label)
	}
	fmt.Fprintln(w, legend)
	if err := Plot(w, plots, PlotOptions{LogX: true, LogY: true, Height: 18, XLabel: "friends"}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "cap dips: %d users at 240-250 friends, %d above 250, %d above 300 (paper: sharp drops past the caps)\n",
		dips.At240to250, dips.Above250, dips.Above300)
	return err
}

// Figure3 renders the group game-diversity histogram.
func Figure3(w io.Writer, res analysis.Figure3Result) error {
	fmt.Fprintf(w, "Figure 3 — distinct games played by group members (%d groups; log-log)\n",
		res.GroupsConsidered)
	var pts []Point
	for _, p := range res.Histogram {
		pts = append(pts, Point{X: float64(p.DistinctGames), Y: float64(p.Groups)})
	}
	if err := Plot(w, [][]Point{pts}, PlotOptions{LogX: true, LogY: true, Height: 14, XLabel: "distinct games"}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "focused groups (>=90%% playtime on one game): %d (%.2f%%; paper: 4.97%%)\n",
		res.FocusedGroups, res.FocusedFraction*100)
	return err
}

// Figure4 renders the ownership distributions.
func Figure4(w io.Writer, res analysis.OwnershipResult) error {
	fmt.Fprintln(w, "Figure 4 — game ownership (log-log; * owned, + played)")
	toPts := func(h map[int]int) []Point {
		var pts []Point
		for k, v := range h {
			pts = append(pts, Point{X: float64(k), Y: float64(v)})
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
		return pts
	}
	if err := Plot(w, [][]Point{toPts(res.OwnedHist), toPts(res.PlayedHist)},
		PlotOptions{LogX: true, LogY: true, Height: 16, XLabel: "games"}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"80th percentiles: %s owned / %s played (paper: 10 / 7); uptick band owners: %d; big never-played libraries: %d (paper: 29)\n",
		F(res.OwnedP80), F(res.PlayedP80), res.UptickOwners, res.NeverPlayedBigLibraries)
	return err
}

// Figure5 renders ownership by genre.
func Figure5(w io.Writer, rows []analysis.GenreOwnershipRow) error {
	fmt.Fprintln(w, "Figure 5 — ownership by genre (# owned; parenthesized: unplayed share; paper: Action 41.49% unplayed)")
	labels := make([]string, len(rows))
	values := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = fmt.Sprintf("%s (%.0f%% unplayed)", r.Genre, r.UnplayedFrac*100)
		values[i] = float64(r.Owned)
	}
	return Bars(w, labels, values, 48)
}

// Figure6 renders the playtime CDFs and Pareto shares.
func Figure6(w io.Writer, res analysis.PlaytimeCDFResult) error {
	fmt.Fprintln(w, "Figure 6 — CDF of total (*) and two-week (+) playtime (hours, log x)")
	toPts := func(c []stats.CDFPoint) []Point {
		var pts []Point
		for _, p := range c {
			if p.X > 0 {
				pts = append(pts, Point{X: p.X, Y: p.P})
			}
		}
		return thinPts(pts, 400)
	}
	if err := Plot(w, [][]Point{toPts(res.TotalCDF), toPts(res.TwoWeekCDF)},
		PlotOptions{LogX: true, Height: 14, XLabel: "hours"}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"top 20%% of players hold %.1f%% of playtime (paper: 82.4%%); top 10%% of users hold %.1f%% of two-week playtime (paper: 93.0%%); %.1f%% of users idle over two weeks (paper: >80%%)\n",
		res.Top20TotalShare*100, res.Top10TwoWeekShare*100, res.ZeroTwoWeekFrac*100)
	return err
}

// Figure7 renders the nonzero two-week distribution.
func Figure7(w io.Writer, res analysis.TwoWeekResult) error {
	fmt.Fprintln(w, "Figure 7 — non-zero two-week playtime (log-log density)")
	var pts []Point
	for _, b := range res.Bins {
		pts = append(pts, Point{X: b.Center, Y: b.Density})
	}
	if err := Plot(w, [][]Point{pts}, PlotOptions{LogX: true, LogY: true, Height: 14, XLabel: "hours"}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "80th percentile %.2f h (paper: 32.05 h); max %.1f h (bound 336 h); near-max idlers: %.4f%% of users (paper: 0.01%%)\n",
		res.P80, res.Max, res.NearMaxFrac*100)
	return err
}

// Figure8 renders the market value distribution.
func Figure8(w io.Writer, res analysis.MarketValueResult) error {
	fmt.Fprintln(w, "Figure 8 — account market value (log-log density)")
	var pts []Point
	for _, b := range res.Bins {
		pts = append(pts, Point{X: b.Center, Y: b.Density})
	}
	if err := Plot(w, [][]Point{pts}, PlotOptions{LogX: true, LogY: true, Height: 14, XLabel: "dollars"}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "80th percentile %s (paper: $150.88); max %s (paper: $24,315.40); top 20%% hold %.0f%% of value (paper: 73%%)\n",
		USD(res.P80), USD(res.Max), res.Top20ValueShare*100)
	return err
}

// Figure9 renders per-genre playtime and value shares.
func Figure9(w io.Writer, rows []analysis.GenreExpenditureRow) error {
	fmt.Fprintln(w, "Figure 9 — playtime and market value by genre (paper: Action 49.24% of playtime, 51.88% of value)")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Genre,
			fmt.Sprintf("%.0f h", r.PlaytimeHours),
			Pct(r.PlaytimeShare),
			USD(r.ValueUSD),
			Pct(r.ValueShare),
		})
	}
	return Table(w, []string{"Genre", "Playtime", "Share", "Value", "Share"}, out)
}

// Figure10 renders the multiplayer split.
func Figure10(w io.Writer, res analysis.MultiplayerShareResult) error {
	fmt.Fprintln(w, "Figure 10 — multiplayer vs single-player playtime")
	if err := Bars(w, []string{
		"multiplayer catalog share",
		"multiplayer share of total playtime",
		"multiplayer share of two-week playtime",
	}, []float64{res.CatalogShare, res.TotalShare, res.TwoWeekShare}, 48); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "paper: 48.7%% of games, 57.7%% of total and 67.7%% of two-week playtime; users fully multiplayer in their fortnight: %.1f%%\n",
		res.UsersOnlyMultiplayerTwoWeek*100)
	return err
}

// Figure11 renders the homophily correlations and scatter.
func Figure11(w io.Writer, rows []analysis.HomophilyRow, own, nbr []float64) error {
	fmt.Fprintln(w, "Figure 11 / §7 — homophily: own attribute vs friends' average")
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Attribute, fmt.Sprintf("%.3f", r.Rho), r.Strength, fmt.Sprint(r.Pairs)})
	}
	if err := Table(w, []string{"Attribute", "rho", "Strength", "Pairs"}, out); err != nil {
		return err
	}
	fmt.Fprintln(w, "market value vs friends' average market value (paper rho=0.77):")
	var pts []Point
	for i := range own {
		pts = append(pts, Point{X: own[i], Y: nbr[i]})
	}
	return Plot(w, [][]Point{pts}, PlotOptions{LogX: true, LogY: true, Height: 14, XLabel: "own value ($)"})
}

// Figure12 renders the week matrix as a shade plot.
func Figure12(w io.Writer, res analysis.WeekMatrixResult) error {
	fmt.Fprintf(w, "Figure 12 — one week of daily playtime for a user sample (%d active users; darker = more play)\n", res.Users)
	if res.Users == 0 {
		_, err := fmt.Fprintln(w, "(no active users in the sample at this population scale)")
		return err
	}
	rows := make([][]float64, 7)
	labels := make([]string, 7)
	for d := 0; d < 7; d++ {
		rows[d] = make([]float64, len(res.Minutes[d]))
		for k, m := range res.Minutes[d] {
			rows[d][k] = float64(m) / (24 * 60)
		}
		labels[d] = fmt.Sprintf("day %d", d+1)
	}
	if err := ShadeMatrix(w, rows, labels, 72); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "day-one rank persistence rho=%.2f; %.0f%% of day-one-idle users played later in the week\n",
		res.DayOneRankPersistence, res.SwitchedOnFrac*100)
	return err
}

// thinPts downsamples a point series for plotting.
func thinPts(pts []Point, max int) []Point {
	if len(pts) <= max {
		return pts
	}
	out := make([]Point, 0, max)
	step := float64(len(pts)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, pts[int(float64(i)*step)])
	}
	return out
}
