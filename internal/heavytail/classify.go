package heavytail

// Class is the paper's distribution label (§3.3): every studied
// distribution is first gated on being heavy-tailed at all, then narrowed
// as far as the pairwise tests allow.
type Class int

const (
	// NotHeavyTailed: the power law does not beat the exponential; the
	// tail is exponentially bounded. (The paper observes none of these.)
	NotHeavyTailed Class = iota
	// HeavyTailed: passes the power-law-vs-exponential test, but the
	// remaining comparisons cannot narrow the family further.
	HeavyTailed
	// LongTailed: narrowed to lognormal-or-truncated-power-law, but the
	// test between those two is inconclusive.
	LongTailed
	// LognormalClass: the truncated power law is significantly worse than
	// the lognormal.
	LognormalClass
	// TruncatedPowerLawClass: the truncated power law significantly beats
	// the lognormal.
	TruncatedPowerLawClass
	// PowerLawClass: a pure power law beats the lognormal and the
	// exponential cutoff adds nothing. (The paper observes none.)
	PowerLawClass
)

// String returns the label as printed in Table 4.
func (c Class) String() string {
	switch c {
	case NotHeavyTailed:
		return "not heavy-tailed"
	case HeavyTailed:
		return "Heavy-tailed"
	case LongTailed:
		return "Long-tailed"
	case LognormalClass:
		return "Lognormal"
	case TruncatedPowerLawClass:
		return "Truncated power law"
	case PowerLawClass:
		return "Power law"
	default:
		return "unknown"
	}
}

// Significance is the p-value threshold used throughout the paper.
const Significance = 0.05

// Classify applies the paper's decision procedure to a set of pairwise
// comparisons:
//
//  1. The power law must beat the exponential (R > 0, p < 0.05), otherwise
//     the distribution is not heavy-tailed at all.
//  2. If the lognormal does not significantly beat the pure power law, no
//     further narrowing is safe: if instead the power law significantly
//     beats the lognormal AND the exponential cutoff adds nothing, it is a
//     pure power law; otherwise only "heavy-tailed" can be claimed.
//  3. With the pure power law rejected (lognormal fits better), the
//     candidates are lognormal and truncated power law; their direct
//     comparison either picks one (p < 0.05, sign of R) or leaves the
//     distribution "long-tailed".
//
// This reproduces every row of the paper's Table 4, including the group-
// size row, which stays merely Heavy-tailed because the power law is never
// rejected against the lognormal (p = 0.604) even though the nested
// cutoff test is weakly significant.
func Classify(cs ComparisonSet) Class {
	if !(cs.PLvsExp.R > 0 && cs.PLvsExp.P < Significance) {
		return NotHeavyTailed
	}
	lnBeatsPL := cs.PLvsLN.P < Significance && cs.PLvsLN.R < 0
	plBeatsLN := cs.PLvsLN.P < Significance && cs.PLvsLN.R > 0
	tplBeatsPL := cs.TPLvsPL.P < Significance && cs.TPLvsPL.R > 0
	if !lnBeatsPL {
		if plBeatsLN && !tplBeatsPL {
			return PowerLawClass
		}
		return HeavyTailed
	}
	// Candidates narrowed to {lognormal, truncated power law}.
	if cs.TPLvsLN.P < Significance {
		if cs.TPLvsLN.R > 0 {
			return TruncatedPowerLawClass
		}
		return LognormalClass
	}
	return LongTailed
}

// Result bundles a fit, its comparisons and final classification — one row
// of Table 4.
type Result struct {
	Fit         *Fit
	Comparisons ComparisonSet
	Class       Class
}

// ClassifyData is the one-call pipeline: fit all families, run the four
// tests, return the classification.
func ClassifyData(data []float64, opts Options) (*Result, error) {
	f, err := New(data, opts)
	if err != nil {
		return nil, err
	}
	cs := f.CompareAll()
	return &Result{Fit: f, Comparisons: cs, Class: Classify(cs)}, nil
}
