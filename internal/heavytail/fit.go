// Package heavytail reimplements, in Go, the subset of the Python
// `powerlaw 1.3` package (Alstott et al. 2014) that the paper's Appendix
// relies on: maximum-likelihood fits of power-law, lognormal, truncated
// power-law and exponential tails; the Clauset-style xmin selection by
// Kolmogorov–Smirnov minimization; normalized (Vuong) log-likelihood-ratio
// tests between candidate families; and the paper's four-way
// classification rule (heavy-tailed / long-tailed / lognormal / truncated
// power law), which is what produces Table 4.
package heavytail

import (
	"fmt"
	"math"
	"sort"

	"steamstudy/internal/dists"
	"steamstudy/internal/par"
)

// Options configures a Fit.
type Options struct {
	// Discrete selects the discrete power-law likelihood (Hurwitz-zeta
	// normalized) for count data such as friends or games owned. The
	// alternative families use the standard continuous approximation, as
	// the Python package does for its default comparisons.
	Discrete bool
	// FixedXmin pins xmin instead of scanning (0 = scan).
	FixedXmin float64
	// MaxXminCandidates caps the number of distinct values scanned as
	// xmin candidates; candidates are thinned evenly. Default 80.
	MaxXminCandidates int
	// MinTail is the minimum number of tail points an xmin candidate must
	// retain. Default 100 (or half the data if smaller).
	MinTail int
	// MaxFitSamples caps the number of tail points used for the iterative
	// (lognormal, truncated power-law) MLEs; the tail is evenly thinned
	// beyond it. The closed-form fits and the KS scan always use all
	// points. Default 30000.
	MaxFitSamples int
	// Workers bounds the worker pool used for the xmin scan and the
	// candidate-family fits: 0 (the default) means one worker per CPU,
	// 1 forces the serial path. Results are byte-identical for any
	// value — each candidate is evaluated independently and merged by
	// index (see internal/par).
	Workers int
}

func (o Options) withDefaults(n int) Options {
	if o.MaxXminCandidates <= 0 {
		o.MaxXminCandidates = 80
	}
	if o.MinTail <= 0 {
		o.MinTail = 100
	}
	if o.MinTail > n/2 && n >= 4 {
		o.MinTail = n / 2
	}
	if o.MaxFitSamples <= 0 {
		o.MaxFitSamples = 30000
	}
	return o
}

// Fit holds the fitted candidate families on a common tail x >= Xmin.
type Fit struct {
	// Sorted is the full input, ascending.
	Sorted []float64
	// Tail is the subset with x >= Xmin (aliases Sorted's backing array).
	Tail []float64
	// Xmin is the selected (or fixed) tail threshold.
	Xmin float64
	// KS is the Kolmogorov–Smirnov distance of the power-law fit at Xmin.
	KS float64
	// Discrete records which power-law likelihood was used.
	Discrete bool

	// PowerLaw is the continuous power-law fit (always populated; it is
	// the reference model for the comparison tests).
	PowerLaw dists.PowerLaw
	// DiscretePL is the discrete power law (populated when Discrete).
	DiscretePL dists.DiscretePowerLaw
	// Lognormal is the tail-conditional lognormal fit.
	Lognormal dists.Lognormal
	// TruncatedPL is the power-law-with-cutoff fit.
	TruncatedPL dists.TruncatedPowerLaw
	// Exponential is the shifted-exponential fit.
	Exponential dists.Exponential
}

// New fits all candidate families to data (which must contain at least a
// handful of positive values). Zeros and negatives are dropped, matching
// the paper's treatment (its distributions are of users with non-zero
// attribute values).
func New(data []float64, opts Options) (*Fit, error) {
	pos := make([]float64, 0, len(data))
	for _, x := range data {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			pos = append(pos, x)
		}
	}
	if len(pos) < 10 {
		return nil, fmt.Errorf("heavytail: need at least 10 positive values, have %d", len(pos))
	}
	sort.Float64s(pos)
	opts = opts.withDefaults(len(pos))

	f := &Fit{Sorted: pos, Discrete: opts.Discrete}
	if opts.FixedXmin > 0 {
		f.Xmin = opts.FixedXmin
	} else {
		f.Xmin = scanXmin(pos, opts)
	}
	i := sort.SearchFloat64s(pos, f.Xmin)
	f.Tail = pos[i:]
	if len(f.Tail) < 5 {
		return nil, fmt.Errorf("heavytail: tail above xmin=%v has only %d points", f.Xmin, len(f.Tail))
	}

	f.PowerLaw = dists.FitPowerLaw(f.Tail, f.Xmin)
	f.KS = dists.KSStatistic(f.Tail, f.PowerLaw.CDF)
	// The candidate families are independent fits over the same tail, so
	// they run concurrently; each writes only its own field.
	fitSample := thin(f.Tail, opts.MaxFitSamples)
	fits := []func(){
		func() { f.Lognormal = dists.FitLognormalTail(fitSample, f.Xmin) },
		func() { f.TruncatedPL = dists.FitTruncatedPowerLaw(fitSample, f.Xmin) },
		func() { f.Exponential = dists.FitExponentialTail(f.Tail, f.Xmin) },
	}
	if opts.Discrete {
		fits = append(fits, func() { f.DiscretePL = dists.FitDiscretePowerLaw(f.Tail, f.Xmin) })
	}
	par.Run(opts.Workers, fits...)
	return f, nil
}

// scanXmin selects the xmin minimizing the KS distance of the power-law
// MLE fit, per Clauset et al. (2009).
func scanXmin(sorted []float64, opts Options) float64 {
	// Candidate xmins: distinct values leaving at least MinTail points.
	lastIdx := len(sorted) - opts.MinTail
	if lastIdx < 1 {
		lastIdx = 1
	}
	var candidates []float64
	prev := math.NaN()
	for i := 0; i < lastIdx; i++ {
		if sorted[i] != prev {
			candidates = append(candidates, sorted[i])
			prev = sorted[i]
		}
	}
	if len(candidates) == 0 {
		return sorted[0]
	}
	if len(candidates) > opts.MaxXminCandidates {
		thinned := make([]float64, 0, opts.MaxXminCandidates)
		step := float64(len(candidates)) / float64(opts.MaxXminCandidates)
		for i := 0; i < opts.MaxXminCandidates; i++ {
			thinned = append(thinned, candidates[int(float64(i)*step)])
		}
		candidates = thinned
	}
	// Each candidate's fit is independent work (Clauset et al. scan them
	// serially only by historical accident), so the KS distances are
	// computed on the worker pool into index-addressed slots and reduced
	// in candidate order — the same first-minimum tie-breaking as the
	// serial loop, so the selected xmin is identical for any worker count.
	ks := make([]float64, len(candidates))
	par.For(opts.Workers, len(candidates), func(ci int) {
		xmin := candidates[ci]
		i := sort.SearchFloat64s(sorted, xmin)
		tail := sorted[i:]
		if len(tail) < opts.MinTail {
			ks[ci] = math.Inf(1)
			return
		}
		pl := dists.FitPowerLaw(tail, xmin)
		ks[ci] = dists.KSStatistic(tail, pl.CDF)
	})
	bestXmin, bestKS := candidates[0], math.Inf(1)
	for ci, k := range ks {
		if k < bestKS {
			bestKS = k
			bestXmin = candidates[ci]
		}
	}
	return bestXmin
}

// thin returns xs reduced to at most max entries by even striding
// (keeping first and last), preserving the sorted order.
func thin(xs []float64, max int) []float64 {
	if len(xs) <= max {
		return xs
	}
	out := make([]float64, 0, max)
	step := float64(len(xs)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, xs[int(float64(i)*step+0.5)])
	}
	return out
}

// powerLawDist returns the power-law model used in comparisons: the
// discrete likelihood when requested, continuous otherwise.
func (f *Fit) powerLawDist() dists.TailDist {
	if f.Discrete {
		return f.DiscretePL
	}
	return f.PowerLaw
}

// Alpha returns the fitted power-law exponent (discrete when applicable).
func (f *Fit) Alpha() float64 {
	if f.Discrete {
		return f.DiscretePL.Alpha
	}
	return f.PowerLaw.Alpha
}
