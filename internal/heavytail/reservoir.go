package heavytail

import "sort"

// Reservoir draws a uniform without-replacement sample of at most K
// values from a stream of unknown length in bounded memory. Unlike the
// classic algorithm-R reservoir, the sample is deterministic in the
// stream's *identity* rather than its order: every item is assigned a
// pseudorandom priority by hashing (seed, item index), and the K
// smallest priorities win (bottom-k sampling). Two reservoirs built over
// disjoint index ranges merge into exactly the reservoir of the union,
// so a sharded scan can sample each shard on its own worker, in any
// order, and merge — byte-identical to one sequential pass. This is the
// sampling layer under the paper-scale Table 4 path: full 10⁸-point
// attribute vectors never materialize, only their bounded samples.
type Reservoir struct {
	k    int
	seed uint64
	// items is a max-heap on (priority, index): the root is the first
	// item to evict once the reservoir is full.
	items []reservoirItem
}

type reservoirItem struct {
	pri   uint64
	index uint64
	value float64
}

// less orders items by priority, index-tiebroken, so the kept set is a
// total-order prefix and therefore unique.
func (a reservoirItem) less(b reservoirItem) bool {
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.index < b.index
}

// NewReservoir creates a reservoir keeping at most k values under the
// given hash seed. Reservoirs merge only if built with the same k and
// seed.
func NewReservoir(k int, seed int64) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{k: k, seed: uint64(seed)}
}

// reservoirPriority is a splitmix64-style finalizer over (seed, index):
// cheap, stateless, and well-distributed — the per-item equivalent of a
// seeded RNG draw without any shared stream to contend on.
func reservoirPriority(seed, index uint64) uint64 {
	x := index*0x9e3779b97f4a7c15 ^ seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add offers one value. The index is the item's stable identity in the
// stream (e.g. the user's position in the snapshot); feeding the same
// (index, value) pairs in any order yields the same sample.
func (r *Reservoir) Add(index uint64, v float64) {
	it := reservoirItem{pri: reservoirPriority(r.seed, index), index: index, value: v}
	if len(r.items) < r.k {
		r.items = append(r.items, it)
		r.siftUp(len(r.items) - 1)
		return
	}
	if !it.less(r.items[0]) {
		return // larger than the current maximum: not in the bottom k
	}
	r.items[0] = it
	r.siftDown(0)
}

// Merge folds o's sample into r. Both must share k and seed.
func (r *Reservoir) Merge(o *Reservoir) {
	for _, it := range o.items {
		if len(r.items) < r.k {
			r.items = append(r.items, it)
			r.siftUp(len(r.items) - 1)
		} else if it.less(r.items[0]) {
			r.items[0] = it
			r.siftDown(0)
		}
	}
}

// Len reports the current sample size (min of k and items offered).
func (r *Reservoir) Len() int { return len(r.items) }

// Values returns the sampled values ordered by stream index — a
// deterministic, reproducible vector ready for fitting.
func (r *Reservoir) Values() []float64 {
	sorted := make([]reservoirItem, len(r.items))
	copy(sorted, r.items)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].index < sorted[b].index })
	out := make([]float64, len(sorted))
	for i, it := range sorted {
		out[i] = it.value
	}
	return out
}

func (r *Reservoir) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !r.items[p].less(r.items[i]) {
			return
		}
		r.items[p], r.items[i] = r.items[i], r.items[p]
		i = p
	}
}

func (r *Reservoir) siftDown(i int) {
	n := len(r.items)
	for {
		big := i
		if l := 2*i + 1; l < n && r.items[big].less(r.items[l]) {
			big = l
		}
		if rt := 2*i + 2; rt < n && r.items[big].less(r.items[rt]) {
			big = rt
		}
		if big == i {
			return
		}
		r.items[i], r.items[big] = r.items[big], r.items[i]
		i = big
	}
}
