package heavytail

import (
	"math"
	"sort"

	"steamstudy/internal/dists"
	"steamstudy/internal/randx"
)

// GoodnessOfFit is the result of the Clauset et al. (2009) semiparametric
// bootstrap for the power-law hypothesis — the "goodness-of-fit test, the
// Kolmogorov-Smirnov statistic" step of the paper's §3.3 methodology. The
// observed KS distance is compared against KS distances of synthetic
// datasets drawn from the fitted model itself; P is the fraction of
// synthetic sets fitting *worse* than the data. P < 0.1 rejects the pure
// power law (which, per the paper, happens for every studied
// distribution — hence the comparative tests of Table 4).
type GoodnessOfFit struct {
	// ObservedKS is the data's KS distance at the fitted xmin.
	ObservedKS float64
	// P is the bootstrap p-value.
	P float64
	// Bootstraps is the number of synthetic datasets drawn.
	Bootstraps int
}

// PowerLawGoF runs the bootstrap on a completed fit. Each synthetic
// dataset mirrors the semiparametric recipe: values below xmin are
// resampled from the empirical body, values above are drawn from the
// fitted power law, with the same body/tail proportions as the data; the
// synthetic set is then re-fit (fresh xmin scan) and its KS distance
// recorded. Deterministic in seed.
func PowerLawGoF(f *Fit, bootstraps int, seed int64) GoodnessOfFit {
	if bootstraps <= 0 {
		bootstraps = 100
	}
	rng := randx.New(seed).Split("gof")
	res := GoodnessOfFit{ObservedKS: f.KS, Bootstraps: bootstraps}

	n := len(f.Sorted)
	bodyEnd := sort.SearchFloat64s(f.Sorted, f.Xmin)
	body := f.Sorted[:bodyEnd]
	tailFrac := float64(n-bodyEnd) / float64(n)

	worse := 0
	synth := make([]float64, n)
	for b := 0; b < bootstraps; b++ {
		for i := 0; i < n; i++ {
			if len(body) == 0 || rng.Float64() < tailFrac {
				synth[i] = f.PowerLaw.Quantile(rng.Float64())
			} else {
				synth[i] = body[rng.Intn(len(body))]
			}
		}
		// Re-fit with the same options the original fit used for the
		// power-law part (scanned xmin; the alternative families are not
		// needed for the KS comparison).
		sorted := dists.SortedCopy(synth)
		xmin := scanXmin(sorted, Options{}.withDefaults(n))
		i := sort.SearchFloat64s(sorted, xmin)
		tail := sorted[i:]
		if len(tail) < 2 {
			continue
		}
		pl := dists.FitPowerLaw(tail, xmin)
		ks := dists.KSStatistic(tail, pl.CDF)
		if ks >= f.KS {
			worse++
		}
	}
	res.P = float64(worse) / float64(bootstraps)
	return res
}

// KSCriticalValue returns the asymptotic one-sample KS critical distance
// at significance alpha for n tail points — a cheap analytic check used
// alongside the bootstrap (D_crit = c(alpha)/sqrt(n)).
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	c := math.Sqrt(-0.5 * math.Log(alpha/2))
	return c / math.Sqrt(float64(n))
}
