package heavytail

import (
	"math"
	"sort"

	"steamstudy/internal/dists"
	"steamstudy/internal/par"
	"steamstudy/internal/randx"
)

// GoodnessOfFit is the result of the Clauset et al. (2009) semiparametric
// bootstrap for the power-law hypothesis — the "goodness-of-fit test, the
// Kolmogorov-Smirnov statistic" step of the paper's §3.3 methodology. The
// observed KS distance is compared against KS distances of synthetic
// datasets drawn from the fitted model itself; P is the fraction of
// synthetic sets fitting *worse* than the data. P < 0.1 rejects the pure
// power law (which, per the paper, happens for every studied
// distribution — hence the comparative tests of Table 4).
type GoodnessOfFit struct {
	// ObservedKS is the data's KS distance at the fitted xmin.
	ObservedKS float64
	// P is the bootstrap p-value: the fraction of *scored* replicates
	// whose re-fit KS distance is at least the observed one. Replicates
	// whose re-fit degenerates (see Skipped) are excluded from the
	// denominator — counting them would bias P toward zero, i.e. toward
	// spuriously rejecting the power law. NaN if every replicate was
	// skipped.
	P float64
	// Bootstraps is the number of synthetic datasets drawn.
	Bootstraps int
	// Skipped counts replicates that could not be scored because the
	// synthetic re-fit degenerated (tail above the re-scanned xmin too
	// small, or a non-finite KS distance from a degenerate fit).
	Skipped int
}

// PowerLawGoF runs the bootstrap on a completed fit. Each synthetic
// dataset mirrors the semiparametric recipe: values below xmin are
// resampled from the empirical body, values above are drawn from the
// fitted power law, with the same body/tail proportions as the data; the
// synthetic set is then re-fit (fresh xmin scan) and its KS distance
// recorded. Deterministic in seed, for any worker count: replicate b
// always draws from the stream SplitN("replicate", b), regardless of
// which goroutine runs it. Workers <= 0 uses one worker per CPU.
func PowerLawGoF(f *Fit, bootstraps int, seed int64) GoodnessOfFit {
	return PowerLawGoFWorkers(f, bootstraps, seed, 0)
}

// PowerLawGoFWorkers is PowerLawGoF with an explicit worker-pool bound.
func PowerLawGoFWorkers(f *Fit, bootstraps int, seed int64, workers int) GoodnessOfFit {
	return PowerLawGoFSampledWorkers(f, bootstraps, 0, seed, workers)
}

// PowerLawGoFSampled is PowerLawGoF with each replicate's synthetic
// dataset capped at sampleN points. The full-size bootstrap re-sorts and
// re-scans n points per replicate — quadratic-feeling pain when n is a
// paper-scale 10⁸ — while the KS comparison only needs enough synthetic
// points for a stable re-fit; a few tens of thousands suffice. sampleN
// <= 0 (or >= n) draws full-size replicates, byte-identical to
// PowerLawGoF.
func PowerLawGoFSampled(f *Fit, bootstraps, sampleN int, seed int64) GoodnessOfFit {
	return PowerLawGoFSampledWorkers(f, bootstraps, sampleN, seed, 0)
}

// PowerLawGoFSampledWorkers is PowerLawGoFSampled with an explicit
// worker-pool bound. Deterministic in (seed, sampleN) for any worker
// count: replicate b always draws from the stream SplitN("replicate", b).
func PowerLawGoFSampledWorkers(f *Fit, bootstraps, sampleN int, seed int64, workers int) GoodnessOfFit {
	if bootstraps <= 0 {
		bootstraps = 100
	}
	base := randx.New(seed).Split("gof")
	res := GoodnessOfFit{ObservedKS: f.KS, Bootstraps: bootstraps}

	n := len(f.Sorted)
	bodyEnd := sort.SearchFloat64s(f.Sorted, f.Xmin)
	body := f.Sorted[:bodyEnd]
	tailFrac := float64(n-bodyEnd) / float64(n)
	m := n
	if sampleN > 0 && sampleN < n {
		m = sampleN
	}

	// Replicate outcomes, one slot per replicate: +1 fits worse than the
	// data, 0 fits better, -1 skipped (degenerate re-fit).
	outcome := make([]int8, bootstraps)
	par.For(workers, bootstraps, func(b int) {
		rng := base.SplitN("replicate", uint64(b))
		synth := make([]float64, m)
		for i := 0; i < m; i++ {
			if len(body) == 0 || rng.Float64() < tailFrac {
				synth[i] = f.PowerLaw.Quantile(rng.Float64())
			} else {
				synth[i] = body[rng.Intn(len(body))]
			}
		}
		// Re-fit with the same options the original fit used for the
		// power-law part (scanned xmin; the alternative families are not
		// needed for the KS comparison). The inner scan stays serial —
		// the pool's parallelism is across replicates.
		sort.Float64s(synth)
		xmin := scanXmin(synth, Options{Workers: 1}.withDefaults(m))
		i := sort.SearchFloat64s(synth, xmin)
		tail := synth[i:]
		if len(tail) < 2 {
			outcome[b] = -1
			return
		}
		pl := dists.FitPowerLaw(tail, xmin)
		ks := dists.KSStatistic(tail, pl.CDF)
		if math.IsNaN(ks) || math.IsInf(ks, 0) {
			outcome[b] = -1
			return
		}
		if ks >= f.KS {
			outcome[b] = 1
		}
	})
	worse := 0
	for _, o := range outcome {
		switch o {
		case 1:
			worse++
		case -1:
			res.Skipped++
		}
	}
	scored := bootstraps - res.Skipped
	if scored == 0 {
		res.P = math.NaN()
	} else {
		res.P = float64(worse) / float64(scored)
	}
	return res
}

// KSCriticalValue returns the asymptotic one-sample KS critical distance
// at significance alpha for n tail points — a cheap analytic check used
// alongside the bootstrap (D_crit = c(alpha)/sqrt(n)).
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	c := math.Sqrt(-0.5 * math.Log(alpha/2))
	return c / math.Sqrt(float64(n))
}
