package heavytail

import (
	"math"
	"reflect"
	"testing"

	"steamstudy/internal/randx"
)

// The reservoir must be a pure function of (seed, k, item set): arrival
// order and sharding must not change the sample.
func TestReservoirOrderAndShardInvariance(t *testing.T) {
	const n, k = 10_000, 256
	values := make([]float64, n)
	rng := randx.New(42)
	for i := range values {
		values[i] = rng.Float64() * 1000
	}

	seq := NewReservoir(k, 7)
	for i, v := range values {
		seq.Add(uint64(i), v)
	}

	rev := NewReservoir(k, 7)
	for i := n - 1; i >= 0; i-- {
		rev.Add(uint64(i), values[i])
	}
	if !reflect.DeepEqual(seq.Values(), rev.Values()) {
		t.Fatal("sample depends on arrival order")
	}

	// Shard into uneven pieces, sample each independently, merge.
	merged := NewReservoir(k, 7)
	for lo := 0; lo < n; {
		hi := lo + 700
		if hi > n {
			hi = n
		}
		part := NewReservoir(k, 7)
		for i := lo; i < hi; i++ {
			part.Add(uint64(i), values[i])
		}
		merged.Merge(part)
		lo = hi
	}
	if !reflect.DeepEqual(seq.Values(), merged.Values()) {
		t.Fatal("merged shard sample diverges from sequential sample")
	}

	if seq.Len() != k {
		t.Fatalf("sample size %d, want %d", seq.Len(), k)
	}
	// Different seed, different sample.
	other := NewReservoir(k, 8)
	for i, v := range values {
		other.Add(uint64(i), v)
	}
	if reflect.DeepEqual(seq.Values(), other.Values()) {
		t.Fatal("seed does not influence the sample")
	}
}

// A reservoir over fewer items than k keeps everything.
func TestReservoirUnderfull(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 10; i++ {
		r.Add(uint64(i), float64(i))
	}
	got := r.Values()
	if len(got) != 10 {
		t.Fatalf("kept %d of 10", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("values not in index order: %v", got)
		}
	}
}

// The bottom-k sample of a uniform stream should itself look uniform:
// check the mean is in a loose tolerance (catches a biased priority
// hash).
func TestReservoirUniformity(t *testing.T) {
	const n, k = 200_000, 5_000
	r := NewReservoir(k, 3)
	for i := 0; i < n; i++ {
		r.Add(uint64(i), float64(i)/n)
	}
	var sum float64
	for _, v := range r.Values() {
		sum += v
	}
	mean := sum / k
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("sample mean %.4f far from 0.5: biased sampling", mean)
	}
}

// Sampled GoF with sampleN <= 0 or >= n must be byte-identical to the
// full bootstrap; a genuine cap must stay deterministic across worker
// counts.
func TestPowerLawGoFSampled(t *testing.T) {
	rng := randx.New(9)
	data := make([]float64, 4000)
	for i := range data {
		data[i] = rng.Pareto(1.8, 1)
	}
	f, err := New(data, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	full := PowerLawGoFWorkers(f, 20, 5, 1)
	same := PowerLawGoFSampledWorkers(f, 20, 0, 5, 1)
	if full != same {
		t.Fatalf("sampleN=0 diverges from full bootstrap: %+v vs %+v", full, same)
	}
	huge := PowerLawGoFSampledWorkers(f, 20, len(data)*2, 5, 1)
	if full != huge {
		t.Fatalf("sampleN>n diverges from full bootstrap: %+v vs %+v", full, huge)
	}

	serial := PowerLawGoFSampledWorkers(f, 20, 500, 5, 1)
	pooled := PowerLawGoFSampledWorkers(f, 20, 500, 5, 4)
	if serial != pooled {
		t.Fatalf("sampled bootstrap depends on worker count: %+v vs %+v", serial, pooled)
	}
	if serial.Bootstraps != 20 {
		t.Fatalf("bootstraps %d", serial.Bootstraps)
	}
	if !math.IsNaN(serial.P) && (serial.P < 0 || serial.P > 1) {
		t.Fatalf("p-value %v out of range", serial.P)
	}
}
