package heavytail

import (
	"math"
	"testing"

	"steamstudy/internal/dists"
	"steamstudy/internal/randx"
)

func genPareto(seed int64, n int, alpha, xmin float64) []float64 {
	r := randx.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Pareto(alpha, xmin)
	}
	return out
}

func genLognormal(seed int64, n int, mu, sigma float64) []float64 {
	r := randx.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Lognormal(mu, sigma)
	}
	return out
}

func genTPL(seed int64, n int, alpha, lambda, xmin float64) []float64 {
	r := randx.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.TruncatedPowerLaw(alpha, lambda, xmin)
	}
	return out
}

func genExponential(seed int64, n int, lambda, xmin float64) []float64 {
	r := randx.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = xmin + r.ExpFloat64()/lambda
	}
	return out
}

func TestFitRejectsTinyInput(t *testing.T) {
	if _, err := New([]float64{1, 2, 3}, Options{}); err == nil {
		t.Fatal("fit accepted tiny input")
	}
}

func TestFitDropsNonPositive(t *testing.T) {
	data := append(genPareto(1, 2000, 2.5, 1), 0, -5, math.NaN(), math.Inf(1))
	f, err := New(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range f.Sorted {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("invalid value survived: %v", x)
		}
	}
}

func TestFitRecoversAlphaWithXminScan(t *testing.T) {
	// Data: noise below 5, clean power law above.
	r := randx.New(2)
	var data []float64
	for i := 0; i < 5000; i++ {
		data = append(data, 0.5+4.5*r.Float64()) // uniform noise < 5
	}
	for i := 0; i < 20000; i++ {
		data = append(data, r.Pareto(2.3, 5))
	}
	f, err := New(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Xmin < 3 || f.Xmin > 8 {
		t.Fatalf("xmin scan picked %v, want ~5", f.Xmin)
	}
	if math.Abs(f.PowerLaw.Alpha-2.3) > 0.1 {
		t.Fatalf("alpha %v, want 2.3", f.PowerLaw.Alpha)
	}
}

func TestFixedXminHonored(t *testing.T) {
	data := genPareto(3, 5000, 2.0, 1)
	f, err := New(data, Options{FixedXmin: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Xmin != 2.5 {
		t.Fatalf("fixed xmin ignored: %v", f.Xmin)
	}
	for _, x := range f.Tail {
		if x < 2.5 {
			t.Fatalf("tail contains %v below fixed xmin", x)
		}
	}
}

func TestCompareFavorsTrueModelPareto(t *testing.T) {
	data := genPareto(4, 30000, 2.2, 1)
	f, err := New(data, Options{FixedXmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs := f.CompareAll()
	if !(cs.PLvsExp.R > 0 && cs.PLvsExp.P < 0.05) {
		t.Fatalf("power law did not beat exponential on Pareto data: %+v", cs.PLvsExp)
	}
	// Against lognormal the pure power law should not lose significantly.
	if cs.PLvsLN.P < 0.05 && cs.PLvsLN.R < 0 {
		t.Fatalf("lognormal beat power law on Pareto data: %+v", cs.PLvsLN)
	}
}

func TestCompareFavorsLognormalOnLognormalData(t *testing.T) {
	// Pin xmin low so the fit sees the lognormal body; with a scanned
	// xmin the extreme tail of a lognormal is locally power-law-like
	// (the classic Clauset caveat) and the test loses power.
	data := genLognormal(5, 40000, 1.0, 2.0)
	res, err := ClassifyData(data, Options{FixedXmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Comparisons
	if !(cs.PLvsLN.R < 0 && cs.PLvsLN.P < 0.05) {
		t.Fatalf("power law not rejected against lognormal on LN data: %+v", cs.PLvsLN)
	}
	if res.Class != LognormalClass && res.Class != LongTailed {
		t.Fatalf("lognormal data classified as %v", res.Class)
	}
}

func TestClassifyTruncatedPowerLawData(t *testing.T) {
	data := genTPL(6, 60000, 1.6, 0.01, 1)
	res, err := ClassifyData(data, Options{FixedXmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != TruncatedPowerLawClass && res.Class != LongTailed {
		t.Fatalf("TPL data classified as %v (comparisons %+v)", res.Class, res.Comparisons)
	}
	if !(res.Comparisons.TPLvsPL.R > 0 && res.Comparisons.TPLvsPL.P < 0.05) {
		t.Fatalf("nested test failed to detect cutoff: %+v", res.Comparisons.TPLvsPL)
	}
}

func TestClassifyExponentialDataNotHeavy(t *testing.T) {
	data := genExponential(7, 30000, 0.5, 1)
	res, err := ClassifyData(data, Options{FixedXmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != NotHeavyTailed {
		t.Fatalf("exponential data classified as %v", res.Class)
	}
}

func TestClassifyMatchesPaperRuleTable(t *testing.T) {
	// Synthetic comparison sets reproducing the decision rows discussed in
	// the paper's Appendix.
	sig := func(r float64) Comparison { return Comparison{R: r, P: 1e-10} }
	insig := func(r float64) Comparison { return Comparison{R: r, P: 0.5} }

	cases := []struct {
		name string
		cs   ComparisonSet
		want Class
	}{
		{"two-week playtime row", ComparisonSet{
			PLvsExp: sig(28049), PLvsLN: sig(-1678), TPLvsPL: sig(2172), TPLvsLN: sig(493),
		}, TruncatedPowerLawClass},
		{"total playtime row", ComparisonSet{
			PLvsExp: sig(455501), PLvsLN: sig(-22961), TPLvsPL: sig(18402), TPLvsLN: sig(-4559),
		}, LognormalClass},
		{"account market value row", ComparisonSet{
			PLvsExp: sig(7422), PLvsLN: sig(-49.5), TPLvsPL: sig(50.4), TPLvsLN: insig(0.9),
		}, LongTailed},
		{"group size row", ComparisonSet{
			PLvsExp: sig(3381), PLvsLN: insig(-0.967),
			TPLvsPL: Comparison{R: 2.097, P: 0.041}, TPLvsLN: insig(1.129),
		}, HeavyTailed},
		{"exponential gate", ComparisonSet{
			PLvsExp: insig(100), PLvsLN: sig(-10), TPLvsPL: sig(5), TPLvsLN: sig(3),
		}, NotHeavyTailed},
		{"pure power law", ComparisonSet{
			PLvsExp: sig(1000), PLvsLN: sig(12), TPLvsPL: insig(0.2), TPLvsLN: sig(5),
		}, PowerLawClass},
	}
	for _, tc := range cases {
		if got := Classify(tc.cs); got != tc.want {
			t.Errorf("%s: classified %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		NotHeavyTailed:         "not heavy-tailed",
		HeavyTailed:            "Heavy-tailed",
		LongTailed:             "Long-tailed",
		LognormalClass:         "Lognormal",
		TruncatedPowerLawClass: "Truncated power law",
		PowerLawClass:          "Power law",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestFavors(t *testing.T) {
	if (Comparison{R: 5, P: 0.01}).Favors(0.05) != 1 {
		t.Fatal("significant positive R should favor first")
	}
	if (Comparison{R: -5, P: 0.01}).Favors(0.05) != -1 {
		t.Fatal("significant negative R should favor second")
	}
	if (Comparison{R: 5, P: 0.5}).Favors(0.05) != 0 {
		t.Fatal("insignificant comparison should be inconclusive")
	}
}

func TestCompareEmptyTail(t *testing.T) {
	c := Compare(nil, dists.PowerLaw{Alpha: 2, Xmin: 1}, dists.Exponential{Lambda: 1, Xmin: 1})
	if c.P != 1 || c.R != 0 {
		t.Fatalf("empty-tail comparison = %+v", c)
	}
}

func TestCompareIdenticalModels(t *testing.T) {
	pl := dists.PowerLaw{Alpha: 2.5, Xmin: 1}
	data := genPareto(8, 1000, 2.5, 1)
	c := Compare(data, pl, pl)
	if c.R != 0 || c.P != 1 {
		t.Fatalf("identical models comparison = %+v", c)
	}
}

func TestDiscreteFitOnCountData(t *testing.T) {
	r := randx.New(9)
	data := make([]float64, 30000)
	for i := range data {
		data[i] = float64(r.DiscretePowerLaw(2.5, 1))
	}
	f, err := New(data, Options{Discrete: true, FixedXmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.DiscretePL.Alpha < 2.0 || f.DiscretePL.Alpha > 3.0 {
		t.Fatalf("discrete alpha %v out of range", f.DiscretePL.Alpha)
	}
	if f.Alpha() != f.DiscretePL.Alpha {
		t.Fatal("Alpha() should return the discrete exponent when Discrete")
	}
	cs := f.CompareAll()
	if !(cs.PLvsExp.R > 0 && cs.PLvsExp.P < 0.05) {
		t.Fatalf("discrete power law lost to exponential: %+v", cs.PLvsExp)
	}
}

func TestThin(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	th := thin(xs, 100)
	if len(th) != 100 {
		t.Fatalf("thin length %d", len(th))
	}
	if th[0] != 0 || th[len(th)-1] != 999 {
		t.Fatalf("thin endpoints %v, %v", th[0], th[len(th)-1])
	}
	for i := 1; i < len(th); i++ {
		if th[i] < th[i-1] {
			t.Fatal("thin broke ordering")
		}
	}
	same := thin(xs[:50], 100)
	if len(same) != 50 {
		t.Fatal("thin should be identity when under the cap")
	}
}

func TestPowerLawGoFAcceptsTrueModel(t *testing.T) {
	data := genPareto(50, 5000, 2.3, 1)
	f, err := New(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gof := PowerLawGoF(f, 60, 7)
	// Data drawn from a genuine power law should not be rejected.
	if gof.P < 0.1 {
		t.Fatalf("true power law rejected: p = %v (observed KS %v)", gof.P, gof.ObservedKS)
	}
	if gof.Bootstraps != 60 {
		t.Fatalf("bootstraps = %d", gof.Bootstraps)
	}
}

func TestPowerLawGoFRejectsWrongModel(t *testing.T) {
	// Strongly curved lognormal data fit with a forced low xmin: the
	// power law fits badly and the bootstrap should reject it.
	data := genLognormal(51, 5000, 2.0, 0.5)
	f, err := New(data, Options{FixedXmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	gof := PowerLawGoF(f, 60, 7)
	if gof.P > 0.1 {
		t.Fatalf("badly fitting power law not rejected: p = %v", gof.P)
	}
}

func TestPowerLawGoFDeterministic(t *testing.T) {
	data := genPareto(52, 2000, 2.0, 1)
	f, err := New(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := PowerLawGoF(f, 30, 3)
	b := PowerLawGoF(f, 30, 3)
	if a.P != b.P {
		t.Fatalf("bootstrap not deterministic: %v vs %v", a.P, b.P)
	}
}

func TestPowerLawGoFSkippedExcludedFromDenominator(t *testing.T) {
	// Regression: skipped replicates used to stay in the p-value
	// denominator, biasing P downward. Force every replicate to
	// degenerate with an Alpha=NaN power law: every synthetic draw is
	// NaN, the re-scanned xmin finds no tail at all, and every
	// replicate must be skipped — leaving P undefined (NaN), not 0 as
	// the old denominator produced.
	sorted := make([]float64, 200)
	for i := range sorted {
		sorted[i] = float64(i + 1)
	}
	f := &Fit{
		Sorted:   sorted,
		Tail:     sorted,
		Xmin:     1,
		KS:       0.05,
		PowerLaw: dists.PowerLaw{Alpha: math.NaN(), Xmin: 1},
	}
	gof := PowerLawGoF(f, 20, 11)
	if gof.Skipped != 20 {
		t.Fatalf("Skipped = %d, want all 20 replicates", gof.Skipped)
	}
	if !math.IsNaN(gof.P) {
		t.Fatalf("P = %v with zero scored replicates, want NaN", gof.P)
	}
	if gof.Bootstraps != 20 {
		t.Fatalf("Bootstraps = %d", gof.Bootstraps)
	}
}

func TestPowerLawGoFNoSkipsOnHealthyData(t *testing.T) {
	data := genPareto(53, 3000, 2.2, 1)
	f, err := New(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gof := PowerLawGoF(f, 30, 5)
	if gof.Skipped != 0 {
		t.Fatalf("healthy bootstrap skipped %d replicates", gof.Skipped)
	}
	if math.IsNaN(gof.P) || gof.P < 0 || gof.P > 1 {
		t.Fatalf("P = %v out of range", gof.P)
	}
}

func TestPowerLawGoFWorkerIndependent(t *testing.T) {
	data := genPareto(54, 2000, 2.0, 1)
	f, err := New(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := PowerLawGoFWorkers(f, 40, 9, 1)
	for _, w := range []int{2, 8, 0} {
		got := PowerLawGoFWorkers(f, 40, 9, w)
		if got != ref {
			t.Fatalf("workers=%d: GoF %+v differs from serial %+v", w, got, ref)
		}
	}
}

func TestScanXminWorkerIndependent(t *testing.T) {
	// Noise body below a clean power-law tail gives the scan a real
	// minimum to find; the selected xmin, exponent and KS must not
	// depend on the worker count.
	r := randx.New(55)
	var data []float64
	for i := 0; i < 3000; i++ {
		data = append(data, 0.5+4.5*r.Float64())
	}
	for i := 0; i < 12000; i++ {
		data = append(data, r.Pareto(2.4, 5))
	}
	ref, err := New(data, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8, 0} {
		f, err := New(data, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if f.Xmin != ref.Xmin || f.KS != ref.KS {
			t.Fatalf("workers=%d: xmin/KS %v/%v differ from serial %v/%v",
				w, f.Xmin, f.KS, ref.Xmin, ref.KS)
		}
		if f.PowerLaw != ref.PowerLaw || f.Lognormal != ref.Lognormal ||
			f.TruncatedPL != ref.TruncatedPL || f.Exponential != ref.Exponential {
			t.Fatalf("workers=%d: fitted families differ from serial", w)
		}
	}
}

func TestKSCriticalValue(t *testing.T) {
	// Known constant: c(0.05) ≈ 1.358.
	got := KSCriticalValue(100, 0.05)
	want := 1.3581015157406195 / 10
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("KS critical = %v, want %v", got, want)
	}
	if !math.IsInf(KSCriticalValue(0, 0.05), 1) {
		t.Fatal("zero-n critical value not infinite")
	}
}
