package heavytail

import (
	"math"

	"steamstudy/internal/dists"
)

// Comparison is the result of a log-likelihood-ratio test between two
// candidate families fitted to the same tail. R > 0 favors the first
// family; P is the probability of observing |R| this large if the two
// families fit equally well (so P < 0.05 makes the sign of R meaningful).
// These are exactly the R and p columns of the paper's Table 4.
type Comparison struct {
	First, Second string
	R             float64
	P             float64
	// Nested records whether the chi-square (nested-models) p-value was
	// used instead of the Vuong normal approximation. The truncated power
	// law nests the pure power law, so their comparison is nested, as in
	// the Python package.
	Nested bool
}

// Favors reports which family the test supports: +1 first, -1 second,
// 0 inconclusive at the given significance level.
func (c Comparison) Favors(significance float64) int {
	if c.P >= significance {
		return 0
	}
	if c.R > 0 {
		return 1
	}
	return -1
}

// Compare runs the normalized (Vuong) log-likelihood-ratio test of d1
// against d2 over the tail observations.
func Compare(tail []float64, d1, d2 dists.TailDist) Comparison {
	return compare(tail, d1, d2, false)
}

// CompareNested runs the nested-models likelihood-ratio test (chi-square
// with one degree of freedom), appropriate when d2's family is a special
// case of d1's (power law inside truncated power law).
func CompareNested(tail []float64, d1, d2 dists.TailDist) Comparison {
	return compare(tail, d1, d2, true)
}

func compare(tail []float64, d1, d2 dists.TailDist, nested bool) Comparison {
	n := len(tail)
	c := Comparison{First: d1.Name(), Second: d2.Name(), Nested: nested}
	if n == 0 {
		c.P = 1
		return c
	}
	diffs := make([]float64, 0, n)
	sum := 0.0
	for _, x := range tail {
		d := d1.LogPDF(x) - d2.LogPDF(x)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			// A point outside one family's support: clamp to a large
			// finite penalty so a single point cannot produce NaN
			// statistics.
			if math.IsInf(d, 1) {
				d = 700
			} else {
				d = -700
			}
		}
		diffs = append(diffs, d)
		sum += d
	}
	c.R = sum
	if nested {
		// 2R ~ chi-square(1) under the null that the nested (second)
		// model suffices; survival function of chi2_1 at 2R is
		// erfc(sqrt(R)).
		if c.R <= 0 {
			c.P = 1
			return c
		}
		c.P = math.Erfc(math.Sqrt(c.R))
		return c
	}
	// Vuong normalization: sigma^2 is the variance of per-point
	// differences; p = erfc(|R| / (sigma * sqrt(2 n))).
	mean := sum / float64(n)
	ss := 0.0
	for _, d := range diffs {
		dd := d - mean
		ss += dd * dd
	}
	sigma := math.Sqrt(ss / float64(n))
	if sigma == 0 {
		// Identical likelihoods everywhere: no evidence either way.
		c.P = 1
		c.R = 0
		return c
	}
	c.P = math.Erfc(math.Abs(c.R) / (sigma * math.Sqrt(2*float64(n))))
	return c
}

// ComparisonSet bundles the four tests the paper runs per distribution
// (the four column pairs of Table 4).
type ComparisonSet struct {
	PLvsExp Comparison // power law vs exponential: the heavy-tail gate
	PLvsLN  Comparison // power law vs lognormal
	TPLvsPL Comparison // truncated power law vs power law (nested)
	TPLvsLN Comparison // truncated power law vs lognormal
}

// discretized adapts a continuous family to count data by converting its
// density to a probability mass via CDF differences over unit cells,
// P(k) = CDF(k+1/2) - CDF(k-1/2) — the standard treatment when comparing
// a discrete power law against continuous alternatives on integer data.
type discretized struct {
	dists.TailDist
	cdf func(float64) float64
}

func (w discretized) LogPDF(x float64) float64 {
	p := w.cdf(x+0.5) - w.cdf(x-0.5)
	if p <= 0 {
		return -744 // ln(smallest positive float64)
	}
	return math.Log(p)
}

// CompareAll runs the paper's four tests on a completed Fit. For discrete
// fits, the continuous alternatives are discretized onto unit cells so the
// likelihoods are commensurable with the discrete power law's pmf.
func (f *Fit) CompareAll() ComparisonSet {
	pl := f.powerLawDist()
	var ln, tpl, exp dists.TailDist = f.Lognormal, f.TruncatedPL, f.Exponential
	if f.Discrete {
		ln = discretized{f.Lognormal, f.Lognormal.CDF}
		tpl = discretized{f.TruncatedPL, f.TruncatedPL.CDF}
		exp = discretized{f.Exponential, f.Exponential.CDF}
	}
	return ComparisonSet{
		PLvsExp: Compare(f.Tail, pl, exp),
		PLvsLN:  Compare(f.Tail, pl, ln),
		TPLvsPL: CompareNested(f.Tail, tpl, pl),
		TPLvsLN: Compare(f.Tail, tpl, ln),
	}
}
