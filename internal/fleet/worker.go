// The worker side of the fleet: a loop that leases shards from the
// table, crawls each with the existing phase machinery restricted to the
// leased ID range, heartbeats while it works, and marks the shard done.
// Everything durable lives in the shard's own journal directory, so a
// worker is stateless between shards and interchangeable with any other —
// a SIGKILLed worker's shard is simply resumed by whoever reclaims it.

package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"steamstudy/internal/crawler"
	"steamstudy/internal/obs"
)

// Config configures one fleet worker.
type Config struct {
	// Dir is the shared fleet directory (lease table + shard journals).
	Dir string
	// WorkerID names this worker in the lease table. Defaults to
	// hostname-pid. Two live workers must not share an ID.
	WorkerID string
	// Params fixes the fleet geometry; the first worker to open the table
	// stamps them, later workers must agree (zero fields adopt).
	Params Params
	// Crawl is the per-shard crawler template. CheckpointPath, LeaseEpoch,
	// RangeStart, RangeEnd, SkipTailOnEmpty and MaxAccounts are
	// overwritten per lease.
	Crawl crawler.Config
	// Poll is how long to wait between Acquire attempts when every shard
	// is leased to someone else (default 250ms).
	Poll time.Duration
	// Registry receives the fleet gauges/counters and the per-shard
	// crawler metrics.
	Registry *obs.Registry
	// Logf receives progress lines (nil disables).
	Logf func(format string, args ...any)
}

// Stats summarizes one worker's contribution.
type Stats struct {
	Shards      int // shards this worker completed
	EmptyShards int // of those, how many held zero accounts
	Users       int // accounts this worker detailed
	LeasesLost  int // shards abandoned because the lease expired mid-crawl
	// Fenced counts the LeasesLost that were detected at the journal —
	// an append (or open) refused because a successor's epoch had fenced
	// this worker out. Nonzero Fenced means the fencing tokens did their
	// job: a paused worker woke up, tried to write, and was turned away.
	Fenced int
}

// disableHeartbeat, when true, suppresses the lease-renewal goroutine —
// simulating a worker whose heartbeats silently stop (wedged I/O, paused
// process) while its crawl keeps going. Test-only; the zombie chaos mode
// uses it to prove the journal fence, not the TTL, is what protects the
// merge.
var disableHeartbeat bool

// RunWorker participates in the fleet until the work space is exhausted
// (returns nil), the context is canceled (releases its lease and returns
// the context error), or a crawl fails terminally.
func RunWorker(ctx context.Context, cfg Config) (Stats, error) {
	var stats Stats
	if cfg.WorkerID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.WorkerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	table, err := Open(cfg.Dir, cfg.Params, cfg.Registry)
	if err != nil {
		return stats, err
	}
	defer table.Close()

	// release returns the worker's leases on the way out. A failure here
	// is not harmless — the lease stays dead until TTL expiry — so it is
	// logged and counted (fleet_release_errors) instead of dropped.
	release := func(why string) {
		if rerr := table.Release(cfg.WorkerID); rerr != nil {
			table.releaseErrors.Inc()
			logf("worker %s: release on %s failed: %v (leases stay dead until TTL expiry)",
				cfg.WorkerID, why, rerr)
		}
	}

	for {
		if ctx.Err() != nil {
			release("shutdown")
			return stats, ctx.Err()
		}
		lease, err := table.Acquire(cfg.WorkerID)
		switch {
		case errors.Is(err, ErrExhausted):
			logf("worker %s: work space exhausted after %d shards (%d users)",
				cfg.WorkerID, stats.Shards, stats.Users)
			return stats, nil
		case errors.Is(err, ErrNoShard):
			select {
			case <-ctx.Done():
			case <-time.After(cfg.Poll):
			}
			continue
		case err != nil:
			return stats, err
		}
		logf("worker %s: leased shard %d [%d,%d)", cfg.WorkerID, lease.Shard, lease.Start, lease.End)

		found, err := crawlShard(ctx, table, cfg, lease, logf)
		if errors.Is(err, ErrLeaseLost) || errors.Is(err, crawler.ErrFenced) {
			// Both mean the same thing — this worker no longer owns the
			// shard — but a fence rejection is the stronger signal: the
			// journal itself, not just the table, turned the write away.
			stats.LeasesLost++
			if errors.Is(err, crawler.ErrFenced) {
				stats.Fenced++
				table.fenceRejections.Inc()
				logf("worker %s: fenced off shard %d (epoch %d superseded); abandoning it",
					cfg.WorkerID, lease.Shard, lease.Epoch)
			} else {
				logf("worker %s: lost lease on shard %d; abandoning it", cfg.WorkerID, lease.Shard)
			}
			continue
		}
		if err != nil {
			release("terminal error")
			return stats, fmt.Errorf("fleet: shard %d: %w", lease.Shard, err)
		}
		if err := table.Complete(cfg.WorkerID, lease.Shard, lease.Epoch, found); err != nil {
			if errors.Is(err, ErrLeaseLost) {
				// The work is journaled; the reclaiming owner will replay
				// it and finish instantly. Nothing is lost.
				stats.LeasesLost++
				continue
			}
			return stats, err
		}
		stats.Shards++
		stats.Users += found
		if found == 0 {
			stats.EmptyShards++
		}
		logf("worker %s: shard %d done, %d users", cfg.WorkerID, lease.Shard, found)
	}
}

// crawlShard runs the existing crawler over one leased range, journaling
// into the shard's directory, while a background heartbeat keeps the
// lease alive. If a heartbeat comes back ErrLeaseLost — the worker
// stalled past the TTL and someone else may own the shard now — the crawl
// is canceled at once so two owners never append to the same journal.
func crawlShard(ctx context.Context, table *Table, cfg Config, lease Lease, logf func(string, ...any)) (int, error) {
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var lost atomic.Bool
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	ttl := table.TTL()
	go func() {
		defer close(hbDone)
		if disableHeartbeat {
			return
		}
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-shardCtx.Done():
				return
			case <-tick.C:
				if err := table.Heartbeat(cfg.WorkerID, lease.Shard, lease.Epoch); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						lost.Store(true)
						cancel()
						return
					}
					// A heartbeat I/O failure is tolerable blindness now:
					// if the lease lapses while we retry, the journal's
					// fence — not this loop — is what stops our writes.
					logf("worker %s: heartbeat on shard %d: %v (retrying)", cfg.WorkerID, lease.Shard, err)
				}
			}
		}
	}()

	ccfg := cfg.Crawl
	ccfg.CheckpointPath = lease.Dir
	ccfg.LeaseEpoch = lease.Epoch
	ccfg.RangeStart = lease.Start
	ccfg.RangeEnd = lease.End
	ccfg.SkipTailOnEmpty = true
	ccfg.MaxAccounts = 0
	ccfg.Registry = cfg.Registry
	if ccfg.Logf == nil && cfg.Logf != nil {
		ccfg.Logf = func(format string, args ...any) {
			cfg.Logf("shard %d: "+format, append([]any{lease.Shard}, args...)...)
		}
	}
	snap, err := crawler.New(ccfg).Run(shardCtx)

	close(hbStop)
	<-hbDone
	if lost.Load() {
		return 0, ErrLeaseLost
	}
	if err != nil {
		return 0, err
	}
	return len(snap.Users), nil
}
