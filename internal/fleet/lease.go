// Package fleet coordinates N crawler processes over one shared
// SteamID64 work space. The coordinator is not a process but a file: a
// lease table under the fleet directory, guarded by an advisory flock and
// rewritten with the same atomic-rename + fsync discipline as
// dataset.Snapshot.Save, shards the ID space into fixed-size ranges and
// hands them out as leases with expiry timestamps. Workers heartbeat to
// keep their lease; a worker that goes silent past the TTL — SIGKILLed,
// wedged, unplugged — forfeits its shard, and the next Acquire re-issues
// it. Each shard's crawl journals into its own directory, so the
// reclaiming worker resumes exactly where the corpse stopped, and the
// merge step (Merge) stitches the per-shard journals into one snapshot
// that is byte-identical to a solo crawl regardless of fleet size,
// interleaving, or how many workers died along the way.
//
// The ownership model follows the inventory/live-apply pattern: the table
// records who owns what and since when, stale actors are pruned by
// expiry, and every transition is a read-modify-write under the lock so
// two workers can never believe they own the same shard at once. The TTL
// alone cannot bound a paused worker (SIGSTOP, GC stall, NFS hang past
// the TTL), so every (re)issue of a shard bumps its fencing epoch; the
// Lease carries the epoch, the shard journal pins it durably (see the
// crawler's fence file), and a resumed zombie's journal appends — and its
// Heartbeat/Complete calls here — fail against the newer epoch instead
// of corrupting state a successor now owns.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"

	"steamstudy/internal/obs"
	"steamstudy/internal/steamid"
)

const (
	tableName = "table.json"
	lockName  = "fleet.lock"

	shardOpen   = "open"   // previously issued, currently unowned (released or reclaimed)
	shardLeased = "leased" // owned by Worker until Expires
	shardDone   = "done"   // crawled to completion
)

// Sentinel results from Acquire and the lease-holding operations.
var (
	// ErrExhausted: the frontier is closed and every shard is done — the
	// fleet crawl is complete.
	ErrExhausted = errors.New("fleet: work space exhausted")
	// ErrNoShard: nothing to lease right now, but other workers hold live
	// leases whose death would create work — poll again.
	ErrNoShard = errors.New("fleet: no shard available; live leases outstanding")
	// ErrLeaseLost: the caller no longer owns the shard (its lease expired
	// and was reclaimed, or the shard was reissued at a higher epoch). The
	// holder must stop writing that shard's journal immediately.
	ErrLeaseLost = errors.New("fleet: lease lost")
	// ErrParamsMismatch: a later Open disagreed with the geometry or
	// liveness rules the table already records. Wrapped by the specific
	// mismatch error, so errors.Is(err, ErrParamsMismatch) detects the
	// class.
	ErrParamsMismatch = errors.New("fleet: params disagree with existing table")
)

// Params fixes the geometry and liveness rules of one fleet. The first
// Open writes them into the table; later opens must agree (zero fields
// adopt the stored value; an explicit disagreement is ErrParamsMismatch).
type Params struct {
	// StartID is the first SteamID64 of shard 0 (default steamid.Base).
	StartID uint64
	// ZeroStartID pins StartID at a literal zero instead of the default —
	// the zero sentinel made expressible. Setting it alongside a nonzero
	// StartID is a configuration error.
	ZeroStartID bool
	// RangeSize is the number of IDs per shard (default 65536).
	RangeSize uint64
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default 30s).
	LeaseTTL time.Duration
	// EmptyShardLimit closes the frontier after this many consecutive
	// all-empty completed shards at the top of the issued range — the
	// fleet analog of the solo sweep's EmptyBatchLimit. Zero defaults to
	// enough shards to cover the solo heuristic's 2000-ID overshoot; a
	// negative value means the frontier never closes on emptiness (an
	// operator-driven fleet).
	EmptyShardLimit int
}

func (p Params) withDefaults() (Params, error) {
	switch {
	case p.ZeroStartID && p.StartID != 0:
		return p, fmt.Errorf("fleet: ZeroStartID set alongside StartID %d: %w", p.StartID, ErrParamsMismatch)
	case !p.ZeroStartID && p.StartID == 0:
		p.StartID = steamid.Base
	}
	if p.RangeSize == 0 {
		p.RangeSize = 65536
	}
	if p.LeaseTTL <= 0 {
		p.LeaseTTL = 30 * time.Second
	}
	if p.EmptyShardLimit == 0 {
		// Match the solo sweep's gap tolerance: 20 batches of 100 IDs.
		p.EmptyShardLimit = int((2000 + p.RangeSize - 1) / p.RangeSize)
		if p.EmptyShardLimit < 1 {
			p.EmptyShardLimit = 1
		}
	}
	return p, nil
}

// Lease is one granted shard: the ID range to crawl, the directory the
// shard's journal lives in, and the fencing epoch of this grant.
type Lease struct {
	Shard      int
	Start, End uint64 // [Start, End)
	Dir        string
	// Epoch is this shard's issue number, bumped on every (re)issue. The
	// holder passes it to Heartbeat/Complete and threads it into the
	// crawler (Config.LeaseEpoch) so the shard journal can fence out any
	// earlier holder still twitching.
	Epoch uint64
}

// shardEntry is one shard's row in the on-disk table.
type shardEntry struct {
	State   string `json:"state"`
	Worker  string `json:"worker,omitempty"`
	Expires int64  `json:"expires_unix_nano,omitempty"`
	Found   int    `json:"found,omitempty"`
	Empty   bool   `json:"empty,omitempty"`
	// Epoch counts issues of this shard, monotone per shard, never reset
	// — not on completion, not on reclamation. A lease is valid only at
	// the shard's current epoch.
	Epoch uint64 `json:"epoch,omitempty"`
}

// tableVersion is the current on-disk table schema. Version 2 added
// per-shard fencing epochs; version 1 tables are accepted and migrated in
// place (every shard at epoch 0, so the next issue of each is epoch 1 and
// fences out any pre-upgrade straggler). Newer versions are refused.
const tableVersion = 2

// tableState is the whole coordination state, serialized as one JSON
// document. Small by construction: one row per issued shard plus one
// heartbeat stamp per worker ever seen.
type tableState struct {
	Version         int                    `json:"version"`
	StartID         uint64                 `json:"start_id"`
	RangeSize       uint64                 `json:"range_size"`
	LeaseTTLNanos   int64                  `json:"lease_ttl_nanos"`
	EmptyShardLimit int                    `json:"empty_shard_limit"`
	NextShard       int                    `json:"next_shard"`
	Shards          map[string]*shardEntry `json:"shards"`
	Workers         map[string]int64       `json:"workers"` // worker -> last activity (unix nanos)
}

func (st *tableState) shard(i int) *shardEntry { return st.Shards[strconv.Itoa(i)] }

func (st *tableState) setShard(i int, e *shardEntry) { st.Shards[strconv.Itoa(i)] = e }

// frontierClosed reports whether the EmptyShardLimit newest issued shards
// are all done and empty — the sweep has run past the youngest account,
// so no new shard is worth issuing. A non-positive limit (the explicit
// "never auto-close" sentinel) keeps the frontier open forever.
func (st *tableState) frontierClosed() bool {
	if st.EmptyShardLimit <= 0 {
		return false
	}
	if st.NextShard < st.EmptyShardLimit {
		return false
	}
	for i := st.NextShard - st.EmptyShardLimit; i < st.NextShard; i++ {
		e := st.shard(i)
		if e == nil || e.State != shardDone || !e.Empty {
			return false
		}
	}
	return true
}

// outstanding counts issued shards not yet done.
func (st *tableState) outstanding() int {
	n := 0
	for _, e := range st.Shards {
		if e.State != shardDone {
			n++
		}
	}
	return n
}

// Table is a handle on one fleet's lease table. Every operation takes the
// flock, reads the table, mutates it, and atomically rewrites it, so any
// number of Table handles — across goroutines or across processes — see
// one serialized history.
type Table struct {
	dir  string
	lock *os.File
	ttl  time.Duration    // cached from the table file at open
	now  func() time.Time // test hook

	leasesHeld      *obs.Counter
	leasesExpired   *obs.Counter
	leasesReclaimed *obs.Counter
	fenceRejections *obs.Counter
	releaseErrors   *obs.Counter
	workersAlive    *obs.Gauge
	shardsDone      *obs.Gauge
	shardsIssued    *obs.Gauge
	leaseEpoch      *obs.Gauge
}

// Open creates the fleet directory and lease table if absent (stamping
// params, with defaults applied) or attaches to the existing one (nonzero
// params must match what the table records — two workers disagreeing on
// shard geometry would corrupt the space).
func Open(dir string, p Params, reg *obs.Registry) (*Table, error) {
	return open(dir, p, reg, true)
}

// Load attaches to an existing fleet directory and fails if there is no
// lease table — the read-side entry point (merge, status) must never
// invent an empty fleet.
func Load(dir string, reg *obs.Registry) (*Table, error) {
	return open(dir, Params{}, reg, false)
}

func open(dir string, p Params, reg *obs.Registry, create bool) (*Table, error) {
	if create {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: dir: %w", err)
		}
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: lock file: %w", err)
	}
	t := &Table{
		dir:             dir,
		lock:            lock,
		now:             time.Now,
		leasesHeld:      reg.Counter("fleet_leases_held"),
		leasesExpired:   reg.Counter("fleet_leases_expired"),
		leasesReclaimed: reg.Counter("fleet_leases_reclaimed"),
		fenceRejections: reg.Counter("fleet_fence_rejections"),
		releaseErrors:   reg.Counter("fleet_release_errors"),
		workersAlive:    reg.Gauge("fleet_workers_alive"),
		shardsDone:      reg.Gauge("fleet_shards_done"),
		shardsIssued:    reg.Gauge("fleet_shards_issued"),
		leaseEpoch:      reg.Gauge("fleet_lease_epoch"),
	}
	if err := t.init(p, create); err != nil {
		lock.Close()
		return nil, err
	}
	return t, nil
}

// init validates or creates the table file under the lock.
func (t *Table) init(p Params, create bool) error {
	if err := t.flock(); err != nil {
		return err
	}
	defer t.funlock()
	st, err := t.read()
	if err != nil {
		return err
	}
	if st == nil {
		if !create {
			return fmt.Errorf("fleet: %s has no lease table", t.dir)
		}
		p, err = p.withDefaults()
		if err != nil {
			return err
		}
		st = &tableState{
			Version:         tableVersion,
			StartID:         p.StartID,
			RangeSize:       p.RangeSize,
			LeaseTTLNanos:   p.LeaseTTL.Nanoseconds(),
			EmptyShardLimit: p.EmptyShardLimit,
			Shards:          map[string]*shardEntry{},
			Workers:         map[string]int64{},
		}
		t.ttl = p.LeaseTTL
		return t.write(st)
	}
	t.ttl = time.Duration(st.LeaseTTLNanos)
	// Explicit caller params must agree with the table's; disagreement on
	// the first-open choices is ErrParamsMismatch, never silent adoption.
	if p.ZeroStartID && p.StartID != 0 {
		return fmt.Errorf("fleet: ZeroStartID set alongside StartID %d: %w", p.StartID, ErrParamsMismatch)
	}
	if (p.StartID != 0 || p.ZeroStartID) && p.StartID != st.StartID {
		return fmt.Errorf("fleet: start ID mismatch: table has %d, caller wants %d: %w", st.StartID, p.StartID, ErrParamsMismatch)
	}
	if p.RangeSize != 0 && p.RangeSize != st.RangeSize {
		return fmt.Errorf("fleet: range size mismatch: table has %d, caller wants %d: %w", st.RangeSize, p.RangeSize, ErrParamsMismatch)
	}
	if p.LeaseTTL > 0 && p.LeaseTTL.Nanoseconds() != st.LeaseTTLNanos {
		return fmt.Errorf("fleet: lease TTL mismatch: table has %v, caller wants %v: %w",
			time.Duration(st.LeaseTTLNanos), p.LeaseTTL, ErrParamsMismatch)
	}
	if p.EmptyShardLimit != 0 && p.EmptyShardLimit != st.EmptyShardLimit {
		return fmt.Errorf("fleet: empty-shard limit mismatch: table has %d, caller wants %d: %w",
			st.EmptyShardLimit, p.EmptyShardLimit, ErrParamsMismatch)
	}
	return nil
}

// Close releases the handle (not any leases — use Release for that).
func (t *Table) Close() error { return t.lock.Close() }

// Dir returns the fleet directory.
func (t *Table) Dir() string { return t.dir }

// TTL returns the fleet's lease time-to-live as stored in the table.
func (t *Table) TTL() time.Duration { return t.ttl }

// ShardDir names the journal directory of one shard.
func (t *Table) ShardDir(shard int) string { return ShardDir(t.dir, shard) }

// ShardDir names the journal directory of one shard of the fleet at dir.
func ShardDir(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%06d", shard))
}

func (t *Table) flock() error {
	if err := syscall.Flock(int(t.lock.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("fleet: flock: %w", err)
	}
	return nil
}

func (t *Table) funlock() { syscall.Flock(int(t.lock.Fd()), syscall.LOCK_UN) }

// read loads the table file; a missing file returns (nil, nil).
func (t *Table) read() (*tableState, error) {
	raw, err := os.ReadFile(filepath.Join(t.dir, tableName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: table read: %w", err)
	}
	var st tableState
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("fleet: table decode: %w", err)
	}
	if st.Version > tableVersion {
		return nil, fmt.Errorf("fleet: table version %d is newer than this binary understands", st.Version)
	}
	if st.Version < 1 {
		return nil, fmt.Errorf("fleet: table version %d is malformed", st.Version)
	}
	if st.Version < tableVersion {
		// Epoch-free v1 table: adopt it in place. Every shard sits at
		// epoch 0, so the next (re)issue of each becomes epoch 1 and
		// fences out any pre-upgrade straggler (a pre-upgrade binary
		// refuses version 2 on its next table operation and exits). The
		// bump persists with the next read-modify-write.
		st.Version = tableVersion
	}
	if st.Shards == nil {
		st.Shards = map[string]*shardEntry{}
	}
	if st.Workers == nil {
		st.Workers = map[string]int64{}
	}
	return &st, nil
}

// write atomically publishes the table: temp file, fsync, rename,
// directory fsync — the same discipline as Snapshot.Save, so a crash
// mid-write can never leave a half-table for the next worker to read.
func (t *Table) write(st *tableState) error {
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("fleet: table encode: %w", err)
	}
	f, err := os.CreateTemp(t.dir, ".tmp-table-")
	if err != nil {
		return fmt.Errorf("fleet: table temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: table write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(t.dir, tableName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fleet: table publish: %w", err)
	}
	return syncDir(t.dir)
}

// syncDir fsyncs the fleet directory so the rename is durable;
// filesystems that cannot sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fleet: dir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("fleet: dir sync: %w", err)
	}
	return nil
}

// withTable runs fn on the freshly read table under the lock and persists
// the result. The sentinel outcomes (ErrExhausted, ErrNoShard) still
// persist — fn may have reclaimed expired leases or stamped a heartbeat
// on the way to "nothing for you".
func (t *Table) withTable(fn func(st *tableState) error) error {
	if err := t.flock(); err != nil {
		return err
	}
	defer t.funlock()
	st, err := t.read()
	if err != nil {
		return err
	}
	if st == nil {
		return fmt.Errorf("fleet: %s has no lease table", t.dir)
	}
	ferr := fn(st)
	if ferr == nil || errors.Is(ferr, ErrExhausted) || errors.Is(ferr, ErrNoShard) {
		if werr := t.write(st); werr != nil {
			return werr
		}
		t.updateGauges(st)
	}
	return ferr
}

// reclaim returns every expired lease to the open pool. The journal under
// the shard's directory survives untouched; the next owner resumes it.
func (t *Table) reclaim(st *tableState, now time.Time) {
	for _, e := range st.Shards {
		if e.State == shardLeased && e.Expires < now.UnixNano() {
			e.State = shardOpen
			e.Worker = ""
			e.Expires = 0
			t.leasesExpired.Inc()
		}
	}
}

func (t *Table) updateGauges(st *tableState) {
	now := t.now().UnixNano()
	ttl := st.LeaseTTLNanos
	alive := 0
	for w, last := range st.Workers {
		if now-last <= ttl {
			alive++
		} else if now-last > 10*ttl {
			delete(st.Workers, w) // bound the map; long-dead workers are history
		}
	}
	done := 0
	for _, e := range st.Shards {
		if e.State == shardDone {
			done++
		}
	}
	t.workersAlive.Set(float64(alive))
	t.shardsDone.Set(float64(done))
	t.shardsIssued.Set(float64(st.NextShard))
}

func (t *Table) leaseFor(st *tableState, shard int) Lease {
	start := st.StartID + uint64(shard)*st.RangeSize
	l := Lease{
		Shard: shard,
		Start: start,
		End:   start + st.RangeSize,
		Dir:   t.ShardDir(shard),
	}
	if e := st.shard(shard); e != nil {
		l.Epoch = e.Epoch
	}
	return l
}

// Acquire grants the caller a shard: the lowest reclaimed/released shard
// if any, else the next frontier shard. Every grant bumps the shard's
// fencing epoch, so the returned Lease's Epoch supersedes all earlier
// issues of the same shard. ErrNoShard means poll again (another worker's
// death may free work); ErrExhausted means the crawl is complete.
func (t *Table) Acquire(worker string) (Lease, error) {
	var lease Lease
	err := t.withTable(func(st *tableState) error {
		now := t.now()
		t.reclaim(st, now)
		st.Workers[worker] = now.UnixNano()

		// Lowest open (previously issued, currently unowned) shard first:
		// resuming a half-crawled journal beats opening fresh ground.
		openShard := -1
		for k, e := range st.Shards {
			if e.State != shardOpen {
				continue
			}
			if i, err := strconv.Atoi(k); err == nil && (openShard < 0 || i < openShard) {
				openShard = i
			}
		}
		idx, reclaimed := openShard, openShard >= 0
		if idx < 0 && !st.frontierClosed() {
			idx = st.NextShard
			st.NextShard++
		}
		if idx < 0 {
			if st.outstanding() == 0 {
				return ErrExhausted
			}
			return ErrNoShard
		}
		var epoch uint64 = 1
		if prev := st.shard(idx); prev != nil {
			epoch = prev.Epoch + 1
		}
		st.setShard(idx, &shardEntry{
			State:   shardLeased,
			Worker:  worker,
			Expires: now.Add(time.Duration(st.LeaseTTLNanos)).UnixNano(),
			Epoch:   epoch,
		})
		lease = t.leaseFor(st, idx)
		t.leasesHeld.Inc()
		t.leaseEpoch.Set(float64(epoch))
		if reclaimed {
			t.leasesReclaimed.Inc()
		}
		return nil
	})
	return lease, err
}

// Heartbeat renews the caller's lease on shard at the given epoch.
// ErrLeaseLost means the lease expired, was reissued at a higher epoch,
// or belongs to someone else: the caller must abandon the shard (and its
// journal) immediately.
func (t *Table) Heartbeat(worker string, shard int, epoch uint64) error {
	return t.withTable(func(st *tableState) error {
		now := t.now()
		t.reclaim(st, now)
		st.Workers[worker] = now.UnixNano()
		e := st.shard(shard)
		if e == nil || e.State != shardLeased || e.Worker != worker || e.Epoch != epoch {
			return ErrLeaseLost
		}
		e.Expires = now.Add(time.Duration(st.LeaseTTLNanos)).UnixNano()
		return nil
	})
}

// Complete marks the caller's shard done, recording how many accounts it
// found; zero marks it empty, which is what closes the frontier. The
// epoch must still be current — a zombie completing a shard it lost would
// otherwise overwrite the successor's claim. The shard's epoch history
// survives completion, so a hypothetical reopen keeps counting upward.
func (t *Table) Complete(worker string, shard int, epoch uint64, found int) error {
	return t.withTable(func(st *tableState) error {
		now := t.now()
		t.reclaim(st, now)
		st.Workers[worker] = now.UnixNano()
		e := st.shard(shard)
		if e == nil || e.State != shardLeased || e.Worker != worker || e.Epoch != epoch {
			return ErrLeaseLost
		}
		*e = shardEntry{State: shardDone, Found: found, Empty: found == 0, Epoch: e.Epoch}
		return nil
	})
}

// Release returns every lease the worker holds to the open pool — the
// graceful-shutdown path, so an interrupted worker's shards are
// immediately re-issuable instead of dead until TTL expiry.
func (t *Table) Release(worker string) error {
	return t.withTable(func(st *tableState) error {
		for _, e := range st.Shards {
			if e.State == shardLeased && e.Worker == worker {
				e.State = shardOpen
				e.Worker = ""
				e.Expires = 0
			}
		}
		delete(st.Workers, worker)
		return nil
	})
}

// ShardInfo is one shard's public status row.
type ShardInfo struct {
	Shard      int
	State      string
	Worker     string
	Found      int
	Empty      bool
	Start, End uint64
	Dir        string
	// Epoch is the shard's current issue number (how many times it has
	// been granted).
	Epoch uint64
	// Expires is when the current lease lapses without a heartbeat; zero
	// for open and done shards.
	Expires time.Time
}

// Status is a point-in-time summary of the whole fleet.
type Status struct {
	StartID         uint64
	RangeSize       uint64
	LeaseTTL        time.Duration
	EmptyShardLimit int
	NextShard       int
	Done            int
	Leased          int
	Open            int
	WorkersAlive    int
	// FrontierClosed: the trailing EmptyShardLimit shards all came back
	// empty, so no new shard will be issued.
	FrontierClosed bool
	// Exhausted: frontier closed and every issued shard done — merging is
	// safe.
	Exhausted bool
	Shards    []ShardInfo // ascending by shard index
}

// Status reads the table and summarizes it. Strictly read-only: the lock
// is held only across the file read — never a write, never a reclaim — so
// an admin polling status (the -fleet-status view, a dashboard loop)
// cannot perturb the fleet or stall its workers.
func (t *Table) Status() (Status, error) {
	var s Status
	if err := t.flock(); err != nil {
		return s, err
	}
	st, err := t.read()
	t.funlock()
	if err != nil {
		return s, err
	}
	if st == nil {
		return s, fmt.Errorf("fleet: %s has no lease table", t.dir)
	}
	s = Status{
		StartID:         st.StartID,
		RangeSize:       st.RangeSize,
		LeaseTTL:        time.Duration(st.LeaseTTLNanos),
		EmptyShardLimit: st.EmptyShardLimit,
		NextShard:       st.NextShard,
	}
	now := t.now().UnixNano()
	for w := range st.Workers {
		if now-st.Workers[w] <= st.LeaseTTLNanos {
			s.WorkersAlive++
		}
	}
	idxs := make([]int, 0, len(st.Shards))
	for k := range st.Shards {
		if i, err := strconv.Atoi(k); err == nil {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		e := st.shard(i)
		switch e.State {
		case shardDone:
			s.Done++
		case shardLeased:
			s.Leased++
		case shardOpen:
			s.Open++
		}
		start := st.StartID + uint64(i)*st.RangeSize
		info := ShardInfo{
			Shard: i, State: e.State, Worker: e.Worker,
			Found: e.Found, Empty: e.Empty,
			Start: start, End: start + st.RangeSize,
			Dir:   t.ShardDir(i),
			Epoch: e.Epoch,
		}
		if e.State == shardLeased && e.Expires != 0 {
			info.Expires = time.Unix(0, e.Expires)
		}
		s.Shards = append(s.Shards, info)
	}
	s.FrontierClosed = st.frontierClosed()
	s.Exhausted = s.FrontierClosed && st.outstanding() == 0
	return s, nil
}
