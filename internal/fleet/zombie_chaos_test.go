//go:build crash

// The paused-worker (zombie) chaos mode: SIGSTOP a fleet worker past its
// lease TTL, let a successor take its shard over, then SIGCONT the
// zombie and let it try to keep writing. The TTL cannot protect the
// journal here — the zombie's heartbeats are suppressed, so only the
// journal's fencing epoch stands between its stale appends and the
// successor's shard. The acceptance bar: the zombie self-terminates on
// the shard with ErrFenced (fence rejection counters fire), and the
// merged snapshot — bytes and manifest SHA-256 — is identical to an
// undisturbed solo crawl.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"steamstudy/internal/crawler"
	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
)

// zombieStats is what the child process reports back to the parent.
type zombieStats struct {
	Stats
	FleetFenceRejections   int64
	CrawlerFenceRejections int64
}

// zombieParams must be identical for every participant (zombie,
// successor, the parent's status polls).
func zombieParams() Params {
	return Params{RangeSize: 200, LeaseTTL: 2 * time.Second, EmptyShardLimit: 3}
}

// TestFleetZombieChild is not a test: it is the subprocess body for
// TestFleetChaosZombieSIGSTOP. FLEET_NO_HEARTBEAT=1 suppresses the
// lease-renewal goroutine — the zombie must not notice via the table
// that it lost its shard; only the journal fence may stop it.
func TestFleetZombieChild(t *testing.T) {
	if os.Getenv("STEAMCRAWL_ZOMBIE_CHILD") != "1" {
		t.Skip("subprocess body; spawned by TestFleetChaosZombieSIGSTOP")
	}
	if os.Getenv("FLEET_NO_HEARTBEAT") == "1" {
		disableHeartbeat = true
	}
	var rate float64
	fmt.Sscan(os.Getenv("FLEET_RATE"), &rate)
	reg := obs.NewRegistry()
	stats, err := RunWorker(context.Background(), Config{
		Dir:      os.Getenv("FLEET_DIR"),
		WorkerID: os.Getenv("FLEET_WORKER"),
		Params:   zombieParams(),
		Crawl: crawler.Config{
			BaseURL:       os.Getenv("FLEET_URL"),
			Workers:       2,
			RatePerSecond: rate,
			ProgressEvery: -1,
		},
		Poll:     50 * time.Millisecond,
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("zombie child %s: %v", os.Getenv("FLEET_WORKER"), err)
	}
	if path := os.Getenv("FLEET_STATS"); path != "" {
		raw, err := json.Marshal(zombieStats{
			Stats:                  stats,
			FleetFenceRejections:   reg.Counter("fleet_fence_rejections").Load(),
			CrawlerFenceRejections: reg.Counter("crawler_fence_rejections").Load(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// shardDirBytes sums the journal files of one shard directory.
func shardDirBytes(dir string) int64 {
	var n int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !e.IsDir() {
			n += info.Size()
		}
	}
	return n
}

// flockFree reports whether the fleet lock is currently free. A SIGSTOP
// can freeze the zombie inside a table operation, and a held flock
// survives the freeze (unlike process death) — every other participant
// would hang on it, so the parent must detect that and retry the pause.
func flockFree(dir string) bool {
	f, err := os.Open(filepath.Join(dir, lockName))
	if err != nil {
		return false
	}
	defer f.Close()
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return false
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return true
}

func TestFleetChaosZombieSIGSTOP(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos is slow")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t)
	tmp := t.TempDir()
	fleetDir := filepath.Join(tmp, "fleet")
	soloPath := filepath.Join(tmp, "solo.snap.jsonl")
	want := soloBytes(t, ts.URL, tmp)

	spawn := func(worker, rate, noHeartbeat, statsPath string) (*exec.Cmd, chan error) {
		cmd := exec.Command(exe, "-test.run", "^TestFleetZombieChild$", "-test.v")
		cmd.Env = append(os.Environ(),
			"STEAMCRAWL_ZOMBIE_CHILD=1",
			"FLEET_URL="+ts.URL,
			"FLEET_DIR="+fleetDir,
			"FLEET_WORKER="+worker,
			"FLEET_RATE="+rate,
			"FLEET_NO_HEARTBEAT="+noHeartbeat,
			"FLEET_STATS="+statsPath,
		)
		done := make(chan error, 1)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { done <- cmd.Wait() }()
		return cmd, done
	}

	// The zombie: throttled so the pause lands mid-shard, heartbeats
	// suppressed so the table never warns it.
	statsPath := filepath.Join(tmp, "zombie-stats.json")
	zombie, zombieDone := spawn("zombie", "300", "1", statsPath)

	// Wait for the fleet dir, then for the zombie to be mid-shard: a live
	// lease plus a journal past the first couple of KB of phase-2 records.
	var table *Table
	deadline := time.Now().Add(60 * time.Second)
	for table == nil {
		if t2, err := Open(fleetDir, zombieParams(), nil); err == nil {
			table = t2
		} else if time.Now().After(deadline) {
			t.Fatalf("fleet table never appeared: %v", err)
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	defer table.Close()

	// Pause the zombie mid-shard. The Status read after SIGSTOP is the
	// authoritative one — the process is frozen, so its lease cannot move.
	var victim ShardInfo
	deadline = time.Now().Add(90 * time.Second)
	for {
		if time.Now().After(deadline) {
			zombie.Process.Kill()
			t.Fatal("zombie never got mid-shard")
		}
		s, err := table.Status()
		if err != nil {
			t.Fatal(err)
		}
		hot := false
		for _, sh := range s.Shards {
			if sh.State == shardLeased && sh.Worker == "zombie" && shardDirBytes(sh.Dir) >= 2048 {
				hot = true
			}
		}
		if !hot {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err := zombie.Process.Signal(syscall.SIGSTOP); err != nil {
			t.Fatal(err)
		}
		if !flockFree(fleetDir) {
			// Frozen mid-table-operation with the flock held; wake it, let
			// the operation finish, and catch it again.
			if err := zombie.Process.Signal(syscall.SIGCONT); err != nil {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
			continue
		}
		s, err = table.Status()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, sh := range s.Shards {
			if sh.State == shardLeased && sh.Worker == "zombie" {
				victim, found = sh, true
			}
		}
		if found {
			break
		}
		// The shard completed between the check and the stop; resume and
		// catch the next one.
		if err := zombie.Process.Signal(syscall.SIGCONT); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("zombie paused holding shard %d at epoch %d (%d journal bytes)",
		victim.Shard, victim.Epoch, shardDirBytes(victim.Dir))

	// A full-speed successor (heartbeats on) takes the fleet over. Once
	// the zombie's lease expires it reclaims the victim shard at a higher
	// epoch and fences the journal.
	_, succDone := spawn("successor", "0", "", "")
	deadline = time.Now().Add(2 * time.Minute)
	for {
		fence, err := crawler.ReadFence(victim.Dir)
		if err != nil {
			t.Fatal(err)
		}
		if fence.Epoch > victim.Epoch {
			t.Logf("victim shard fenced at epoch %d", fence.Epoch)
			break
		}
		if time.Now().After(deadline) {
			zombie.Process.Kill()
			t.Fatalf("successor never fenced shard %d past epoch %d", victim.Shard, victim.Epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Wake the corpse. Its next journal append on the victim shard must
	// come back ErrFenced; after abandoning it, the zombie helps drain
	// whatever is left and exits clean.
	if err := zombie.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"zombie": zombieDone, "successor": succDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited with error: %v", name, err)
			}
		case <-time.After(4 * time.Minute):
			t.Fatalf("%s hung", name)
		}
	}

	raw, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("zombie never reported stats: %v", err)
	}
	var zs zombieStats
	if err := json.Unmarshal(raw, &zs); err != nil {
		t.Fatal(err)
	}
	t.Logf("zombie stats: %+v", zs)
	if zs.Fenced < 1 {
		t.Fatalf("zombie was never fenced (stats %+v); the TTL, not the fence, saved the merge", zs)
	}
	if zs.FleetFenceRejections < 1 || zs.CrawlerFenceRejections < 1 {
		t.Fatalf("fence rejection counters did not fire: fleet=%d crawler=%d",
			zs.FleetFenceRejections, zs.CrawlerFenceRejections)
	}

	// The merge must be byte-identical to the undisturbed solo crawl,
	// manifest SHA-256 included, and fsck-clean.
	merged, err := Merge(fleetDir, 0)
	if err != nil {
		t.Fatalf("merge after zombie chaos: %v", err)
	}
	mergedPath := filepath.Join(tmp, "merged.snap.jsonl")
	got := saveCanonical(t, merged, mergedPath)
	if !bytes.Equal(got, want) {
		t.Fatalf("zombie merge not byte-identical to solo (%d vs %d bytes)", len(got), len(want))
	}
	soloMan, err := dataset.ReadManifest(soloPath)
	if err != nil {
		t.Fatal(err)
	}
	mergedMan, err := dataset.ReadManifest(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if soloMan.FileSHA256 != mergedMan.FileSHA256 {
		t.Fatalf("manifest SHA-256 diverges: solo %s, merged %s", soloMan.FileSHA256, mergedMan.FileSHA256)
	}
	rep, err := dataset.FsckFile(mergedPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("zombie merge fails fsck:\n%s", rep)
	}
}
