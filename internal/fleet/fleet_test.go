package fleet

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/crawler"
	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
	"steamstudy/internal/simworld"
)

var (
	fleetOnce sync.Once
	fleetU    *simworld.Universe
)

// fleetUniverse is the shared ground truth: small enough that a fleet of
// four plus a solo control crawl stay fast, big enough to span several
// shards at the test range size.
func fleetUniverse(t *testing.T) *simworld.Universe {
	t.Helper()
	fleetOnce.Do(func() {
		cfg := simworld.DefaultConfig(300)
		cfg.CatalogSize = 40
		fleetU = simworld.MustGenerate(cfg, 7)
	})
	return fleetU
}

func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(apiserver.New(fleetUniverse(t), apiserver.Config{}))
	t.Cleanup(ts.Close)
	return ts
}

// testParams keeps shards small so a 300-account universe spans several
// and the empty frontier stays cheap.
func testParams() Params {
	return Params{RangeSize: 200, LeaseTTL: 5 * time.Second, EmptyShardLimit: 3}
}

// saveCanonical persists a snapshot with a pinned timestamp as JSONL —
// bytes depend only on the record values, so files compare byte-for-byte.
func saveCanonical(t *testing.T, snap *dataset.Snapshot, path string) []byte {
	t.Helper()
	snap.CollectedAt = 1_450_000_000
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// soloBytes runs the single-process control crawl and returns its pinned
// snapshot bytes — the target every fleet configuration must hit exactly.
func soloBytes(t *testing.T, baseURL, dir string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	snap, err := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 4, ProgressEvery: -1}).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return saveCanonical(t, snap, filepath.Join(dir, "solo.snap.jsonl"))
}

// runFleet crawls the whole space with n concurrent workers sharing one
// fleet directory, then merges and returns the pinned snapshot bytes.
func runFleet(t *testing.T, baseURL, fleetDir string, n int, reg *obs.Registry) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunWorker(ctx, Config{
				Dir:      fleetDir,
				WorkerID: string(rune('a' + i)),
				Params:   testParams(),
				Crawl:    crawler.Config{BaseURL: baseURL, Workers: 4, ProgressEvery: -1},
				Poll:     20 * time.Millisecond,
				Registry: reg,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	merged, err := Merge(fleetDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return saveCanonical(t, merged, filepath.Join(fleetDir, "merged.snap.jsonl"))
}

// TestFleetMergeMatchesSoloAcrossSizes is the determinism proof for the
// undisturbed case: fleets of 1, 2 and 4 workers — different lease
// interleavings, different shard-to-worker assignments — must all merge
// to the byte-identical snapshot of a solo crawl.
func TestFleetMergeMatchesSoloAcrossSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e is slow")
	}
	ts := startServer(t)
	tmp := t.TempDir()
	want := soloBytes(t, ts.URL, tmp)

	for _, n := range []int{1, 2, 4} {
		reg := obs.NewRegistry()
		fleetDir := filepath.Join(tmp, "fleet", string(rune('0'+n)))
		got := runFleet(t, ts.URL, fleetDir, n, reg)
		if !bytes.Equal(got, want) {
			t.Fatalf("fleet of %d merged to %d bytes, solo is %d bytes — not identical", n, len(got), len(want))
		}
		rep, err := dataset.FsckFile(filepath.Join(fleetDir, "merged.snap.jsonl"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("fleet of %d: merged snapshot fails fsck:\n%s", n, rep)
		}
		if reg.Counter("fleet_leases_held").Load() == 0 {
			t.Fatalf("fleet of %d: no leases recorded on the registry", n)
		}
	}
}

// TestFleetMergeRefusesIncompleteCrawl: merging while shards are
// outstanding must fail loudly, not emit a snapshot missing ID ranges.
func TestFleetMergeRefusesIncompleteCrawl(t *testing.T) {
	dir := t.TempDir()
	table, err := Open(dir, testParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer table.Close()
	if _, err := table.Acquire("w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, 0); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
}

// TestFleetWorkerGracefulCancel: a canceled worker releases its lease
// immediately (no TTL wait) and leaves a journal a successor resumes; the
// finished fleet still merges byte-identical to solo.
func TestFleetWorkerGracefulCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet e2e is slow")
	}
	ts := startServer(t)
	tmp := t.TempDir()
	want := soloBytes(t, ts.URL, tmp)
	fleetDir := filepath.Join(tmp, "fleet")

	// Throttled worker so the cancel lands mid-shard.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunWorker(ctx, Config{
			Dir:      fleetDir,
			WorkerID: "victim",
			Params:   testParams(),
			Crawl:    crawler.Config{BaseURL: ts.URL, Workers: 2, RatePerSecond: 300, ProgressEvery: -1},
			Poll:     20 * time.Millisecond,
		})
		done <- err
	}()

	// Wait until it holds a lease, then interrupt it.
	table, err := Open(fleetDir, testParams(), nil)
	if err != nil {
		// The worker may not have created the table yet; retry briefly.
		deadline := time.Now().Add(10 * time.Second)
		for err != nil && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			table, err = Open(fleetDir, testParams(), nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	defer table.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, err := table.Status()
		if err != nil {
			t.Fatal(err)
		}
		if s.Leased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never acquired a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled worker returned %v, want context.Canceled", err)
	}
	s, err := table.Status()
	if err != nil {
		t.Fatal(err)
	}
	if s.Leased != 0 {
		t.Fatalf("%d leases still held after graceful cancel; Release did not run", s.Leased)
	}

	// A successor finishes the crawl — at full speed — and the merge must
	// still hit the solo bytes exactly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel2()
	if _, err := RunWorker(ctx2, Config{
		Dir:      fleetDir,
		WorkerID: "successor",
		Params:   testParams(),
		Crawl:    crawler.Config{BaseURL: ts.URL, Workers: 4, ProgressEvery: -1},
		Poll:     20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(fleetDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := saveCanonical(t, merged, filepath.Join(fleetDir, "merged.snap.jsonl"))
	if !bytes.Equal(got, want) {
		t.Fatalf("post-cancel merge diverges from solo (%d vs %d bytes)", len(got), len(want))
	}
}
