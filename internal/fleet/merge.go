// Deterministic merge: per-shard journals in, one snapshot out. Replay
// is the only source of truth — the merge never touches the network —
// and the output is byte-identical to a solo crawl of the same universe
// for any fleet size, any lease interleaving, and any kill/resume
// schedule, because every input journal already replays to a canonical
// per-shard state and the stitch below is order-insensitive by
// construction (disjoint user ranges, value-identical catalog records,
// member-set union for groups).

package fleet

import (
	"errors"
	"fmt"
	"os"

	"steamstudy/internal/crawler"
	"steamstudy/internal/dataset"
)

// ErrIncomplete rejects merging a fleet whose crawl has not finished.
var ErrIncomplete = errors.New("fleet: crawl incomplete")

// Merge replays every shard journal of the fleet at dir, stitches them
// into one snapshot in global SteamID order, and stamps collectedAt. It
// refuses to run before the lease table says the work space is exhausted
// and every shard is done — merging a half-crawled fleet would produce a
// plausible-looking snapshot missing whole ID ranges.
//
// Boundary dedup is last-wins in ascending shard order, exactly like
// single-journal replay: user ranges are disjoint so users never
// conflict; catalog and achievement records are value-identical across
// shards so last-wins is value-preserving; group records union their
// member sets, since each shard only sees the members it crawled.
func Merge(dir string, collectedAt int64) (*dataset.Snapshot, error) {
	table, err := Load(dir, nil)
	if err != nil {
		return nil, err
	}
	defer table.Close()
	status, err := table.Status()
	if err != nil {
		return nil, err
	}
	if !status.Exhausted {
		return nil, fmt.Errorf("%w: %d shards done, %d leased, %d open, frontier closed=%v",
			ErrIncomplete, status.Done, status.Leased, status.Open, status.FrontierClosed)
	}

	parts := make([]*dataset.Snapshot, 0, len(status.Shards))
	for _, sh := range status.Shards {
		if _, err := os.Stat(sh.Dir); os.IsNotExist(err) {
			// A done shard always journaled at least its phase markers; a
			// missing directory means the fleet dir was tampered with.
			return nil, fmt.Errorf("fleet: shard %d is marked done but its journal directory %s is missing", sh.Shard, sh.Dir)
		}
		part, err := crawler.RebuildFromJournal(sh.Dir)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", sh.Shard, err)
		}
		parts = append(parts, part)
	}
	merged, err := dataset.MergeAt(collectedAt, parts)
	if err != nil {
		return nil, fmt.Errorf("fleet: merge: %w", err)
	}
	return merged, nil
}
