//go:build crash

// Fleet crash-chaos harness (build with -tags crash; `make fleetchaos`).
// Child worker processes crawl a shared fleet directory and get SIGKILLed
// — no handlers, no flushes — at randomized byte offsets of the fleet
// dir's growth. Replacements join under fresh worker IDs, reclaim the
// corpses' expired leases, and resume their half-written shard journals.
// The acceptance bar is the tentpole claim itself: after any kill/resume
// schedule the merged snapshot must be byte-identical to an undisturbed
// solo crawl, and fsck must prove the artifact clean.

package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"steamstudy/internal/crawler"
	"steamstudy/internal/dataset"
)

// chaosSeed lets CI shake different kill schedules out of the harness:
// CRASH_SEED=n make fleetchaos. The default is fixed for reproducibility.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CRASH_SEED"); s != "" {
		var n int64
		if _, err := fmt.Sscan(s, &n); err != nil {
			t.Fatalf("CRASH_SEED: %v", err)
		}
		return n
	}
	return 1
}

// fleetDirBytes sums every file under the fleet directory — lease table
// plus all shard journals — the growth signal the SIGKILL parent watches.
func fleetDirBytes(dir string) int64 {
	var n int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // files vanish mid-walk under compaction; keep counting
		}
		if info, err := d.Info(); err == nil && !d.IsDir() {
			n += info.Size()
		}
		return nil
	})
	return n
}

// TestFleetChild is not a test: it is the subprocess body for
// TestFleetChaosSIGKILL, gated behind an env var so a normal `go test
// -tags crash` run skips it. It joins the fleet at FLEET_DIR as worker
// FLEET_WORKER and crawls — throttled, so the parent's kills land
// mid-shard — until the lease table reports the ID space exhausted.
func TestFleetChild(t *testing.T) {
	if os.Getenv("STEAMCRAWL_FLEET_CHILD") != "1" {
		t.Skip("subprocess body; spawned by TestFleetChaosSIGKILL")
	}
	var rate float64
	fmt.Sscan(os.Getenv("FLEET_RATE"), &rate)
	_, err := RunWorker(context.Background(), Config{
		Dir:      os.Getenv("FLEET_DIR"),
		WorkerID: os.Getenv("FLEET_WORKER"),
		Params:   Params{RangeSize: 200, LeaseTTL: 2 * time.Second, EmptyShardLimit: 3},
		Crawl: crawler.Config{
			BaseURL:       os.Getenv("FLEET_URL"),
			Workers:       2,
			RatePerSecond: rate,
			ProgressEvery: -1,
		},
		Poll: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fleet child: %v", err)
	}
}

// TestFleetChaosSIGKILL is the determinism proof under real process
// death: a fleet of two child workers crawls a shared directory; the
// parent SIGKILLs a random child each time the fleet dir grows past a
// randomized byte offset and enlists a replacement under a fresh worker
// ID. Once the survivors drain the ID space, the in-process merge must
// be byte-identical to an undisturbed solo crawl and fsck-clean.
func TestFleetChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos is slow")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t)
	rng := rand.New(rand.NewSource(chaosSeed(t)))
	tmp := t.TempDir()
	fleetDir := filepath.Join(tmp, "fleet")
	want := soloBytes(t, ts.URL, tmp)

	type child struct {
		cmd  *exec.Cmd
		done chan error
	}
	nextID := 0
	spawn := func() *child {
		nextID++
		cmd := exec.Command(exe, "-test.run", "^TestFleetChild$", "-test.v")
		cmd.Env = append(os.Environ(),
			"STEAMCRAWL_FLEET_CHILD=1",
			"FLEET_URL="+ts.URL,
			"FLEET_DIR="+fleetDir,
			fmt.Sprintf("FLEET_WORKER=chaos-%d", nextID),
			"FLEET_RATE=600",
		)
		c := &child{cmd: cmd, done: make(chan error, 1)}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { c.done <- cmd.Wait() }()
		return c
	}

	fleet := []*child{spawn(), spawn()}
	const kills = 3
	killed := 0
	deadline := time.After(4 * time.Minute)
	for killed < kills {
		target := fleetDirBytes(fleetDir) + int64(1+rng.Intn(15_000))
		fired := false
		for !fired {
			// Reap children that finished on their own; if the whole fleet
			// drained the ID space before the next bullet, the chaos window
			// is over.
			live := fleet[:0]
			for _, c := range fleet {
				select {
				case err := <-c.done:
					if err != nil {
						t.Fatalf("child exited with error before kill: %v", err)
					}
				default:
					live = append(live, c)
				}
			}
			fleet = live
			if len(fleet) == 0 {
				fired = true
				break
			}
			select {
			case <-deadline:
				for _, c := range fleet {
					c.cmd.Process.Kill()
				}
				t.Fatal("fleet chaos hung")
			case <-time.After(2 * time.Millisecond):
				if fleetDirBytes(fleetDir) >= target {
					victim := rng.Intn(len(fleet))
					fleet[victim].cmd.Process.Kill() // SIGKILL: no handlers, no flushes
					<-fleet[victim].done
					fleet[victim] = spawn() // replacement under a fresh worker ID
					killed++
					fired = true
				}
			}
		}
		if len(fleet) == 0 {
			break
		}
	}
	if killed == 0 {
		t.Fatal("every child outran the kill offsets; harness misconfigured")
	}
	t.Logf("SIGKILLed %d workers mid-crawl across %d spawned children", killed, nextID)

	// Let the survivors (and replacements) drain the remaining shards.
	// Replacements must wait out the 2s lease TTL before reclaiming a
	// corpse's shard, so give them room.
	for _, c := range fleet {
		select {
		case err := <-c.done:
			if err != nil {
				t.Fatalf("surviving child failed: %v", err)
			}
		case <-time.After(3 * time.Minute):
			c.cmd.Process.Kill()
			t.Fatal("surviving child hung")
		}
	}

	merged, err := Merge(fleetDir, 0)
	if err != nil {
		t.Fatalf("merge after chaos: %v", err)
	}
	path := filepath.Join(tmp, "merged.snap.jsonl")
	got := saveCanonical(t, merged, path)
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos merge not byte-identical to undisturbed run (%d vs %d bytes)", len(got), len(want))
	}
	im := &dataset.IntegrityMetrics{}
	rep, err := dataset.FsckFile(path, im)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("chaos merge fails fsck:\n%s", rep)
	}
	if im.RecordsVerified.Load() == 0 {
		t.Fatal("fsck verified nothing; harness misconfigured")
	}
}
