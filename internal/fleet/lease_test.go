package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"steamstudy/internal/obs"
	"steamstudy/internal/steamid"
)

// fakeTable opens a table with a controllable clock.
func fakeTable(t *testing.T, dir string, p Params, reg *obs.Registry) (*Table, *time.Time) {
	t.Helper()
	table, err := Open(dir, p, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { table.Close() })
	now := time.Unix(1_450_000_000, 0)
	table.now = func() time.Time { return now }
	return table, &now
}

func TestLeaseSequentialIssue(t *testing.T) {
	table, _ := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Hour}, nil)
	for i := 0; i < 3; i++ {
		lease, err := table.Acquire("w1")
		if err != nil {
			t.Fatal(err)
		}
		if lease.Shard != i {
			t.Fatalf("lease %d got shard %d", i, lease.Shard)
		}
		wantStart := steamid.Base + uint64(i)*100
		if lease.Start != wantStart || lease.End != wantStart+100 {
			t.Fatalf("shard %d range [%d,%d), want [%d,%d)", i, lease.Start, lease.End, wantStart, wantStart+100)
		}
		if lease.Dir == "" {
			t.Fatal("lease has no shard directory")
		}
	}
}

func TestFrontierClosesAfterEmptyShards(t *testing.T) {
	table, _ := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Hour, EmptyShardLimit: 2}, nil)
	for i := 0; i < 3; i++ {
		if _, err := table.Acquire("w1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := table.Complete("w1", 0, 1, 42); err != nil {
		t.Fatal(err)
	}
	if err := table.Complete("w1", 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	// One empty shard at the frontier is not enough to close it.
	if lease, err := table.Acquire("w1"); err != nil {
		t.Fatal(err)
	} else if lease.Shard != 3 {
		t.Fatalf("expected frontier shard 3, got %d", lease.Shard)
	}
	if err := table.Complete("w1", 2, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := table.Complete("w1", 3, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Shards 2 and 3 (the trailing EmptyShardLimit=2) are done and empty.
	if _, err := table.Acquire("w1"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	s, err := table.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Exhausted || !s.FrontierClosed || s.Done != 4 {
		t.Fatalf("status %+v, want exhausted with 4 done", s)
	}
}

func TestLeaseExpiryReclaim(t *testing.T) {
	reg := obs.NewRegistry()
	table, now := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Minute}, reg)
	lease, err := table.Acquire("dead")
	if err != nil {
		t.Fatal(err)
	}
	*now = now.Add(2 * time.Minute) // dead worker misses every heartbeat
	got, err := table.Acquire("alive")
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != lease.Shard {
		t.Fatalf("reclaim leased shard %d, want the expired shard %d", got.Shard, lease.Shard)
	}
	// The corpse's handle must not be able to touch the shard anymore.
	if err := table.Heartbeat("dead", lease.Shard, lease.Epoch); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead heartbeat: want ErrLeaseLost, got %v", err)
	}
	if err := table.Complete("dead", lease.Shard, lease.Epoch, 7); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead complete: want ErrLeaseLost, got %v", err)
	}
	if err := table.Complete("alive", got.Shard, got.Epoch, 7); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("fleet_leases_expired").Load(); v != 1 {
		t.Fatalf("fleet_leases_expired = %d, want 1", v)
	}
	if v := reg.Counter("fleet_leases_reclaimed").Load(); v != 1 {
		t.Fatalf("fleet_leases_reclaimed = %d, want 1", v)
	}
	if v := reg.Counter("fleet_leases_held").Load(); v != 2 {
		t.Fatalf("fleet_leases_held = %d, want 2", v)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	table, now := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Minute}, nil)
	lease, err := table.Acquire("w1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		*now = now.Add(40 * time.Second) // past the original expiry by the 2nd step
		if err := table.Heartbeat("w1", lease.Shard, lease.Epoch); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	// A second worker must get fresh ground, not w1's still-live shard.
	got, err := table.Acquire("w2")
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard == lease.Shard {
		t.Fatal("heartbeated lease was stolen")
	}
}

func TestReleaseReturnsShardImmediately(t *testing.T) {
	table, _ := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Hour}, nil)
	lease, err := table.Acquire("w1")
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Release("w1"); err != nil {
		t.Fatal(err)
	}
	got, err := table.Acquire("w2")
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != lease.Shard {
		t.Fatalf("released shard %d was not re-issued first (got %d)", lease.Shard, got.Shard)
	}
}

func TestOpenParamsMismatch(t *testing.T) {
	dir := t.TempDir()
	table, err := Open(dir, Params{RangeSize: 100, LeaseTTL: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	table.Close()
	if _, err := Open(dir, Params{RangeSize: 200}, nil); err == nil {
		t.Fatal("range-size mismatch accepted")
	}
	if _, err := Open(dir, Params{LeaseTTL: time.Hour}, nil); err == nil {
		t.Fatal("TTL mismatch accepted")
	}
	// Zero params adopt the stored geometry.
	adopted, err := Open(dir, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adopted.TTL() != time.Minute {
		t.Fatalf("adopted TTL %v, want 1m", adopted.TTL())
	}
	adopted.Close()
}

func TestLoadRequiresExistingTable(t *testing.T) {
	if _, err := Load(t.TempDir(), nil); err == nil {
		t.Fatal("Load invented a lease table in an empty directory")
	}
}

// TestConcurrentAcquireNoDoubleIssue hammers one table from many handles
// (one per goroutine, as separate processes would) and asserts no shard
// is ever owned twice: the flock plus atomic rewrite serialize every
// read-modify-write.
func TestConcurrentAcquireNoDoubleIssue(t *testing.T) {
	dir := t.TempDir()
	const workers, perWorker = 8, 5
	var mu sync.Mutex
	owned := map[int]string{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w))
			table, err := Open(dir, Params{RangeSize: 100, LeaseTTL: time.Hour}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer table.Close()
			for i := 0; i < perWorker; i++ {
				lease, err := table.Acquire(id)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, clash := owned[lease.Shard]; clash {
					t.Errorf("shard %d issued to both %s and %s", lease.Shard, prev, id)
				}
				owned[lease.Shard] = id
				mu.Unlock()
				// Keep the frontier open so every acquire breaks new ground.
				if err := table.Complete(id, lease.Shard, lease.Epoch, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if len(owned) != workers*perWorker {
		t.Fatalf("%d distinct shards issued, want %d", len(owned), workers*perWorker)
	}
}
