package fleet

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"steamstudy/internal/obs"
)

func TestEpochBumpsOnEveryReissue(t *testing.T) {
	reg := obs.NewRegistry()
	table, now := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Minute}, reg)
	lease, err := table.Acquire("w1")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Epoch != 1 {
		t.Fatalf("first issue epoch %d, want 1", lease.Epoch)
	}

	// Expiry reclaim bumps the epoch on re-issue.
	*now = now.Add(2 * time.Minute)
	second, err := table.Acquire("w2")
	if err != nil {
		t.Fatal(err)
	}
	if second.Shard != lease.Shard || second.Epoch != 2 {
		t.Fatalf("reclaimed lease %+v, want shard %d at epoch 2", second, lease.Shard)
	}

	// Graceful release bumps too: every grant is a fresh issue.
	if err := table.Release("w2"); err != nil {
		t.Fatal(err)
	}
	third, err := table.Acquire("w3")
	if err != nil {
		t.Fatal(err)
	}
	if third.Shard != lease.Shard || third.Epoch != 3 {
		t.Fatalf("re-released lease %+v, want shard %d at epoch 3", third, lease.Shard)
	}
	if v := reg.Gauge("fleet_lease_epoch").Load(); v != 3 {
		t.Fatalf("fleet_lease_epoch = %v, want 3", v)
	}

	// Completion preserves the epoch history in the table.
	if err := table.Complete("w3", third.Shard, third.Epoch, 5); err != nil {
		t.Fatal(err)
	}
	s, err := table.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Shards) != 1 || s.Shards[0].Epoch != 3 || s.Shards[0].State != shardDone {
		t.Fatalf("status after complete: %+v, want done at epoch 3", s.Shards)
	}
}

// TestStaleEpochRejected isolates the epoch check from the worker-name
// check: the same worker re-acquires its own expired shard at a higher
// epoch, and operations quoting the old epoch must fail even though the
// worker matches.
func TestStaleEpochRejected(t *testing.T) {
	table, now := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Minute}, nil)
	old, err := table.Acquire("w1")
	if err != nil {
		t.Fatal(err)
	}
	*now = now.Add(2 * time.Minute)
	fresh, err := table.Acquire("w1")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Shard != old.Shard || fresh.Epoch != old.Epoch+1 {
		t.Fatalf("re-acquire got %+v, want shard %d at epoch %d", fresh, old.Shard, old.Epoch+1)
	}
	if err := table.Heartbeat("w1", old.Shard, old.Epoch); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale-epoch heartbeat: want ErrLeaseLost, got %v", err)
	}
	if err := table.Complete("w1", old.Shard, old.Epoch, 7); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale-epoch complete: want ErrLeaseLost, got %v", err)
	}
	if err := table.Heartbeat("w1", fresh.Shard, fresh.Epoch); err != nil {
		t.Fatalf("current-epoch heartbeat: %v", err)
	}
	if err := table.Complete("w1", fresh.Shard, fresh.Epoch, 7); err != nil {
		t.Fatalf("current-epoch complete: %v", err)
	}
}

// TestTableV1Migration: a pre-fencing table (version 1, no epochs) is
// adopted in place — shards sit at epoch 0, the next issue is epoch 1,
// and the file is rewritten at version 2 on the first read-modify-write.
func TestTableV1Migration(t *testing.T) {
	dir := t.TempDir()
	v1 := `{
  "version": 1,
  "start_id": 76561197960265728,
  "range_size": 100,
  "lease_ttl_nanos": 3600000000000,
  "empty_shard_limit": 3,
  "next_shard": 2,
  "shards": {
    "0": {"state": "done", "found": 4},
    "1": {"state": "open"}
  },
  "workers": {}
}`
	if err := os.WriteFile(filepath.Join(dir, tableName), []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	table, err := Open(dir, Params{}, nil)
	if err != nil {
		t.Fatalf("v1 table refused: %v", err)
	}
	defer table.Close()
	if table.TTL() != time.Hour {
		t.Fatalf("adopted TTL %v, want 1h", table.TTL())
	}
	lease, err := table.Acquire("w1")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Shard != 1 || lease.Epoch != 1 {
		t.Fatalf("first post-migration lease %+v, want open shard 1 at epoch 1", lease)
	}
	raw, err := os.ReadFile(filepath.Join(dir, tableName))
	if err != nil {
		t.Fatal(err)
	}
	var st tableState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != tableVersion {
		t.Fatalf("migrated table persisted at version %d, want %d", st.Version, tableVersion)
	}
	if st.shard(0).Epoch != 0 || st.shard(1).Epoch != 1 {
		t.Fatalf("post-migration epochs: shard0=%d shard1=%d, want 0 and 1",
			st.shard(0).Epoch, st.shard(1).Epoch)
	}
}

func TestTableNewerVersionRefused(t *testing.T) {
	dir := t.TempDir()
	doc := `{"version": 99, "shards": {}, "workers": {}}`
	if err := os.WriteFile(filepath.Join(dir, tableName), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Params{}, nil); err == nil {
		t.Fatal("version-99 table accepted")
	}
}

func TestParamsMismatchIsTyped(t *testing.T) {
	dir := t.TempDir()
	table, err := Open(dir, Params{RangeSize: 100, LeaseTTL: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	table.Close()
	for _, p := range []Params{
		{RangeSize: 200},
		{LeaseTTL: time.Hour},
		{StartID: 42},
		{EmptyShardLimit: 99},
		{ZeroStartID: true},
	} {
		if _, err := Open(dir, p, nil); !errors.Is(err, ErrParamsMismatch) {
			t.Fatalf("params %+v: want ErrParamsMismatch, got %v", p, err)
		}
	}
}

func TestZeroStartID(t *testing.T) {
	// The sentinel conflict is a config error everywhere.
	if _, err := (Params{ZeroStartID: true, StartID: 42}).withDefaults(); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("ZeroStartID+StartID: want ErrParamsMismatch, got %v", err)
	}
	dir := t.TempDir()
	table, err := Open(dir, Params{ZeroStartID: true, RangeSize: 100, LeaseTTL: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer table.Close()
	lease, err := table.Acquire("w1")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Start != 0 || lease.End != 100 {
		t.Fatalf("ZeroStartID lease [%d,%d), want [0,100)", lease.Start, lease.End)
	}
	// Re-attach with the same sentinel agrees with the stored zero.
	again, err := Open(dir, Params{ZeroStartID: true}, nil)
	if err != nil {
		t.Fatalf("ZeroStartID re-attach: %v", err)
	}
	again.Close()
}

// TestNegativeEmptyShardLimitNeverCloses: the explicit operator sentinel
// keeps the frontier open no matter how many empty shards come back.
func TestNegativeEmptyShardLimitNeverCloses(t *testing.T) {
	table, _ := fakeTable(t, t.TempDir(), Params{RangeSize: 100, LeaseTTL: time.Hour, EmptyShardLimit: -1}, nil)
	for i := 0; i < 10; i++ {
		lease, err := table.Acquire("w1")
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if err := table.Complete("w1", lease.Shard, lease.Epoch, 0); err != nil {
			t.Fatal(err)
		}
	}
	lease, err := table.Acquire("w1")
	if err != nil {
		t.Fatalf("frontier closed after 10 empty shards despite EmptyShardLimit=-1: %v", err)
	}
	if lease.Shard != 10 {
		t.Fatalf("got shard %d, want frontier shard 10", lease.Shard)
	}
}
