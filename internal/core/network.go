package core

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/climain"
	"steamstudy/internal/crawler"
	"steamstudy/internal/dataset"
	"steamstudy/internal/simworld"
)

// ServerOptions configure the Steam Web API simulator.
type ServerOptions struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// APIKeys lists accepted keys (empty disables auth).
	APIKeys []string
	// RatePerSecond / Burst bound each key's request rate (0 = unlimited).
	RatePerSecond float64
	Burst         int
	// FaultRate injects 500s on this fraction of requests.
	FaultRate float64
	// Faults composes per-endpoint fault injection and outage windows for
	// chaos testing (see apiserver.FaultProfile).
	Faults *apiserver.FaultProfile
}

// APIServer is a running Steam Web API simulator.
type APIServer struct {
	// BaseURL is the root the crawler should target.
	BaseURL string
	srv     *http.Server
	lis     net.Listener
}

// Serve starts the API simulator over the study's universe. Close it with
// Shutdown.
func (s *Study) Serve(opts ServerOptions) (*APIServer, error) {
	if s.universe == nil {
		return nil, fmt.Errorf("steamstudy: serving requires a generated universe")
	}
	return ServeUniverse(s.universe, opts)
}

// ServeUniverse starts the API simulator over any universe.
func ServeUniverse(u *simworld.Universe, opts ServerOptions) (*APIServer, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	handler := apiserver.New(u, apiserver.Config{
		APIKeys:       opts.APIKeys,
		RatePerSecond: opts.RatePerSecond,
		Burst:         opts.Burst,
		FaultRate:     opts.FaultRate,
		Faults:        opts.Faults,
	})
	lis, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("steamstudy: listening on %s: %w", opts.Addr, err)
	}
	// climain.NewHTTPServer: every listener in the repo carries
	// slow-client timeouts, including the embedded simulator.
	srv := climain.NewHTTPServer(handler)
	go srv.Serve(lis)
	return &APIServer{
		BaseURL: "http://" + lis.Addr().String(),
		srv:     srv,
		lis:     lis,
	}, nil
}

// Shutdown stops the server.
func (a *APIServer) Shutdown(ctx context.Context) error {
	return a.srv.Shutdown(ctx)
}

// CrawlOptions configure a crawl through the facade.
type CrawlOptions struct {
	BaseURL string
	APIKey  string
	// RatePerSecond is the crawler's self-imposed budget (§3.1: ~85 % of
	// the server allowance).
	RatePerSecond float64
	Workers       int
	MaxAccounts   int
	// CheckpointPath names a journal directory enabling resumable crawls.
	CheckpointPath string
	// Timeout bounds the whole crawl (0 = none).
	Timeout time.Duration
	// RequestTimeout bounds each HTTP attempt (0 = crawler default).
	RequestTimeout time.Duration
	// MaxBackoff clamps the retry backoff (0 = crawler default).
	MaxBackoff time.Duration
	// BreakerThreshold opens an endpoint's circuit breaker after this many
	// consecutive failures (0 = crawler default; negative disables).
	BreakerThreshold int
	// BreakerCooldown is the open-breaker wait before a half-open probe.
	BreakerCooldown time.Duration
	// DisableAdaptiveThrottle pins the request rate instead of letting the
	// AIMD controller move it under 429/503 pressure.
	DisableAdaptiveThrottle bool
	// Logf receives progress lines.
	Logf func(format string, args ...any)
}

// Crawl runs the paper's §3.1 methodology against a server and returns
// the assembled snapshot.
func Crawl(opts CrawlOptions) (*dataset.Snapshot, error) {
	c := crawler.New(crawler.Config{
		BaseURL:                 opts.BaseURL,
		APIKey:                  opts.APIKey,
		RatePerSecond:           opts.RatePerSecond,
		Workers:                 opts.Workers,
		MaxAccounts:             opts.MaxAccounts,
		CheckpointPath:          opts.CheckpointPath,
		RequestTimeout:          opts.RequestTimeout,
		MaxBackoff:              opts.MaxBackoff,
		BreakerThreshold:        opts.BreakerThreshold,
		BreakerCooldown:         opts.BreakerCooldown,
		DisableAdaptiveThrottle: opts.DisableAdaptiveThrottle,
		Logf:                    opts.Logf,
	})
	ctx := context.Background()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	return c.Run(ctx)
}

// SaveSnapshot persists a study's snapshot (format by extension: .gob,
// .gob.gz, .jsonl, .jsonl.gz). Options tune the codec (for example
// dataset.WithWorkers); the bytes written are identical for any of them.
func (s *Study) SaveSnapshot(path string, opts ...dataset.Option) error {
	return s.snap.Save(path, opts...)
}

// LoadSnapshot reads a snapshot saved by SaveSnapshot or the crawler
// tools and wraps it in a Study. Options tune the codec (for example
// dataset.WithWorkers, dataset.WithProgress).
func LoadSnapshot(path string, opts ...dataset.Option) (*Study, error) {
	snap, err := dataset.Load(path, opts...)
	if err != nil {
		return nil, err
	}
	return FromSnapshot(snap), nil
}
