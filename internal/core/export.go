package core

import (
	"fmt"
	"os"
	"path/filepath"

	"steamstudy/internal/analysis"
	"steamstudy/internal/report"
)

// ExportCSV writes every experiment's data series to dir as CSV files, one
// per table/figure, for plotting with external tools. The directory is
// created if missing. Generator-bound series (Fig 12) are skipped for
// snapshot-only studies.
func (s *Study) ExportCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("steamstudy: creating %s: %w", dir, err)
	}
	write := func(name string, headers []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := report.CSV(f, headers, rows); err != nil {
			f.Close()
			return fmt.Errorf("steamstudy: writing %s: %w", name, err)
		}
		return f.Close()
	}
	ff := func(v float64) string { return fmt.Sprintf("%g", v) }

	// Table 1.
	t1 := analysis.Table1Countries(s.snap, 10)
	var rows [][]string
	for _, r := range t1.Rows {
		rows = append(rows, []string{fmt.Sprint(r.Rank), r.Country, ff(r.Percent)})
	}
	rows = append(rows, []string{"", fmt.Sprintf("Other(%d)", t1.OtherCount), ff(t1.OtherPercent)})
	if err := write("table1_countries.csv", []string{"rank", "country", "percent"}, rows); err != nil {
		return err
	}

	// Table 2.
	rows = nil
	for _, r := range analysis.Table2GroupTypes(s.snap, 250) {
		rows = append(rows, []string{r.Type, fmt.Sprint(r.Count), ff(r.Percent)})
	}
	if err := write("table2_group_types.csv", []string{"type", "count", "percent"}, rows); err != nil {
		return err
	}

	// Table 3.
	rows = nil
	for _, r := range analysis.Table3Percentiles(s.vectors) {
		rows = append(rows, []string{r.Attribute, ff(r.P50), ff(r.P80), ff(r.P90), ff(r.P95), ff(r.P99)})
	}
	if err := write("table3_percentiles.csv",
		[]string{"attribute", "p50", "p80", "p90", "p95", "p99"}, rows); err != nil {
		return err
	}

	// Table 4.
	rows = nil
	inputs := analysis.StandardTable4Inputs(s.vectors, s.vectors2, s.opts.Years)
	for _, r := range analysis.Table4Classification(inputs, s.opts.Workers) {
		if r.Err != "" {
			rows = append(rows, []string{r.Distribution, "", "", "", "", "", "", "", "", "error"})
			continue
		}
		rows = append(rows, []string{
			r.Distribution,
			ff(r.Comparisons.PLvsExp.R), ff(r.Comparisons.PLvsExp.P),
			ff(r.Comparisons.PLvsLN.R), ff(r.Comparisons.PLvsLN.P),
			ff(r.Comparisons.TPLvsPL.R), ff(r.Comparisons.TPLvsPL.P),
			ff(r.Comparisons.TPLvsLN.R), ff(r.Comparisons.TPLvsLN.P),
			r.Class.String(),
		})
	}
	if err := write("table4_classification.csv", []string{
		"distribution", "pl_exp_R", "pl_exp_p", "pl_ln_R", "pl_ln_p",
		"tpl_pl_R", "tpl_pl_p", "tpl_ln_R", "tpl_ln_p", "class",
	}, rows); err != nil {
		return err
	}

	// Figure 1.
	rows = nil
	for _, p := range analysis.Figure1Evolution(s.vectors) {
		rows = append(rows, []string{
			fmt.Sprintf("%04d-%02d", p.Year, p.Month),
			fmt.Sprint(p.Users), fmt.Sprint(p.Friendships),
		})
	}
	if err := write("fig1_evolution.csv", []string{"month", "users", "friendships"}, rows); err != nil {
		return err
	}

	// Figure 2.
	rows = nil
	for _, series := range analysis.Figure2DegreeDistributions(s.vectors, s.opts.Years) {
		for k, v := range series.Hist {
			rows = append(rows, []string{series.Label, fmt.Sprint(k), fmt.Sprint(v)})
		}
	}
	if err := write("fig2_degrees.csv", []string{"series", "friends", "users"}, rows); err != nil {
		return err
	}

	// Figure 3.
	f3 := analysis.Figure3GroupGameDiversity(s.snap, 100)
	rows = nil
	for _, p := range f3.Histogram {
		rows = append(rows, []string{fmt.Sprint(p.DistinctGames), fmt.Sprint(p.Groups)})
	}
	if err := write("fig3_group_games.csv", []string{"distinct_games", "groups"}, rows); err != nil {
		return err
	}

	// Figure 4.
	f4 := analysis.Figure4Ownership(s.vectors)
	rows = nil
	for k, v := range f4.OwnedHist {
		rows = append(rows, []string{"owned", fmt.Sprint(k), fmt.Sprint(v)})
	}
	for k, v := range f4.PlayedHist {
		rows = append(rows, []string{"played", fmt.Sprint(k), fmt.Sprint(v)})
	}
	if err := write("fig4_ownership.csv", []string{"series", "games", "users"}, rows); err != nil {
		return err
	}

	// Figure 5.
	rows = nil
	for _, r := range analysis.Figure5GenreOwnership(s.snap) {
		rows = append(rows, []string{r.Genre, fmt.Sprint(r.Owned), fmt.Sprint(r.Unplayed), ff(r.CatalogShare)})
	}
	if err := write("fig5_genre_ownership.csv", []string{"genre", "owned", "unplayed", "catalog_share"}, rows); err != nil {
		return err
	}

	// Figure 6.
	f6 := analysis.Figure6PlaytimeCDF(s.vectors)
	rows = nil
	for _, p := range f6.TotalCDF {
		rows = append(rows, []string{"total", ff(p.X), ff(p.P)})
	}
	for _, p := range f6.TwoWeekCDF {
		rows = append(rows, []string{"two_week", ff(p.X), ff(p.P)})
	}
	if err := write("fig6_playtime_cdf.csv", []string{"series", "hours", "cdf"}, rows); err != nil {
		return err
	}

	// Figures 7 and 8 (log-binned densities).
	rows = nil
	for _, b := range analysis.Figure7NonZeroTwoWeek(s.vectors).Bins {
		rows = append(rows, []string{ff(b.Center), fmt.Sprint(b.Count), ff(b.Density)})
	}
	if err := write("fig7_two_week.csv", []string{"hours", "users", "density"}, rows); err != nil {
		return err
	}
	rows = nil
	for _, b := range analysis.Figure8MarketValue(s.vectors).Bins {
		rows = append(rows, []string{ff(b.Center), fmt.Sprint(b.Count), ff(b.Density)})
	}
	if err := write("fig8_market_value.csv", []string{"dollars", "users", "density"}, rows); err != nil {
		return err
	}

	// Figure 9.
	rows = nil
	for _, r := range analysis.Figure9GenreExpenditure(s.snap) {
		rows = append(rows, []string{r.Genre, ff(r.PlaytimeHours), ff(r.PlaytimeShare), ff(r.ValueUSD), ff(r.ValueShare)})
	}
	if err := write("fig9_genre_expenditure.csv",
		[]string{"genre", "playtime_hours", "playtime_share", "value_usd", "value_share"}, rows); err != nil {
		return err
	}

	// Figure 10.
	f10 := analysis.Figure10MultiplayerShare(s.snap)
	if err := write("fig10_multiplayer.csv",
		[]string{"catalog_share", "total_share", "two_week_share", "users_only_mp_two_week"},
		[][]string{{ff(f10.CatalogShare), ff(f10.TotalShare), ff(f10.TwoWeekShare), ff(f10.UsersOnlyMultiplayerTwoWeek)}}); err != nil {
		return err
	}

	// Figure 11 scatter + correlations.
	own, nbr := analysis.HomophilyScatter(s.vectors, 5000)
	rows = nil
	for i := range own {
		rows = append(rows, []string{ff(own[i]), ff(nbr[i])})
	}
	if err := write("fig11_value_scatter.csv", []string{"own_value", "friends_avg_value"}, rows); err != nil {
		return err
	}
	rows = nil
	for _, r := range analysis.Figure11Homophily(s.vectors) {
		rows = append(rows, []string{r.Attribute, ff(r.Rho), r.Strength})
	}
	for _, r := range analysis.Section7Correlations(s.vectors) {
		rows = append(rows, []string{r.Pair, ff(r.Rho), r.Strength})
	}
	if err := write("correlations.csv", []string{"pair", "rho", "strength"}, rows); err != nil {
		return err
	}

	// Figure 12 (generator-bound).
	if s.universe != nil {
		sample := s.universe.SampleWeekUsers(s.opts.WeekSampleFrac)
		res := analysis.Figure12WeekMatrix(sample, s.universe.WeekSeries)
		rows = nil
		for k := 0; k < res.Users; k++ {
			row := []string{fmt.Sprint(k)}
			for d := 0; d < 7; d++ {
				row = append(row, fmt.Sprint(res.Minutes[d][k]))
			}
			rows = append(rows, row)
		}
		if err := write("fig12_week_matrix.csv",
			[]string{"user_rank", "day1", "day2", "day3", "day4", "day5", "day6", "day7"}, rows); err != nil {
			return err
		}
	}
	return nil
}
