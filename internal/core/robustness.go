package core

import (
	"fmt"
	"io"
	"math"

	"steamstudy/internal/analysis"
	"steamstudy/internal/dataset"
	"steamstudy/internal/report"
	"steamstudy/internal/simworld"
	"steamstudy/internal/stats"
)

// SweepStat is one headline statistic measured across generation seeds.
type SweepStat struct {
	Name   string
	Values []float64
	Mean   float64
	StdDev float64
}

// RobustnessSweep regenerates the universe under several seeds and
// measures the headline statistics each time. The paper asked (§8)
// whether its findings were an artifact of *when* the data was collected
// and answered with a second snapshot; for a synthetic reproduction the
// analogous question is whether findings are an artifact of the *seed*.
// Tight spreads mean they are properties of the model, not of one draw.
func RobustnessSweep(opts Options, seeds []int64) ([]SweepStat, error) {
	opts = opts.withDefaults()
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	collect := map[string][]float64{}
	names := []string{
		"friends p50", "friends p90", "games p80",
		"zero two-week %", "top-20% playtime share %",
		"multiplayer total share %", "value homophily rho",
		"rho(games, friends)", "international %",
	}
	for _, seed := range seeds {
		cfg := simworld.DefaultConfig(opts.Users)
		cfg.CatalogSize = opts.CatalogSize
		u, err := simworld.Generate(cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("steamstudy: sweep seed %d: %w", seed, err)
		}
		v := analysis.Extract(dataset.FromUniverse(u))

		t3 := analysis.Table3Percentiles(v)
		f6 := analysis.Figure6PlaytimeCDF(v)
		f10 := analysis.Figure10MultiplayerShare(v.Snap)
		hom := analysis.Figure11Homophily(v)
		cor := analysis.Section7Correlations(v)
		loc := analysis.Section4Locality(v)

		add := func(name string, val float64) { collect[name] = append(collect[name], val) }
		add("friends p50", t3[0].P50)
		add("friends p90", t3[0].P90)
		add("games p80", t3[1].P80)
		add("zero two-week %", f6.ZeroTwoWeekFrac*100)
		add("top-20% playtime share %", f6.Top20TotalShare*100)
		add("multiplayer total share %", f10.TotalShare*100)
		add("value homophily rho", hom[0].Rho)
		add("rho(games, friends)", cor[0].Rho)
		add("international %", loc.InternationalFrac*100)
	}
	out := make([]SweepStat, 0, len(names))
	for _, name := range names {
		vals := collect[name]
		s := SweepStat{Name: name, Values: vals, Mean: stats.Mean(vals), StdDev: stats.StdDev(vals)}
		out = append(out, s)
	}
	return out, nil
}

// RenderSweep prints the sweep as a table.
func RenderSweep(w io.Writer, seeds []int64, sweep []SweepStat) error {
	fmt.Fprintf(w, "Seed-robustness sweep over %d seeds (per-statistic mean ± sd; tight spreads mean the findings are properties of the model, not of one draw)\n", len(seeds))
	rows := make([][]string, 0, len(sweep))
	for _, s := range sweep {
		spread := "—"
		if s.Mean != 0 {
			spread = fmt.Sprintf("%.1f%%", math.Abs(s.StdDev/s.Mean)*100)
		}
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%.3f", s.Mean),
			fmt.Sprintf("%.3f", s.StdDev),
			spread,
		})
	}
	return report.Table(w, []string{"Statistic", "Mean", "StdDev", "Rel spread"}, rows)
}
