package core

import (
	"io"

	"steamstudy/internal/analysis"
	"steamstudy/internal/report"
)

// StreamTable4 renders the Table 4 heavy-tail classification directly
// off a snapshot file or shard directory, never loading the snapshot:
// the inputs come from analysis.StreamTable4Inputs' section-reader
// passes, so the resident set is the positive-valued attribute vectors
// rather than the dataset. On the same snapshot the rendered table is
// identical to the in-memory T4 experiment. Years defaults to the
// standard study slices when empty; secondPath may be empty.
func StreamTable4(w io.Writer, path, secondPath string, years []int, workers int) error {
	if len(years) == 0 {
		years = Options{}.withDefaults().Years
	}
	inputs, err := analysis.StreamTable4Inputs(path, secondPath, years)
	if err != nil {
		return err
	}
	return report.Table4(w, analysis.Table4Classification(inputs, workers))
}
