package core

import (
	"bytes"
	"steamstudy/internal/obs"
	"strings"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Users != 100000 || o.Seed != 1 || o.CatalogSize != 6156 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.WeekSampleFrac != 0.005 || len(o.Years) != 5 {
		t.Fatalf("defaults: %+v", o)
	}
	// Explicit values survive.
	o = Options{Users: 5, Seed: 9, CatalogSize: 7}.withDefaults()
	if o.Users != 5 || o.Seed != 9 || o.CatalogSize != 7 {
		t.Fatalf("explicit values overridden: %+v", o)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Users: 5}); err == nil {
		t.Fatal("tiny population accepted")
	}
}

func TestRunAllOrderCoversRegistry(t *testing.T) {
	// Every registered experiment must appear in the RunAll order; a
	// registry addition without a RunAll slot would silently hide it.
	s, err := New(Options{Users: 1000, CatalogSize: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if !strings.Contains(buf.String(), e.ID+" — ") {
			t.Errorf("experiment %s missing from RunAll output", e.ID)
		}
	}
}

func TestRunAllByteIdenticalAcrossWorkers(t *testing.T) {
	// The determinism contract of the parallel analysis engine: for a
	// fixed seed, the full rendered report is byte-identical whether the
	// experiments run serially or on a pool of any size.
	render := func(workers int) string {
		s, err := New(Options{Users: 2000, CatalogSize: 200, Seed: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.RunAll(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != serial {
			t.Fatalf("Workers=%d output differs from serial run (%d vs %d bytes)",
				w, len(got), len(serial))
		}
	}
}

func TestSetWorkers(t *testing.T) {
	s := &Study{opts: Options{}.withDefaults()}
	s.SetWorkers(3)
	if s.opts.Workers != 3 {
		t.Fatalf("SetWorkers not applied: %d", s.opts.Workers)
	}
}

func TestExperimentLookup(t *testing.T) {
	if lookup("T3") == nil {
		t.Fatal("T3 not found")
	}
	if lookup("nope") != nil {
		t.Fatal("bogus experiment found")
	}
}

func TestRobustnessSweep(t *testing.T) {
	sweep, err := RobustnessSweep(Options{Users: 1500, CatalogSize: 150}, []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 9 {
		t.Fatalf("sweep has %d stats", len(sweep))
	}
	for _, s := range sweep {
		if len(s.Values) != 2 {
			t.Fatalf("stat %q has %d values", s.Name, len(s.Values))
		}
		if s.StdDev < 0 {
			t.Fatalf("stat %q negative sd", s.Name)
		}
	}
	var buf bytes.Buffer
	if err := RenderSweep(&buf, []int64{1, 2}, sweep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "friends p50") {
		t.Fatal("render missing statistic rows")
	}
}

func TestRunAllByteIdenticalWithObserver(t *testing.T) {
	// The observability acceptance criterion: attaching a registry records
	// per-experiment render spans without perturbing the report by a
	// single byte.
	render := func(reg *obs.Registry) string {
		s, err := New(Options{Users: 1000, CatalogSize: 150, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		s.SetObserver(reg)
		var buf bytes.Buffer
		if err := s.RunAll(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := render(nil)
	reg := obs.NewRegistry()
	if got := render(reg); got != plain {
		t.Fatalf("observed run output differs from plain run (%d vs %d bytes)",
			len(got), len(plain))
	}
	// Every experiment in the RunAll order left a completed span.
	spans := reg.Snapshot().Spans
	for _, e := range Experiments() {
		sp, ok := spans["experiment_render:"+e.ID]
		if !ok {
			t.Errorf("no render span for experiment %s", e.ID)
			continue
		}
		if sp.State != obs.SpanDone {
			t.Errorf("experiment %s span state %q, want done", e.ID, sp.State)
		}
	}
}
