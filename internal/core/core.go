// Package core orchestrates the "Condensing Steam" (IMC 2016)
// reproduction end to end — it is the paper's primary contribution as a
// library: generate (or load) a snapshot, run any of the paper's
// experiments, render the results. The root steamstudy package re-exports
// this API:
//
//	universe generation  — a synthetic Steam population calibrated to the
//	                       paper's published statistics (internal/simworld)
//	serving and crawling — a Steam Web API simulator plus the paper's §3.1
//	                       crawl methodology (internal/apiserver, crawler)
//	analysis             — every table and figure of the evaluation
//	                       (internal/analysis, heavytail, stats, graph)
//	reporting            — text/CSV rendering (internal/report)
//
// Typical use (through the root package):
//
//	study, err := steamstudy.New(steamstudy.Options{Users: 100000, Seed: 1})
//	...
//	err = study.Run(os.Stdout, "T3")   // print Table 3
//	err = study.RunAll(os.Stdout)      // print the whole paper
package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"steamstudy/internal/analysis"
	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
	"steamstudy/internal/par"
	"steamstudy/internal/report"
	"steamstudy/internal/simworld"
)

// Options configure a study.
type Options struct {
	// Users is the synthetic population size. The paper measured 108.7 M
	// accounts; all reproduced statistics are scale-free (percentiles,
	// shares, correlation coefficients), so smaller populations reproduce
	// the same shapes. Default 100,000.
	Users int
	// Seed makes the whole study deterministic. Default 1.
	Seed int64
	// CatalogSize is the number of storefront products (paper: 6,156).
	CatalogSize int
	// WeekSampleFrac is the Fig 12 sample fraction (paper: 0.5 %).
	WeekSampleFrac float64
	// Years are the friendship-evolution slices for Table 4 and Fig 2.
	Years []int
	// SkipSecondSnapshot disables the §8 second-snapshot experiments.
	SkipSecondSnapshot bool
	// Workers bounds both the generation and the analysis worker pools:
	// universe generation chunks each stage's index space onto the pool
	// (see simworld.Config.Workers), RunAll renders independent
	// experiments concurrently, and the heavy statistical loops (the
	// Table 4 classifications, the xmin scans beneath them) fan out on
	// the same knob. 0 (the default) means one worker per CPU; 1 forces
	// the fully serial path. Output is byte-identical for every value —
	// experiments render into per-slot buffers merged in the paper's
	// order, and no random stream is ever shared across goroutines (see
	// internal/par).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Users == 0 {
		o.Users = 100000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CatalogSize == 0 {
		o.CatalogSize = 6156
	}
	if o.WeekSampleFrac == 0 {
		o.WeekSampleFrac = 0.005
	}
	if len(o.Years) == 0 {
		o.Years = []int{2009, 2010, 2011, 2012, 2013}
	}
	return o
}

// Study holds a generated universe with its extracted snapshot(s), ready
// to run experiments.
type Study struct {
	opts     Options
	universe *simworld.Universe
	second   *simworld.Universe
	snap     *dataset.Snapshot
	vectors  *analysis.Vectors
	vectors2 *analysis.Vectors
	obs      *obs.Registry
}

// New generates the universe(s) and prepares the attribute vectors.
func New(opts Options) (*Study, error) {
	opts = opts.withDefaults()
	cfg := simworld.DefaultConfig(opts.Users)
	cfg.CatalogSize = opts.CatalogSize
	cfg.Workers = opts.Workers
	u, err := simworld.Generate(cfg, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("steamstudy: generating universe: %w", err)
	}
	s := &Study{opts: opts, universe: u}
	s.snap = dataset.FromUniverse(u)
	s.vectors = analysis.Extract(s.snap)
	if !opts.SkipSecondSnapshot {
		s.second = simworld.Evolve(u)
		s.vectors2 = analysis.Extract(dataset.FromUniverse(s.second))
	}
	return s, nil
}

// FromSnapshot builds a study over an existing snapshot (for example, one
// produced by the crawler or loaded from disk). Experiments requiring the
// generator (Fig 12's week series, the §8 second snapshot) are skipped.
func FromSnapshot(snap *dataset.Snapshot) *Study {
	return &Study{
		opts:    Options{}.withDefaults(),
		snap:    snap,
		vectors: analysis.Extract(snap),
	}
}

// Snapshot returns the study's first snapshot.
func (s *Study) Snapshot() *dataset.Snapshot { return s.snap }

// Vectors returns the per-user attribute vectors extracted from the
// study's snapshot. They are built once at construction and never
// mutated afterwards, so concurrent readers (the query service renders
// experiments from many HTTP handlers at once) need no locking.
func (s *Study) Vectors() *analysis.Vectors { return s.vectors }

// HasGenerator reports whether the study owns a generated universe —
// the prerequisite for NeedsGenerator experiments. Studies built by
// FromSnapshot/LoadSnapshot over crawled data return false.
func (s *Study) HasGenerator() bool { return s.universe != nil }

// HasSecondSnapshot reports whether the §8 second-snapshot vectors are
// available (generated and not disabled by SkipSecondSnapshot).
func (s *Study) HasSecondSnapshot() bool { return s.vectors2 != nil }

// CanRun reports whether Run(w, id) would execute the experiment rather
// than fail its availability guard. Unknown IDs return false. It lets a
// caller (the query service's experiment index, a CLI listing) separate
// "available here" from "exists in the registry" without rendering.
func (s *Study) CanRun(id string) bool {
	e := lookup(id)
	if e == nil {
		return false
	}
	if e.NeedsGenerator && (s.universe == nil || (id == "E8" && s.vectors2 == nil)) {
		return false
	}
	return true
}

// SetWorkers adjusts the analysis worker-pool bound after construction —
// the knob for studies built over loaded or crawled snapshots, which
// never pass through New's Options. 0 means one worker per CPU, 1 forces
// the serial path. It must not be called concurrently with RunAll/Run.
func (s *Study) SetWorkers(n int) { s.opts.Workers = n }

// SetObserver attaches a metrics registry: Run and RunAll then record a
// per-experiment render span (experiment_render:<ID>) into it, so a
// steamstudy admin listener shows which experiments are rendering, done,
// and how long each took. Observation never touches the rendered output —
// RunAll stays byte-identical with or without a registry. Must not be
// called concurrently with RunAll/Run.
func (s *Study) SetObserver(r *obs.Registry) { s.obs = r }

// Headline carries the study's aggregate counts (§1's bullet numbers,
// scaled), in plain types.
type Headline struct {
	Users           int
	Games           int
	Groups          int
	Friendships     int
	Memberships     int
	OwnedGames      int64
	PlaytimeYears   float64
	MarketValueUSD  float64
	SecondSnapshots bool
}

// Headline computes the aggregate counts.
func (s *Study) Headline() Headline {
	t := s.snap.Totals()
	return Headline{
		Users:           t.Users,
		Games:           t.Games,
		Groups:          t.Groups,
		Friendships:     t.Friendships,
		Memberships:     t.Memberships,
		OwnedGames:      t.OwnedGames,
		PlaytimeYears:   t.PlaytimeYrs,
		MarketValueUSD:  t.ValueUSD,
		SecondSnapshots: s.vectors2 != nil,
	}
}

// Experiment describes one runnable reproduction target.
type Experiment struct {
	ID    string
	Title string
	// Run renders the experiment to w.
	Run func(s *Study, w io.Writer) error
	// NeedsGenerator marks experiments unavailable on crawled snapshots.
	NeedsGenerator bool
}

// experiments is the registry, keyed by the DESIGN.md experiment index.
var experiments = []Experiment{
	{ID: "T1", Title: "Table 1: reported-country breakdown", Run: func(s *Study, w io.Writer) error {
		return report.Table1(w, analysis.Table1Countries(s.snap, 10))
	}},
	{ID: "T2", Title: "Table 2: types of the 250 largest groups", Run: func(s *Study, w io.Writer) error {
		return report.Table2(w, analysis.Table2GroupTypes(s.snap, 250))
	}},
	{ID: "T3", Title: "Table 3: attribute percentiles", Run: func(s *Study, w io.Writer) error {
		return report.Table3(w, analysis.Table3Percentiles(s.vectors))
	}},
	{ID: "T4", Title: "Table 4: heavy-tail classification", Run: func(s *Study, w io.Writer) error {
		inputs := analysis.StandardTable4Inputs(s.vectors, s.vectors2, s.opts.Years)
		return report.Table4(w, analysis.Table4Classification(inputs, s.opts.Workers))
	}},
	{ID: "F1", Title: "Figure 1: friendship graph evolution", Run: func(s *Study, w io.Writer) error {
		return report.Figure1Evolution(w, analysis.Figure1Evolution(s.vectors))
	}},
	{ID: "F2", Title: "Figure 2: friend-count distributions", Run: func(s *Study, w io.Writer) error {
		series := analysis.Figure2DegreeDistributions(s.vectors, s.opts.Years)
		return report.Figure2(w, series, analysis.Figure2CapDips(s.vectors))
	}},
	{ID: "F3", Title: "Figure 3: distinct games played by group members", Run: func(s *Study, w io.Writer) error {
		return report.Figure3(w, analysis.Figure3GroupGameDiversity(s.snap, 100))
	}},
	{ID: "F4", Title: "Figure 4: game ownership distribution", Run: func(s *Study, w io.Writer) error {
		return report.Figure4(w, analysis.Figure4Ownership(s.vectors))
	}},
	{ID: "F5", Title: "Figure 5: ownership by genre", Run: func(s *Study, w io.Writer) error {
		return report.Figure5(w, analysis.Figure5GenreOwnership(s.snap))
	}},
	{ID: "F6", Title: "Figure 6: playtime CDFs", Run: func(s *Study, w io.Writer) error {
		return report.Figure6(w, analysis.Figure6PlaytimeCDF(s.vectors))
	}},
	{ID: "F7", Title: "Figure 7: non-zero two-week playtime", Run: func(s *Study, w io.Writer) error {
		return report.Figure7(w, analysis.Figure7NonZeroTwoWeek(s.vectors))
	}},
	{ID: "F8", Title: "Figure 8: account market value", Run: func(s *Study, w io.Writer) error {
		return report.Figure8(w, analysis.Figure8MarketValue(s.vectors))
	}},
	{ID: "F9", Title: "Figure 9: playtime and value by genre", Run: func(s *Study, w io.Writer) error {
		return report.Figure9(w, analysis.Figure9GenreExpenditure(s.snap))
	}},
	{ID: "F10", Title: "Figure 10: multiplayer playtime share", Run: func(s *Study, w io.Writer) error {
		return report.Figure10(w, analysis.Figure10MultiplayerShare(s.snap))
	}},
	{ID: "F11", Title: "Figure 11 / §7: correlations and homophily", Run: func(s *Study, w io.Writer) error {
		if err := renderSection7(s, w); err != nil {
			return err
		}
		own, nbr := analysis.HomophilyScatter(s.vectors, 900)
		return report.Figure11(w, analysis.Figure11Homophily(s.vectors), own, nbr)
	}},
	{ID: "F12", Title: "Figure 12: a week of daily playtime", NeedsGenerator: true, Run: func(s *Study, w io.Writer) error {
		sample := s.universe.SampleWeekUsers(s.opts.WeekSampleFrac)
		res := analysis.Figure12WeekMatrix(sample, s.universe.WeekSeries)
		return report.Figure12(w, res)
	}},
	{ID: "E4", Title: "§4.1: friendship locality", Run: func(s *Study, w io.Writer) error {
		loc := analysis.Section4Locality(s.vectors)
		_, err := fmt.Fprintf(w,
			"§4.1 — locality: %.2f%% of reported-country friendships are international (paper: 30.34%%); %.2f%% of reported-city friendships span cities (paper: 79.84%%)\n",
			loc.InternationalFrac*100, loc.CrossCityFrac*100)
		return err
	}},
	{ID: "E8", Title: "§8: second-snapshot evolution", NeedsGenerator: true, Run: func(s *Study, w io.Writer) error {
		cmp := analysis.Section8Evolution(s.vectors, s.vectors2)
		_, err := fmt.Fprintf(w, "§8 — evolution over ~1 year:\n"+
			"  top library:  %d -> %d games (x%.2f; paper: 2,148 -> 3,919, x1.82)\n"+
			"  80th pct:     %.0f -> %.0f games (x%.2f; paper: 10 -> 15, x1.50)\n"+
			"  top value:    $%.0f -> $%.0f (x%.2f; paper: $24,315 -> $46,634, x1.92)\n"+
			"  80th pct:     $%.2f -> $%.2f (x%.2f; paper: $150.88 -> $224.93, x1.49)\n",
			cmp.MaxGamesFirst, cmp.MaxGamesSecond, cmp.TailGamesGrowth,
			cmp.P80GamesFirst, cmp.P80GamesSecond, cmp.P80GamesGrowth,
			cmp.MaxValueFirst, cmp.MaxValueSecond, cmp.TailValueGrowth,
			cmp.P80ValueFirst, cmp.P80ValueSecond, cmp.P80ValueGrowth)
		return err
	}},
	{ID: "E9", Title: "§9: achievements", Run: func(s *Study, w io.Writer) error {
		return renderSection9(s, w)
	}},
	{ID: "E3", Title: "§3.2: anomalous-account audit", Run: func(s *Study, w io.Writer) error {
		audit := analysis.Section3Anomalies(s.vectors, 5)
		fmt.Fprintf(w, "§3.2 — accounts flagged for manual validation (%d total):\n", audit.Total())
		fmt.Fprintf(w, "  big libraries never played: %d (paper found 29 with >=500 games)\n",
			len(audit.BigLibraryNeverPlayed))
		fmt.Fprintf(w, "  near-max two-week idlers:  %d (paper: 0.01%% of users)\n",
			len(audit.NearMaxTwoWeek))
		fmt.Fprintf(w, "  pinned at a friend cap:    %d\n", len(audit.CapPinnedFriends))
		fmt.Fprintf(w, "  largest collectors (paper's top owner had played 34.5%% of a 90.3%%-complete library):\n")
		for _, a := range audit.TopCollectors {
			fmt.Fprintf(w, "    %d: %s\n", a.SteamID, a.Detail)
		}
		return nil
	}},
	{ID: "E2", Title: "§2.2: small-world structure and crawl-sampling bias", Run: func(s *Study, w io.Writer) error {
		sw := s.vectors.G.SmallWorld(1, 2000, 16)
		fmt.Fprintf(w, "§2.2 — Becker corroboration: small-world friendship graph\n"+
			"  clustering %.4f vs random %.6f (%.0fx); avg path %.2f vs random %.2f; small-world: %v\n"+
			"  giant component holds %.1f%% of connected users (the part prior crawls could reach)\n",
			sw.Clustering, sw.RandomClustering, sw.Clustering/maxf(sw.RandomClustering, 1e-12),
			sw.AvgPathLength, sw.RandomPathLength, sw.IsSmallWorld(),
			sw.LargestComponentShare*100)
		snow := analysis.SnowballSample(s.snap, 10, 0)
		bias := analysis.SamplingBias(s.snap, snow)
		_, err := fmt.Fprintf(w, "§2.2 — sampling bias of a snowball crawl (the paper's argument for the exhaustive sweep):\n"+
			"  snowball reached %d of %d accounts (%.1f%% coverage)\n"+
			"  mean friends: %.2f exhaustive vs %.2f snowball; medians %.0f vs %.0f\n"+
			"  %.1f%% of accounts have no friends and are invisible to any snowball crawl\n",
			bias.SnowballUsers, bias.ExhaustiveUsers, bias.Coverage*100,
			bias.ExhaustiveMeanFriends, bias.SnowballMeanFriends,
			bias.ExhaustiveMedianFriends, bias.SnowballMedianFriends,
			bias.ZeroFriendFracExhaustive*100)
		return err
	}},
	{ID: "E9F", Title: "§9 future work: per-player achievement hunters", NeedsGenerator: true, Run: func(s *Study, w io.Writer) error {
		all, hunters := s.universe.PlayerCompletionRates(0.05)
		res := analysis.HunterSeparationFromRates(all, hunters)
		_, err := fmt.Fprintf(w, "§9 future work — per-player completion (the measurement the paper lacked):\n"+
			"  %d (player, game) observations: median %.0f%%, mean %.0f%% (mean > median: hunters skew the average, as §9 hypothesized)\n"+
			"  near-complete (>=90%%) observations: %.2f%% overall vs %.2f%% among flagged hunters (hunter mean %.0f%%)\n",
			res.Pairs, res.MedianPct, res.MeanPct,
			res.NearCompleteFrac*100, res.HunterNearCompleteFrac*100, res.HunterMeanPct)
		return err
	}},
	{ID: "E10", Title: "§10.2: game-addiction cutoffs", Run: func(s *Study, w io.Writer) error {
		res := analysis.Section10Addiction(s.vectors)
		_, err := fmt.Fprintf(w, "§10.2 — where would an addiction cutoff sit?\n"+
			"  top 1%% of users average %.1f h/day over the fortnight (paper: >5 h/day)\n"+
			"  top 1%% of owners hold %.0f games (paper: hundreds)\n"+
			"  top 1%% of owners' libraries are worth $%.0f (paper: thousands of dollars)\n"+
			"  users averaging >5 h/day: %d (%.2f%%; at Steam scale, the paper's \"over a million gamers\")\n"+
			"  1%% of this population: %d accounts\n",
			res.Top1PctDailyHours, res.Top1PctGames, res.Top1PctValueUSD,
			res.Over5HoursDaily, res.Over5HoursDailyFrac*100, res.PopulationAtOnePct)
		return err
	}},
}

func renderSection7(s *Study, w io.Writer) error {
	fmt.Fprintln(w, "§7 — pairwise correlations over game owners"+
		" (paper: .34, .28, .21, .09, .17)")
	rows := analysis.Section7Correlations(s.vectors)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Pair, fmt.Sprintf("%.3f", r.Rho), r.Strength})
	}
	return report.Table(w, []string{"Pair", "rho", "Strength"}, out)
}

func renderSection9(s *Study, w io.Writer) error {
	res := analysis.Section9Achievements(s.snap)
	fmt.Fprintf(w, "§9 — achievements:\n"+
		"  offered: mode %.0f, median %.0f, mean %.1f, max %d (paper: 12 / 24 / 33.1 / 1629)\n"+
		"  playtime correlation: all %.2f, 1-90 %.2f, >90 %.2f (paper: 0.16 / 0.53 / -0.02)\n"+
		"  completion single-player: mode %.0f%%, median %.0f%%, mean %.0f%% (paper: 5 / 11 / 15)\n"+
		"  completion multiplayer:   mode %.0f%%, median %.0f%%, mean %.0f%% (paper: 5 / 12 / 14)\n",
		res.OfferedMode, res.OfferedMedian, res.OfferedMean, res.OfferedMax,
		res.RhoAll, res.Rho1to90, res.RhoOver90,
		res.SinglePlayer.ModePct, res.SinglePlayer.MedianPct, res.SinglePlayer.MeanPct,
		res.Multiplayer.ModePct, res.Multiplayer.MedianPct, res.Multiplayer.MeanPct)
	out := make([][]string, 0, len(res.ByGenre))
	for _, g := range res.ByGenre {
		out = append(out, []string{
			g.Genre, fmt.Sprintf("%.1f%%", g.AvgPct),
			fmt.Sprintf("%.1f", g.AvgOffered), fmt.Sprint(g.Games),
		})
	}
	fmt.Fprintln(w, "  completion by genre (paper: Adventure 19% highest, Strategy 11% low):")
	return report.Table(w, []string{"Genre", "Avg completion", "Avg offered", "Games"}, out)
}

// Experiments lists the registry in ID order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), experiments...)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Run executes one experiment by ID.
func (s *Study) Run(w io.Writer, id string) error {
	for _, e := range experiments {
		if e.ID != id {
			continue
		}
		if e.NeedsGenerator && (s.universe == nil || (id == "E8" && s.vectors2 == nil)) {
			return fmt.Errorf("steamstudy: experiment %s needs a generated universe", id)
		}
		sp := s.obs.Span("experiment_render:" + id)
		sp.Start()
		defer sp.End()
		return e.Run(s, w)
	}
	return fmt.Errorf("steamstudy: unknown experiment %q", id)
}

// RunAll executes every available experiment in the paper's order. The
// experiments are pure read-only functions of the study, so they render
// concurrently on the worker pool (Options.Workers), each into its own
// buffer; the buffers are then written in the paper's order, so the
// output is byte-identical to a serial run for any worker count.
func (s *Study) RunAll(w io.Writer) error {
	order := []string{
		"T1", "E3", "E2", "F1", "F2", "E4", "T2", "F3", "F4", "F5", "F6", "F7",
		"F8", "F9", "F10", "F11", "E8", "F12", "E9", "E9F", "T3", "E10", "T4",
	}
	exps := make([]*Experiment, len(order))
	for i, id := range order {
		if exps[i] = lookup(id); exps[i] == nil {
			return fmt.Errorf("steamstudy: registry inconsistency: %q", id)
		}
	}
	type slot struct {
		buf bytes.Buffer
		err error
	}
	slots := make([]slot, len(order))
	par.For(s.opts.Workers, len(order), func(i int) {
		e, sl := exps[i], &slots[i]
		if e.NeedsGenerator && s.universe == nil {
			fmt.Fprintf(&sl.buf, "\n== %s — %s: skipped (needs generated universe)\n", e.ID, e.Title)
			return
		}
		if e.ID == "E8" && s.vectors2 == nil {
			fmt.Fprintf(&sl.buf, "\n== %s — %s: skipped (second snapshot disabled)\n", e.ID, e.Title)
			return
		}
		fmt.Fprintf(&sl.buf, "\n== %s — %s\n\n", e.ID, e.Title)
		sp := s.obs.Span("experiment_render:" + e.ID)
		sp.Start()
		sl.err = e.Run(s, &sl.buf)
		sp.End()
	})
	for i := range slots {
		if _, err := w.Write(slots[i].buf.Bytes()); err != nil {
			return err
		}
		if slots[i].err != nil {
			return fmt.Errorf("steamstudy: experiment %s: %w", order[i], slots[i].err)
		}
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func lookup(id string) *Experiment {
	for i := range experiments {
		if experiments[i].ID == id {
			return &experiments[i]
		}
	}
	return nil
}
