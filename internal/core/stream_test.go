package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"steamstudy/internal/dataset"
	"steamstudy/internal/simworld"
)

// The streaming Table 4 must render byte-identically to the in-memory
// T4 experiment over the same snapshot, from both the single-file and
// the sharded layouts — the acceptance contract of the out-of-core
// path.
func TestStreamTable4ByteIdenticalToInMemory(t *testing.T) {
	cfg := simworld.DefaultConfig(2000)
	cfg.CatalogSize = 200
	snap := dataset.FromUniverse(simworld.MustGenerate(cfg, 6))

	var want bytes.Buffer
	if err := FromSnapshot(snap).Run(&want, "T4"); err != nil {
		t.Fatal(err)
	}
	// Run prints the experiment header before the table; StreamTable4
	// renders the table alone. Compare from the table start.
	idx := bytes.Index(want.Bytes(), []byte("Table 4 —"))
	if idx < 0 {
		t.Fatalf("no table in T4 output:\n%s", want.String())
	}
	wantTable := want.String()[idx:]

	dir := t.TempDir()
	single := filepath.Join(dir, "snap.jsonl")
	sharded := filepath.Join(dir, "snap.d")
	if err := snap.Save(single); err != nil {
		t.Fatal(err)
	}
	if err := snap.Save(sharded, dataset.WithShardRecords(512)); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{single, sharded} {
		for _, workers := range []int{1, 4} {
			var got bytes.Buffer
			if err := StreamTable4(&got, path, "", nil, workers); err != nil {
				t.Fatal(err)
			}
			gi := bytes.Index(got.Bytes(), []byte("Table 4 —"))
			if gi < 0 {
				t.Fatalf("%s: no table in streaming output:\n%s", path, got.String())
			}
			if got.String()[gi:] != wantTable {
				t.Fatalf("%s workers=%d: streaming Table 4 diverges from in-memory render\nstream:\n%s\nmemory:\n%s",
					path, workers, got.String()[gi:], wantTable)
			}
		}
	}
}
