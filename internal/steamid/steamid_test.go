package steamid

import (
	"testing"
	"testing/quick"
)

func TestPaperExampleID(t *testing.T) {
	// The paper's example: STEAM_0:1:849986 <-> 76561197961965701.
	id, err := ParseSteam2("STEAM_0:1:849986")
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "76561197961965701" {
		t.Fatalf("STEAM_0:1:849986 -> %s, want 76561197961965701", id)
	}
	if id.Steam2() != "STEAM_0:1:849986" {
		t.Fatalf("round trip gave %s", id.Steam2())
	}
}

func TestBaseID(t *testing.T) {
	id := FromAccountID(0)
	if uint64(id) != Base {
		t.Fatalf("account 0 -> %d, want %d", id, Base)
	}
	if id.AccountID() != 0 {
		t.Fatalf("AccountID of base = %d", id.AccountID())
	}
	if !id.Valid() {
		t.Fatal("base ID reported invalid")
	}
	if ID(Base - 1).Valid() {
		t.Fatal("pre-base ID reported valid")
	}
}

func TestBijectionProperty(t *testing.T) {
	err := quick.Check(func(acct uint32) bool {
		id := FromAccountID(acct)
		if id.AccountID() != acct {
			return false
		}
		back, err := ParseSteam2(id.Steam2())
		return err == nil && back == id
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseDecimal(t *testing.T) {
	id, err := Parse("76561197961965701")
	if err != nil {
		t.Fatal(err)
	}
	if id.AccountID() != 849986*2+1 {
		t.Fatalf("account ID = %d", id.AccountID())
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{
		"", "abc", "STEAM_", "STEAM_0:1", "STEAM_2:1:5", "STEAM_0:2:5",
		"STEAM_0:1:99999999999", "123",
	} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) accepted", s)
		}
	}
}

func TestParseSteam2UniverseOne(t *testing.T) {
	a, err := ParseSteam2("STEAM_0:0:100")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSteam2("STEAM_1:0:100")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("universe 0 and 1 should map to the same account")
	}
}

func TestDensityModel(t *testing.T) {
	m := DefaultDensity
	if d := m.DensityAt(0.1); d != 0.45 {
		t.Fatalf("sparse density = %v", d)
	}
	if d := m.DensityAt(0.5); d != 0.93 {
		t.Fatalf("dense density = %v", d)
	}
	// Expected accounts over a range and its inverse agree.
	width := uint64(1_000_000)
	exp := m.ExpectedAccounts(width)
	back := m.RangeForAccounts(exp)
	if diff := int64(back) - int64(width); diff > 2 || diff < -2 {
		t.Fatalf("RangeForAccounts(ExpectedAccounts(%d)) = %d", width, back)
	}
}
