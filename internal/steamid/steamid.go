// Package steamid implements Steam's account identifier scheme as
// described in §3.1 of the paper: 64-bit SteamIDs assigned sequentially
// from a fixed base value (76561197960265728), the bijective textual
// 32-bit form STEAM_X:Y:Z used by game servers, and the non-uniform
// density of valid accounts across the ID range that the crawl observed
// (often below 50 % early in the range, above 90 % after ~21.5 % of it).
package steamid

import (
	"fmt"
	"strconv"
	"strings"
)

// Base is the first 64-bit SteamID ever assigned for individual accounts
// in the public universe.
const Base uint64 = 76561197960265728

// ID is a 64-bit SteamID.
type ID uint64

// FromAccountID returns the 64-bit ID for a sequential 32-bit account
// number (the offset from Base).
func FromAccountID(account uint32) ID {
	return ID(Base + uint64(account))
}

// AccountID returns the 32-bit account number (offset from Base).
func (id ID) AccountID() uint32 {
	return uint32(uint64(id) - Base)
}

// Valid reports whether the ID lies at or above the public base value.
func (id ID) Valid() bool { return uint64(id) >= Base }

// String renders the canonical decimal 64-bit form used by the Web API
// and the community site.
func (id ID) String() string { return strconv.FormatUint(uint64(id), 10) }

// Steam2 renders the legacy STEAM_X:Y:Z textual form used by dedicated
// game servers: Y is the low bit of the account number and Z the
// remaining 31 bits. X is the universe; the public universe renders as 0
// for historical reasons.
func (id ID) Steam2() string {
	acct := id.AccountID()
	return fmt.Sprintf("STEAM_0:%d:%d", acct&1, acct>>1)
}

// ParseSteam2 parses a STEAM_X:Y:Z string back to a 64-bit ID. It accepts
// universe digits 0 and 1 (both denote the public universe in the wild).
func ParseSteam2(s string) (ID, error) {
	rest, ok := strings.CutPrefix(s, "STEAM_")
	if !ok {
		return 0, fmt.Errorf("steamid: %q does not start with STEAM_", s)
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("steamid: %q is not STEAM_X:Y:Z", s)
	}
	x, err := strconv.ParseUint(parts[0], 10, 8)
	if err != nil || x > 1 {
		return 0, fmt.Errorf("steamid: bad universe in %q", s)
	}
	y, err := strconv.ParseUint(parts[1], 10, 1)
	if err != nil {
		return 0, fmt.Errorf("steamid: bad Y in %q", s)
	}
	z, err := strconv.ParseUint(parts[2], 10, 31)
	if err != nil {
		return 0, fmt.Errorf("steamid: bad Z in %q", s)
	}
	return FromAccountID(uint32(z<<1 | y)), nil
}

// Parse parses either the decimal 64-bit form or the STEAM_X:Y:Z form.
func Parse(s string) (ID, error) {
	if strings.HasPrefix(s, "STEAM_") {
		return ParseSteam2(s)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("steamid: %q is not a SteamID: %v", s, err)
	}
	id := ID(v)
	if !id.Valid() {
		return 0, fmt.Errorf("steamid: %d is below the public base", v)
	}
	return id, nil
}

// DensityModel describes the fraction of queried IDs that resolve to valid
// accounts along the normalized ID range [0, 1), reproducing the crawl
// observation in §3.1: density below 50 % until ~21.5 % through the range,
// consistently above 90 % afterward.
type DensityModel struct {
	// SparseUntil is the normalized position where density jumps
	// (the paper observed ~0.215).
	SparseUntil float64
	// SparseDensity is the valid-account density before the jump.
	SparseDensity float64
	// DenseDensity is the density after the jump.
	DenseDensity float64
}

// DefaultDensity matches the figures reported in the paper.
var DefaultDensity = DensityModel{SparseUntil: 0.215, SparseDensity: 0.45, DenseDensity: 0.93}

// DensityAt returns the expected valid-account density at normalized
// position pos in [0, 1).
func (m DensityModel) DensityAt(pos float64) float64 {
	if pos < m.SparseUntil {
		return m.SparseDensity
	}
	return m.DenseDensity
}

// ExpectedAccounts returns the expected number of valid accounts within an
// ID range of the given width (in IDs).
func (m DensityModel) ExpectedAccounts(rangeWidth uint64) float64 {
	sparse := float64(rangeWidth) * m.SparseUntil * m.SparseDensity
	dense := float64(rangeWidth) * (1 - m.SparseUntil) * m.DenseDensity
	return sparse + dense
}

// RangeForAccounts inverts ExpectedAccounts: the ID-range width needed for
// the expected number of valid accounts to equal want.
func (m DensityModel) RangeForAccounts(want float64) uint64 {
	avg := m.SparseUntil*m.SparseDensity + (1-m.SparseUntil)*m.DenseDensity
	return uint64(want/avg + 0.5)
}
