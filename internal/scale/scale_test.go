//go:build scale

// Package scale holds the out-of-core acceptance harness (build tag:
// scale). It proves, at a population large enough to matter, that the
// streaming pipeline — WriteUniverse into a shard directory, the
// section readers, the streaming Table 4 — is byte-identical to the
// in-memory path the rest of the suite pins at small scale. `make
// scalebench` runs it at 500 k users before the 5 M budgeted pipeline;
// `make verify` compiles it so it cannot rot.
package scale

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"steamstudy/internal/core"
	"steamstudy/internal/dataset"
	"steamstudy/internal/simworld"
)

// scaleUsers reads the SCALE_USERS override (default 500000).
func scaleUsers(t *testing.T) int {
	if v := os.Getenv("SCALE_USERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1000 {
			t.Fatalf("bad SCALE_USERS %q", v)
		}
		return n
	}
	return 500000
}

// TestStreamingPipelineByteIdentity is the acceptance check behind
// BENCH_scale.json: at bench scale, the out-of-core pipeline must be
// indistinguishable from the in-memory one — same single-file bytes,
// same content signature from the sharded layout, same rendered
// Table 4.
func TestStreamingPipelineByteIdentity(t *testing.T) {
	users := scaleUsers(t)
	cfg := simworld.DefaultConfig(users)
	uni := simworld.MustGenerate(cfg, 1)
	snap := dataset.FromUniverse(uni)
	dir := t.TempDir()

	// 1. WriteUniverse's streamed encoding == the materialized Save,
	// byte for byte.
	streamed := filepath.Join(dir, "streamed.jsonl")
	memory := filepath.Join(dir, "memory.jsonl")
	if err := dataset.WriteUniverse(streamed, uni); err != nil {
		t.Fatal(err)
	}
	if err := snap.Save(memory); err != nil {
		t.Fatal(err)
	}
	if a, b := fileSHA(t, streamed), fileSHA(t, memory); a != b {
		t.Fatalf("streamed encode diverges from in-memory Save: %s vs %s", a, b)
	}

	// 2. The sharded layout round-trips to the same snapshot content.
	sharded := filepath.Join(dir, "streamed.d")
	if err := dataset.WriteUniverse(sharded, uni, dataset.WithShardRecords(250000)); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataset.Load(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.ContentSignature(), snap.ContentSignature(); got != want {
		t.Fatalf("sharded round-trip content signature %s, want %s", got, want)
	}

	// 3. Fsck accepts the sharded layout.
	rep, err := dataset.FsckFile(sharded, &dataset.IntegrityMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("sharded snapshot not fsck-clean:\n%s", rep.String())
	}

	// 4. Streaming Table 4 == the in-memory T4 experiment.
	var mem bytes.Buffer
	if err := core.FromSnapshot(snap).Run(&mem, "T4"); err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(mem.Bytes(), []byte("Table 4 —"))
	if i < 0 {
		t.Fatalf("no table in T4 output")
	}
	var stream bytes.Buffer
	if err := core.StreamTable4(&stream, sharded, "", nil, 0); err != nil {
		t.Fatal(err)
	}
	j := bytes.Index(stream.Bytes(), []byte("Table 4 —"))
	if j < 0 {
		t.Fatalf("no table in streaming output")
	}
	if mem.String()[i:] != stream.String()[j:] {
		t.Fatalf("streaming Table 4 diverges from in-memory render at %d users", users)
	}
}

func fileSHA(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
