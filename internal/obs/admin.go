package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Health aggregates named liveness checks into one /healthz verdict. A
// check returning nil is healthy; a non-nil error marks the whole service
// unhealthy (HTTP 503) and its message appears in the response body.
// Checks are evaluated on every request, so status transitions are
// visible immediately. All methods are nil-receiver safe.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth creates an empty health set, which reports healthy.
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// Register adds (or replaces) a named check.
func (h *Health) Register(name string, check func() error) {
	if h == nil || check == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[name] = check
}

// HealthSnapshot is one /healthz evaluation.
type HealthSnapshot struct {
	// Status is "ok" or "unhealthy".
	Status string `json:"status"`
	// Checks maps each check name to "ok" or its error text.
	Checks map[string]string `json:"checks,omitempty"`
}

// Check evaluates every registered check now.
func (h *Health) Check() HealthSnapshot {
	snap := HealthSnapshot{Status: "ok"}
	if h == nil {
		return snap
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	checks := make(map[string]func() error, len(h.checks))
	for name, fn := range h.checks {
		checks[name] = fn
	}
	h.mu.Unlock()
	sort.Strings(names)
	if len(names) > 0 {
		snap.Checks = make(map[string]string, len(names))
	}
	for _, name := range names {
		if err := checks[name](); err != nil {
			snap.Checks[name] = err.Error()
			snap.Status = "unhealthy"
		} else {
			snap.Checks[name] = "ok"
		}
	}
	return snap
}

// Handler serves the health verdict — the /healthz endpoint: HTTP 200
// with {"status":"ok"} while every check passes, HTTP 503 otherwise.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := h.Check()
		w.Header().Set("Content-Type", "application/json")
		if snap.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

// AdminMux assembles the standard admin surface: /metrics (deterministic
// JSON registry snapshot), /metrics.txt (greppable text), /healthz, and —
// only when enablePprof is set — the net/http/pprof handlers under
// /debug/pprof/. pprof is opt-in because profiling endpoints leak enough
// about a process that they have no business on by default.
func AdminMux(r *Registry, h *Health, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.Snapshot().WriteText(w)
	})
	mux.Handle("/healthz", h.Handler())
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
