package obs

import (
	"sync"
	"testing"
)

// The hot-path budget (DESIGN.md §10): counter adds and histogram
// observes in single-digit ns/op uncontended, and graceful behavior under
// 8-goroutine contention. make bench records these in BENCH_obs.json.

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Load() != int64(b.N) {
		b.Fatal("lost updates")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
	if h.Count() != int64(b.N) {
		b.Fatal("lost observations")
	}
}

// BenchmarkContended8 hammers one counter and one histogram from 8
// goroutines at once — the crawler's worker fan-out shape.
func BenchmarkContended8(b *testing.B) {
	const workers = 8
	b.Run("counter", func(b *testing.B) {
		var c Counter
		var wg sync.WaitGroup
		per := b.N / workers
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Add(1)
				}
			}()
		}
		wg.Wait()
		if c.Load() != int64(per*workers) {
			b.Fatal("lost updates")
		}
	})
	b.Run("histogram", func(b *testing.B) {
		h := NewHistogram(DefLatencyBuckets())
		var wg sync.WaitGroup
		per := b.N / workers
		b.ResetTimer()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				v := float64(w) * 0.01
				for i := 0; i < per; i++ {
					h.Observe(v)
				}
			}(w)
		}
		wg.Wait()
		if h.Count() != int64(per*workers) {
			b.Fatal("lost observations")
		}
	})
}
