package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter %d, want 42", c.Load())
	}
	c.Store(7)
	if c.Load() != 7 {
		t.Fatalf("counter %d after Store, want 7", c.Load())
	}
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge reads %v", g.Load())
	}
	g.Set(3.25)
	if g.Load() != 3.25 {
		t.Fatalf("gauge %v, want 3.25", g.Load())
	}
	g.Set(-1)
	if g.Load() != -1 {
		t.Fatalf("gauge %v, want -1", g.Load())
	}
}

// TestHistogramBucketBoundaries pins the edge semantics: bounds are
// inclusive upper limits, so an observation exactly on a bound lands in
// that bound's bucket, and anything above the last bound overflows.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{0.1, 0},                    // exactly on the first bound: inclusive
		{math.Nextafter(0.1, 1), 1}, // one ulp above: next bucket
		{0.5, 1},                    // exactly on the second bound
		{0.75, 2},
		{1, 2},                    // exactly on the last bound
		{math.Nextafter(1, 2), 3}, // one ulp above the last bound: overflow
		{1e9, 3},
	}
	for _, tc := range cases {
		before := h.Snapshot()
		h.Observe(tc.v)
		after := h.Snapshot()
		for i := range after.Buckets {
			want := before.Buckets[i].Count
			if i == tc.bucket {
				want++
			}
			if after.Buckets[i].Count != want {
				t.Fatalf("Observe(%v): bucket %d count %d, want %d",
					tc.v, i, after.Buckets[i].Count, want)
			}
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count %d, want %d", h.Count(), len(cases))
	}
	wantSum := 0.0
	for _, tc := range cases {
		wantSum += tc.v
	}
	if h.Sum() != wantSum {
		t.Fatalf("sum %v, want %v", h.Sum(), wantSum)
	}
	snap := h.Snapshot()
	if snap.Buckets[3].UpperBound != "+Inf" {
		t.Fatalf("overflow bucket rendered as %q", snap.Buckets[3].UpperBound)
	}
}

func TestSpanLifecycle(t *testing.T) {
	var s Span
	if s.State() != SpanPending || s.Seconds() != 0 {
		t.Fatalf("zero span: %v %v", s.State(), s.Seconds())
	}
	s.Start()
	if s.State() != SpanRunning {
		t.Fatalf("state %v after Start", s.State())
	}
	time.Sleep(2 * time.Millisecond)
	if s.Seconds() <= 0 {
		t.Fatal("running span reports zero elapsed")
	}
	s.End()
	d := s.Seconds()
	if s.State() != SpanDone || d <= 0 {
		t.Fatalf("state %v seconds %v after End", s.State(), d)
	}
	// Start/End are single-shot: repeats do not move the times.
	s.Start()
	s.End()
	if s.Seconds() != d {
		t.Fatal("repeated Start/End moved the span")
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if c.Load() != 1 {
		t.Fatal("detached counter dead")
	}
	r.Gauge("g").Set(1)
	r.GaugeFunc("f", func() float64 { return 1 })
	r.Histogram("h", []float64{1}).Observe(0.5)
	sp := r.Span("s")
	sp.Start()
	sp.End()
	r.RegisterCounter("x", c)
	r.RegisterCounters("p_", &struct{ A Counter }{})
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestRegisterCountersAndFillSnapshot(t *testing.T) {
	type metrics struct {
		Requests    Counter
		RateLimited Counter
		Faults500   Counter
		WrongJSON   Counter
	}
	type snapshot struct {
		Requests    int64
		RateLimited int64
		Faults500   int64
		WrongJSON   int64
	}
	var m metrics
	r := NewRegistry()
	r.RegisterCounters("test_", &m)
	m.Requests.Add(3)
	m.RateLimited.Add(2)
	m.Faults500.Add(1)
	m.WrongJSON.Add(9)
	snap := r.Snapshot()
	want := map[string]int64{
		"test_requests":     3,
		"test_rate_limited": 2,
		"test_faults_500":   1,
		"test_wrong_json":   9,
	}
	if !reflect.DeepEqual(snap.Counters, want) {
		t.Fatalf("registered names/values %v, want %v", snap.Counters, want)
	}
	var s snapshot
	FillSnapshot(&m, &s)
	if s.Requests != 3 || s.RateLimited != 2 || s.Faults500 != 1 || s.WrongJSON != 9 {
		t.Fatalf("FillSnapshot: %+v", s)
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Requests":         "requests",
		"RateLimited":      "rate_limited",
		"Faults500":        "faults_500",
		"WrongJSON":        "wrong_json",
		"BreakerHalfOpens": "breaker_half_opens",
		"UsersDone":        "users_done",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Fatalf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSnapshotJSONDeterministic asserts the /metrics serialization is
// byte-identical across repeated marshals of the same state — map keys
// come out sorted, shapes are stable.
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Add(int64(len(name)))
	}
	r.Gauge("g2").Set(2)
	r.Gauge("g1").Set(1)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	sp := r.Span("phase")
	sp.Start()
	sp.End()
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
	// Sanity on the shape: top-level sections all present.
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"counters", "gauges", "histograms", "spans"} {
		if _, ok := decoded[section]; !ok {
			t.Fatalf("snapshot JSON missing %q section: %s", section, a)
		}
	}
}

// TestRegistryRace hammers every metric type plus Snapshot concurrently;
// `make verify` runs this under -race.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", DefLatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter(fmt.Sprintf("c%d", i%7)).Inc()
				r.Gauge("g").Set(float64(i))
				h.Observe(float64(i%100) / 100)
				sp := r.Span(fmt.Sprintf("s%d", i%3))
				sp.Start()
				sp.End()
				if i%50 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, v := range snap.Counters {
		total += v
	}
	if total != 8*500 {
		t.Fatalf("counter total %d, want %d", total, 8*500)
	}
	if h.Count() != 8*500 {
		t.Fatalf("histogram count %d, want %d", h.Count(), 8*500)
	}
}

func TestHealthTransitions(t *testing.T) {
	h := NewHealth()
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	status := func() (int, HealthSnapshot) {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap HealthSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, snap
	}

	// No checks: healthy.
	if code, snap := status(); code != 200 || snap.Status != "ok" {
		t.Fatalf("empty health: %d %+v", code, snap)
	}
	// Passing check: still healthy.
	h.Register("db", func() error { return nil })
	if code, snap := status(); code != 200 || snap.Checks["db"] != "ok" {
		t.Fatalf("passing check: %d %+v", code, snap)
	}
	// Flip to failing: 503 with the error text.
	var mu sync.Mutex
	failing := true
	h.Register("journal", func() error {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return fmt.Errorf("segment torn")
		}
		return nil
	})
	code, snap := status()
	if code != 503 || snap.Status != "unhealthy" {
		t.Fatalf("failing check: %d %+v", code, snap)
	}
	if !strings.Contains(snap.Checks["journal"], "torn") {
		t.Fatalf("error text lost: %+v", snap)
	}
	// Recover: healthy again immediately.
	mu.Lock()
	failing = false
	mu.Unlock()
	if code, snap := status(); code != 200 || snap.Status != "ok" {
		t.Fatalf("recovered check: %d %+v", code, snap)
	}
	// Nil receiver is healthy.
	var nilH *Health
	if s := nilH.Check(); s.Status != "ok" {
		t.Fatalf("nil health: %+v", s)
	}
}

func TestAdminMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(5)
	srv := httptest.NewServer(AdminMux(r, NewHealth(), true))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Counters["hits"] != 5 {
		t.Fatalf("metrics: %+v", snap)
	}
	resp, err = srv.Client().Get(srv.URL + "/metrics.txt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics.txt status %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	// pprof index is mounted when enabled.
	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}

	// And absent when disabled.
	srv2 := httptest.NewServer(AdminMux(r, NewHealth(), false))
	defer srv2.Close()
	resp, err = srv2.Client().Get(srv2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("pprof served despite being disabled: %d", resp.StatusCode)
	}
}
