// Package obs is the repo's observability subsystem: a typed metrics
// registry (atomic counters, float gauges, fixed-bucket histograms) plus
// lightweight span timers, all snapshotable as deterministic JSON and
// servable over HTTP (/metrics, /healthz, opt-in pprof).
//
// The paper's phase-2 crawl ran for six months (§3.1); at that timescale
// the operator's only defense is live visibility into rates, retries,
// breaker state and journal progress. obs is built for that job under two
// rules:
//
//   - The hot path is allocation-free. A Counter is one atomic word; a
//     Histogram observe is a branch-free bucket walk plus two atomic adds
//     and a CAS loop for the sum. Name resolution (map lookups, string
//     concatenation) happens once, at construction time, never per event.
//   - Metrics live wherever their owner wants them. The registry holds
//     *pointers*, so a package keeps its counters as plain struct fields
//     (zero value ready, no registry required to exist) and registers
//     them when an operator actually wants a /metrics endpoint. Every
//     Registry method is nil-receiver safe and degrades to a detached,
//     fully functional metric, so instrumented code never branches on
//     "is observability on".
//
// All of this is stdlib-only.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so packages embed Counters directly as struct fields and
// register them later (or never).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the value. Counters are conceptually monotone within a
// process; Store exists so a counter that mirrors durable state (journal
// segment counts) can be re-initialized when that state is reopened.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Gauge is an atomic float64 that may go up and down (a rate, a map
// size, a temperature). The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at construction
// time. Buckets are inclusive upper bounds (Prometheus "le" semantics): an
// observation lands in the first bucket whose bound is >= the value, or in
// the implicit +Inf overflow bucket. Observe is lock-free.
type Histogram struct {
	bounds []float64      // immutable after construction, ascending
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a detached histogram over the given ascending
// inclusive upper bounds. Most callers want Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DefLatencyBuckets spans sub-millisecond handler times to multi-second
// stalls — the range an HTTP request against the simulator or the real
// Steam API can take.
func DefLatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramBucket is one bucket in a histogram snapshot.
type HistogramBucket struct {
	// LE is the inclusive upper bound; the overflow bucket reports
	// +Inf, which JSON cannot carry, so it serializes as the string
	// "+Inf" via UpperBound.
	LE float64 `json:"-"`
	// Count is the number of observations in this bucket alone (not
	// cumulative).
	Count int64 `json:"count"`
	// UpperBound is LE rendered for JSON ("+Inf" for the overflow).
	UpperBound string `json:"le"`
}

// HistogramSnapshot is a plain-value copy of a histogram at one instant.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot copies the histogram at one instant. Bucket counts are read
// individually, so a snapshot taken under concurrent Observe traffic is
// internally consistent per bucket but may straddle observations — fine
// for monitoring, which only needs monotonicity.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	s.Buckets = make([]HistogramBucket, len(h.counts))
	for i := range h.counts {
		b := HistogramBucket{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.LE = h.bounds[i]
			b.UpperBound = formatBound(h.bounds[i])
		} else {
			b.LE = math.Inf(1)
			b.UpperBound = "+Inf"
		}
		s.Buckets[i] = b
	}
	return s
}

// Span times one named unit of work — a crawl phase, an experiment
// render. It is single-shot: Start once, End once. The zero value is a
// pending span, ready to use.
type Span struct {
	started atomic.Int64 // unix nanos; 0 = not started
	ended   atomic.Int64 // unix nanos; 0 = not ended
}

// Start marks the span running. Calling Start twice keeps the first time.
func (s *Span) Start() {
	s.started.CompareAndSwap(0, time.Now().UnixNano())
}

// End marks the span done. Calling End twice keeps the first time.
func (s *Span) End() {
	s.ended.CompareAndSwap(0, time.Now().UnixNano())
}

// SpanState is a span's lifecycle position.
type SpanState string

const (
	SpanPending SpanState = "pending"
	SpanRunning SpanState = "running"
	SpanDone    SpanState = "done"
)

// State returns the span's current lifecycle position.
func (s *Span) State() SpanState {
	switch {
	case s.started.Load() == 0:
		return SpanPending
	case s.ended.Load() == 0:
		return SpanRunning
	default:
		return SpanDone
	}
}

// Seconds returns the span's duration: zero while pending, elapsed-so-far
// while running, final duration once done.
func (s *Span) Seconds() float64 {
	start := s.started.Load()
	if start == 0 {
		return 0
	}
	end := s.ended.Load()
	if end == 0 {
		end = time.Now().UnixNano()
	}
	return time.Duration(end - start).Seconds()
}

// SpanSnapshot is a plain-value copy of a span at one instant.
type SpanSnapshot struct {
	State   SpanState `json:"state"`
	Seconds float64   `json:"seconds"`
}

// Snapshot copies the span at one instant.
func (s *Span) Snapshot() SpanSnapshot {
	return SpanSnapshot{State: s.State(), Seconds: s.Seconds()}
}
