package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"unicode"
)

// Registry is a named collection of metrics. It stores pointers, so
// metrics may live as struct fields in their owning package and be
// adopted here, or be created on demand by name. Every method is safe on
// a nil *Registry: creation methods return detached, fully functional
// metrics and registration methods do nothing, so instrumented code never
// has to branch on whether observability is enabled.
//
// Names are resolved under a lock; do that at construction time and keep
// the returned pointer — the metric operations themselves are lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	spans    map[string]*Span
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		spans:    make(map[string]*Span),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter adopts an existing counter under name. Registering a
// second counter under the same name replaces the first — the caller owns
// naming discipline.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge, evaluated at snapshot time. Use
// it for values the owner already maintains (a limiter's current rate, a
// map's size) instead of mirroring them into a Gauge on every change.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bounds if needed. Bounds are ignored when the histogram already exists.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return NewHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Span returns the named span, creating it if needed.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return &Span{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[name]
	if !ok {
		s = &Span{}
		r.spans[name] = s
	}
	return s
}

// RegisterCounters adopts every Counter field of the struct pointed to by
// s, named prefix plus the snake_cased field name. This is what collapses
// per-package registration boilerplate: a package declares its counters
// as one struct and registers them in a single call.
func (r *Registry) RegisterCounters(prefix string, s any) {
	if r == nil {
		return
	}
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if c, ok := v.Field(i).Addr().Interface().(*Counter); ok {
			r.RegisterCounter(prefix+snakeCase(t.Field(i).Name), c)
		}
	}
}

// FillSnapshot copies same-named metrics from the Counter fields of src
// into the int64 fields of dst (both struct pointers). It is the one
// implementation behind every package's Snapshot() compatibility shim —
// the hand-written field-by-field copy loops this replaces were the
// drift-prone duplication that motivated this package.
func FillSnapshot(src, dst any) {
	sv := reflect.ValueOf(src).Elem()
	dv := reflect.ValueOf(dst).Elem()
	dt := dv.Type()
	for i := 0; i < dt.NumField(); i++ {
		if dt.Field(i).Type.Kind() != reflect.Int64 {
			continue
		}
		f := sv.FieldByName(dt.Field(i).Name)
		if !f.IsValid() || !f.CanAddr() {
			continue
		}
		if c, ok := f.Addr().Interface().(*Counter); ok {
			dv.Field(i).SetInt(c.Load())
		}
	}
}

// snakeCase converts a Go exported identifier to snake_case:
// "RateLimited" -> "rate_limited", "Faults500" -> "faults_500",
// "WrongJSON" -> "wrong_json".
func snakeCase(s string) string {
	out := make([]rune, 0, len(s)+4)
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsUpper(r):
			// Break before an upper that follows a lower or digit, or
			// that starts the tail of an acronym ("JSONBody" -> at 'B').
			if i > 0 && (!unicode.IsUpper(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
				out = append(out, '_')
			}
			out = append(out, unicode.ToLower(r))
		case unicode.IsDigit(r):
			if i > 0 && !unicode.IsDigit(runes[i-1]) {
				out = append(out, '_')
			}
			out = append(out, r)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// Snapshot is a plain-value copy of every registered metric at one
// instant. encoding/json emits map keys sorted, so the serialized form is
// deterministic for a fixed set of metric names.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      map[string]SpanSnapshot      `json:"spans"`
}

// Snapshot copies the registry at one instant. GaugeFuncs are evaluated
// outside the registry lock, so a callback may itself consult code that
// registers metrics without deadlocking.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for name, c := range r.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Load()
	}
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	for name, s := range r.spans {
		snap.Spans[name] = s.Snapshot()
	}
	r.mu.RUnlock()
	for name, fn := range fns {
		snap.Gauges[name] = fn()
	}
	return snap
}

// WriteText renders the snapshot as sorted "name value" lines — the
// greppable counterpart of the JSON endpoint.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry snapshot as JSON — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
