// Package par is the bounded worker pool behind the deterministic
// parallel analysis engine. Every fan-out in the analysis layer (the
// xmin scan, the bootstrap GoF replicates, Table 4's per-metric
// classification, RunAll's per-experiment rendering) goes through this
// package so the determinism contract lives in one place:
//
//   - work is addressed by index, and each unit writes only to its own
//     index-assigned slot (a slice element, a struct field);
//   - any randomness is drawn from a per-index stream derived with
//     randx.Split/SplitN, never from a stream shared across units;
//   - results are merged in index order, never in completion order.
//
// Under those rules the output of a fan-out is a pure function of its
// inputs — byte-identical for any worker count, including 1 — and the
// worker count is purely a throughput knob.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// N resolves a Workers knob to a concrete worker count: values <= 0 mean
// "one worker per logical CPU" (GOMAXPROCS), so zero values ask for full
// parallelism and 1 forces the serial path.
func N(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on at most N(workers) goroutines
// and returns when all calls have completed. Work is handed out
// dynamically, so fn must follow the package's determinism contract:
// fn(i) may depend only on i and on state that no other unit writes, and
// must store its result in an index-i slot. For calls fn inline when the
// resolved worker count is 1 or n < 2, so the serial path has zero
// goroutine overhead.
func For(workers, n int, fn func(i int)) {
	w := N(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Run executes the given functions on at most N(workers) goroutines and
// returns when all have completed. It is For for heterogeneous work —
// e.g. fitting the independent candidate families of a heavy-tail fit
// concurrently — with the same contract: each function writes only to
// state no other function touches.
func Run(workers int, fns ...func()) {
	For(workers, len(fns), func(i int) { fns[i]() })
}
