// Package par is the bounded worker pool behind the deterministic
// parallel analysis engine. Every fan-out in the analysis layer (the
// xmin scan, the bootstrap GoF replicates, Table 4's per-metric
// classification, RunAll's per-experiment rendering) goes through this
// package so the determinism contract lives in one place:
//
//   - work is addressed by index, and each unit writes only to its own
//     index-assigned slot (a slice element, a struct field);
//   - any randomness is drawn from a per-index stream derived with
//     randx.Split/SplitN, never from a stream shared across units;
//   - results are merged in index order, never in completion order.
//
// Under those rules the output of a fan-out is a pure function of its
// inputs — byte-identical for any worker count, including 1 — and the
// worker count is purely a throughput knob.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// N resolves a Workers knob to a concrete worker count: values <= 0 mean
// "one worker per logical CPU" (GOMAXPROCS), so zero values ask for full
// parallelism and 1 forces the serial path.
func N(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on at most N(workers) goroutines
// and returns when all calls have completed. Work is handed out
// dynamically, so fn must follow the package's determinism contract:
// fn(i) may depend only on i and on state that no other unit writes, and
// must store its result in an index-i slot. For calls fn inline when the
// resolved worker count is 1 or n < 2, so the serial path has zero
// goroutine overhead.
func For(workers, n int, fn func(i int)) {
	w := N(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Run executes the given functions on at most N(workers) goroutines and
// returns when all have completed. It is For for heterogeneous work —
// e.g. fitting the independent candidate families of a heavy-tail fit
// concurrently — with the same contract: each function writes only to
// state no other function touches.
func Run(workers int, fns ...func()) {
	For(workers, len(fns), func(i int) { fns[i]() })
}

// Ordered is the bounded ordered pipeline behind the chunked snapshot
// codec: produce(i) runs for every i in [0, n) on at most N(workers)
// goroutines, while consume(i, v) is called from the caller's goroutine
// in strict index order — never concurrently, never out of order. At
// most 2*workers productions are in flight, so memory stays bounded no
// matter how far the fastest producer runs ahead of the consumer.
//
// The determinism contract holds by construction: produce follows the
// package rules (a pure function of i plus read-only shared state) and
// the index-ordered consume makes the observable output identical for
// any worker count, including the inline serial path at workers==1.
//
// A consume error stops further consume calls but not production: every
// produce(i) still runs exactly once (rarely wasteful, never leaky —
// no goroutine is left blocked). The first consume error is returned.
func Ordered[T any](workers, n int, produce func(i int) T, consume func(i int, v T) error) error {
	w := N(workers)
	if w > n {
		w = n
	}
	var err error
	if w <= 1 {
		for i := 0; i < n; i++ {
			v := produce(i)
			if err == nil {
				err = consume(i, v)
			}
		}
		return err
	}
	window := 2 * w
	if window > n {
		window = n
	}
	// A ring of single-slot channels: production i deposits into slot
	// i%window, and the semaphore guarantees slot reuse only after the
	// consumer has drained the previous occupant.
	slots := make([]chan T, window)
	for i := range slots {
		slots[i] = make(chan T, 1)
	}
	sem := make(chan struct{}, window)
	go func() {
		for i := 0; i < n; i++ {
			sem <- struct{}{}
			go func(i int) { slots[i%window] <- produce(i) }(i)
		}
	}()
	for i := 0; i < n; i++ {
		v := <-slots[i%window]
		if err == nil {
			err = consume(i, v)
		}
		<-sem
	}
	return err
}
