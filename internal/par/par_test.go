package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNResolvesKnob(t *testing.T) {
	if got := N(4); got != 4 {
		t.Fatalf("N(4) = %d", got)
	}
	if got := N(1); got != 1 {
		t.Fatalf("N(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := N(0); got != want {
		t.Fatalf("N(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := N(-3); got != want {
		t.Fatalf("N(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		counts := make([]int32, n)
		For(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForResultsIndependentOfWorkers(t *testing.T) {
	const n = 512
	ref := make([]int, n)
	For(1, n, func(i int) { ref[i] = i * i })
	for _, workers := range []int{2, 3, 8} {
		got := make([]int, n)
		For(workers, n, func(i int) { got[i] = i * i })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestForZeroAndTinyN(t *testing.T) {
	ran := false
	For(8, 0, func(i int) { ran = true })
	if ran {
		t.Fatal("For ran work for n=0")
	}
	hits := 0
	For(8, 1, func(i int) { hits++ }) // n < 2 runs inline; no race on hits
	if hits != 1 {
		t.Fatalf("n=1 ran %d times", hits)
	}
}

func TestOrderedConsumesInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 0} {
		const n = 300
		var got []int
		err := Ordered(workers, n,
			func(i int) int { return i * 7 },
			func(i, v int) error {
				if v != i*7 {
					t.Fatalf("workers=%d: index %d carried %d", workers, i, v)
				}
				got = append(got, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: consumed %d of %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: consume order broken at %d (got index %d)", workers, i, v)
			}
		}
	}
}

func TestOrderedEveryProduceRunsOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 500
		counts := make([]int32, n)
		err := Ordered(workers, n,
			func(i int) int { atomic.AddInt32(&counts[i], 1); return i },
			func(i, v int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: produce(%d) ran %d times", workers, i, c)
			}
		}
	}
}

func TestOrderedReturnsFirstConsumeError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 64
		produced := make([]int32, n)
		var consumed int32
		err := Ordered(workers, n,
			func(i int) int { atomic.AddInt32(&produced[i], 1); return i },
			func(i, v int) error {
				consumed++
				if i == 5 {
					return errBoom
				}
				return nil
			})
		if err != errBoom {
			t.Fatalf("workers=%d: err = %v, want errBoom", workers, err)
		}
		// consume stops after the error; production still completes so no
		// goroutine is left blocked on a slot.
		if consumed != 6 {
			t.Fatalf("workers=%d: consumed %d calls, want 6", workers, consumed)
		}
		for i, c := range produced {
			if c != 1 {
				t.Fatalf("workers=%d: produce(%d) ran %d times after error", workers, i, c)
			}
		}
	}
}

func TestOrderedZeroN(t *testing.T) {
	if err := Ordered(4, 0, func(i int) int { return i }, func(i, v int) error { return errBoom }); err != nil {
		t.Fatalf("n=0 returned %v", err)
	}
}

var errBoom = errSentinel("boom")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

func TestRunExecutesAllFns(t *testing.T) {
	var a, b, c atomic.Int32
	Run(2,
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatalf("Run missed work: %d %d %d", a.Load(), b.Load(), c.Load())
	}
}
