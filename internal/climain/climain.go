// Package climain is the shared CLI wiring for the steamstudy binaries.
// Every command repeats the same startup: a bare log prefix, the -admin /
// -pprof / -workers flags, an obs registry whose existence depends on
// which flags were given, the admin listener with its "endpoints at"
// stderr line, and snapshot-path validation. One App per process owns all
// of it, so a new binary (steamquery) joins a uniform surface instead of
// adding another copy, and a flag rename happens in one place.
//
// Order of use:
//
//	app := climain.New("steamquery")
//	workers := app.WorkersFlag(0, "...")
//	... more flag.Xxx definitions ...
//	flag.Parse()
//	app.StartAdmin()                 // no-op without -admin
package climain

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
)

// App carries one binary's shared CLI state.
type App struct {
	// Name is the binary name: the log prefix and the label on every
	// shared stderr line.
	Name string

	admin   *string
	pprofOn *bool
	workers *int

	reg    *obs.Registry
	health *obs.Health
}

// New configures the process-wide logger (bare messages, "name: " prefix)
// and registers the -admin and -pprof flags on flag.CommandLine. Call
// before defining the binary's own flags so the shared ones group first
// in -help.
func New(name string) *App {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
	return &App{
		Name:    name,
		admin:   flag.String("admin", "", "serve /metrics, /metrics.txt, /healthz (and with -pprof the profiler) on this address (empty disables)"),
		pprofOn: flag.Bool("pprof", false, "expose net/http/pprof on the -admin listener"),
	}
}

// WorkersFlag registers the -workers flag with a binary-specific default
// and usage line (the pools each binary drives differ), returning the
// value pointer. Every binary shares the convention: 0 = one worker per
// CPU, 1 = serial, and output never depends on the value.
func (a *App) WorkersFlag(def int, usage string) *int {
	a.workers = flag.Int("workers", def, usage)
	return a.workers
}

// AdminEnabled reports whether -admin was given. Valid after flag.Parse.
func (a *App) AdminEnabled() bool { return *a.admin != "" }

// EnsureRegistry returns the app's metrics registry, creating it on
// first call. Use when metrics are wanted regardless of -admin
// (steamstudy -timings records render spans even with no listener).
func (a *App) EnsureRegistry() *obs.Registry {
	if a.reg == nil {
		a.reg = obs.NewRegistry()
	}
	return a.reg
}

// Registry returns the registry the admin listener will expose: an
// existing one, or one created now if -admin was given — otherwise nil,
// which every obs consumer treats as "don't record". Valid after
// flag.Parse.
func (a *App) Registry() *obs.Registry {
	if a.reg == nil && a.AdminEnabled() {
		a.reg = obs.NewRegistry()
	}
	return a.reg
}

// Health returns the app's health check set, creating it on first call.
func (a *App) Health() *obs.Health {
	if a.health == nil {
		a.health = obs.NewHealth()
	}
	return a.health
}

// Adopt replaces the app's registry and health with externally owned
// ones — for binaries whose library already builds its own (the
// apiserver handler). Call before StartAdmin; nil arguments keep the
// current value.
func (a *App) Adopt(reg *obs.Registry, health *obs.Health) {
	if reg != nil {
		a.reg = reg
	}
	if health != nil {
		a.health = health
	}
}

// StartAdmin binds the -admin listener (if the flag was given) over the
// app's registry and health, and prints the canonical "admin endpoints
// at" line. Call after flag.Parse and after Adopt/EnsureRegistry; exits
// fatally if the address cannot be bound, because a monitoring listener
// the operator asked for and silently doesn't have is worse than no
// process. The listener is served through NewHTTPServer, so even the
// admin surface carries slow-client timeouts.
func (a *App) StartAdmin() {
	if !a.AdminEnabled() {
		return
	}
	lis, err := net.Listen("tcp", *a.admin)
	if err != nil {
		log.Fatalf("admin listener: %v", err)
	}
	go NewHTTPServer(obs.AdminMux(a.Registry(), a.Health(), *a.pprofOn)).Serve(lis)
	fmt.Fprintf(os.Stderr, "%s: admin endpoints at http://%s/metrics\n", a.Name, lis.Addr())
}

// MustSnapshotPath validates that path names a readable/writable
// snapshot format, exiting fatally with the offending flag's name
// otherwise — the typo'd extension dies at startup, not after a
// half-hour crawl tries to save.
func (a *App) MustSnapshotPath(flagName, path string) {
	if path == "" {
		log.Fatalf("-%s is required", flagName)
	}
	if err := dataset.CheckSnapshotPath(path); err != nil {
		log.Fatalf("-%s: %v", flagName, err)
	}
}
