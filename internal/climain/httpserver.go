package climain

import (
	"net/http"
	"time"
)

// Default http.Server timeouts, shared by every listener in the repo
// (the /v1 query API, the Steam API simulator, the admin surface).
// Without them a single slow or stalled client holds a connection —
// and under the query server's admission model, a goroutine — forever:
// slowloris header dribbling, never-finishing request bodies, and
// never-reading response consumers are all cut by the kernel-visible
// deadlines below. Write is the loosest because it spans the handler's
// own compute time on HTTP/1.1; it still must be finite, or a client
// that stops reading pins its response write until process exit.
const (
	DefReadHeaderTimeout = 5 * time.Second
	DefReadTimeout       = 30 * time.Second
	DefWriteTimeout      = 60 * time.Second
	DefIdleTimeout       = 120 * time.Second
)

// NewHTTPServer is the one http.Server constructor in the repo: every
// listener gets the default read-header/read/write/idle timeouts, so a
// server without slow-client protection cannot be created by omission.
// Callers with special needs (the chaos harness shortens WriteTimeout
// to provoke slow-reader cuts) adjust fields on the returned server
// before Serve.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefReadHeaderTimeout,
		ReadTimeout:       DefReadTimeout,
		WriteTimeout:      DefWriteTimeout,
		IdleTimeout:       DefIdleTimeout,
	}
}
