// Package ratelimit implements a token-bucket rate limiter used on both
// sides of the crawl: the API server enforces the Steam Web API's limits,
// and the crawler voluntarily throttles itself to 85 % of the allowance,
// as the paper describes in §3.1.
package ratelimit

import (
	"context"
	"sync"
	"time"
)

// Limiter is a thread-safe token bucket: Rate tokens per second refill a
// bucket of capacity Burst; each permitted action consumes one token.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	// sleeper lets tests fake the clock on Wait.
	sleeper func(ctx context.Context, d time.Duration) error
}

// New creates a limiter with the given sustained rate (tokens/second) and
// burst capacity. The bucket starts full. Panics on non-positive rate or
// burst.
func New(rate float64, burst int) *Limiter {
	if rate <= 0 || burst <= 0 {
		panic("ratelimit: rate and burst must be positive")
	}
	l := &Limiter{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
		sleeper: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	l.last = l.now()
	return l
}

// NewWithClock creates a limiter with an injected clock and instantaneous
// sleeps (for deterministic tests).
func NewWithClock(rate float64, burst int, clock func() time.Time) *Limiter {
	l := New(rate, burst)
	l.now = clock
	l.last = clock()
	l.sleeper = func(context.Context, time.Duration) error { return nil }
	return l
}

// refillLocked advances the bucket to the current time.
func (l *Limiter) refillLocked() {
	now := l.now()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.tokens += elapsed * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
	}
}

// Allow consumes one token if available and reports whether it did.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked()
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// Wait blocks until a token is available or the context is done. It
// reserves its token before sleeping, so concurrent waiters are served
// fairly and the sustained rate is respected.
func (l *Limiter) Wait(ctx context.Context) error {
	l.mu.Lock()
	l.refillLocked()
	l.tokens--
	var wait time.Duration
	if l.tokens < 0 {
		// The bucket is in debt: this caller's token arrives after the
		// debt is repaid.
		wait = time.Duration(-l.tokens / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	if wait <= 0 {
		return nil
	}
	if err := l.sleeper(ctx, wait); err != nil {
		// The reservation is abandoned; return the token.
		l.mu.Lock()
		l.tokens++
		l.mu.Unlock()
		return err
	}
	return nil
}

// Tokens returns the current token count (for tests and metrics).
func (l *Limiter) Tokens() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked()
	return l.tokens
}

// Rate returns the sustained rate in tokens per second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// SetRate changes the sustained rate in place, settling the bucket at the
// old rate first so already-accrued tokens (or debt) carry over. It lets
// an adaptive controller (e.g. the crawler's AIMD throttle) retune the
// limiter without dropping waiters. Non-positive rates are ignored.
func (l *Limiter) SetRate(rate float64) {
	if rate <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked()
	l.rate = rate
}
