package ratelimit

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAllowBurstThenDeny(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(10, 5, clock.now)
	for i := 0; i < 5; i++ {
		if !l.Allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if l.Allow() {
		t.Fatal("token allowed beyond burst")
	}
}

func TestRefill(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(10, 5, clock.now)
	for i := 0; i < 5; i++ {
		l.Allow()
	}
	clock.advance(300 * time.Millisecond) // 3 tokens
	allowed := 0
	for i := 0; i < 10; i++ {
		if l.Allow() {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("allowed %d after refill, want 3", allowed)
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(100, 3, clock.now)
	clock.advance(time.Hour)
	if tok := l.Tokens(); tok > 3 {
		t.Fatalf("bucket overfilled: %v", tok)
	}
}

func TestWaitConservesRate(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(10, 1, clock.now)
	// With a fake sleeper (instant), Wait should still account debt:
	// issuing 21 tokens from a 1-burst bucket drives tokens to -20.
	for i := 0; i < 21; i++ {
		if err := l.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if tok := l.Tokens(); tok > -19 {
		t.Fatalf("token debt not accounted: %v", tok)
	}
	// After 2 simulated seconds the debt is repaid.
	clock.advance(2 * time.Second)
	if tok := l.Tokens(); tok < 0 {
		t.Fatalf("debt not repaid after refill window: %v", tok)
	}
}

func TestWaitContextCancelReturnsToken(t *testing.T) {
	l := New(0.001, 1) // extremely slow refill, real clock
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err) // consumes the single burst token instantly
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := l.Tokens()
	if err := l.Wait(ctx); err == nil {
		t.Fatal("Wait did not observe cancellation")
	}
	after := l.Tokens()
	if after < before-0.01 {
		t.Fatalf("cancelled Wait leaked a token: %v -> %v", before, after)
	}
}

func TestWaitRealClockThroughput(t *testing.T) {
	l := New(200, 1)
	start := time.Now()
	for i := 0; i < 20; i++ {
		if err := l.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 20 tokens at 200/s from a 1-burst bucket needs >= ~95ms.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("rate not enforced: 20 tokens in %v", elapsed)
	}
}

func TestConcurrentAllowNoOverissue(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(1, 100, clock.now)
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if l.Allow() {
					mu.Lock()
					granted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if granted > 100 {
		t.Fatalf("over-issued %d tokens from a 100-burst bucket", granted)
	}
}

func TestSetRateRetunesRefill(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := NewWithClock(10, 5, clock.now)
	for i := 0; i < 5; i++ {
		l.Allow()
	}
	l.SetRate(100)
	if r := l.Rate(); r != 100 {
		t.Fatalf("Rate() = %v after SetRate(100)", r)
	}
	clock.advance(100 * time.Millisecond) // 10 tokens at the new rate
	allowed := 0
	for i := 0; i < 20; i++ {
		if l.Allow() {
			allowed++
		}
	}
	if allowed != 5 { // capped at burst
		t.Fatalf("allowed %d after retuned refill, want burst-capped 5", allowed)
	}
	// Tokens accrued before the change refill at the OLD rate: SetRate
	// settles the bucket first instead of retroactively rewriting history.
	l2 := NewWithClock(10, 100, clock.now)
	for i := 0; i < 100; i++ {
		l2.Allow()
	}
	clock.advance(time.Second) // 10 tokens at rate 10
	l2.SetRate(1000)
	if tok := l2.Tokens(); tok < 9.99 || tok > 10.01 {
		t.Fatalf("pre-change accrual rewritten: %v tokens, want 10", tok)
	}
	// Non-positive rates are ignored rather than wedging the limiter.
	l2.SetRate(0)
	l2.SetRate(-5)
	if r := l2.Rate(); r != 1000 {
		t.Fatalf("bad SetRate mutated rate to %v", r)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		rate  float64
		burst int
	}{{0, 1}, {-1, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v, %d) did not panic", tc.rate, tc.burst)
				}
			}()
			New(tc.rate, tc.burst)
		}()
	}
}
