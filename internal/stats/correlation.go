package stats

import (
	"math"
	"sort"
)

// Ranks returns the fractional (mid) ranks of xs, averaging tied values —
// the tie treatment required for Spearman correlation on count data such
// as friends owned, where ties are pervasive. Ranks are 1-based.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	return ranks
}

// Pearson returns the Pearson product-moment correlation of x and y.
// Returns NaN if either input is constant or the lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation ρ of x and y with tie
// correction (Pearson correlation of mid-ranks). This is the statistic
// the paper uses for every correlation it reports.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	return SpearmanRanked(Ranks(x), Ranks(y))
}

// SpearmanRanked returns Spearman's ρ given precomputed mid-ranks, as
// produced by Ranks. It is exactly the Pearson correlation of the rank
// vectors, so Spearman(x, y) == SpearmanRanked(Ranks(x), Ranks(y)) bit
// for bit. Callers correlating the same column against several others
// (the §7 study ranks the games-owned column for three pairs) can rank
// each column once instead of re-sorting it per pair — ranking is the
// O(n log n) step, so this turns k pairs over m columns from 2k sorts
// into m.
func SpearmanRanked(rx, ry []float64) float64 {
	if len(rx) != len(ry) || len(rx) < 2 {
		return math.NaN()
	}
	return Pearson(rx, ry)
}

// CorrelationStrength maps |ρ| to the verbal scale the paper uses in §7:
// very weak, weak, moderate, strong, very strong.
func CorrelationStrength(rho float64) string {
	a := math.Abs(rho)
	switch {
	case a < 0.20:
		return "very weak"
	case a < 0.40:
		return "weak"
	case a < 0.60:
		return "moderate"
	case a < 0.80:
		return "strong"
	default:
		return "very strong"
	}
}

// SpearmanSubset computes Spearman ρ over only the pairs whose x value
// lies in [lo, hi] — used for the paper's achievement analysis, which
// reports the correlation restricted to games offering 1-90 achievements.
func SpearmanSubset(x, y []float64, lo, hi float64) float64 {
	var xs, ys []float64
	for i := range x {
		if x[i] >= lo && x[i] <= hi {
			xs = append(xs, x[i])
			ys = append(ys, y[i])
		}
	}
	return Spearman(xs, ys)
}
