package stats

import (
	"math"
	"testing"
	"testing/quick"

	"steamstudy/internal/randx"
)

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := map[float64]float64{
		0:   1,
		50:  5.5,
		100: 10,
		25:  3.25,
		90:  9.1,
	}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileSingleAndEmpty(t *testing.T) {
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Fatalf("single-element percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile not NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentilesMatchesSingle(t *testing.T) {
	r := randx.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	multi := Percentiles(xs, 50, 80, 90, 95, 99)
	for i, p := range []float64{50, 80, 90, 95, 99} {
		if single := Percentile(xs, p); single != multi[i] {
			t.Fatalf("Percentiles mismatch at %v: %v vs %v", p, multi[i], single)
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	r := randx.New(2)
	err := quick.Check(func(seed uint32) bool {
		rr := randx.New(int64(seed))
		n := rr.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		p := r.Float64() * 100
		v := Percentile(xs, p)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return v >= min && v <= max
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSumKahan(t *testing.T) {
	// 1 + 1e-16 * 1e16 should not lose the small terms.
	xs := make([]float64, 1e4+1)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-12
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("Kahan sum %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("bad summary bounds: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", s.Mean)
	}
	if math.Abs(s.StdDev-2) > 1e-12 {
		t.Fatalf("stddev %v, want 2", s.StdDev)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Fatalf("empty summary: %+v", empty)
	}
}

func TestModeTiesAndValues(t *testing.T) {
	if got := Mode([]float64{1, 2, 2, 3, 3}); got != 2 {
		t.Fatalf("Mode tie-break = %v, want 2", got)
	}
	if got := Mode([]float64{12, 12, 24, 5}); got != 12 {
		t.Fatalf("Mode = %v, want 12", got)
	}
	if !math.IsNaN(Mode(nil)) {
		t.Fatal("empty mode not NaN")
	}
}

func TestTopShareParetoRule(t *testing.T) {
	// In a population where one of five users holds 80 of 100 units, the
	// top 20% share is 0.8 exactly.
	xs := []float64{5, 5, 5, 5, 80}
	if got := TopShare(xs, 0.20); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("TopShare = %v, want 0.8", got)
	}
	if got := TopShare(xs, 1.0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TopShare(1.0) = %v", got)
	}
	if got := TopShare([]float64{0, 0}, 0.5); got != 0 {
		t.Fatalf("TopShare of zeros = %v", got)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Fatalf("Gini of equal values = %v, want 0", g)
	}
	// One person owns everything among n=4: G = (n-1)/n = 0.75.
	if g := Gini([]float64{0, 0, 0, 10}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("Gini of total concentration = %v, want 0.75", g)
	}
}

func TestZeroFractionAndNonZero(t *testing.T) {
	xs := []float64{0, 1, 0, 2, 0}
	if zf := ZeroFraction(xs); math.Abs(zf-0.6) > 1e-12 {
		t.Fatalf("ZeroFraction = %v", zf)
	}
	nz := NonZero(xs)
	if len(nz) != 2 || nz[0] != 1 || nz[1] != 2 {
		t.Fatalf("NonZero = %v", nz)
	}
}

func TestRanksWithTies(t *testing.T) {
	ranks := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(ranks[i]-want[i]) > 1e-12 {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestSpearmanPerfectMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 100, 1000, 10000, 100000}
	if rho := Spearman(x, y); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("Spearman of monotone data = %v", rho)
	}
	yRev := []float64{5, 4, 3, 2, 1}
	if rho := Spearman(x, yRev); math.Abs(rho+1) > 1e-12 {
		t.Fatalf("Spearman of reversed data = %v", rho)
	}
}

func TestSpearmanInvariantUnderMonotoneTransform(t *testing.T) {
	r := randx.New(3)
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = 0.7*x[i] + 0.3*r.NormFloat64()
	}
	before := Spearman(x, y)
	// exp is monotone: rank correlation must be unchanged.
	yexp := make([]float64, n)
	for i := range y {
		yexp[i] = math.Exp(y[i])
	}
	after := Spearman(x, yexp)
	if math.Abs(before-after) > 1e-12 {
		t.Fatalf("Spearman changed under monotone transform: %v vs %v", before, after)
	}
}

func TestSpearmanRankedBitIdenticalToSpearman(t *testing.T) {
	// Regression for the §7 rank-caching path: correlating precomputed
	// mid-ranks must return exactly — bit for bit, not approximately —
	// what Spearman returns on the raw columns, including on count data
	// riddled with ties.
	r := randx.New(5)
	n := 3000
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = float64(r.Intn(40)) // heavy ties, like friend counts
		y[i] = x[i]*0.5 + float64(r.Intn(25))
		z[i] = r.NormFloat64()
	}
	rx, ry, rz := Ranks(x), Ranks(y), Ranks(z)
	pairs := [][4][]float64{
		{x, y, rx, ry},
		{x, z, rx, rz},
		{y, z, ry, rz},
	}
	for i, p := range pairs {
		full, ranked := Spearman(p[0], p[1]), SpearmanRanked(p[2], p[3])
		if full != ranked {
			t.Fatalf("pair %d: SpearmanRanked %v != Spearman %v", i, ranked, full)
		}
	}
}

func TestSpearmanRankedDegenerateInputs(t *testing.T) {
	if !math.IsNaN(SpearmanRanked([]float64{1, 2}, []float64{1})) {
		t.Fatal("length mismatch should be NaN")
	}
	if !math.IsNaN(SpearmanRanked([]float64{1}, []float64{1})) {
		t.Fatal("single point should be NaN")
	}
}

func TestSpearmanIndependentNearZero(t *testing.T) {
	r := randx.New(4)
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	if rho := Spearman(x, y); math.Abs(rho) > 0.05 {
		t.Fatalf("Spearman of independent data = %v", rho)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("Pearson of constant x not NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Fatal("Pearson of single point not NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1, 2, 3})) {
		t.Fatal("Pearson of mismatched lengths not NaN")
	}
}

func TestCorrelationStrengthScale(t *testing.T) {
	cases := map[float64]string{
		0.09:  "very weak",
		0.34:  "weak",
		0.45:  "moderate",
		0.77:  "strong",
		-0.85: "very strong",
	}
	for rho, want := range cases {
		if got := CorrelationStrength(rho); got != want {
			t.Fatalf("CorrelationStrength(%v) = %q, want %q", rho, got, want)
		}
	}
}

func TestSpearmanSubset(t *testing.T) {
	x := []float64{1, 2, 3, 100, 200}
	y := []float64{1, 2, 3, -50, -100}
	full := Spearman(x, y)
	sub := SpearmanSubset(x, y, 0, 10)
	if math.Abs(sub-1) > 1e-12 {
		t.Fatalf("subset Spearman = %v, want 1", sub)
	}
	if full >= sub {
		t.Fatalf("full Spearman %v should be below subset %v", full, sub)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	pts := EmpiricalCDF([]float64{1, 1, 2, 4})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCCDFStartsAtOne(t *testing.T) {
	pts := CCDF([]float64{3, 1, 2, 2})
	if pts[0].X != 1 || pts[0].P != 1 {
		t.Fatalf("CCDF first point = %v", pts[0])
	}
	if last := pts[len(pts)-1]; last.X != 3 || math.Abs(last.P-0.25) > 1e-12 {
		t.Fatalf("CCDF last point = %v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P > pts[i-1].P {
			t.Fatal("CCDF not non-increasing")
		}
	}
}

func TestLogBinsConservesCount(t *testing.T) {
	r := randx.New(5)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Pareto(2.0, 1)
	}
	bins := LogBins(xs, 5)
	total := 0
	for _, b := range bins {
		if b.Lo >= b.Hi {
			t.Fatalf("degenerate bin %+v", b)
		}
		total += b.Count
	}
	if total != len(xs) {
		t.Fatalf("binned count %d, want %d", total, len(xs))
	}
}

func TestLogBinsSkipsNonPositive(t *testing.T) {
	bins := LogBins([]float64{0, -1, 10, 100}, 2)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 2 {
		t.Fatalf("non-positive values not skipped: count %d", total)
	}
}

func TestIntHistogram(t *testing.T) {
	h := IntHistogram([]float64{1, 1, 2, 250, 250, 250})
	if h[1] != 2 || h[2] != 1 || h[250] != 3 {
		t.Fatalf("IntHistogram = %v", h)
	}
}

func TestLorenzCurveEndpoints(t *testing.T) {
	pts := LorenzCurve([]float64{1, 2, 3, 4}, 4)
	if pts[0].X != 0 || pts[0].P != 0 {
		t.Fatalf("Lorenz start = %v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.X != 1 || math.Abs(last.P-1) > 1e-12 {
		t.Fatalf("Lorenz end = %v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatal("Lorenz curve not monotone")
		}
	}
}
