// Package stats provides the descriptive statistics the paper reports:
// percentiles (Table 3), Spearman rank correlations (§7, §9), CDF/CCDF
// series (Figs 6-8), logarithmic histogram binning (Figs 2, 4, 7, 8), and
// concentration shares ("top 20 % of users account for 82.4 % of playtime").
package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0, 100]) of xs using the
// linear-interpolation definition (type 7, the numpy/Excel default).
// xs need not be sorted; it is not modified. Returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for already-sorted input, avoiding the
// copy and sort. The slice must be ascending.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	h := p / 100 * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Percentiles evaluates several percentiles with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = PercentileSorted(sorted, p)
	}
	return out
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensation, so totals over
// millions of playtime minutes stay exact.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mode returns the most frequent value of an integer-valued sample
// (ties broken toward the smaller value). The paper reports modes for
// achievement counts and completion rates.
func Mode(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	counts := make(map[float64]int, len(xs)/4+1)
	for _, x := range xs {
		counts[x]++
	}
	best, bestN := math.Inf(1), -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// Summary bundles the descriptive statistics used across the report.
type Summary struct {
	N      int
	Sum    float64
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	StdDev float64
	P80    float64
	P90    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary in one pass plus one sort.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.Median, s.Min, s.Max, s.StdDev = nan, nan, nan, nan, nan
		s.P80, s.P90, s.P95, s.P99 = nan, nan, nan, nan
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Sum = Sum(sorted)
	s.Mean = s.Sum / float64(len(sorted))
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = PercentileSorted(sorted, 50)
	s.P80 = PercentileSorted(sorted, 80)
	s.P90 = PercentileSorted(sorted, 90)
	s.P95 = PercentileSorted(sorted, 95)
	s.P99 = PercentileSorted(sorted, 99)
	ss := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(sorted)))
	return s
}

// TopShare returns the fraction of the total of xs contributed by the top
// frac (by value) of the entries — e.g. TopShare(playtimes, 0.20) answers
// "the top 20 % of users account for what share of total playtime?".
func TopShare(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	total := Sum(sorted)
	if total == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(len(sorted))))
	if k <= 0 {
		return 0
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	top := Sum(sorted[len(sorted)-k:])
	return top / total
}

// Gini returns the Gini coefficient of the (non-negative) sample, a scalar
// measure of the concentration the paper describes via Pareto shares.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	total := Sum(sorted)
	if total == 0 {
		return 0
	}
	var cum float64
	for i, x := range sorted {
		cum += float64(i+1) * x
	}
	return 2*cum/(float64(n)*total) - (float64(n)+1)/float64(n)
}

// ZeroFraction returns the fraction of entries equal to zero.
func ZeroFraction(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	z := 0
	for _, x := range xs {
		if x == 0 {
			z++
		}
	}
	return float64(z) / float64(len(xs))
}

// NonZero returns the subset of xs that is strictly positive.
func NonZero(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}

// CDFPoint is one (x, P(X <= x)) coordinate of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// EmpiricalCDF returns the empirical CDF of xs evaluated at every distinct
// value, ascending.
func EmpiricalCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CDFPoint
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(j) / n})
		i = j
	}
	return out
}

// LorenzCurve returns points of the Lorenz curve (population share p,
// value share L(p)) at k+1 evenly spaced population shares; used for the
// Fig 6 concentration view.
func LorenzCurve(xs []float64, k int) []CDFPoint {
	if len(xs) == 0 || k <= 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	total := Sum(sorted)
	out := make([]CDFPoint, 0, k+1)
	cum := 0.0
	next := 0
	for i := 0; i <= k; i++ {
		p := float64(i) / float64(k)
		target := int(p * float64(len(sorted)))
		for next < target {
			cum += sorted[next]
			next++
		}
		share := 0.0
		if total > 0 {
			share = cum / total
		}
		out = append(out, CDFPoint{X: p, P: share})
	}
	return out
}
