package stats

import (
	"math"
	"sort"
)

// Bin is one histogram bin over [Lo, Hi) with Count entries. Center is the
// geometric mean of the edges for log bins, the arithmetic mean otherwise.
type Bin struct {
	Lo, Hi float64
	Center float64
	Count  int
	// Density is Count normalized by total count and bin width, suitable
	// for plotting against a pdf.
	Density float64
}

// LogBins builds a logarithmically binned histogram of the strictly
// positive entries of xs with the given number of bins per decade. This
// is the standard presentation for the paper's long-tailed "distribution
// of X" figures (Figs 2, 4, 7, 8): linear binning undersamples the tail.
func LogBins(xs []float64, binsPerDecade int) []Bin {
	if binsPerDecade <= 0 {
		binsPerDecade = 10
	}
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return nil
	}
	sort.Float64s(pos)
	lo := pos[0]
	hi := pos[len(pos)-1]
	if lo == hi {
		return []Bin{{Lo: lo, Hi: hi, Center: lo, Count: len(pos), Density: 1}}
	}
	logLo := math.Floor(math.Log10(lo) * float64(binsPerDecade))
	logHi := math.Ceil(math.Log10(hi)*float64(binsPerDecade)) + 1
	nBins := int(logHi - logLo)
	bins := make([]Bin, nBins)
	for i := range bins {
		l := math.Pow(10, (logLo+float64(i))/float64(binsPerDecade))
		h := math.Pow(10, (logLo+float64(i+1))/float64(binsPerDecade))
		bins[i].Lo = l
		bins[i].Hi = h
		bins[i].Center = math.Sqrt(l * h)
	}
	total := len(pos)
	j := 0
	for _, x := range pos {
		for j < nBins-1 && x >= bins[j].Hi {
			j++
		}
		bins[j].Count++
	}
	out := bins[:0]
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		b.Density = float64(b.Count) / (float64(total) * (b.Hi - b.Lo))
		out = append(out, b)
	}
	return out
}

// IntHistogram counts occurrences of each integer value of xs (values are
// truncated toward zero). Used for exact per-value plots such as the
// friend-count distribution where the 250/300 cap dips must be visible at
// single-value resolution.
func IntHistogram(xs []float64) map[int]int {
	h := make(map[int]int)
	for _, x := range xs {
		h[int(x)]++
	}
	return h
}

// CCDF returns the complementary CDF P(X >= x) evaluated at every distinct
// value of xs, ascending in x. (The ">= x" convention keeps the first
// point at probability 1, matching the log-log CCDF plots in the
// measurement literature.)
func CCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CDFPoint
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(len(sorted)-i) / n})
		i = j
	}
	return out
}
