package query

import (
	"context"
	"sync/atomic"
	"time"
)

// Admission control: the overload policy's front door (DESIGN.md §15).
// A fixed pool of in-flight slots bounds how much work the data routes
// may hold at once; requests that find the pool full wait briefly in a
// FIFO queue (blocked channel sends wake in arrival order) and are shed
// with 503 + Retry-After when the queue deadline passes or the queue
// itself grows past queueDepthFactor x the slot count. Shedding early
// and cheaply is the point: a bounded server answers *someone* quickly
// instead of queueing unboundedly and answering everyone late.

// Admission defaults. DefMaxInflight is deliberately generous for a
// CPU-bound cache-backed server — it exists to stop pile-ups, not to
// pace the steady state. DefQueueWait is long enough to absorb a burst
// one service-time deep and short enough that a shed response beats a
// client-side timeout.
const (
	DefMaxInflight  = 256
	DefQueueWait    = 100 * time.Millisecond
	DefRouteTimeout = 5 * time.Second

	// queueDepthFactor bounds the wait queue's length relative to the
	// slot count: past that, later arrivals could not be served within
	// the queue deadline anyway, so they are shed immediately.
	queueDepthFactor = 4

	// DefRetryAfter is the backoff advertised on shed responses. One
	// second is one full queue drain plus headroom; query.Client honors
	// it with a single bounded retry.
	DefRetryAfter = 1 * time.Second
)

// errShed and errDeadline are the two overload outcomes; both map to
// 503 + Retry-After so clients treat them uniformly, but they keep
// distinct envelope codes and counters because their remedies differ
// (shed = too many concurrent requests, deadline = this request waited
// past its route budget).
var (
	errShed = &apiError{
		status:     503,
		code:       "overloaded",
		msg:        "server at capacity; retry after the advertised delay",
		retryAfter: DefRetryAfter,
	}
	errDeadline = &apiError{
		status:     503,
		code:       "deadline_exceeded",
		msg:        "request exceeded its route deadline while waiting; retry after the advertised delay",
		retryAfter: DefRetryAfter,
	}
)

// admission is the in-flight slot pool. A nil *admission admits
// everything (unlimited mode); all methods are nil-safe.
type admission struct {
	slots     chan struct{}
	queueWait time.Duration
	maxQueue  int64
	queued    atomic.Int64
	inflight  atomic.Int64
}

// newAdmission sizes the pool. maxInflight <= 0 means unlimited (nil);
// queueWait <= 0 sheds immediately when the pool is full.
func newAdmission(maxInflight int, queueWait time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	return &admission{
		slots:     make(chan struct{}, maxInflight),
		queueWait: queueWait,
		maxQueue:  int64(maxInflight) * queueDepthFactor,
	}
}

// acquire claims one in-flight slot, waiting up to queueWait (bounded
// further by ctx) in FIFO order. It returns nil on admission — the
// caller must release() — and errShed when the wait queue is already
// past its depth bound, the queue deadline expires, or ctx is done.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.queueWait <= 0 {
		return errShed
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errShed
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.queueWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-t.C:
		return errShed
	case <-ctx.Done():
		return errShed
	}
}

// release returns a slot claimed by acquire.
func (a *admission) release() {
	if a == nil {
		return
	}
	a.inflight.Add(-1)
	<-a.slots
}

// Inflight reports currently admitted requests (the query_inflight
// gauge).
func (a *admission) Inflight() int64 {
	if a == nil {
		return 0
	}
	return a.inflight.Load()
}

// Queued reports requests waiting for a slot (the query_queued gauge).
func (a *admission) Queued() int64 {
	if a == nil {
		return 0
	}
	return a.queued.Load()
}
