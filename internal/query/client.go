package query

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client request-shaping defaults. The timeout exists so a programmatic
// caller against a stalled server fails in bounded time instead of
// hanging a goroutine; the Retry-After cap bounds how long a single 503
// can make one call sleep, whatever the server advertises.
const (
	DefClientTimeout = 15 * time.Second
	maxClientBackoff = 2 * time.Second
	defClientBackoff = 100 * time.Millisecond
)

// Client is a typed consumer of the /v1 API. The zero HTTPClient means
// http.DefaultClient. Methods return *APIError for any enveloped error
// response, so callers can switch on the status/code without parsing.
//
// Every request carries a deadline (Timeout, default DefClientTimeout),
// and a 503 — the server shedding load or mid-reload — is retried once
// after honoring its Retry-After header (capped at 2s), so callers
// survive shedding windows without writing their own backoff loop.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080" — no
	// trailing slash, no /v1 (the client appends it).
	BaseURL    string
	HTTPClient *http.Client
	// Timeout bounds each request attempt, retry included (0 =
	// DefClientTimeout, negative = none).
	Timeout time.Duration
	// NoRetry disables the single bounded retry on 503.
	NoRetry bool
}

// APIError is the client-side view of the server's error envelope.
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("query: %d %s: %s", e.Status, e.Code, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do performs one request and decodes either the success body into out
// or the error envelope into an *APIError. The whole call — both
// attempts and the backoff sleep between them — runs under one
// deadline, so the retry can never stretch a call past ~Timeout.
func (c *Client) do(method, path string, out any) error {
	ctx := context.Background()
	timeout := c.Timeout
	if timeout == 0 {
		timeout = DefClientTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	body, status, retryAfter, err := c.attempt(ctx, method, path)
	if err == nil && status == http.StatusServiceUnavailable && !c.NoRetry {
		backoff := defClientBackoff
		if retryAfter > 0 {
			backoff = retryAfter
		}
		if backoff > maxClientBackoff {
			backoff = maxClientBackoff
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
			body, status, _, err = c.attempt(ctx, method, path)
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		var envelope ErrorBody
		if json.Unmarshal(body, &envelope) == nil && envelope.Error.Status != 0 {
			return &APIError{Status: envelope.Error.Status, Code: envelope.Error.Code, Message: envelope.Error.Message}
		}
		return &APIError{Status: status, Code: "http_error", Message: strings.TrimSpace(string(body))}
	}
	if s, ok := out.(*string); ok {
		*s = string(body)
		return nil
	}
	return json.Unmarshal(body, out)
}

// attempt fires one HTTP request, returning the body, status, and any
// parsed Retry-After delay.
func (c *Client) attempt(ctx context.Context, method, path string) (body []byte, status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs >= 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return body, resp.StatusCode, retryAfter, nil
}

// Snapshot fetches the serving snapshot's identity and totals.
func (c *Client) Snapshot() (SnapshotInfo, error) {
	var out SnapshotInfo
	err := c.do("GET", "/v1/snapshot", &out)
	return out, err
}

// Experiments fetches the experiment index.
func (c *Client) Experiments() ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	err := c.do("GET", "/v1/experiments", &out)
	return out, err
}

// Experiment renders one experiment; the returned string is byte-for-
// byte the steamstudy CLI's output for the same snapshot.
func (c *Client) Experiment(id string) (string, error) {
	var out string
	err := c.do("GET", "/v1/experiments/"+url.PathEscape(id), &out)
	return out, err
}

// Percentiles fetches percentile points of one attribute. A nil ps uses
// the server default grid; nonZero filters to positive entries first.
func (c *Client) Percentiles(attr string, ps []float64, nonZero bool) (PercentilesResult, error) {
	q := url.Values{}
	if len(ps) > 0 {
		parts := make([]string, len(ps))
		for i, p := range ps {
			parts[i] = strconv.FormatFloat(p, 'g', -1, 64)
		}
		q.Set("p", strings.Join(parts, ","))
	}
	if nonZero {
		q.Set("nonzero", "true")
	}
	path := "/v1/percentiles/" + url.PathEscape(attr)
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out PercentilesResult
	err := c.do("GET", path, &out)
	return out, err
}

// Genres fetches every genre slice, most-owned first.
func (c *Client) Genres() ([]GenreSlice, error) {
	var out []GenreSlice
	err := c.do("GET", "/v1/genres", &out)
	return out, err
}

// Genre fetches one genre's slice (name matching is case-insensitive).
func (c *Client) Genre(name string) (GenreSlice, error) {
	var out GenreSlice
	err := c.do("GET", "/v1/genres/"+url.PathEscape(name), &out)
	return out, err
}

// TopGames fetches the top-n games ranked by "owners", "players",
// "playtime" or "value" ("" means owners; n<=0 means the server default).
func (c *Client) TopGames(by string, n int) ([]GameRank, error) {
	q := url.Values{}
	if by != "" {
		q.Set("by", by)
	}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	path := "/v1/games/top"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out []GameRank
	err := c.do("GET", path, &out)
	return out, err
}

// TopGroups fetches the top-n groups by member count (n<=0 means the
// server default).
func (c *Client) TopGroups(n int) ([]GroupRank, error) {
	path := "/v1/groups/top"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out []GroupRank
	err := c.do("GET", path, &out)
	return out, err
}

// User fetches one account's behavioral summary.
func (c *Client) User(steamID uint64) (UserInfo, error) {
	var out UserInfo
	err := c.do("GET", "/v1/users/"+strconv.FormatUint(steamID, 10), &out)
	return out, err
}

// Friends fetches one account's friend list.
func (c *Client) Friends(steamID uint64) (FriendsResult, error) {
	var out FriendsResult
	err := c.do("GET", "/v1/users/"+strconv.FormatUint(steamID, 10)+"/friends", &out)
	return out, err
}

// Stats fetches the live serving counters (uncached on the server).
func (c *Client) Stats() (StatsInfo, error) {
	var out StatsInfo
	err := c.do("GET", "/v1/stats", &out)
	return out, err
}

// Reload triggers a hot snapshot reload and reports the new snapshot.
func (c *Client) Reload() (ReloadResult, error) {
	var out ReloadResult
	err := c.do("POST", "/v1/admin/reload", &out)
	return out, err
}
