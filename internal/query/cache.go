// Package query is the read-side of the study: an HTTP server that loads
// a manifest-verified snapshot and serves the paper's tables and figures
// plus ad-hoc queries (percentiles, genre slices, top-K rankings,
// user/friend lookups) under a versioned /v1 API. Responses are cached in
// a sharded read-through result cache keyed on the request, conditional
// GETs revalidate against an ETag derived from the snapshot manifest's
// SHA-256, and the whole snapshot can be hot-reloaded without dropping a
// request. See DESIGN.md §14.
package query

import (
	"context"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// cacheShards is the fixed shard count. Shard selection hashes the full
// cache key, so contention on the per-shard mutex is 1/cacheShards of a
// single-lock design under a uniform query mix.
const cacheShards = 16

// cached is one materialized response body: exactly the bytes and
// content type the handler produced. Status is always 200 — error
// responses are never cached (a 404 for a mistyped SteamID must not
// occupy space that could hold a real result, and a transient 500 must
// not become sticky).
type cached struct {
	body  []byte
	ctype string
}

// entry is one cache slot. It is published to the shard map before the
// fill function runs; concurrent requests for the same key find it and
// block on ready instead of computing the same result again (in-flight
// collapsing). After ready is closed either val is set (success, entry
// stays) or err is set (failure, entry already removed from the map so
// the next request retries).
type entry struct {
	ready chan struct{}
	val   cached
	err   error
	// hits counts completed lookups that landed on this entry; reload's
	// cache warming replays the hottest keys into the successor state.
	hits atomic.Int64
}

type shard struct {
	mu sync.Mutex
	m  map[string]*entry
}

// cache is the sharded read-through result cache. One cache belongs to
// exactly one loaded snapshot (it lives inside the server's atomically
// swapped state), so invalidation-on-reload is structural: swapping the
// state discards the whole cache with it, and no key ever needs the
// snapshot identity mixed in.
type cache struct {
	seed     maphash.Seed
	maxShard int // per-shard entry cap; <=0 means unbounded
	shards   [cacheShards]shard
}

// newCache builds a cache bounding total residency to roughly maxEntries
// (split evenly across shards, minimum one per shard).
func newCache(maxEntries int) *cache {
	c := &cache{seed: maphash.MakeSeed()}
	if maxEntries > 0 {
		c.maxShard = (maxEntries + cacheShards - 1) / cacheShards
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*entry)
	}
	return c
}

func (c *cache) shardFor(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)%cacheShards]
}

// do returns the cached value for key, computing it with fill on a miss.
// The second result reports whether the value came from cache — true for
// both a completed entry and a wait on another request's in-flight fill
// (the work was not repeated, which is what the hit/miss metrics are
// meant to count). Errors from fill propagate to every collapsed waiter
// but are not cached. A waiter parked on someone else's in-flight fill
// gives up when ctx expires (its route deadline) — the fill itself keeps
// running to completion for the remaining waiters.
func (c *cache) do(ctx context.Context, key string, fill func() (cached, error)) (cached, bool, error) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return cached{}, false, errDeadline
		}
		e.hits.Add(1)
		return e.val, true, e.err
	}
	e := &entry{ready: make(chan struct{})}
	if c.maxShard > 0 && len(sh.m) >= c.maxShard {
		sh.evictOneLocked()
	}
	sh.m[key] = e
	sh.mu.Unlock()

	val, err := fill()
	if err != nil {
		// Publish the error to waiters already parked on this entry, but
		// remove it so later requests retry the fill.
		sh.mu.Lock()
		if sh.m[key] == e {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
		e.err = err
		close(e.ready)
		return cached{}, false, err
	}
	e.val = val
	close(e.ready)
	return val, false, nil
}

// evictOneLocked drops one completed entry to make room. Map iteration
// order is effectively random, so this is random replacement — constant
// time, no recency bookkeeping on the hit path (which stays lock-hold-
// only-for-the-lookup), and good enough for a cache whose working set is
// expected to fit. In-flight entries are skipped: evicting one would
// detach waiters from the fill that will complete their entry.
func (sh *shard) evictOneLocked() {
	for k, e := range sh.m {
		select {
		case <-e.ready:
			delete(sh.m, k)
			return
		default:
		}
	}
}

// len reports total resident entries (testing and /v1/stats).
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// hottest returns up to n resident keys ordered by descending hit count
// (key order breaks ties, so the result is deterministic for a given
// hit distribution). Only completed entries qualify — an in-flight fill
// has no proven value yet. Reload replays these into the new state's
// cache before the swap, so the hot working set never goes cold.
func (c *cache) hottest(n int) []string {
	if n <= 0 {
		return nil
	}
	type hot struct {
		key  string
		hits int64
	}
	var all []hot
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			select {
			case <-e.ready:
				if e.err == nil {
					all = append(all, hot{k, e.hits.Load()})
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].hits != all[j].hits {
			return all[i].hits > all[j].hits
		}
		return all[i].key < all[j].key
	})
	if n > len(all) {
		n = len(all)
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = all[i].key
	}
	return keys
}
