package query

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"steamstudy/internal/core"
	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
)

// Config configures a Server.
type Config struct {
	// SnapshotPath is the snapshot file to serve. Reload re-reads it, so
	// publishing a new snapshot is: save it over the path (dataset.Save is
	// atomic), then SIGHUP or POST /v1/admin/reload.
	SnapshotPath string
	// Workers bounds the snapshot-decode and analysis worker pools
	// (0 = one per CPU, 1 = serial), exactly like the other binaries.
	Workers int
	// CacheEntries caps the result cache's resident entries (split across
	// shards). 0 means DefCacheEntries; negative means unbounded.
	CacheEntries int
	// Obs, when non-nil, receives the server's counters (prefix "query_"),
	// per-route request counters and latency histograms.
	Obs *obs.Registry
	// Health, when non-nil, gains a "snapshot" readiness check that fails
	// until the first successful load — so /healthz on the admin mux (and
	// the server's own /healthz) gate traffic on snapshot readiness.
	Health *obs.Health

	// MaxInflight bounds concurrently admitted data-route requests
	// (0 = DefMaxInflight, negative = unlimited). Conditional GETs that
	// 304, /v1/stats, /v1/admin/reload and /healthz bypass admission:
	// revalidation and the control plane stay alive under overload.
	MaxInflight int
	// QueueWait is how long a request may wait (FIFO) for a slot before
	// being shed with 503 + Retry-After (0 = DefQueueWait, negative =
	// shed immediately when the pool is full).
	QueueWait time.Duration
	// RouteTimeout is the per-request deadline budget applied via
	// context (0 = DefRouteTimeout, negative = none). Renderer routes
	// get renderTimeoutScale x this; a request whose wait on a collapsed
	// in-flight fill outlives the deadline is shed.
	RouteTimeout time.Duration
	// WarmKeys is how many of the outgoing cache's hottest keys Reload
	// replays into the new state before swapping it in (0 = DefWarmKeys,
	// negative = no warming).
	WarmKeys int

	// testFillDelay, when set (tests only), runs inside every cache fill
	// before the handler — the seam the shedding and deadline tests use
	// to hold slots open deterministically.
	testFillDelay func(route string)
}

// DefCacheEntries is the default result-cache capacity. The full ad-hoc
// query surface of a snapshot is a few hundred distinct URLs plus
// whatever user lookups recur; 4096 entries holds all of it with room
// for a long tail while bounding worst-case residency.
const DefCacheEntries = 4096

// DefWarmKeys is the default reload warming depth: enough for every hot
// board/table plus the head of the per-user tail, small enough that
// warming adds milliseconds, not seconds, to a reload.
const DefWarmKeys = 64

// renderTimeoutScale widens the deadline budget for renderer-backed
// routes (full table/figure renders are the API's heaviest fills).
const renderTimeoutScale = 4

// Metrics are the server's counters, adopted into Config.Obs under the
// "query_" prefix.
type Metrics struct {
	Requests       obs.Counter
	CacheHits      obs.Counter
	CacheMisses    obs.Counter
	NotModified    obs.Counter
	Errors         obs.Counter
	Reloads        obs.Counter
	ReloadFailures obs.Counter
	// ShedTotal counts requests refused at admission (queue full or
	// queue deadline exceeded); DeadlineTotal counts admitted requests
	// shed because their route deadline expired while they waited on a
	// collapsed fill; WarmedTotal counts cache keys replayed by reload
	// warming.
	ShedTotal     obs.Counter
	DeadlineTotal obs.Counter
	WarmedTotal   obs.Counter
}

// state is everything derived from one loaded snapshot. It is immutable
// after construction (the lazy aggregates are sync.Once-guarded) and
// swapped atomically on reload; in-flight requests keep the state they
// started with, so a reload never torn-reads under a handler.
type state struct {
	study *core.Study
	snap  *dataset.Snapshot
	// sha is the snapshot's identity: the manifest's whole-file SHA-256
	// when one was present, else the content signature. etag is its
	// strong-validator form (quoted).
	sha  string
	sig  string
	etag string
	// cache belongs to this state: swapping states discards it wholesale,
	// which is the entire invalidation protocol.
	cache *cache

	userIdx     map[uint64]int32
	gamesOnce   sync.Once
	gamesAgg    []GameRank
	genresOnce  sync.Once
	genreSlices map[string]*GenreSlice
	genreNames  []string
}

// Server serves the /v1 API over a hot-swappable snapshot. Create with
// New (unloaded; endpoints answer 503 until the first Reload) or Open
// (loads eagerly, failing fast on a bad snapshot).
type Server struct {
	cfg     Config
	metrics Metrics
	adm     *admission
	cur     atomic.Pointer[state]
	// reloadMu serializes Reload: concurrent triggers (SIGHUP racing the
	// admin endpoint) queue rather than loading the file twice.
	reloadMu sync.Mutex
	mux      *http.ServeMux
	// fillMux mirrors the cacheable routes for reload warming: its
	// handlers fill the cache of the state carried in the request
	// context, bypassing admission, ETags and response writing.
	fillMux *http.ServeMux
	routes  map[string]*routeMetrics
}

type routeMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

// routeNames lists the per-route metric labels; each route r gets a
// query_requests:r counter and a query_latency:r histogram.
var routeNames = []string{
	"snapshot", "experiments", "experiment", "percentiles",
	"genres", "genre", "games_top", "groups_top",
	"user", "friends", "stats", "reload",
}

// New builds an unloaded server: the mux and metrics are live, /healthz
// reports unready, and every /v1 endpoint answers 503 until Reload
// succeeds. Use it when the process should come up and expose its admin
// surface even while the first snapshot load is still running (or
// failing); use Open for load-or-die startup.
func New(cfg Config) *Server {
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = DefCacheEntries
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefMaxInflight
	}
	if cfg.QueueWait == 0 {
		cfg.QueueWait = DefQueueWait
	}
	if cfg.RouteTimeout == 0 {
		cfg.RouteTimeout = DefRouteTimeout
	}
	if cfg.WarmKeys == 0 {
		cfg.WarmKeys = DefWarmKeys
	}
	s := &Server{cfg: cfg, routes: make(map[string]*routeMetrics, len(routeNames))}
	s.adm = newAdmission(cfg.MaxInflight, cfg.QueueWait)
	cfg.Obs.RegisterCounters("query_", &s.metrics)
	cfg.Obs.GaugeFunc("query_inflight", func() float64 { return float64(s.adm.Inflight()) })
	cfg.Obs.GaugeFunc("query_queued", func() float64 { return float64(s.adm.Queued()) })
	for _, name := range routeNames {
		c := cfg.Obs.Counter("query_requests:" + name)
		h := cfg.Obs.Histogram("query_latency:"+name, obs.DefLatencyBuckets())
		s.routes[name] = &routeMetrics{requests: c, latency: h}
	}
	if cfg.Health != nil {
		cfg.Health.Register("snapshot", func() error {
			if s.cur.Load() == nil {
				return fmt.Errorf("snapshot not loaded")
			}
			return nil
		})
	}
	s.mux = s.buildMux()
	return s
}

// Open is New plus a synchronous first Reload; it fails instead of
// returning a server that would 503 everything.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload (re-)loads Config.SnapshotPath, verifies it against its
// manifest, and atomically swaps it in with a fresh result cache.
// Failure leaves the previous state serving untouched — a bad snapshot
// push degrades to "old data plus an error in the reload response", not
// an outage. Concurrent calls serialize.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	snap, err := dataset.Load(s.cfg.SnapshotPath, dataset.WithWorkers(s.cfg.Workers))
	if err != nil {
		s.metrics.ReloadFailures.Inc()
		return err
	}
	man, err := dataset.ReadManifest(s.cfg.SnapshotPath)
	if err != nil {
		s.metrics.ReloadFailures.Inc()
		return err
	}
	sig := snap.ContentSignature()
	sha := sig
	if man != nil {
		sha = man.FileSHA256
	}
	study := core.FromSnapshot(snap)
	study.SetWorkers(s.cfg.Workers)
	st := &state{
		study:   study,
		snap:    snap,
		sha:     sha,
		sig:     sig,
		etag:    `"` + sha + `"`,
		cache:   newCache(s.cfg.CacheEntries),
		userIdx: snap.UserIndex(),
	}
	s.warm(st)
	s.cur.Store(st)
	s.metrics.Reloads.Inc()
	return nil
}

// warmStateKey carries the state a warming fill should populate —
// s.cur still points at the outgoing state while warming runs.
type warmStateKey struct{}

// warm replays the hottest WarmKeys keys of the outgoing cache into the
// incoming state's cache, so the post-reload working set starts hot
// instead of stampeding the renderer. It runs before the swap: live
// traffic keeps hitting the old warm state until the new one is ready.
// Fill errors are ignored — a key that no longer resolves (say a user
// absent from the new snapshot) simply isn't warmed; errors were never
// cacheable anyway.
func (s *Server) warm(st *state) {
	old := s.cur.Load()
	if old == nil || s.cfg.WarmKeys <= 0 {
		return
	}
	ctx := context.WithValue(context.Background(), warmStateKey{}, st)
	for _, key := range old.cache.hottest(s.cfg.WarmKeys) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, key, nil)
		if err != nil {
			continue
		}
		s.fillMux.ServeHTTP(discardResponse{}, req)
		s.metrics.WarmedTotal.Inc()
	}
}

// discardResponse satisfies http.ResponseWriter for warming fills,
// whose product is the cache entry, not the response.
type discardResponse struct{}

func (discardResponse) Header() http.Header         { return http.Header{} }
func (discardResponse) Write(b []byte) (int, error) { return len(b), nil }
func (discardResponse) WriteHeader(int)             {}

// ETag returns the current snapshot's strong validator ("" when
// unloaded). Clients that saw it in a response header can replay it in
// If-None-Match to revalidate any /v1 resource for free.
func (s *Server) ETag() string {
	if st := s.cur.Load(); st != nil {
		return st.etag
	}
	return ""
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is an error with a place in the envelope. retryAfter, when
// positive, becomes a Retry-After header: the server's explicit backoff
// request on shed and not-yet-loaded responses.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func badRequestf(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_request", msg: fmt.Sprintf(format, args...)}
}

func notFoundf(format string, args ...any) *apiError {
	return &apiError{status: http.StatusNotFound, code: "not_found", msg: fmt.Sprintf(format, args...)}
}

var errUnavailable = &apiError{
	status:     http.StatusServiceUnavailable,
	code:       "unavailable",
	msg:        "no snapshot loaded yet; retry after the server finishes loading",
	retryAfter: DefRetryAfter,
}

// writeError emits the envelope. Error bodies are never cached and carry
// no ETag: they must not be revalidated into permanence.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	ae, ok := err.(*apiError)
	if !ok {
		ae = &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()}
	}
	s.metrics.Errors.Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if ae.retryAfter > 0 {
		secs := int64((ae.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(ae.status)
	json.NewEncoder(w).Encode(ErrorBody{Error: ErrorInfo{Status: ae.status, Code: ae.code, Message: ae.msg}})
}

// handlerFn computes one response body from an immutable state. It runs
// at most once per (state, URL) thanks to the read-through cache.
type handlerFn func(st *state, r *http.Request) (cached, error)

// timeoutFor is the per-route deadline budget: the configured
// RouteTimeout, widened for the renderer-backed experiment route (the
// heaviest fill on the surface). Non-positive means no deadline.
func (s *Server) timeoutFor(route string) time.Duration {
	if s.cfg.RouteTimeout <= 0 {
		return 0
	}
	if route == "experiment" {
		return s.cfg.RouteTimeout * renderTimeoutScale
	}
	return s.cfg.RouteTimeout
}

// handle wires one cacheable GET route: request counting, 503 gating,
// If-None-Match short-circuit, admission control, the per-route
// deadline, cache lookup with in-flight collapsing, ETag stamping,
// latency observation. It also registers the route on fillMux so reload
// warming can replay its cache fills against a not-yet-published state.
func (s *Server) handle(pattern, route string, fn handlerFn) {
	rm := s.routes[route]
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.Requests.Inc()
		rm.requests.Inc()
		defer rm.latency.ObserveSince(start)
		st := s.cur.Load()
		if st == nil {
			s.writeError(w, errUnavailable)
			return
		}
		// The ETag is snapshot-wide, so a match means the client's copy of
		// THIS url is still current — answer 304 without touching the cache
		// and without an admission slot: revalidation costs nothing and
		// must keep working while the server sheds expensive work.
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, st.etag) {
			s.metrics.NotModified.Inc()
			w.Header().Set("ETag", st.etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if err := s.adm.acquire(r.Context()); err != nil {
			s.metrics.ShedTotal.Inc()
			s.writeError(w, err)
			return
		}
		defer s.adm.release()
		ctx := r.Context()
		if d := s.timeoutFor(route); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		val, hit, err := st.cache.do(ctx, cacheKey(r.URL), func() (cached, error) {
			if s.cfg.testFillDelay != nil {
				s.cfg.testFillDelay(route)
			}
			return fn(st, r)
		})
		if hit {
			s.metrics.CacheHits.Inc()
		} else if err == nil {
			s.metrics.CacheMisses.Inc()
		}
		if err != nil {
			if err == errDeadline {
				s.metrics.DeadlineTotal.Inc()
			}
			s.writeError(w, err)
			return
		}
		h := w.Header()
		h.Set("ETag", st.etag)
		h.Set("Content-Type", val.ctype)
		w.Write(val.body)
	})
	s.fillMux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		st, ok := r.Context().Value(warmStateKey{}).(*state)
		if !ok {
			return
		}
		st.cache.do(r.Context(), cacheKey(r.URL), func() (cached, error) {
			return fn(st, r)
		})
	})
}

// cacheKey canonicalizes a request URL: path plus the sorted query
// encoding, so ?p=50&nonzero=1 and ?nonzero=1&p=50 share an entry.
func cacheKey(u *url.URL) string {
	if u.RawQuery == "" {
		return u.Path
	}
	return u.Path + "?" + u.Query().Encode() // Encode sorts keys
}

// etagMatch implements If-None-Match for a single strong validator: "*"
// matches anything, otherwise any listed tag may match. Weak-comparison
// (W/ prefix) tags compare by opaque value, per RFC 9110 §8.8.3.2.
func etagMatch(headerVal, etag string) bool {
	if headerVal == "*" {
		return true
	}
	for _, part := range splitCSV(headerVal) {
		if t, ok := trimWeak(part); ok && t == etag {
			return true
		}
	}
	return false
}

func splitCSV(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != ',' {
			i++
		}
		part := trimSpace(s[:i])
		if part != "" {
			out = append(out, part)
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func trimWeak(s string) (string, bool) {
	if len(s) >= 2 && s[0] == 'W' && s[1] == '/' {
		s = s[2:]
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s, true
	}
	return "", false
}

// jsonBody marshals v into a cached JSON response. MarshalIndent keeps
// bodies diffable by hand; the bytes are deterministic for a given
// snapshot, which the ETag contract requires.
func jsonBody(v any) (cached, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return cached{}, err
	}
	return cached{body: append(b, '\n'), ctype: "application/json; charset=utf-8"}, nil
}

// buildMux registers every route. Method+wildcard patterns (Go 1.22
// ServeMux) give 405s for wrong methods and {id} capture for free.
func (s *Server) buildMux() *http.ServeMux {
	s.mux = http.NewServeMux()
	s.fillMux = http.NewServeMux()
	s.handle("GET /v1/snapshot", "snapshot", handleSnapshot)
	s.handle("GET /v1/experiments", "experiments", handleExperiments)
	s.handle("GET /v1/experiments/{id}", "experiment", handleExperiment)
	s.handle("GET /v1/percentiles/{attr}", "percentiles", handlePercentiles)
	s.handle("GET /v1/genres", "genres", handleGenres)
	s.handle("GET /v1/genres/{genre}", "genre", handleGenre)
	s.handle("GET /v1/games/top", "games_top", handleTopGames)
	s.handle("GET /v1/groups/top", "groups_top", handleTopGroups)
	s.handle("GET /v1/users/{id}", "user", handleUser)
	s.handle("GET /v1/users/{id}/friends", "friends", handleFriends)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Requests.Inc()
		s.writeError(w, notFoundf("no such endpoint: %s %s", r.Method, r.URL.Path))
	})
	return s.mux
}

// handleStats serves live counters, uncached and un-ETagged — its body
// changes between identical requests by design.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Inc()
	rm := s.routes["stats"]
	rm.requests.Inc()
	start := time.Now()
	defer rm.latency.ObserveSince(start)
	info := StatsInfo{
		Requests:       s.metrics.Requests.Load(),
		CacheHits:      s.metrics.CacheHits.Load(),
		CacheMisses:    s.metrics.CacheMisses.Load(),
		NotModified:    s.metrics.NotModified.Load(),
		Errors:         s.metrics.Errors.Load(),
		Reloads:        s.metrics.Reloads.Load(),
		ReloadFailures: s.metrics.ReloadFailures.Load(),
		Shed:           s.metrics.ShedTotal.Load(),
		Deadline:       s.metrics.DeadlineTotal.Load(),
		Warmed:         s.metrics.WarmedTotal.Load(),
		Inflight:       s.adm.Inflight(),
		Queued:         s.adm.Queued(),
	}
	if st := s.cur.Load(); st != nil {
		info.SnapshotETag = st.etag
		info.CacheEntries = st.cache.len()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	json.NewEncoder(w).Encode(info)
}

// handleReload triggers a hot reload. The response reports the freshly
// loaded snapshot; failure reports the error while the old snapshot
// keeps serving.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Inc()
	rm := s.routes["reload"]
	rm.requests.Inc()
	start := time.Now()
	defer rm.latency.ObserveSince(start)
	if err := s.Reload(); err != nil {
		s.writeError(w, fmt.Errorf("reload failed (previous snapshot still serving): %w", err))
		return
	}
	st := s.cur.Load()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(ReloadResult{
		ETag:        st.etag,
		Users:       len(st.snap.Users),
		Games:       len(st.snap.Games),
		Groups:      len(st.snap.Groups),
		CollectedAt: st.snap.CollectedAt,
	})
}

// handleHealthz mirrors the admin mux's readiness semantics on the
// serving port, so a load balancer needs only one address.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cur.Load() == nil {
		http.Error(w, "unhealthy: snapshot not loaded", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// sortedCopy returns a sorted copy of ranks using less.
func sortedCopy[T any](xs []T, less func(a, b T) bool) []T {
	out := append([]T(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}
