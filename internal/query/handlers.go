package query

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"

	"steamstudy/internal/analysis"
	"steamstudy/internal/core"
	"steamstudy/internal/stats"
)

// handleSnapshot describes the loaded snapshot. Everything here is a
// function of the snapshot's content and identity — deliberately no
// load timestamp or hostname, which would change the body without
// changing the ETag and break 304 revalidation.
func handleSnapshot(st *state, r *http.Request) (cached, error) {
	t := st.snap.Totals()
	return jsonBody(SnapshotInfo{
		ETag:             st.etag,
		ContentSignature: st.sig,
		CollectedAt:      st.snap.CollectedAt,
		Users:            t.Users,
		Games:            t.Games,
		Groups:           t.Groups,
		Friendships:      t.Friendships,
		Memberships:      t.Memberships,
	})
}

// handleExperiments lists the full registry with per-server availability.
func handleExperiments(st *state, r *http.Request) (cached, error) {
	exps := core.Experiments()
	out := make([]ExperimentInfo, len(exps))
	for i, e := range exps {
		out[i] = ExperimentInfo{
			ID:             e.ID,
			Title:          e.Title,
			Available:      st.study.CanRun(e.ID),
			NeedsGenerator: e.NeedsGenerator,
		}
	}
	return jsonBody(out)
}

// handleExperiment renders one table/figure. The body is exactly what
// the steamstudy CLI prints for the same snapshot — text/plain, byte for
// byte — so a client can diff served output against a local render.
func handleExperiment(st *state, r *http.Request) (cached, error) {
	id := r.PathValue("id")
	found := false
	for _, e := range core.Experiments() {
		if e.ID == id {
			found = true
			break
		}
	}
	if !found {
		return cached{}, notFoundf("unknown experiment %q; GET /v1/experiments lists the registry", id)
	}
	if !st.study.CanRun(id) {
		return cached{}, notFoundf("experiment %s needs a generated universe and is unavailable on a snapshot-backed server", id)
	}
	var buf bytes.Buffer
	if err := st.study.Run(&buf, id); err != nil {
		return cached{}, err
	}
	return cached{body: buf.Bytes(), ctype: "text/plain; charset=utf-8"}, nil
}

// defaultPercentiles matches Table 3's grid plus the tail points the
// paper quotes in prose.
var defaultPercentiles = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99}

// attrColumn maps the public attribute names onto vector columns.
func attrColumn(v *analysis.Vectors, attr string) []float64 {
	switch attr {
	case "friends":
		return v.Friends
	case "games":
		return v.Games
	case "played":
		return v.Played
	case "groups":
		return v.Groups
	case "total_hours":
		return v.TotalH
	case "twoweek_hours":
		return v.TwoWkH
	case "value_usd":
		return v.ValueD
	}
	return nil
}

const attrNames = "friends, games, played, groups, total_hours, twoweek_hours, value_usd"

// handlePercentiles serves the distribution of one per-user attribute:
// GET /v1/percentiles/games?p=50,80,99&nonzero=true. The nonzero filter
// mirrors the paper's Table 3, which reports owners-only percentiles for
// library size.
func handlePercentiles(st *state, r *http.Request) (cached, error) {
	attr := r.PathValue("attr")
	col := attrColumn(st.study.Vectors(), attr)
	if col == nil {
		return cached{}, notFoundf("unknown attribute %q (want one of: %s)", attr, attrNames)
	}
	q := r.URL.Query()
	ps := defaultPercentiles
	if raw := q.Get("p"); raw != "" {
		ps = nil
		for _, part := range strings.Split(raw, ",") {
			p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || p < 0 || p > 100 {
				return cached{}, badRequestf("invalid percentile %q: want numbers in [0,100], comma-separated", part)
			}
			ps = append(ps, p)
		}
	}
	nonZero := false
	if raw := q.Get("nonzero"); raw != "" {
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return cached{}, badRequestf("invalid nonzero=%q: want a boolean", raw)
		}
		nonZero = b
	}
	if nonZero {
		filtered := make([]float64, 0, len(col))
		for _, x := range col {
			if x > 0 {
				filtered = append(filtered, x)
			}
		}
		col = filtered
	}
	vals := stats.Percentiles(col, ps...)
	res := PercentilesResult{Attr: attr, NonZero: nonZero, Count: len(col)}
	res.Points = make([]PercentilePoint, len(ps))
	for i := range ps {
		res.Points[i] = PercentilePoint{P: ps[i], Value: vals[i]}
	}
	return jsonBody(res)
}

// genreData lazily joins Fig 5 (ownership) and Fig 9 (expenditure) into
// per-genre slices, computed once per loaded snapshot.
func (st *state) genreData() (map[string]*GenreSlice, []string) {
	st.genresOnce.Do(func() {
		st.genreSlices = map[string]*GenreSlice{}
		for _, row := range analysis.Figure5GenreOwnership(st.snap) {
			st.genreSlices[row.Genre] = &GenreSlice{
				Genre:        row.Genre,
				Owned:        row.Owned,
				Unplayed:     row.Unplayed,
				UnplayedFrac: row.UnplayedFrac,
				CatalogShare: row.CatalogShare,
			}
			st.genreNames = append(st.genreNames, row.Genre)
		}
		for _, row := range analysis.Figure9GenreExpenditure(st.snap) {
			gs := st.genreSlices[row.Genre]
			if gs == nil {
				gs = &GenreSlice{Genre: row.Genre}
				st.genreSlices[row.Genre] = gs
				st.genreNames = append(st.genreNames, row.Genre)
			}
			gs.PlaytimeHours = row.PlaytimeHours
			gs.PlaytimeShare = row.PlaytimeShare
			gs.ValueUSD = row.ValueUSD
			gs.ValueShare = row.ValueShare
		}
	})
	return st.genreSlices, st.genreNames
}

// handleGenres lists every genre's slice, in Fig 5's most-owned-first
// order.
func handleGenres(st *state, r *http.Request) (cached, error) {
	slices, names := st.genreData()
	out := make([]GenreSlice, 0, len(names))
	for _, name := range names {
		out = append(out, *slices[name])
	}
	return jsonBody(out)
}

// handleGenre serves one genre's slice. Matching is case-insensitive on
// the path segment so /v1/genres/action and /v1/genres/Action agree.
func handleGenre(st *state, r *http.Request) (cached, error) {
	want := r.PathValue("genre")
	slices, names := st.genreData()
	if gs, ok := slices[want]; ok {
		return jsonBody(*gs)
	}
	for _, name := range names {
		if strings.EqualFold(name, want) {
			return jsonBody(*slices[name])
		}
	}
	return cached{}, notFoundf("unknown genre %q; GET /v1/genres lists them", want)
}

// gamesData lazily aggregates per-game ownership in one pass over the
// users section, computed once per loaded snapshot.
func (st *state) gamesData() []GameRank {
	st.gamesOnce.Do(func() {
		idx := st.snap.GameIndex()
		agg := make([]GameRank, len(st.snap.Games))
		for i := range st.snap.Games {
			g := &st.snap.Games[i]
			agg[i] = GameRank{AppID: g.AppID, Name: g.Name}
		}
		for i := range st.snap.Users {
			for _, og := range st.snap.Users[i].Games {
				gi, ok := idx[og.AppID]
				if !ok {
					continue
				}
				a := &agg[gi]
				a.Owners++
				if og.TotalMinutes > 0 {
					a.Players++
				}
				a.PlaytimeHours += float64(og.TotalMinutes) / 60
			}
		}
		for i := range agg {
			agg[i].ValueUSD = float64(st.snap.Games[i].PriceCents) / 100 * float64(agg[i].Owners)
		}
		st.gamesAgg = agg
	})
	return st.gamesAgg
}

// topN parses and bounds the n query parameter.
func topN(r *http.Request, def, max int) (int, error) {
	raw := r.URL.Query().Get("n")
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 || n > max {
		return 0, badRequestf("invalid n=%q: want an integer in [1,%d]", raw, max)
	}
	return n, nil
}

// handleTopGames ranks the catalog: GET /v1/games/top?by=owners&n=25.
// by is one of owners, players, playtime, value.
func handleTopGames(st *state, r *http.Request) (cached, error) {
	n, err := topN(r, 10, 1000)
	if err != nil {
		return cached{}, err
	}
	by := r.URL.Query().Get("by")
	if by == "" {
		by = "owners"
	}
	var key func(g *GameRank) float64
	switch by {
	case "owners":
		key = func(g *GameRank) float64 { return float64(g.Owners) }
	case "players":
		key = func(g *GameRank) float64 { return float64(g.Players) }
	case "playtime":
		key = func(g *GameRank) float64 { return g.PlaytimeHours }
	case "value":
		key = func(g *GameRank) float64 { return g.ValueUSD }
	default:
		return cached{}, badRequestf("invalid by=%q: want owners, players, playtime or value", by)
	}
	ranked := sortedCopy(st.gamesData(), func(a, b GameRank) bool {
		ka, kb := key(&a), key(&b)
		if ka != kb {
			return ka > kb
		}
		return a.AppID < b.AppID // deterministic tiebreak
	})
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	return jsonBody(ranked)
}

// handleTopGroups ranks groups by member count: GET /v1/groups/top?n=25.
func handleTopGroups(st *state, r *http.Request) (cached, error) {
	n, err := topN(r, 10, 1000)
	if err != nil {
		return cached{}, err
	}
	ranked := make([]GroupRank, len(st.snap.Groups))
	for i := range st.snap.Groups {
		g := &st.snap.Groups[i]
		ranked[i] = GroupRank{GID: g.GID, Name: g.Name, Type: g.Type, Members: len(g.Members)}
	}
	ranked = sortedCopy(ranked, func(a, b GroupRank) bool {
		if a.Members != b.Members {
			return a.Members > b.Members
		}
		return a.GID < b.GID
	})
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	return jsonBody(ranked)
}

// userIndexOf resolves the {id} path segment to a user index.
func (st *state) userIndexOf(r *http.Request) (int, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, badRequestf("invalid SteamID %q: want a decimal SteamID64", raw)
	}
	i, ok := st.userIdx[id]
	if !ok {
		return 0, notFoundf("no user with SteamID %d in this snapshot", id)
	}
	return int(i), nil
}

// handleUser serves one account's behavioral summary — the per-user view
// of the columns every distribution endpoint aggregates.
func handleUser(st *state, r *http.Request) (cached, error) {
	i, err := st.userIndexOf(r)
	if err != nil {
		return cached{}, err
	}
	u := &st.snap.Users[i]
	v := st.study.Vectors()
	return jsonBody(UserInfo{
		SteamID:      u.SteamID,
		Created:      u.Created,
		Country:      u.Country,
		City:         u.City,
		Friends:      len(u.Friends),
		Games:        len(u.Games),
		Played:       int(v.Played[i]),
		Groups:       len(u.Groups),
		TotalHours:   v.TotalH[i],
		TwoWeekHours: v.TwoWkH[i],
		ValueUSD:     v.ValueD[i],
	})
}

// handleFriends serves one account's friend list.
func handleFriends(st *state, r *http.Request) (cached, error) {
	i, err := st.userIndexOf(r)
	if err != nil {
		return cached{}, err
	}
	u := &st.snap.Users[i]
	res := FriendsResult{SteamID: u.SteamID, Count: len(u.Friends)}
	res.Friends = make([]FriendEntry, len(u.Friends))
	for j, f := range u.Friends {
		res.Friends[j] = FriendEntry{SteamID: f.SteamID, Since: f.Since}
	}
	return jsonBody(res)
}
