package query

// Wire types for the /v1 API, shared by the server's handlers and the
// typed Client so the two cannot drift. Every field is deterministic for
// a given snapshot content — nothing derived from wall-clock time or
// process identity appears here, because cacheable bodies must be
// byte-stable under the ETag contract (see DESIGN.md §14). Run-varying
// observability lives in StatsInfo, which is served uncached and without
// an ETag.

// ErrorBody is the consistent error envelope: every non-2xx/304 response
// is {"error": {...}} with a machine code and a human message.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo describes one API error.
type ErrorInfo struct {
	Status int `json:"status"`
	// Code is one of bad_request | not_found | unavailable | internal |
	// overloaded | deadline_exceeded. The 503-family codes (unavailable,
	// overloaded, deadline_exceeded) always ride with a Retry-After
	// header.
	Code    string `json:"code"`
	Message string `json:"message"`
}

// SnapshotInfo describes the snapshot a server is currently serving.
type SnapshotInfo struct {
	// ETag is the strong validator for every cacheable /v1 response:
	// the manifest's whole-file SHA-256 when the snapshot was loaded
	// from a manifested file, otherwise the content signature.
	ETag string `json:"etag"`
	// ContentSignature is dataset.ContentSignature over the decoded
	// records — stable across container formats.
	ContentSignature string `json:"content_signature"`
	CollectedAt      int64  `json:"collected_at"`
	Users            int    `json:"users"`
	Games            int    `json:"games"`
	Groups           int    `json:"groups"`
	Friendships      int    `json:"friendships"`
	Memberships      int    `json:"memberships"`
}

// ExperimentInfo is one entry of the experiment index.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Available reports whether this server can render the experiment;
	// generator-bound experiments (Fig 12, §8) are listed but
	// unavailable on a server that loaded a snapshot from disk.
	Available      bool `json:"available"`
	NeedsGenerator bool `json:"needs_generator"`
}

// PercentilePoint is one (p, value) pair.
type PercentilePoint struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

// PercentilesResult answers /v1/percentiles/{attr}.
type PercentilesResult struct {
	Attr    string            `json:"attr"`
	NonZero bool              `json:"non_zero"`
	Count   int               `json:"count"` // population after the non-zero filter
	Points  []PercentilePoint `json:"points"`
}

// GenreSlice answers /v1/genres/{genre}: the genre's Fig 5 ownership row
// joined with its Fig 9 expenditure row.
type GenreSlice struct {
	Genre         string  `json:"genre"`
	Owned         int     `json:"owned"`
	Unplayed      int     `json:"unplayed"`
	UnplayedFrac  float64 `json:"unplayed_frac"`
	CatalogShare  float64 `json:"catalog_share"`
	PlaytimeHours float64 `json:"playtime_hours"`
	PlaytimeShare float64 `json:"playtime_share"`
	ValueUSD      float64 `json:"value_usd"`
	ValueShare    float64 `json:"value_share"`
}

// GameRank is one row of /v1/games/top.
type GameRank struct {
	AppID         uint32  `json:"app_id"`
	Name          string  `json:"name"`
	Owners        int     `json:"owners"`
	Players       int     `json:"players"` // owners with playtime > 0
	PlaytimeHours float64 `json:"playtime_hours"`
	ValueUSD      float64 `json:"value_usd"` // price x owners
}

// GroupRank is one row of /v1/groups/top.
type GroupRank struct {
	GID     uint64 `json:"gid"`
	Name    string `json:"name"`
	Type    string `json:"type"`
	Members int    `json:"members"`
}

// UserInfo answers /v1/users/{id}.
type UserInfo struct {
	SteamID      uint64  `json:"steam_id"`
	Created      int64   `json:"created"`
	Country      string  `json:"country,omitempty"`
	City         string  `json:"city,omitempty"`
	Friends      int     `json:"friends"`
	Games        int     `json:"games"`
	Played       int     `json:"played"`
	Groups       int     `json:"groups"`
	TotalHours   float64 `json:"total_hours"`
	TwoWeekHours float64 `json:"two_week_hours"`
	ValueUSD     float64 `json:"value_usd"`
}

// FriendEntry is one friendship edge as seen from a user.
type FriendEntry struct {
	SteamID uint64 `json:"steam_id"`
	Since   int64  `json:"since"`
}

// FriendsResult answers /v1/users/{id}/friends.
type FriendsResult struct {
	SteamID uint64        `json:"steam_id"`
	Count   int           `json:"count"`
	Friends []FriendEntry `json:"friends"`
}

// StatsInfo answers /v1/stats: live serving counters for load tests and
// dashboards. Unlike every other /v1 body it changes between identical
// requests, so it is never cached and carries no ETag.
type StatsInfo struct {
	Requests       int64 `json:"requests"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	NotModified    int64 `json:"not_modified"`
	Errors         int64 `json:"errors"`
	Reloads        int64 `json:"reloads"`
	ReloadFailures int64 `json:"reload_failures"`
	// Shed counts requests refused at admission with 503 + Retry-After;
	// Deadline counts admitted requests whose route deadline expired
	// while they waited on a collapsed fill; Warmed counts cache keys
	// replayed into fresh states by reload warming. Inflight and Queued
	// are instantaneous admission-pool readings.
	Shed         int64  `json:"shed"`
	Deadline     int64  `json:"deadline_exceeded"`
	Warmed       int64  `json:"warmed"`
	Inflight     int64  `json:"inflight"`
	Queued       int64  `json:"queued"`
	SnapshotETag string `json:"snapshot_etag"`
}

// ReloadResult answers POST /v1/admin/reload.
type ReloadResult struct {
	ETag        string `json:"etag"`
	Users       int    `json:"users"`
	Games       int    `json:"games"`
	Groups      int    `json:"groups"`
	CollectedAt int64  `json:"collected_at"`
}
