package query

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"steamstudy/internal/core"
	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
	"steamstudy/internal/simworld"
)

var (
	fixOnce sync.Once
	fixSnap *dataset.Snapshot // 2000 users, seed 5
	fixAlt  *dataset.Snapshot // 600 users, seed 11 — a distinct snapshot for reload tests
)

func fixtures(t *testing.T) (*dataset.Snapshot, *dataset.Snapshot) {
	t.Helper()
	fixOnce.Do(func() {
		cfg := simworld.DefaultConfig(2000)
		cfg.CatalogSize = 200
		fixSnap = dataset.FromUniverse(simworld.MustGenerate(cfg, 5))
		cfg = simworld.DefaultConfig(600)
		cfg.CatalogSize = 120
		fixAlt = dataset.FromUniverse(simworld.MustGenerate(cfg, 11))
	})
	return fixSnap, fixAlt
}

// newTestServer saves the fixture snapshot into a temp dir and opens a
// server over it, returning the server and the snapshot path.
func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	snap, _ := fixtures(t)
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{SnapshotPath: path, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func get(t *testing.T, s *Server, url string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestExperimentBodiesMatchRenderer is the acceptance-criteria diff: for
// every experiment this server can run, the /v1 body must be byte-
// identical to what the steamstudy renderer (core.Study.Run) produces
// for the same snapshot.
func TestExperimentBodiesMatchRenderer(t *testing.T) {
	s, path := newTestServer(t)
	loaded, err := dataset.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	study := core.FromSnapshot(loaded)
	study.SetWorkers(1)
	ran := 0
	for _, e := range core.Experiments() {
		w := get(t, s, "/v1/experiments/"+e.ID)
		if !study.CanRun(e.ID) {
			if w.Code != http.StatusNotFound {
				t.Errorf("%s: unavailable experiment returned %d, want 404", e.ID, w.Code)
			}
			continue
		}
		if w.Code != http.StatusOK {
			t.Errorf("%s: status %d, body %s", e.ID, w.Code, w.Body.String())
			continue
		}
		var want strings.Builder
		if err := study.Run(&want, e.ID); err != nil {
			t.Fatalf("%s: local render: %v", e.ID, err)
		}
		if got := w.Body.String(); got != want.String() {
			t.Errorf("%s: served body differs from renderer output\nserved %d bytes, rendered %d bytes", e.ID, len(got), want.Len())
		}
		if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
			t.Errorf("%s: content type %q", e.ID, ct)
		}
		ran++
	}
	if ran < 15 {
		t.Errorf("only %d experiments were diffed; expected the full snapshot-servable registry", ran)
	}
}

// TestConditionalGET covers the ETag lifecycle: 200 with a strong ETag,
// 304 on matching If-None-Match, and 200 again (with a new ETag) after a
// hot reload changed the manifest SHA.
func TestConditionalGET(t *testing.T) {
	s, path := newTestServer(t)
	_, alt := fixtures(t)

	w := get(t, s, "/v1/snapshot")
	if w.Code != http.StatusOK {
		t.Fatalf("initial GET: %d", w.Code)
	}
	etag := w.Header().Get("ETag")
	if len(etag) < 10 || etag[0] != '"' {
		t.Fatalf("weak or missing ETag %q", etag)
	}
	man, err := dataset.ReadManifest(path)
	if err != nil || man == nil {
		t.Fatalf("manifest: %v", err)
	}
	if want := `"` + man.FileSHA256 + `"`; etag != want {
		t.Errorf("ETag %s is not the manifest SHA-256 %s", etag, want)
	}
	body := w.Body.String()

	w = get(t, s, "/v1/snapshot", "If-None-Match", etag)
	if w.Code != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: %d, want 304", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", w.Body.Len())
	}
	// The ETag is snapshot-wide: it revalidates other endpoints too.
	if w := get(t, s, "/v1/genres", "If-None-Match", etag); w.Code != http.StatusNotModified {
		t.Errorf("genres with matching etag: %d, want 304", w.Code)
	}
	if w := get(t, s, "/v1/snapshot", "If-None-Match", `"deadbeef"`); w.Code != http.StatusOK {
		t.Errorf("stale etag: %d, want 200", w.Code)
	}

	// Publish a different snapshot over the same path and hot-reload.
	if err := alt.Save(path); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/admin/reload", nil)
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rw.Code, rw.Body.String())
	}

	w = get(t, s, "/v1/snapshot", "If-None-Match", etag)
	if w.Code != http.StatusOK {
		t.Fatalf("after reload, old etag must miss: got %d", w.Code)
	}
	if newTag := w.Header().Get("ETag"); newTag == etag {
		t.Error("ETag unchanged across a snapshot swap")
	}
	if w.Body.String() == body {
		t.Error("body unchanged across a snapshot swap")
	}
}

// decodeEnvelope asserts the error envelope shape and returns it.
func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder, wantStatus int, wantCode string) ErrorBody {
	t.Helper()
	if w.Code != wantStatus {
		t.Fatalf("status %d, want %d (body %s)", w.Code, wantStatus, w.Body.String())
	}
	var e ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not the envelope: %v (%s)", err, w.Body.String())
	}
	if e.Error.Status != wantStatus || e.Error.Code != wantCode || e.Error.Message == "" {
		t.Fatalf("envelope %+v, want status=%d code=%s and a message", e.Error, wantStatus, wantCode)
	}
	return e
}

// TestErrorEnvelope asserts the envelope shape for 400, 404 and 500.
func TestErrorEnvelope(t *testing.T) {
	s, path := newTestServer(t)

	decodeEnvelope(t, get(t, s, "/v1/percentiles/games?p=many"), http.StatusBadRequest, "bad_request")
	decodeEnvelope(t, get(t, s, "/v1/percentiles/games?p=150"), http.StatusBadRequest, "bad_request")
	decodeEnvelope(t, get(t, s, "/v1/games/top?by=hype"), http.StatusBadRequest, "bad_request")
	decodeEnvelope(t, get(t, s, "/v1/users/notanumber"), http.StatusBadRequest, "bad_request")

	decodeEnvelope(t, get(t, s, "/v1/users/1"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get(t, s, "/v1/percentiles/charisma"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get(t, s, "/v1/genres/NotAGenre"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get(t, s, "/v1/experiments/T9"), http.StatusNotFound, "not_found")
	decodeEnvelope(t, get(t, s, "/nope"), http.StatusNotFound, "not_found")

	// 500: break the snapshot file, then ask for a reload. The reload
	// must fail with the envelope while the old snapshot keeps serving.
	etagBefore := s.ETag()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/admin/reload", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	decodeEnvelope(t, w, http.StatusInternalServerError, "internal")
	after := get(t, s, "/v1/snapshot")
	if after.Code != http.StatusOK || after.Header().Get("ETag") != etagBefore {
		t.Errorf("failed reload disturbed serving: status %d etag %s (want 200 %s)",
			after.Code, after.Header().Get("ETag"), etagBefore)
	}
}

// TestCacheCollapsingHTTP fires concurrent identical requests at a fresh
// server and proves the fill ran once: exactly one miss, all other
// requests hits. Run under -race this also proves the handler/cache path
// is data-race-free.
func TestCacheCollapsingHTTP(t *testing.T) {
	s, _ := newTestServer(t)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := get(t, s, "/v1/genres")
			if w.Code != http.StatusOK {
				t.Errorf("status %d", w.Code)
			}
		}()
	}
	wg.Wait()
	if misses := s.metrics.CacheMisses.Load(); misses != 1 {
		t.Errorf("cache misses = %d, want exactly 1 (collapsing failed)", misses)
	}
	if hits := s.metrics.CacheHits.Load(); hits != n-1 {
		t.Errorf("cache hits = %d, want %d", hits, n-1)
	}
}

// TestUnloadedServer covers New's 503 gating and the healthz flip after
// the first successful reload.
func TestUnloadedServer(t *testing.T) {
	snap, _ := fixtures(t)
	path := filepath.Join(t.TempDir(), "later.jsonl")
	reg := obs.NewRegistry()
	health := obs.NewHealth()
	s := New(Config{SnapshotPath: path, Workers: 1, Obs: reg, Health: health})

	decodeEnvelope(t, get(t, s, "/v1/snapshot"), http.StatusServiceUnavailable, "unavailable")
	if w := get(t, s, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz on unloaded server: %d, want 503", w.Code)
	}
	if hs := health.Check(); hs.Status == "ok" {
		t.Error("obs health reports ok before load")
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a missing file succeeded")
	}

	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz after load: %d", w.Code)
	}
	if hs := health.Check(); hs.Status != "ok" {
		t.Errorf("obs health still unhealthy after load: %+v", hs)
	}
	if w := get(t, s, "/v1/snapshot"); w.Code != http.StatusOK {
		t.Errorf("snapshot after load: %d", w.Code)
	}
	if reg.Counter("query_reload_failures").Load() != 1 {
		t.Errorf("reload_failures = %d, want 1", reg.Counter("query_reload_failures").Load())
	}
}

// TestTypedClient exercises the Client against a live server and cross-
// checks the typed results against the snapshot.
func TestTypedClient(t *testing.T) {
	s, path := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}

	loaded, err := dataset.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	info, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Users != len(loaded.Users) || info.Games != len(loaded.Games) || info.Groups != len(loaded.Groups) {
		t.Errorf("snapshot info %+v disagrees with loaded snapshot", info)
	}
	if info.ContentSignature != loaded.ContentSignature() {
		t.Error("content signature mismatch")
	}

	exps, err := c.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(core.Experiments()) {
		t.Errorf("experiment index has %d entries, registry has %d", len(exps), len(core.Experiments()))
	}
	for _, e := range exps {
		if e.NeedsGenerator && e.Available {
			t.Errorf("%s: generator-bound experiment reported available on a snapshot server", e.ID)
		}
	}

	pr, err := c.Percentiles("games", []float64{50, 90}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Points) != 2 || !pr.NonZero || pr.Count == 0 {
		t.Errorf("percentiles: %+v", pr)
	}
	if pr.Points[0].Value > pr.Points[1].Value {
		t.Errorf("p50 %v > p90 %v", pr.Points[0].Value, pr.Points[1].Value)
	}

	genres, err := c.Genres()
	if err != nil {
		t.Fatal(err)
	}
	if len(genres) == 0 {
		t.Fatal("no genres")
	}
	one, err := c.Genre(strings.ToLower(genres[0].Genre))
	if err != nil {
		t.Fatal(err)
	}
	if one != genres[0] {
		t.Errorf("case-insensitive genre lookup: %+v vs %+v", one, genres[0])
	}

	games, err := c.TopGames("owners", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(games) != 5 {
		t.Fatalf("top games: %d rows", len(games))
	}
	for i := 1; i < len(games); i++ {
		if games[i].Owners > games[i-1].Owners {
			t.Errorf("top games not sorted: %d > %d at %d", games[i].Owners, games[i-1].Owners, i)
		}
	}

	groups, err := c.TopGroups(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 || groups[0].Members < groups[2].Members {
		t.Errorf("top groups: %+v", groups)
	}

	u := &loaded.Users[len(loaded.Users)/2]
	ui, err := c.User(u.SteamID)
	if err != nil {
		t.Fatal(err)
	}
	if ui.SteamID != u.SteamID || ui.Games != len(u.Games) || ui.Friends != len(u.Friends) {
		t.Errorf("user info %+v disagrees with record (games %d, friends %d)", ui, len(u.Games), len(u.Friends))
	}
	fr, err := c.Friends(u.SteamID)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Count != len(u.Friends) || len(fr.Friends) != len(u.Friends) {
		t.Errorf("friends %+v, want %d entries", fr, len(u.Friends))
	}

	if _, err := c.User(1); err == nil {
		t.Error("lookup of absent user succeeded")
	} else if ae, ok := err.(*APIError); !ok || ae.Status != 404 || ae.Code != "not_found" {
		t.Errorf("typed error: %v", err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 || stats.SnapshotETag == "" {
		t.Errorf("stats: %+v", stats)
	}

	rr, err := c.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Users != len(loaded.Users) {
		t.Errorf("reload result %+v", rr)
	}
}

// TestExperimentRenderConcurrent renders distinct experiments from many
// goroutines at once — under -race this proves the study render path is
// safe for concurrent HTTP handlers, which the whole design assumes.
func TestExperimentRenderConcurrent(t *testing.T) {
	s, _ := newTestServer(t)
	ids := []string{"T1", "T2", "T3", "F4", "F5", "F6", "E4"}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				if w := get(t, s, "/v1/experiments/"+id); w.Code != http.StatusOK {
					t.Errorf("%s: %d", id, w.Code)
				}
			}(id)
		}
	}
	wg.Wait()
}
