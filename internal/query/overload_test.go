package query

// Overload-policy tests (DESIGN.md §15): admission control and load
// shedding, per-route deadlines on collapsed fills, reload cache
// warming, corrupt-snapshot reload safety, and the client's bounded
// 503 retry. The fill seam (Config.testFillDelay) makes slot occupancy
// deterministic; none of these tests depend on machine speed for
// correctness, only for how quickly they finish.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newOverloadServer is newTestServer with a caller-shaped Config (the
// snapshot path and worker count are filled in).
func newOverloadServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	snap, _ := fixtures(t)
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	cfg.SnapshotPath = path
	cfg.Workers = 1
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestAdmissionUnit(t *testing.T) {
	ctx := context.Background()

	// Unlimited modes.
	if a := newAdmission(0, time.Second); a != nil {
		t.Fatal("maxInflight 0 should mean unlimited (nil pool)")
	}
	var unlimited *admission
	if err := unlimited.acquire(ctx); err != nil {
		t.Fatalf("nil admission must admit: %v", err)
	}
	unlimited.release()
	if unlimited.Inflight() != 0 || unlimited.Queued() != 0 {
		t.Fatal("nil admission gauges should read 0")
	}

	// Immediate-shed mode: full pool + no queue wait.
	im := newAdmission(1, -1)
	if err := im.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := im.acquire(ctx); err != errShed {
		t.Fatalf("want immediate errShed with queueWait<0, got %v", err)
	}
	im.release()

	// Queue overflow sheds without waiting out the deadline.
	a := newAdmission(2, time.Second)
	for i := 0; i < 2; i++ {
		if err := a.acquire(ctx); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for i := 0; i < int(a.maxQueue); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(ctx); err == nil {
				admitted.Add(1)
				a.release()
			}
		}()
	}
	waitFor(t, func() bool { return a.Queued() == a.maxQueue })
	start := time.Now()
	if err := a.acquire(ctx); err != errShed {
		t.Fatalf("overflow acquire: want errShed, got %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("overflow shed took %v; should not wait out the queue deadline", d)
	}
	a.release()
	a.release()
	wg.Wait()
	if got := admitted.Load(); got != a.maxQueue {
		t.Fatalf("admitted %d queued waiters, want %d", got, a.maxQueue)
	}
	waitFor(t, func() bool { return a.Inflight() == 0 })

	// Context cancellation sheds a queued waiter.
	b := newAdmission(1, time.Minute)
	if err := b.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if err := b.acquire(cctx); err != errShed {
		t.Fatalf("cancelled waiter: want errShed, got %v", err)
	}
	b.release()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestSheddingHTTP pins the whole shed contract over HTTP: a saturated
// server answers 503 with the "overloaded" envelope code and a
// Retry-After header, counts it in query_shed_total, keeps serving
// conditional revalidations (304) and the control plane (/v1/stats)
// without an admission slot, and recovers as soon as the slot frees.
func TestSheddingHTTP(t *testing.T) {
	entered := make(chan struct{}, 1)
	unblock := make(chan struct{})
	s, _ := newOverloadServer(t, Config{
		MaxInflight: 1,
		QueueWait:   -1, // shed immediately: no timing in the assertion
		testFillDelay: func(route string) {
			entered <- struct{}{}
			<-unblock
		},
	})
	etag := s.ETag()

	var blocked sync.WaitGroup
	blocked.Add(1)
	go func() {
		defer blocked.Done()
		w := get(t, s, "/v1/snapshot")
		if w.Code != http.StatusOK {
			t.Errorf("blocked filler finished %d, want 200", w.Code)
		}
	}()
	<-entered // the one slot is now held by a fill in progress

	w := get(t, s, "/v1/genres")
	decodeEnvelope(t, w, http.StatusServiceUnavailable, "overloaded")
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if got := s.metrics.ShedTotal.Load(); got != 1 {
		t.Fatalf("query_shed_total = %d, want 1", got)
	}

	// Revalidation must not need a slot: same saturated instant, 304.
	w = get(t, s, "/v1/genres", "If-None-Match", etag)
	if w.Code != http.StatusNotModified {
		t.Fatalf("conditional GET under saturation = %d, want 304", w.Code)
	}
	// Control plane bypasses admission too.
	w = get(t, s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/stats under saturation = %d, want 200", w.Code)
	}
	var info StatsInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Shed != 1 || info.Inflight != 1 {
		t.Fatalf("stats shed=%d inflight=%d, want 1/1", info.Shed, info.Inflight)
	}

	close(unblock)
	blocked.Wait()
	if w := get(t, s, "/v1/genres"); w.Code != http.StatusOK {
		t.Fatalf("after slot freed: %d, want 200", w.Code)
	}
}

// TestDeadlineShedsCollapsedWaiter: a request that collapses onto an
// in-flight fill must give up when its route deadline passes — 503 with
// the "deadline_exceeded" code — while the fill itself completes for
// the filler.
func TestDeadlineShedsCollapsedWaiter(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s, _ := newOverloadServer(t, Config{
		RouteTimeout: 30 * time.Millisecond,
		testFillDelay: func(route string) {
			entered <- struct{}{}
			<-release
		},
	})

	var filler sync.WaitGroup
	filler.Add(1)
	go func() {
		defer filler.Done()
		w := get(t, s, "/v1/snapshot")
		if w.Code != http.StatusOK {
			t.Errorf("filler finished %d, want 200", w.Code)
		}
	}()
	<-entered

	// Same URL: this request parks on the filler's ready channel and
	// must abandon the wait at its deadline, not block indefinitely.
	w := get(t, s, "/v1/snapshot")
	decodeEnvelope(t, w, http.StatusServiceUnavailable, "deadline_exceeded")
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("deadline shed must carry Retry-After")
	}
	if got := s.metrics.DeadlineTotal.Load(); got != 1 {
		t.Fatalf("query_deadline_total = %d, want 1", got)
	}

	close(release)
	filler.Wait()
	// The completed fill is cached; the same URL now answers instantly.
	if w := get(t, s, "/v1/snapshot"); w.Code != http.StatusOK {
		t.Fatalf("after fill completed: %d, want 200", w.Code)
	}
}

// TestCorruptReloadKeepsServing is the reload-hardening proof: while
// concurrent traffic runs, the snapshot file is truncated mid-flight, a
// reload is triggered and must fail — and not one request may see
// anything but 200/304 with the original ETag. Restoring the file must
// make reload succeed again.
func TestCorruptReloadKeepsServing(t *testing.T) {
	s, path := newOverloadServer(t, Config{})
	etag := s.ETag()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	type tally struct {
		bad      int64
		badETags int64
	}
	var tl tally
	var traffic sync.WaitGroup
	for i := 0; i < 4; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			urls := []string{"/v1/snapshot", "/v1/genres", "/v1/games/top?n=5", "/v1/groups/top"}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(n+i)%len(urls)]
				var w *httptest.ResponseRecorder
				if n%3 == 0 {
					w = get(t, s, u, "If-None-Match", etag)
					if w.Code != http.StatusNotModified {
						atomic.AddInt64(&tl.bad, 1)
					}
				} else {
					w = get(t, s, u)
					if w.Code != http.StatusOK {
						atomic.AddInt64(&tl.bad, 1)
					}
				}
				if got := w.Header().Get("ETag"); got != "" && got != etag {
					atomic.AddInt64(&tl.badETags, 1)
				}
			}
		}(i)
	}

	// Truncate the serving file under the running traffic: the reload
	// must fail (manifest mismatch / decode error), the old state must
	// keep serving, and the ETag must not move.
	if err := os.WriteFile(path, orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a truncated snapshot must fail")
	}
	if got := s.ETag(); got != etag {
		t.Fatalf("ETag changed across failed reload: %q -> %q", etag, got)
	}
	if got := s.metrics.ReloadFailures.Load(); got == 0 {
		t.Fatal("reload_failures did not count the failed reload")
	}
	if w := get(t, s, "/v1/snapshot"); w.Code != http.StatusOK {
		t.Fatalf("serving after failed reload: %d, want 200", w.Code)
	}

	close(stop)
	traffic.Wait()
	if n := atomic.LoadInt64(&tl.bad); n != 0 {
		t.Fatalf("%d requests failed during the corrupt-reload window; overload policy promises zero", n)
	}
	if n := atomic.LoadInt64(&tl.badETags); n != 0 {
		t.Fatalf("%d responses carried a different ETag during the corrupt-reload window", n)
	}

	// Restore the bytes: reload recovers, same identity.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err != nil {
		t.Fatalf("reload after restore: %v", err)
	}
	if got := s.ETag(); got != etag {
		t.Fatalf("restored snapshot changed identity: %q -> %q", etag, got)
	}
}

func TestCacheHottest(t *testing.T) {
	c := newCache(64)
	ctx := context.Background()
	fill := func(v string) func() (cached, error) {
		return func() (cached, error) { return cached{body: []byte(v), ctype: "t"}, nil }
	}
	hit := func(key string, times int) {
		for i := 0; i <= times; i++ { // first call is the fill
			if _, _, err := c.do(ctx, key, fill(key)); err != nil {
				t.Fatal(err)
			}
		}
	}
	hit("/a", 3)
	hit("/b", 1)
	hit("/c", 0)
	hit("/d", 0)

	if got := c.hottest(2); len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("hottest(2) = %v, want [/a /b]", got)
	}
	// Ties break by key for determinism.
	if got := c.hottest(10); len(got) != 4 || got[2] != "/c" || got[3] != "/d" {
		t.Fatalf("hottest(10) = %v, want [/a /b /c /d]", got)
	}
	if got := c.hottest(0); got != nil {
		t.Fatalf("hottest(0) = %v, want nil", got)
	}
}

// TestReloadWarmsHotCache: after a reload, the hottest keys of the
// outgoing cache must already be resident in the new state — a request
// for them is a hit, not a renderer stampede.
func TestReloadWarmsHotCache(t *testing.T) {
	s, _ := newOverloadServer(t, Config{WarmKeys: 2})

	// Build a hit gradient: snapshot (2 hits) > genres (1) > top (0).
	for i := 0; i < 3; i++ {
		get(t, s, "/v1/snapshot")
	}
	for i := 0; i < 2; i++ {
		get(t, s, "/v1/genres")
	}
	get(t, s, "/v1/games/top?n=5")

	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := s.metrics.WarmedTotal.Load(); got != 2 {
		t.Fatalf("query_warmed_total = %d, want 2", got)
	}

	// The two hottest keys serve from cache (no new miss); the cold one
	// fills again.
	misses := s.metrics.CacheMisses.Load()
	if w := get(t, s, "/v1/snapshot"); w.Code != http.StatusOK {
		t.Fatalf("warmed key: %d, want 200", w.Code)
	}
	if w := get(t, s, "/v1/genres"); w.Code != http.StatusOK {
		t.Fatalf("warmed key: %d, want 200", w.Code)
	}
	if got := s.metrics.CacheMisses.Load(); got != misses {
		t.Fatalf("warmed keys caused %d cache misses, want 0", got-misses)
	}
	get(t, s, "/v1/games/top?n=5")
	if got := s.metrics.CacheMisses.Load(); got != misses+1 {
		t.Fatalf("cold key after reload: misses %d -> %d, want +1", misses, got)
	}
}

// TestOverloadRaceStorm exists for `go test -race ./internal/query`:
// concurrent fills, sheds, conditional GETs and hot reloads all racing
// over a tiny admission pool. The race detector is the assertion; the
// status check just pins the policy's response-space (200/304/503,
// nothing else) while the storm runs.
func TestOverloadRaceStorm(t *testing.T) {
	s, _ := newOverloadServer(t, Config{
		MaxInflight:   4,
		QueueWait:     2 * time.Millisecond,
		RouteTimeout:  50 * time.Millisecond,
		WarmKeys:      8,
		testFillDelay: func(route string) { time.Sleep(100 * time.Microsecond) },
	})
	etag := s.ETag()
	urls := []string{
		"/v1/snapshot", "/v1/genres", "/v1/games/top?n=5",
		"/v1/groups/top", "/v1/percentiles/friends", "/v1/experiments",
	}

	var wg sync.WaitGroup
	var unexpected atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				u := urls[(g+i)%len(urls)]
				var w *httptest.ResponseRecorder
				if i%5 == 0 {
					w = get(t, s, u, "If-None-Match", etag)
				} else {
					w = get(t, s, u)
				}
				switch w.Code {
				case http.StatusOK, http.StatusNotModified, http.StatusServiceUnavailable:
				default:
					unexpected.Add(1)
				}
			}
		}(g)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := s.Reload(); err != nil {
					t.Errorf("reload under storm: %v", err)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d responses outside {200, 304, 503} during the storm", n)
	}
	if w := get(t, s, "/v1/snapshot"); w.Code != http.StatusOK {
		t.Fatalf("after storm: %d, want 200", w.Code)
	}
}

// --- client resilience ---

func shedOnceServer(t *testing.T, calls *atomic.Int32, retryAfter string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", retryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorBody{Error: ErrorInfo{
				Status: http.StatusServiceUnavailable, Code: "overloaded", Message: "shed",
			}})
			return
		}
		json.NewEncoder(w).Encode(SnapshotInfo{ETag: `"fresh"`})
	}))
}

func TestClientRetriesShed(t *testing.T) {
	var calls atomic.Int32
	ts := shedOnceServer(t, &calls, "0")
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	info, err := c.Snapshot()
	if err != nil {
		t.Fatalf("want success after one bounded retry, got %v", err)
	}
	if info.ETag != `"fresh"` {
		t.Fatalf("ETag = %q after retry", info.ETag)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (original + one retry)", got)
	}
}

func TestClientRetryIsBounded(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ErrorBody{Error: ErrorInfo{
			Status: http.StatusServiceUnavailable, Code: "overloaded", Message: "still shedding",
		}})
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	_, err := c.Snapshot()
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusServiceUnavailable || ae.Code != "overloaded" {
		t.Fatalf("want *APIError 503/overloaded, got %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want exactly 2 (one retry, never more)", got)
	}

	calls.Store(0)
	nc := &Client{BaseURL: ts.URL, NoRetry: true}
	if _, err := nc.Snapshot(); err == nil {
		t.Fatal("NoRetry client should surface the 503")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("NoRetry client made %d calls, want 1", got)
	}
}

func TestClientTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, Timeout: 30 * time.Millisecond}
	start := time.Now()
	_, err := c.Snapshot()
	if err == nil {
		t.Fatal("want a timeout error from a stalled server")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v; the deadline is not being applied", d)
	}
}
