package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheCollapsesInFlight parks N goroutines on one key while the
// first fill is deliberately blocked, then proves the fill ran exactly
// once and every caller got its value. The block guarantees the requests
// really were concurrent — without it the test could pass by serial luck.
func TestCacheCollapsesInFlight(t *testing.T) {
	c := newCache(64)
	const n = 8
	var fills atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]cached, n)
	hits := make([]bool, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, hit, err := c.do(context.Background(), "k", func() (cached, error) {
			fills.Add(1)
			close(started)
			<-gate
			return cached{body: []byte("value"), ctype: "t"}, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], hits[0] = v, hit
	}()
	<-started // the fill is in flight; everyone below must collapse onto it
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.do(context.Background(), "k", func() (cached, error) {
				fills.Add(1)
				return cached{body: []byte("wrong")}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want exactly 1", got)
	}
	for i, v := range results {
		if string(v.body) != "value" {
			t.Errorf("caller %d got body %q", i, v.body)
		}
	}
	if hits[0] {
		t.Error("the filling caller was counted as a hit")
	}
	if c.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.len())
	}
}

// TestCacheErrorsNotCached proves a failed fill propagates to its
// waiters but leaves no entry behind, so the next request retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := newCache(64)
	boom := errors.New("boom")
	_, _, err := c.do(context.Background(), "k", func() (cached, error) { return cached{}, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if c.len() != 0 {
		t.Fatalf("error was cached: %d entries resident", c.len())
	}
	v, hit, err := c.do(context.Background(), "k", func() (cached, error) {
		return cached{body: []byte("recovered")}, nil
	})
	if err != nil || hit || string(v.body) != "recovered" {
		t.Fatalf("retry after error: v=%q hit=%v err=%v", v.body, hit, err)
	}
}

// TestCacheEviction fills far past the cap and proves residency stays
// bounded while values keep being served correctly.
func TestCacheEviction(t *testing.T) {
	const cap = 64
	c := newCache(cap)
	for i := 0; i < 10*cap; i++ {
		key := fmt.Sprintf("k%d", i)
		v, _, err := c.do(context.Background(), key, func() (cached, error) {
			return cached{body: []byte(key)}, nil
		})
		if err != nil || string(v.body) != key {
			t.Fatalf("fill %d: v=%q err=%v", i, v.body, err)
		}
	}
	// Per-shard cap rounds up, so allow the rounded bound.
	bound := ((cap + cacheShards - 1) / cacheShards) * cacheShards
	if got := c.len(); got > bound {
		t.Fatalf("cache holds %d entries, cap bound %d", got, bound)
	}
}

// TestCacheUnbounded proves a negative cap disables eviction.
func TestCacheUnbounded(t *testing.T) {
	c := newCache(-1)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.do(context.Background(), key, func() (cached, error) {
			return cached{body: []byte(key)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.len(); got != 500 {
		t.Fatalf("unbounded cache holds %d entries, want 500", got)
	}
}
