package crawler

import (
	"context"
	"strings"
	"sync"
	"time"

	"steamstudy/internal/obs"
)

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int32

const (
	// BreakerClosed passes requests through; consecutive failures are
	// counted toward the open threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String names the state for logs and metrics lines.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker protects one endpoint class. A burst of consecutive failures
// (an outage window, a dead backend) opens it; while open, callers wait
// out the cooldown instead of burning their retry budgets against a host
// that is down; a single half-open probe then decides whether the class
// has recovered.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	metrics   *Metrics

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// allow reports whether a request may proceed now; when it may not, it
// returns how long the caller should wait before asking again.
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.metrics.BreakerHalfOpens.Add(1)
		return true, 0
	default: // BreakerHalfOpen
		if b.probing {
			// One probe is already in flight; poll for its outcome.
			wait := b.cooldown / 4
			if wait <= 0 {
				wait = time.Millisecond
			}
			return false, wait
		}
		b.probing = true
		return true, 0
	}
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		b.metrics.BreakerCloses.Add(1)
	}
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.metrics.BreakerOpens.Add(1)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.metrics.BreakerOpens.Add(1)
		}
	}
}

// State returns the current state (for metrics and tests).
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerSet shares one breaker per endpoint class, so an outage on the
// user-data endpoints does not gate the storefront and vice versa.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	metrics   *Metrics
	obs       *obs.Registry

	mu  sync.Mutex
	set map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration, m *Metrics, reg *obs.Registry) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		metrics:   m,
		obs:       reg,
		set:       make(map[string]*breaker),
	}
}

// endpointClass maps a request path to its breaker key: the API interface
// (first path segment), so e.g. all ISteamUser endpoints share fate.
func endpointClass(path string) string {
	path = strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

func (s *breakerSet) breakerFor(class string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.set[class]
	if !ok {
		b = &breaker{
			threshold: s.threshold,
			cooldown:  s.cooldown,
			now:       time.Now,
			metrics:   s.metrics,
		}
		s.set[class] = b
		// Expose the class's live state on the admin surface
		// (0 closed, 1 open, 2 half-open).
		s.obs.GaugeFunc("crawler_breaker_state:"+class, func() float64 {
			return float64(b.State())
		})
	}
	return b
}

// acquire blocks until the class's breaker admits a request (or ctx ends).
func (s *breakerSet) acquire(ctx context.Context, class string) (*breaker, error) {
	b := s.breakerFor(class)
	for {
		ok, wait := b.allow()
		if ok {
			return b, nil
		}
		if err := sleepCtx(ctx, wait); err != nil {
			return nil, err
		}
	}
}

// States snapshots every class's state, for the progress log.
func (s *breakerSet) States() map[string]BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.set))
	for class, b := range s.set {
		out[class] = b.State()
	}
	return out
}
