package crawler

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"steamstudy/internal/dataset"
)

func testUser(id uint64) *dataset.UserRecord {
	return &dataset.UserRecord{
		SteamID: id,
		Created: int64(id) * 100,
		Country: "DE",
		Friends: []dataset.FriendRecord{{SteamID: id + 1, Since: 42}},
		Games:   []dataset.OwnershipRecord{{AppID: 10, TotalMinutes: 60}},
		Groups:  []uint64{7},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	jr, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != 0 || st.phaseDone[2] {
		t.Fatal("fresh journal replayed state")
	}
	u1, u2 := testUser(100), testUser(200)
	if err := jr.appendUser(u1); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendUser(u2); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendPhaseDone(2); err != nil {
		t.Fatal(err)
	}
	game := &dataset.GameRecord{AppID: 10, Name: "g", Genres: []string{"RPG"}}
	if err := jr.appendGame(game); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendAch(10, []dataset.AchievementRecord{{Name: "ACH_0", Percent: 12.5}}); err != nil {
		t.Fatal(err)
	}
	group := &dataset.GroupRecord{GID: 7, Name: "grp", Members: []uint64{100, 200}}
	if err := jr.appendGroup(group); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	m := &Metrics{}
	jr2, st2, err := openJournal(dir, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if len(st2.users) != 2 || !reflect.DeepEqual(st2.users[0], *u1) || !reflect.DeepEqual(st2.users[1], *u2) {
		t.Fatalf("users replayed wrong: %+v", st2.users)
	}
	if !st2.phaseDone[2] || st2.phaseDone[3] {
		t.Fatalf("phase markers replayed wrong: %v", st2.phaseDone)
	}
	if len(st2.games) != 1 || !reflect.DeepEqual(st2.games[0], *game) {
		t.Fatalf("games replayed wrong: %+v", st2.games)
	}
	if !st2.achDone[10] || len(st2.ach[10]) != 1 || st2.ach[10][0].Name != "ACH_0" {
		t.Fatalf("achievements replayed wrong: %+v", st2.ach)
	}
	if len(st2.groups) != 1 || !reflect.DeepEqual(st2.groups[0], *group) {
		t.Fatalf("groups replayed wrong: %+v", st2.groups)
	}
	if m.JournalRecords.Load() != 6 {
		t.Fatalf("replayed %d records, want 6", m.JournalRecords.Load())
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	jr, _, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		if err := jr.appendUser(testUser(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the final record.
	seg := filepath.Join(dir, segName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	jr2, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(st.users) != 2 {
		t.Fatalf("replayed %d users, want 2 whole records", len(st.users))
	}
	// The journal stays appendable after the tear, and the new record
	// lands where the torn one was.
	if err := jr2.appendUser(testUser(99)); err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st3, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st3.users) != 3 || st3.users[2].SteamID != 99 {
		t.Fatalf("post-tear append lost: %+v", st3.users)
	}
}

func TestJournalCorruptTailChecksumTolerated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	jr, _, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.appendUser(testUser(1)); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendUser(testUser(2)); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the final record's payload: the length is
	// intact but the CRC catches the rot, and replay drops only that
	// record.
	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatalf("corrupt tail record not tolerated: %v", err)
	}
	if len(st.users) != 1 || st.users[0].SteamID != 1 {
		t.Fatalf("replayed %+v, want just user 1", st.users)
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	m := &Metrics{}
	// Tiny segments force rotation every couple of records.
	jr, _, err := openJournal(dir, 256, m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for id := uint64(1); id <= n; id++ {
		if err := jr.appendUser(testUser(id)); err != nil {
			t.Fatal(err)
		}
	}
	seg, _ := jr.Position()
	if seg < 3 {
		t.Fatalf("only %d segments after %d oversized appends", seg, n)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	// Sealed segments never exceed the cap by more than one record and,
	// crucially, are never touched again: appends only ever grow the
	// newest segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != seg {
		t.Fatalf("%d segment files, Position says %d", len(entries), seg)
	}
	_, st, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != n {
		t.Fatalf("replayed %d users across segments, want %d", len(st.users), n)
	}
	for i, u := range st.users {
		if u.SteamID != uint64(i+1) {
			t.Fatalf("replay order broken at %d: %d", i, u.SteamID)
		}
	}
}

func TestJournalResumeAppendsToLastSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	jr, _, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 10; id++ {
		if err := jr.appendUser(testUser(id)); err != nil {
			t.Fatal(err)
		}
	}
	segBefore, _ := jr.Position()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	jr2, _, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	segAfter, _ := jr2.Position()
	if segAfter != segBefore {
		t.Fatalf("reopen jumped from segment %d to %d", segBefore, segAfter)
	}
	if err := jr2.appendUser(testUser(11)); err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != 11 {
		t.Fatalf("replayed %d users, want 11", len(st.users))
	}
}

// A unit of work journaled twice — a crash can land between the append
// hitting disk and the in-memory ack, so the successor redoes it — must
// replay as ONE record, and the later (younger) observation wins.
func TestJournalReplayDeduplicates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	jr, _, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	stale := testUser(100)
	stale.Country = "DE"
	if err := jr.appendUser(stale); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendUser(testUser(200)); err != nil {
		t.Fatal(err)
	}
	fresh := testUser(100)
	fresh.Country = "SE"
	fresh.Games = append(fresh.Games, dataset.OwnershipRecord{AppID: 20, TotalMinutes: 5})
	if err := jr.appendUser(fresh); err != nil {
		t.Fatal(err)
	}
	// Same story for games and groups.
	if err := jr.appendGame(&dataset.GameRecord{AppID: 10, Name: "old name"}); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendGame(&dataset.GameRecord{AppID: 10, Name: "new name"}); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendGroup(&dataset.GroupRecord{GID: 7, Name: "old"}); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendGroup(&dataset.GroupRecord{GID: 7, Name: "new"}); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	_, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != 2 {
		t.Fatalf("replayed %d users, want 2 (dedup failed): %+v", len(st.users), st.users)
	}
	if !reflect.DeepEqual(st.users[0], *fresh) {
		t.Fatalf("dedup kept the stale record: %+v", st.users[0])
	}
	if st.users[1].SteamID != 200 {
		t.Fatalf("dedup disturbed record order: %+v", st.users)
	}
	if len(st.games) != 1 || st.games[0].Name != "new name" {
		t.Fatalf("game dedup wrong: %+v", st.games)
	}
	if len(st.groups) != 1 || st.groups[0].Name != "new" {
		t.Fatalf("group dedup wrong: %+v", st.groups)
	}
}

// The append crashpoint fires after the record is durable but before the
// caller is acked — exactly the double-journal scenario dedup exists for.
func TestJournalCrashBetweenAppendAndAck(t *testing.T) {
	defer func() { journalCrashHook = nil }()
	dir := filepath.Join(t.TempDir(), "j")
	jr, _, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("simulated crash")
	journalCrashHook = func(point string) error {
		if point == "append" {
			return injected
		}
		return nil
	}
	if err := jr.appendUser(testUser(1)); !errors.Is(err, injected) {
		t.Fatalf("want injected crash, got %v", err)
	}
	journalCrashHook = nil
	jr.Close()

	// The successor replays the unacked record, redoes the work, and
	// appends it again; the double record must not double-count.
	jr2, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != 1 {
		t.Fatalf("unacked append lost or doubled: %d users", len(st.users))
	}
	if err := jr2.appendUser(testUser(1)); err != nil {
		t.Fatal(err)
	}
	jr2.Close()
	_, st2, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.users) != 1 {
		t.Fatalf("redone work double-counted: %d users", len(st2.users))
	}
}

func TestJournalCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	m := &Metrics{}
	jr, _, err := openJournal(dir, 256, m) // tiny segments: force several
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 20; id++ {
		if err := jr.appendUser(testUser(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.appendGame(&dataset.GameRecord{AppID: 10, Name: "g"}); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendPhaseDone(2); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	jr2, st2, err := openJournal(dir, 256, m)
	if err != nil {
		t.Fatal(err)
	}
	segsBefore, _ := jr2.Position()
	if segsBefore < 3 {
		t.Fatalf("test setup: want several segments, have %d", segsBefore)
	}
	if err := jr2.Compact(st2); err != nil {
		t.Fatal(err)
	}
	// Sealed segments are gone; base + one fresh active segment remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(entries) != 2 {
		t.Fatalf("after compact: %v, want base + one active segment", names)
	}
	// Still appendable after compaction.
	if err := jr2.appendUser(testUser(99)); err != nil {
		t.Fatal(err)
	}
	jr2.Close()

	// Replay = base + tail, identical state to before plus the new append.
	_, st3, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st3.users) != 21 || st3.users[20].SteamID != 99 {
		t.Fatalf("post-compact replay wrong: %d users", len(st3.users))
	}
	for i := 0; i < 20; i++ {
		if !reflect.DeepEqual(st3.users[i], *testUser(uint64(i + 1))) {
			t.Fatalf("compact corrupted user %d: %+v", i+1, st3.users[i])
		}
	}
	if len(st3.games) != 1 || !st3.phaseDone[2] {
		t.Fatal("compact lost games or phase markers")
	}
}

// A crash after the base is published but before the sealed segments are
// deleted must not duplicate records: the next open sweeps the leftovers.
func TestJournalCompactCrashLeavesNoDuplicates(t *testing.T) {
	defer func() { journalCrashHook = nil }()
	dir := filepath.Join(t.TempDir(), "j")
	jr0, _, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 12; id++ {
		if err := jr0.appendUser(testUser(id)); err != nil {
			t.Fatal(err)
		}
	}
	jr0.Close()
	jr, st, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("simulated crash")
	journalCrashHook = func(point string) error {
		if point == "compact-sealed" {
			return injected
		}
		return nil
	}
	if err := jr.Compact(st); !errors.Is(err, injected) {
		t.Fatalf("want injected crash, got %v", err)
	}
	journalCrashHook = nil

	// Base and the sealed segments now coexist on disk.
	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Fatalf("test setup: want base + leftover segments, have %d files", len(entries))
	}
	m := &Metrics{}
	jr2, st2, err := openJournal(dir, 256, m)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if len(st2.users) != 12 {
		t.Fatalf("replayed %d users after compact crash, want 12 (no duplicates)", len(st2.users))
	}
	// The leftovers were swept.
	entries, _ = os.ReadDir(dir)
	for _, e := range entries {
		if n, ok := segSeq(e.Name()); ok && n <= 12 {
			// Only the fresh active segment (seq = upTo+1) may remain.
			seg, _ := jr2.Position()
			if n != seg {
				t.Fatalf("sealed segment %s not swept", e.Name())
			}
		}
	}
}

// A corrupt base is fatal on open: the segments it sealed are gone, so
// there is no safe way to resume from half a base.
func TestJournalCorruptBaseIsFatal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	jr, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		if err := jr.appendUser(testUser(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Compacting the instance that appended would drop those records from
	// st; the guard refuses, and a reopen compacts safely.
	if err := jr.Compact(st); err == nil {
		t.Fatal("compact with stale state accepted")
	}
	jr.Close()
	jr2, st2, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr2.Compact(st2); err != nil {
		t.Fatal(err)
	}
	jr2.Close()
	b, err := os.ReadFile(filepath.Join(dir, baseName))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, baseName), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(dir, 0, &Metrics{}); err == nil {
		t.Fatal("corrupt base tolerated")
	}
}
