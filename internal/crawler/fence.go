// The journal's fencing guard. A fleet lease carries a per-shard epoch
// that the lease table bumps on every (re)issue; the journal pins that
// epoch durably in the shard directory so a worker paused past its lease
// TTL — SIGSTOP, GC stall, NFS hang — cannot resume and write stale
// records into a journal a successor now owns. Two mechanisms compose:
//
//   - The fence file: one fsynced JSON document holding the highest epoch
//     that ever opened this journal for writing, plus a seal map fixing
//     the byte length of every segment the takeover replayed. Appends
//     re-read the fence and refuse to write once a higher epoch has
//     fenced them out (ErrFenced). Seals make the guarantee independent
//     of the zombie noticing: any bytes a paused writer manages to land
//     after a takeover fall beyond the sealed length and are excluded
//     from every future replay.
//   - Segment epoch headers: segments created by an epoch-bearing writer
//     begin with a 16-byte header naming their epoch, so replay can skip
//     whole segments forged below the fence even if they were never
//     sealed (a zombie racing the takeover's directory listing).
//
// Solo crawls (epoch zero, no fence file) pay nothing: their journals
// are byte-identical to the unfenced format and take no per-append read.
package crawler

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrFenced reports a journal write (or open-for-write) attempted with an
// epoch below the journal's fence: the caller's lease was reissued to a
// successor and the caller must abandon the shard immediately. Fleet
// workers treat it exactly like fleet.ErrLeaseLost.
var ErrFenced = errors.New("crawler: journal fenced: lease epoch superseded")

// fenceName is the fence file, living beside the segments in the shard's
// journal directory.
const fenceName = "fence"

// Fence is the durable epoch guard of one journal directory.
type Fence struct {
	// Epoch is the highest lease epoch that has opened this journal for
	// writing. Writers with a lower epoch are fenced out.
	Epoch uint64 `json:"epoch"`
	// Seals fixes, per segment sequence number, the byte length the
	// fencing takeover replayed. Replay never reads a sealed segment past
	// its seal, so late writes by a fenced-out process are inert.
	Seals map[int]int64 `json:"seals,omitempty"`
}

// ReadFence loads the fence of the journal directory. A missing fence
// file returns the zero Fence (epoch 0 = unfenced) and no error.
func ReadFence(dir string) (Fence, error) {
	var f Fence
	raw, err := os.ReadFile(filepath.Join(dir, fenceName))
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, fmt.Errorf("crawler: fence read: %w", err)
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("crawler: fence decode: %w", err)
	}
	return f, nil
}

// writeFence durably publishes the fence: temp file, fsync, rename,
// directory fsync — the same discipline as the journal base, so the
// epoch bump is on disk before the new owner writes its first record.
func writeFence(dir string, f Fence) error {
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("crawler: fence encode: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-fence-")
	if err != nil {
		return fmt.Errorf("crawler: fence temp: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(name)
		return fmt.Errorf("crawler: fence write: %w", err)
	}
	if err := os.Rename(name, filepath.Join(dir, fenceName)); err != nil {
		os.Remove(name)
		return fmt.Errorf("crawler: fence publish: %w", err)
	}
	return syncJournalDir(dir)
}
