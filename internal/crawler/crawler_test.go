package crawler

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/dataset"
	"steamstudy/internal/simworld"
	"steamstudy/internal/steamid"
)

var (
	crawlOnce sync.Once
	crawlU    *simworld.Universe
)

func crawlUniverse(t *testing.T) *simworld.Universe {
	t.Helper()
	crawlOnce.Do(func() {
		cfg := simworld.DefaultConfig(800)
		cfg.CatalogSize = 120
		crawlU = simworld.MustGenerate(cfg, 55)
	})
	return crawlU
}

func startServer(t *testing.T, cfg apiserver.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(apiserver.New(crawlUniverse(t), cfg))
	t.Cleanup(ts.Close)
	return ts
}

func runCrawl(t *testing.T, cfg Config) *dataset.Snapshot {
	t.Helper()
	c := New(cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	snap, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestCrawlMatchesGroundTruth(t *testing.T) {
	u := crawlUniverse(t)
	ts := startServer(t, apiserver.Config{})
	snap := runCrawl(t, Config{BaseURL: ts.URL, Workers: 8})

	truth := dataset.FromUniverse(u)
	if len(snap.Users) != len(truth.Users) {
		t.Fatalf("crawled %d users, truth has %d", len(snap.Users), len(truth.Users))
	}
	if len(snap.Games) != len(truth.Games) {
		t.Fatalf("crawled %d games, truth has %d", len(snap.Games), len(truth.Games))
	}
	// Users are ID-sorted in both; compare field by field.
	for i := range truth.Users {
		tu, cu := &truth.Users[i], &snap.Users[i]
		if tu.SteamID != cu.SteamID || tu.Created != cu.Created ||
			tu.Country != cu.Country || tu.City != cu.City {
			t.Fatalf("user %d profile mismatch: %+v vs %+v", i, tu, cu)
		}
		if len(tu.Friends) != len(cu.Friends) {
			t.Fatalf("user %d friend count %d vs %d", i, len(cu.Friends), len(tu.Friends))
		}
		truthFriends := map[uint64]int64{}
		for _, f := range tu.Friends {
			truthFriends[f.SteamID] = f.Since
		}
		for _, f := range cu.Friends {
			since, ok := truthFriends[f.SteamID]
			if !ok || since != f.Since {
				t.Fatalf("user %d friend %d mismatch", i, f.SteamID)
			}
		}
		if tu.TotalMinutes() != cu.TotalMinutes() || tu.TwoWeekMinutes() != cu.TwoWeekMinutes() {
			t.Fatalf("user %d playtime mismatch", i)
		}
		if len(tu.Groups) != len(cu.Groups) {
			t.Fatalf("user %d group count mismatch", i)
		}
	}
	// Catalog fields survive the storefront round trip.
	for i := range truth.Games {
		tg, cg := &truth.Games[i], &snap.Games[i]
		if tg.AppID != cg.AppID || tg.Name != cg.Name || tg.PriceCents != cg.PriceCents ||
			tg.Multiplayer != cg.Multiplayer || tg.Type != cg.Type {
			t.Fatalf("game %d mismatch: %+v vs %+v", i, tg, cg)
		}
		if !reflect.DeepEqual(tg.Genres, cg.Genres) {
			t.Fatalf("game %d genres %v vs %v", i, cg.Genres, tg.Genres)
		}
		if len(tg.Achievements) != len(cg.Achievements) {
			t.Fatalf("game %d achievements %d vs %d", i, len(cg.Achievements), len(tg.Achievements))
		}
	}
	// Group memberships and the automated categorization.
	if len(snap.Groups) == 0 {
		t.Fatal("no groups crawled")
	}
	truthGroups := map[uint64]*dataset.GroupRecord{}
	for i := range truth.Groups {
		truthGroups[truth.Groups[i].GID] = &truth.Groups[i]
	}
	for i := range snap.Groups {
		cg := &snap.Groups[i]
		tg, ok := truthGroups[cg.GID]
		if !ok {
			t.Fatalf("crawled unknown group %d", cg.GID)
		}
		// The crawler only sees groups with at least one member; member
		// sets must match exactly.
		if len(cg.Members) != len(tg.Members) {
			t.Fatalf("group %d member count %d vs %d", cg.GID, len(cg.Members), len(tg.Members))
		}
		if cg.Type != tg.Type {
			t.Fatalf("group %d categorized %q, truth %q", cg.GID, cg.Type, tg.Type)
		}
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCrawlSurvivesFaultInjection(t *testing.T) {
	ts := startServer(t, apiserver.Config{FaultRate: 0.05})
	snap := runCrawl(t, Config{
		BaseURL: ts.URL, Workers: 4,
		MaxRetries: 8, RetryBackoff: time.Millisecond,
	})
	truth := dataset.FromUniverse(crawlUniverse(t))
	if len(snap.Users) != len(truth.Users) {
		t.Fatalf("faulty crawl found %d users, want %d", len(snap.Users), len(truth.Users))
	}
}

func TestCrawlRespects429(t *testing.T) {
	// A tight server limit forces 429s; the crawler must back off and
	// still finish.
	ts := startServer(t, apiserver.Config{RatePerSecond: 500, Burst: 50})
	c := New(Config{
		BaseURL: ts.URL, Workers: 4,
		RatePerSecond: 2000, // deliberately above the server's allowance
		MaxAccounts:   60,
		RetryBackoff:  time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	snap, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Users) != 60 {
		t.Fatalf("crawled %d users, want capped 60", len(snap.Users))
	}
	if c.Metrics.RateLimited.Load() == 0 {
		t.Fatal("server limit never hit; test misconfigured")
	}
}

func TestCrawlAPIKey(t *testing.T) {
	ts := startServer(t, apiserver.Config{APIKeys: []string{"K123"}})
	c := New(Config{BaseURL: ts.URL, APIKey: "K123", MaxAccounts: 10})
	ctx := context.Background()
	if _, err := c.Run(ctx); err != nil {
		t.Fatalf("crawl with valid key failed: %v", err)
	}
	bad := New(Config{BaseURL: ts.URL, APIKey: "WRONG", MaxAccounts: 10, MaxRetries: 1, RetryBackoff: time.Millisecond})
	if _, err := bad.Run(ctx); err == nil {
		t.Fatal("crawl with invalid key succeeded")
	}
}

func TestCrawlCancellation(t *testing.T) {
	ts := startServer(t, apiserver.Config{})
	c := New(Config{BaseURL: ts.URL, RatePerSecond: 50}) // slow enough to cancel mid-flight
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("cancelled crawl reported success")
	}
}

func TestCheckpointResume(t *testing.T) {
	ts := startServer(t, apiserver.Config{})
	cpDir := filepath.Join(t.TempDir(), "crawl.journal")

	// First run: interrupted partway through phase 2 by a context cancel
	// (the process-death stand-in), leaving a partial journal behind.
	interrupted := New(Config{
		BaseURL: ts.URL, Workers: 4,
		RatePerSecond:  400, // slow enough that the cancel lands mid-phase-2
		CheckpointPath: cpDir,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := interrupted.Run(ctx); err == nil {
		t.Fatal("interrupted crawl reported success")
	}

	// Second run resumes: the journaled accounts are not re-fetched, and
	// the final snapshot is complete.
	resumed := New(Config{
		BaseURL: ts.URL, Workers: 4,
		CheckpointPath: cpDir,
	})
	snap, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	truth := dataset.FromUniverse(crawlUniverse(t))
	if len(snap.Users) != len(truth.Users) {
		t.Fatalf("resumed crawl has %d users, want %d", len(snap.Users), len(truth.Users))
	}
	// The resumed run fetched strictly fewer account details than exist,
	// and together the two runs fetched each account exactly once.
	journaled := interrupted.Metrics.UsersDone.Load()
	if journaled == 0 {
		t.Skip("interruption landed before phase 2; nothing to verify")
	}
	if got := resumed.Metrics.UsersDone.Load(); got != int64(len(truth.Users))-journaled {
		t.Fatalf("resume fetched %d users; first run had journaled %d of %d",
			got, journaled, len(truth.Users))
	}
}

func TestCheckpointCorruptMiddleSegmentErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	jr, _, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.appendPhaseDone(2); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	// Garbage in a non-final segment must fail the resume loudly instead
	// of silently dropping everything journaled after it.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(dir, 0, &Metrics{}); err == nil {
		t.Fatal("corrupt middle segment replayed without error")
	}
}

func TestCategorizeGroup(t *testing.T) {
	cases := map[string]string{
		"Game Server group 3 | A Game Server community on Steam.":           "Game Server",
		"Single Game group 9 | A Single Game community on Steam.":           "Single Game",
		"Gaming Community group 1 | A Gaming Community community on Steam.": "Gaming Community",
		"totally unrelated | nothing here":                                  "",
	}
	for input, want := range cases {
		name, summary, _ := strings.Cut(input, " | ")
		if got := CategorizeGroup(name, summary); got != want {
			t.Fatalf("CategorizeGroup(%q) = %q, want %q", input, got, want)
		}
	}
}

func TestDensityProfileReproducesIDSpaceShape(t *testing.T) {
	// §3.1: valid-account density is low early in the ID range (the
	// simulator uses 45 %) and above 90 % later. The crawler's sweep
	// telemetry must recover that shape.
	ts := startServer(t, apiserver.Config{})
	c := New(Config{BaseURL: ts.URL, Workers: 4})
	if c.DensityProfile(10) != nil {
		t.Fatal("density profile available before the sweep")
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	profile := c.DensityProfile(10)
	if len(profile) != 10 {
		t.Fatalf("profile has %d buckets", len(profile))
	}
	if profile[0] > 0.65 {
		t.Fatalf("early-range density %v, want sparse (<0.65)", profile[0])
	}
	if profile[8] < 0.8 {
		t.Fatalf("late-range density %v, want dense (>0.8)", profile[8])
	}
	for i, d := range profile {
		if d < 0 || d > 1 {
			t.Fatalf("bucket %d density %v out of range", i, d)
		}
	}
}

func TestSnowballCrawlBias(t *testing.T) {
	u := crawlUniverse(t)
	ts := startServer(t, apiserver.Config{})
	c := New(Config{BaseURL: ts.URL, Workers: 4})

	// Seed from the highest-degree account (how real crawls were seeded).
	deg := u.FriendCounts()
	best := 0
	for i, d := range deg {
		if d > deg[best] {
			best = i
		}
	}
	snap, err := c.Snowball(context.Background(), []steamid.ID{u.Users[best].ID}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Users) == 0 || len(snap.Users) >= len(u.Users) {
		t.Fatalf("snowball reached %d of %d accounts", len(snap.Users), len(u.Users))
	}
	// Every reached account is connected (the §2.2 bias): its friend list
	// is nonempty or it is the seed.
	for _, rec := range snap.Users {
		if len(rec.Friends) == 0 && rec.SteamID != uint64(u.Users[best].ID) {
			t.Fatalf("snowball reached friendless account %d", rec.SteamID)
		}
	}
	// Mean degree in the snowball sample exceeds the exhaustive mean.
	var snowSum int
	for _, rec := range snap.Users {
		snowSum += len(rec.Friends)
	}
	var exSum int
	for _, d := range deg {
		exSum += d
	}
	snowMean := float64(snowSum) / float64(len(snap.Users))
	exMean := float64(exSum) / float64(len(u.Users))
	if snowMean <= exMean {
		t.Fatalf("snowball mean degree %.2f not above exhaustive %.2f", snowMean, exMean)
	}
}

func TestSnowballHonorsMaxAndSeedsValidation(t *testing.T) {
	u := crawlUniverse(t)
	ts := startServer(t, apiserver.Config{})
	c := New(Config{BaseURL: ts.URL})
	if _, err := c.Snowball(context.Background(), nil, 0); err == nil {
		t.Fatal("empty seed list accepted")
	}
	deg := u.FriendCounts()
	best := 0
	for i, d := range deg {
		if d > deg[best] {
			best = i
		}
	}
	snap, err := c.Snowball(context.Background(), []steamid.ID{u.Users[best].ID}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Users) != 25 {
		t.Fatalf("bounded snowball returned %d users", len(snap.Users))
	}
}
