package crawler

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frameRecord encodes one journal record with the length+CRC framing the
// append path uses, so tests can forge segment contents byte-for-byte.
func frameRecord(t *testing.T, rec *journalRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(make([]byte, recHeaderSize))
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	payload := b[recHeaderSize:]
	binary.BigEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	return b
}

func TestFenceReadWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f, err := ReadFence(dir)
	if err != nil || f.Epoch != 0 || f.Seals != nil {
		t.Fatalf("missing fence should read as zero: %+v, %v", f, err)
	}
	want := Fence{Epoch: 3, Seals: map[int]int64{1: 128, 2: 16}}
	if err := writeFence(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFence(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || len(got.Seals) != 2 || got.Seals[1] != 128 || got.Seals[2] != 16 {
		t.Fatalf("fence round trip: got %+v, want %+v", got, want)
	}
}

func TestJournalOpenBelowFenceRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeFence(dir, Fence{Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	if _, _, err := openJournalAt(dir, 0, m, 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("open below fence: want ErrFenced, got %v", err)
	}
	if m.FenceRejections.Load() != 1 {
		t.Fatalf("FenceRejections = %d, want 1", m.FenceRejections.Load())
	}
	// The fence's own epoch and anything above it still open fine.
	for _, epoch := range []uint64{3, 4} {
		jr, _, err := openJournalAt(dir, 0, &Metrics{}, epoch)
		if err != nil {
			t.Fatalf("open at epoch %d: %v", epoch, err)
		}
		jr.Close()
	}
}

// TestJournalAppendBelowFenceRejected is the zombie scenario in
// miniature: a paused epoch-1 writer holds an open handle while an
// epoch-2 takeover seals its segment; the zombie's next append must fail
// with ErrFenced and leave no trace in any future replay.
func TestJournalAppendBelowFenceRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	mz := &Metrics{}
	zombie, _, err := openJournalAt(dir, 0, mz, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := zombie.appendUser(testUser(1)); err != nil {
		t.Fatal(err)
	}

	// Takeover: a successor opens the same directory at epoch 2. The
	// zombie's pre-takeover record must replay into the successor's state.
	succ, st, err := openJournalAt(dir, 0, &Metrics{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != 1 || st.users[0].SteamID != 1 {
		t.Fatalf("takeover replayed %+v, want the pre-takeover user", st.users)
	}
	if err := succ.appendUser(testUser(2)); err != nil {
		t.Fatal(err)
	}

	// The zombie wakes up and tries to keep writing.
	if err := zombie.appendUser(testUser(99)); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie append: want ErrFenced, got %v", err)
	}
	if mz.FenceRejections.Load() != 1 {
		t.Fatalf("zombie FenceRejections = %d, want 1", mz.FenceRejections.Load())
	}
	zombie.Close()
	if err := succ.Close(); err != nil {
		t.Fatal(err)
	}

	// Final state: the pre-takeover record and the successor's, nothing
	// from the fenced-out append.
	_, st2, err := openJournalAt(dir, 0, &Metrics{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.users) != 2 || st2.users[0].SteamID != 1 || st2.users[1].SteamID != 2 {
		t.Fatalf("final replay %+v, want users 1 and 2", st2.users)
	}
}

// TestJournalSealClampsLateAppends: even bytes that do land after a
// takeover (a write already in flight when the fence was published) sit
// beyond the seal and are invisible to every replay.
func TestJournalSealClampsLateAppends(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	w1, _, err := openJournalAt(dir, 0, &Metrics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.appendUser(testUser(1)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(w1.seq))
	w1.Close()

	w2, _, err := openJournalAt(dir, 0, &Metrics{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()

	// Simulate the zombie's in-flight write landing at OS level, past the
	// seal: a perfectly well-formed record appended straight to the file.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frameRecord(t, &journalRecord{Kind: kindUser, User: testUser(666)})); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, epoch := range []uint64{0, 2} {
		_, st, err := openJournalAt(dir, 0, &Metrics{}, epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if len(st.users) != 1 || st.users[0].SteamID != 1 {
			t.Fatalf("epoch %d replayed %+v; the late append leaked past the seal", epoch, st.users)
		}
	}
}

// TestJournalReplaySkipsBelowFenceSegments: an unsealed segment whose
// header names an epoch below the fence (a fenced-out writer's rotation
// racing the takeover's directory listing) is skipped whole.
func TestJournalReplaySkipsBelowFenceSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	w1, _, err := openJournalAt(dir, 0, &Metrics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.appendUser(testUser(1)); err != nil {
		t.Fatal(err)
	}
	w1.Close()
	w2, _, err := openJournalAt(dir, 0, &Metrics{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.appendUser(testUser(2)); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	// Forge the zombie's racing rotation: a fresh segment at the next
	// sequence, epoch-1 header, one valid record, never sealed.
	var hdr [segHeaderSize]byte
	copy(hdr[0:4], segMagic)
	binary.BigEndian.PutUint32(hdr[4:8], segHeaderVersion)
	binary.BigEndian.PutUint64(hdr[8:16], 1)
	forged := append(hdr[:], frameRecord(t, &journalRecord{Kind: kindUser, User: testUser(666)})...)
	if err := os.WriteFile(filepath.Join(dir, segName(w2.seq+1)), forged, 0o644); err != nil {
		t.Fatal(err)
	}

	_, st, err := openJournalAt(dir, 0, &Metrics{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != 2 || st.users[0].SteamID != 1 || st.users[1].SteamID != 2 {
		t.Fatalf("replay %+v, want only users 1 and 2 (forged below-fence segment skipped)", st.users)
	}
}

// TestJournalReadonlyOnFencedDir: an epoch-zero open of a fenced
// directory (merge, rebuild) replays but must refuse appends and
// compaction, and must not repair torn tails it does not own.
func TestJournalReadonlyOnFencedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	w1, _, err := openJournalAt(dir, 0, &Metrics{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.appendUser(testUser(1)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(w1.seq))
	w1.Close()

	// Tear the live owner's tail at OS level (an in-flight append).
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := info.Size() + 5
	if err := os.Truncate(seg, torn); err != nil {
		t.Fatal(err)
	}

	rd, st, err := openJournalAt(dir, 0, &Metrics{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.users) != 1 {
		t.Fatalf("readonly replay %+v, want 1 user", st.users)
	}
	if err := rd.appendUser(testUser(2)); !errors.Is(err, ErrFenced) {
		t.Fatalf("readonly append: want ErrFenced, got %v", err)
	}
	if err := rd.Compact(st); !errors.Is(err, ErrFenced) {
		t.Fatalf("readonly compact: want ErrFenced, got %v", err)
	}
	rd.Close()
	if info, err = os.Stat(seg); err != nil {
		t.Fatal(err)
	}
	if info.Size() != torn {
		t.Fatalf("readonly open truncated the live owner's segment to %d bytes", info.Size())
	}
}
