// Journal-backed snapshot repair. The journal is the crawl's write-ahead
// source of truth: every completed unit of work was appended there before
// the snapshot was assembled. When a snapshot file is damaged — torn by a
// crash predating atomic saves, bit-rotted on disk, or simply missing —
// the journal can rebuild it without re-crawling, and fsck can then prove
// the rebuilt artifact clean.

package crawler

import (
	"fmt"

	"steamstudy/internal/dataset"
)

// RebuildFromJournal replays the journal in dir into a complete snapshot
// without any network work: users, games with their achievement sets,
// and groups, in canonical ID order — exactly what an uninterrupted Run
// over the same journal would have returned. CollectedAt is zero; the
// caller decides whether to preserve a previous timestamp.
func RebuildFromJournal(dir string) (*dataset.Snapshot, error) {
	j, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		return nil, fmt.Errorf("crawler: rebuild: %w", err)
	}
	j.Close()
	return st.snapshot(0), nil
}

// RepairSnapshot rebuilds the snapshot at path from the journal in dir
// and saves it atomically with a fresh manifest, preserving the damaged
// file's recorded collection time when either the file or its manifest
// still carries one. It returns the post-repair fsck report so the
// caller can prove the artifact clean. Metrics, when non-nil, record the
// repair and the verification counts.
func RepairSnapshot(dir, path string, m *dataset.IntegrityMetrics) (*dataset.Report, error) {
	snap, err := RebuildFromJournal(dir)
	if err != nil {
		return nil, err
	}
	// Best effort: keep the original collection timestamp. The damaged
	// file may still decode, and even when it does not, its manifest
	// usually survives (it is a separate sidecar).
	if old, lerr := dataset.Load(path); lerr == nil {
		snap.CollectedAt = old.CollectedAt
	} else if man, merr := dataset.ReadManifest(path); merr == nil && man != nil {
		snap.CollectedAt = man.CollectedAt
	}
	if err := snap.Save(path); err != nil {
		return nil, fmt.Errorf("crawler: repair: %w", err)
	}
	if m != nil {
		m.Repairs.Inc()
	}
	return dataset.FsckFile(path, m)
}

// CompactJournal replays the journal in dir and seals everything it
// holds into one verified base snapshot, deleting the replayed segments.
// Run it after a repair (or periodically on a long crawl's checkpoint)
// to bound the next replay to one base decode plus the fresh tail.
func CompactJournal(dir string) error {
	j, st, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		return fmt.Errorf("crawler: compact: %w", err)
	}
	defer j.Close()
	return j.Compact(st)
}
