// Package crawler implements the paper's data-collection methodology
// (§3.1) against any server speaking the Steam Web API wire format:
//
//	phase 1 — exhaustive ID-space sweep with 100-profile batches, stopping
//	          when the sweep runs past the youngest account;
//	phase 2 — per-account friend lists, libraries with playtimes, and
//	          group memberships, fanned out over a worker pool;
//	phase 3 — the catalog via the app index and storefront appdetails;
//	phase 4 — per-game global achievement percentages (§9);
//	phase 5 — community group pages for categorization (§4.2).
//
// The crawler self-throttles to a configurable fraction of the server's
// allowance (the paper used 85 %), retries transient failures with
// exponential backoff, honors Retry-After on 429s, and checkpoints for
// resumable multi-session crawls (the paper's phase 2 ran for six months).
package crawler

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"steamstudy/internal/ratelimit"
)

// client is the rate-limited, retrying HTTP client shared by all phases.
type client struct {
	base    string
	key     string
	http    *http.Client
	limiter *ratelimit.Limiter
	retries int
	backoff time.Duration
	metrics *Metrics
}

// errNotFound marks a 404 — the resource legitimately does not exist
// (unassigned SteamID, private profile); not retryable.
type errNotFound struct{ url string }

func (e errNotFound) Error() string { return "not found: " + e.url }

// IsNotFound reports whether err marks a 404.
func IsNotFound(err error) bool {
	_, ok := err.(errNotFound)
	return ok
}

// getJSON fetches path with params, decodes JSON into out, and handles
// rate limiting, 429 Retry-After, and transient-error retries.
func (c *client) getJSON(ctx context.Context, path string, params url.Values, out any) error {
	if c.key != "" {
		params.Set("key", c.key)
	}
	u := c.base + path + "?" + params.Encode()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if err := c.limiter.Wait(ctx); err != nil {
			return err
		}
		c.metrics.Requests.Add(1)
		resp, err := c.http.Get(u)
		if err != nil {
			lastErr = err
			c.metrics.Errors.Add(1)
			if sleepErr := sleepCtx(ctx, c.backoffFor(attempt)); sleepErr != nil {
				return sleepErr
			}
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("crawler: decoding %s: %w", u, err)
			}
			return nil
		case resp.StatusCode == http.StatusNotFound:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return errNotFound{url: u}
		case resp.StatusCode == http.StatusTooManyRequests:
			c.metrics.RateLimited.Add(1)
			wait := c.backoffFor(attempt)
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil {
					wait = time.Duration(secs) * time.Second
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("crawler: rate limited at %s", u)
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
			// A 429 does not consume a retry attempt: it is the limiter
			// doing its job, not a failure.
			attempt--
		case resp.StatusCode >= 500:
			c.metrics.Errors.Add(1)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("crawler: server error %d at %s", resp.StatusCode, u)
			if err := sleepCtx(ctx, c.backoffFor(attempt)); err != nil {
				return err
			}
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return fmt.Errorf("crawler: unexpected status %d at %s", resp.StatusCode, u)
		}
	}
	return fmt.Errorf("crawler: retries exhausted: %w", lastErr)
}

// backoffFor returns the exponential backoff with jitter for an attempt.
func (c *client) backoffFor(attempt int) time.Duration {
	d := c.backoff << uint(attempt)
	if d <= 0 {
		d = c.backoff
	}
	// Up to 25 % jitter decorrelates concurrent workers.
	return d + time.Duration(rand.Int63n(int64(d)/4+1))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
