// Package crawler implements the paper's data-collection methodology
// (§3.1) against any server speaking the Steam Web API wire format:
//
//	phase 1 — exhaustive ID-space sweep with 100-profile batches, stopping
//	          when the sweep runs past the youngest account;
//	phase 2 — per-account friend lists, libraries with playtimes, and
//	          group memberships, fanned out over a worker pool;
//	phase 3 — the catalog via the app index and storefront appdetails;
//	phase 4 — per-game global achievement percentages (§9);
//	phase 5 — community group pages for categorization (§4.2).
//
// The crawler self-throttles to a configurable fraction of the server's
// allowance (the paper used 85 %) with AIMD backoff under 429/503
// pressure, binds every request to its context with a per-request
// timeout, retries transient failures with clamped exponential backoff,
// honors Retry-After on 429 and 503, gates each endpoint class behind a
// circuit breaker, and journals completed work so multi-month crawls (the
// paper's phase 2 ran for six months) resume losslessly after a crash.
package crawler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"steamstudy/internal/obs"
	"steamstudy/internal/ratelimit"
)

// client is the rate-limited, retrying HTTP client shared by all phases.
type client struct {
	base       string
	key        string
	http       *http.Client
	limiter    *ratelimit.Limiter
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	reqTimeout time.Duration
	metrics    *Metrics
	breakers   *breakerSet // nil disables circuit breaking
	aimd       *aimd       // nil disables adaptive throttling

	obs     *obs.Registry
	classMu sync.Mutex
	classes map[string]*classCounters
}

// classCounters is the per-endpoint-class slice of the request metrics,
// resolved once per class so the per-request cost is the map lookup plus
// atomic adds.
type classCounters struct {
	requests *obs.Counter
	retries  *obs.Counter
	errors   *obs.Counter
}

// classCountersFor returns (creating on first sight) the counters for one
// endpoint class. Works with a nil registry: the counters are then
// detached but still live, so call sites never branch.
func (c *client) classCountersFor(class string) *classCounters {
	c.classMu.Lock()
	defer c.classMu.Unlock()
	if c.classes == nil {
		c.classes = make(map[string]*classCounters)
	}
	cc, ok := c.classes[class]
	if !ok {
		cc = &classCounters{
			requests: c.obs.Counter("crawler_class_requests:" + class),
			retries:  c.obs.Counter("crawler_class_retries:" + class),
			errors:   c.obs.Counter("crawler_class_errors:" + class),
		}
		c.classes[class] = cc
	}
	return cc
}

// aimd is the additive-increase/multiplicative-decrease throttle: 429s
// and 503s halve the request rate; every success nudges it back toward
// the configured target (the paper's 85 % budget).
type aimd struct {
	limiter *ratelimit.Limiter
	target  float64
	min     float64
	step    float64
	metrics *Metrics
}

func newAIMD(l *ratelimit.Limiter, target float64, m *Metrics) *aimd {
	return &aimd{
		limiter: l,
		target:  target,
		min:     1,
		step:    target / 100,
		metrics: m,
	}
}

func (a *aimd) onBackpressure() {
	r := a.limiter.Rate() / 2
	if r < a.min {
		r = a.min
	}
	a.limiter.SetRate(r)
	a.metrics.ThrottleDowns.Add(1)
}

func (a *aimd) onSuccess() {
	r := a.limiter.Rate()
	if r >= a.target {
		return
	}
	r += a.step
	if r > a.target {
		r = a.target
	}
	a.limiter.SetRate(r)
}

// errNotFound marks a 404 — the resource legitimately does not exist
// (unassigned SteamID, private profile); not retryable.
type errNotFound struct{ url string }

func (e errNotFound) Error() string { return "not found: " + e.url }

// IsNotFound reports whether err marks a 404.
func IsNotFound(err error) bool {
	_, ok := err.(errNotFound)
	return ok
}

// fetchResult is one HTTP attempt, with the body fully read.
type fetchResult struct {
	status        int
	body          []byte
	retryAfter    time.Duration
	hasRetryAfter bool // distinguishes "Retry-After: 0" from absent
}

// fetch performs one context-bound attempt with the per-request timeout.
// Reading the body to completion happens inside the timeout, so stalls
// and truncations surface here as errors.
func (c *client) fetch(ctx context.Context, u string) (fetchResult, error) {
	if c.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.reqTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fetchResult{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fetchResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		// Truncated or reset mid-body: transport-level failure.
		return fetchResult{}, err
	}
	res := fetchResult{status: resp.StatusCode, body: body}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			res.retryAfter = time.Duration(secs) * time.Second
			res.hasRetryAfter = true
		}
	}
	return res, nil
}

// decodeStrict unmarshals body into out, rejecting unknown fields — the
// defense against valid-but-wrong JSON: a payload whose shape does not
// match the endpoint's schema fails decoding and is retried instead of
// being silently accepted as an empty response.
func decodeStrict(body []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return err
	}
	return nil
}

// getJSON fetches path with params, decodes JSON into out, and handles
// rate limiting, Retry-After backpressure, circuit breaking, adaptive
// throttling, and transient-error retries.
func (c *client) getJSON(ctx context.Context, path string, params url.Values, out any) error {
	if c.key != "" {
		params.Set("key", c.key)
	}
	u := c.base + path + "?" + params.Encode()
	class := endpointClass(path)
	cc := c.classCountersFor(class)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if err := c.limiter.Wait(ctx); err != nil {
			return err
		}
		var br *breaker
		if c.breakers != nil {
			var err error
			if br, err = c.breakers.acquire(ctx, class); err != nil {
				return err
			}
		}
		c.metrics.Requests.Add(1)
		cc.requests.Inc()
		if attempt > 0 {
			c.metrics.Retries.Add(1)
			cc.retries.Inc()
		}
		res, err := c.fetch(ctx, u)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			c.metrics.Errors.Add(1)
			cc.errors.Inc()
			if br != nil {
				br.onFailure()
			}
			if sleepErr := sleepCtx(ctx, c.backoffFor(attempt)); sleepErr != nil {
				return sleepErr
			}
			continue
		}
		switch {
		case res.status == http.StatusOK:
			if err := decodeStrict(res.body, out); err != nil {
				// Malformed or wrong-shaped payload: the server is
				// misbehaving, so this counts against the breaker and is
				// retried like any transient fault.
				lastErr = fmt.Errorf("crawler: decoding %s: %w", u, err)
				c.metrics.Errors.Add(1)
				cc.errors.Inc()
				c.metrics.DecodeErrors.Add(1)
				if br != nil {
					br.onFailure()
				}
				if sleepErr := sleepCtx(ctx, c.backoffFor(attempt)); sleepErr != nil {
					return sleepErr
				}
				continue
			}
			if br != nil {
				br.onSuccess()
			}
			if c.aimd != nil {
				c.aimd.onSuccess()
			}
			return nil
		case res.status == http.StatusNotFound:
			// The server answered authoritatively; it is healthy.
			if br != nil {
				br.onSuccess()
			}
			return errNotFound{url: u}
		case res.status == http.StatusTooManyRequests:
			c.metrics.RateLimited.Add(1)
			if c.aimd != nil {
				c.aimd.onBackpressure()
			}
			wait := c.backoffFor(attempt)
			if res.hasRetryAfter {
				wait = res.retryAfter
			}
			lastErr = fmt.Errorf("crawler: rate limited at %s", u)
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
			// A 429 does not consume a retry attempt: it is the limiter
			// doing its job, not a failure.
			attempt--
		case res.status == http.StatusServiceUnavailable:
			c.metrics.Errors.Add(1)
			cc.errors.Inc()
			c.metrics.Unavailable.Add(1)
			if c.aimd != nil {
				c.aimd.onBackpressure()
			}
			if br != nil {
				br.onFailure()
			}
			wait := c.backoffFor(attempt)
			lastErr = fmt.Errorf("crawler: service unavailable at %s", u)
			if res.hasRetryAfter {
				// Honor Retry-After on 503 exactly like on 429: the server
				// told us when to come back, so waiting it out is
				// backpressure, not a spent retry.
				wait = res.retryAfter
				attempt--
			}
			if err := sleepCtx(ctx, wait); err != nil {
				return err
			}
		case res.status >= 500:
			c.metrics.Errors.Add(1)
			cc.errors.Inc()
			if br != nil {
				br.onFailure()
			}
			lastErr = fmt.Errorf("crawler: server error %d at %s", res.status, u)
			if err := sleepCtx(ctx, c.backoffFor(attempt)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("crawler: unexpected status %d at %s", res.status, u)
		}
	}
	return fmt.Errorf("crawler: retries exhausted: %w", lastErr)
}

// backoffFor returns the exponential backoff with jitter for an attempt,
// clamped to maxBackoff so large attempt counts neither overflow the
// shift nor produce multi-hour sleeps.
func (c *client) backoffFor(attempt int) time.Duration {
	max := c.maxBackoff
	if max <= 0 {
		max = 30 * time.Second
	}
	d := c.backoff
	for i := 0; i < attempt; i++ {
		d <<= 1
		if d <= 0 || d >= max { // overflow or cap reached
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	// Up to 25 % jitter decorrelates concurrent workers.
	return d + time.Duration(rand.Int63n(int64(d)/4+1))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
