package crawler

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"steamstudy/internal/dataset"
	"steamstudy/internal/obs"
	"steamstudy/internal/par"
	"steamstudy/internal/ratelimit"
	"steamstudy/internal/steamapi"
	"steamstudy/internal/steamid"
)

// Config configures a crawl.
type Config struct {
	// BaseURL is the API root (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// APIKey is sent as the key parameter on every call.
	APIKey string
	// RatePerSecond is the crawler's self-imposed call budget; per §3.1
	// set this to ~85 % of the server's allowance. Zero means a generous
	// local default. Under 429/503 pressure the AIMD throttle backs off
	// from this rate and recovers toward it.
	RatePerSecond float64
	// Burst is the limiter burst (defaults to RatePerSecond).
	Burst int
	// Workers is the fan-out width shared by the detail phases 2–5:
	// account details, storefront catalog, achievement sets and group
	// pages all run on a pool this wide (default 8). The worker count is
	// purely a throughput knob — results and journal appends are
	// committed in work-list order, so the snapshot and the journal byte
	// stream are identical for every value.
	Workers int
	// MaxRetries per request (default 4).
	MaxRetries int
	// RetryBackoff is the initial backoff (default 100ms).
	RetryBackoff time.Duration
	// MaxBackoff clamps the exponential backoff (default 30s).
	MaxBackoff time.Duration
	// RequestTimeout bounds each HTTP attempt, so stalled responses fail
	// fast and are retried (default 15s).
	RequestTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens an
	// endpoint class's circuit breaker (default 5; negative disables
	// circuit breaking).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects requests before
	// admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// DisableAdaptiveThrottle turns off the AIMD rate controller and pins
	// the limiter at RatePerSecond.
	DisableAdaptiveThrottle bool
	// StartID begins the sweep (defaults to the public base ID).
	StartID steamid.ID
	// EmptyBatchLimit ends phase 1 after this many consecutive all-empty
	// 100-ID batches — the sweep has run past the youngest account
	// (default 20).
	EmptyBatchLimit int
	// RangeStart and RangeEnd, when RangeEnd is nonzero, restrict the
	// phase-1 sweep to the half-open SteamID64 interval
	// [RangeStart, RangeEnd). The range is finite, so the sweep covers it
	// exhaustively and EmptyBatchLimit does not apply; MaxAccounts is
	// ignored. This is how a fleet worker crawls one leased shard.
	RangeStart uint64
	RangeEnd   uint64
	// SkipTailOnEmpty skips the tail phases (3-5: catalog, achievements,
	// groups) when phases 1-2 found zero accounts, journaling the
	// phase-done markers so a resume agrees. A fleet's frontier shards are
	// empty by construction; re-fetching the full catalog for each would
	// multiply the tail work by the fleet size for records another shard
	// already holds.
	SkipTailOnEmpty bool
	// MaxAccounts optionally caps the crawl (0 = exhaustive).
	MaxAccounts int
	// CheckpointPath names a journal directory enabling resumable crawls
	// when non-empty. Every completed unit of phases 2–5 is appended to
	// the journal as it finishes, so a crawl killed at any instant
	// resumes losslessly.
	CheckpointPath string
	// LeaseEpoch, when nonzero, opens the journal with a fencing epoch: a
	// fleet lease's per-shard issue number. The journal durably pins the
	// highest epoch that ever wrote it and refuses appends (ErrFenced)
	// once a higher epoch takes over, so a worker paused past its lease
	// TTL cannot corrupt a shard a successor now owns. Zero (the solo
	// default) means unfenced.
	LeaseEpoch uint64
	// SegmentMaxBytes rotates journal segments at this size (default
	// 4 MiB).
	SegmentMaxBytes int64
	// ProgressEvery emits a one-line health summary through Logf at this
	// interval during Run (default 30s; negative disables).
	ProgressEvery time.Duration
	// Logf receives progress lines (nil disables logging).
	Logf func(format string, args ...any)
	// Registry receives the crawler's live metrics: every counter in
	// Metrics, per-phase spans, per-endpoint-class request/retry/error
	// counters, per-class breaker state gauges, and the AIMD rate gauge.
	// Serve it with obs.AdminMux (the steamcrawl -admin listener) to
	// watch a multi-month crawl live. Nil disables nothing — the crawler
	// records into detached metrics at the same hot-path cost.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.RatePerSecond <= 0 {
		c.RatePerSecond = 5000
	}
	if c.Burst <= 0 {
		c.Burst = int(c.RatePerSecond) + 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.MaxBackoff < c.RetryBackoff {
		c.MaxBackoff = c.RetryBackoff
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.StartID == 0 {
		c.StartID = steamid.ID(steamid.Base)
	}
	if c.EmptyBatchLimit <= 0 {
		c.EmptyBatchLimit = 20
	}
	if c.RangeEnd > 0 && c.RangeStart < steamid.Base {
		// SteamID64s start at the base offset; a zero (or sub-base)
		// RangeStart means "from the beginning of the ID space", not a
		// quadrillion-ID sweep through IDs that cannot exist.
		c.RangeStart = steamid.Base
	}
	if c.SegmentMaxBytes <= 0 {
		c.SegmentMaxBytes = defaultSegmentBytes
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Metrics counts crawl activity (atomics, safe to read live). The fields
// are obs counters; with a Config.Registry they also back the crawler's
// /metrics surface, so the same values feed Snapshot(), the progress
// lines, and the admin endpoint.
type Metrics struct {
	Requests     obs.Counter
	Errors       obs.Counter
	RateLimited  obs.Counter
	Unavailable  obs.Counter // 503 responses
	Retries      obs.Counter
	DecodeErrors obs.Counter

	Profiles  obs.Counter
	UsersDone obs.Counter

	BreakerOpens     obs.Counter
	BreakerHalfOpens obs.Counter
	BreakerCloses    obs.Counter

	ThrottleDowns obs.Counter // AIMD multiplicative decreases

	JournalRecords  obs.Counter
	JournalSegments obs.Counter

	// FenceRejections counts journal opens/appends refused because the
	// journal's fence epoch had moved past this crawl's lease epoch — a
	// zombie worker being turned away.
	FenceRejections obs.Counter
}

// MetricsSnapshot is a plain-value copy of Metrics at one instant.
type MetricsSnapshot struct {
	Requests         int64
	Errors           int64
	RateLimited      int64
	Unavailable      int64
	Retries          int64
	DecodeErrors     int64
	Profiles         int64
	UsersDone        int64
	BreakerOpens     int64
	BreakerHalfOpens int64
	BreakerCloses    int64
	ThrottleDowns    int64
	JournalRecords   int64
	JournalSegments  int64
	FenceRejections  int64
}

// Snapshot copies every counter at one instant, for logging and tests.
func (m *Metrics) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	obs.FillSnapshot(m, &s)
	return s
}

// Crawler drives a full crawl.
type Crawler struct {
	cfg    Config
	client *client
	obs    *obs.Registry
	// Metrics is live during Run.
	Metrics Metrics

	mu      sync.Mutex
	batches []batchDensity
}

// batchDensity records how many of one 100-ID batch resolved to valid
// accounts — the raw data behind the §3.1 observation that account
// density sits below 50 % early in the ID range and above 90 % later.
type batchDensity struct {
	start uint64
	found int
}

// New creates a crawler.
func New(cfg Config) *Crawler {
	cfg = cfg.withDefaults()
	c := &Crawler{cfg: cfg, obs: cfg.Registry}
	c.obs.RegisterCounters("crawler_", &c.Metrics)
	limiter := ratelimit.New(cfg.RatePerSecond, cfg.Burst)
	c.client = &client{
		base:       strings.TrimSuffix(cfg.BaseURL, "/"),
		key:        cfg.APIKey,
		http:       &http.Client{},
		limiter:    limiter,
		retries:    cfg.MaxRetries,
		backoff:    cfg.RetryBackoff,
		maxBackoff: cfg.MaxBackoff,
		reqTimeout: cfg.RequestTimeout,
		metrics:    &c.Metrics,
		obs:        cfg.Registry,
	}
	c.obs.GaugeFunc("crawler_rate_per_second", c.Rate)
	if cfg.BreakerThreshold > 0 {
		c.client.breakers = newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, &c.Metrics, cfg.Registry)
	}
	if !cfg.DisableAdaptiveThrottle {
		c.client.aimd = newAIMD(limiter, cfg.RatePerSecond, &c.Metrics)
	}
	return c
}

// BreakerStates snapshots each endpoint class's breaker state (empty when
// circuit breaking is disabled).
func (c *Crawler) BreakerStates() map[string]BreakerState {
	if c.client.breakers == nil {
		return nil
	}
	return c.client.breakers.States()
}

// Rate returns the limiter's current requests/second (the AIMD throttle
// moves it below the configured budget under pressure).
func (c *Crawler) Rate() float64 { return c.client.limiter.Rate() }

// Run executes all crawl phases and assembles the snapshot. With a
// journal configured, each phase skips work the journal already holds and
// appends new work as it completes, so Run after a crash resumes exactly
// where the dead process stopped.
func (c *Crawler) Run(ctx context.Context) (*dataset.Snapshot, error) {
	snap := &dataset.Snapshot{CollectedAt: time.Now().Unix()}

	var (
		jr *journal
		st *crawlState
	)
	if c.cfg.CheckpointPath != "" {
		var err error
		jr, st, err = openJournalAt(c.cfg.CheckpointPath, c.cfg.SegmentMaxBytes, &c.Metrics, c.cfg.LeaseEpoch)
		if err != nil {
			return nil, fmt.Errorf("crawler: journal: %w", err)
		}
		defer jr.Close()
		if len(st.users) > 0 || st.phaseDone[2] {
			c.cfg.Logf("resuming from journal: %d users, %d games, %d achievement sets, %d groups replayed",
				len(st.users), len(st.games), len(st.achDone), len(st.groups))
		}
	} else {
		st = newCrawlState()
	}

	stopProgress := c.startProgress(ctx, jr)
	defer stopProgress()

	snap.Users = st.users

	// Phases 1+2: profile sweep and per-account detail. Both are skipped
	// when the journal says phase 2 finished — resuming a later phase
	// must not redo the six-month part.
	if !st.phaseDone[2] {
		done := make(map[uint64]bool, len(st.users))
		for i := range st.users {
			done[st.users[i].SteamID] = true
		}

		// Phase 1: exhaustive profile sweep.
		sp := c.obs.Span("crawler_phase1_sweep")
		sp.Start()
		profiles, err := c.sweepProfiles(ctx)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("crawler: phase 1 (profiles): %w", err)
		}
		c.cfg.Logf("phase 1 complete: %d accounts found", len(profiles))

		// Phase 2: per-account friends, games, groups.
		sp = c.obs.Span("crawler_phase2_accounts")
		sp.Start()
		err = c.fetchAccounts(ctx, snap, profiles, done, jr)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("crawler: phase 2 (accounts): %w", err)
		}
		if jr != nil {
			if err := jr.appendPhaseDone(2); err != nil {
				return nil, err
			}
		}
		c.cfg.Logf("phase 2 complete: %d accounts detailed", len(snap.Users))
	}

	// An empty shard (fleet frontier) contributes nothing to the tail
	// phases; skip them and journal the markers so a resumed run over the
	// same journal reaches the same decision without re-evaluating.
	if c.cfg.SkipTailOnEmpty && len(snap.Users) == 0 {
		if jr != nil {
			for _, phase := range []uint8{3, 4, 5} {
				if !st.phaseDone[phase] {
					if err := jr.appendPhaseDone(phase); err != nil {
						return nil, err
					}
				}
			}
		}
		st.phaseDone[3], st.phaseDone[4], st.phaseDone[5] = true, true, true
		c.cfg.Logf("empty range: tail phases skipped")
	}

	// Phase 3: catalog.
	snap.Games = st.games
	if !st.phaseDone[3] {
		sp := c.obs.Span("crawler_phase3_catalog")
		sp.Start()
		err := c.fetchCatalog(ctx, snap, st, jr)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("crawler: phase 3 (catalog): %w", err)
		}
		if jr != nil {
			if err := jr.appendPhaseDone(3); err != nil {
				return nil, err
			}
		}
		c.cfg.Logf("phase 3 complete: %d products", len(snap.Games))
	}

	// Phase 4: achievements. Replayed achievement sets are attached to
	// their games; only the remainder is fetched.
	for i := range snap.Games {
		if ach, ok := st.ach[snap.Games[i].AppID]; ok {
			snap.Games[i].Achievements = ach
		}
	}
	if !st.phaseDone[4] {
		sp := c.obs.Span("crawler_phase4_achievements")
		sp.Start()
		err := c.fetchAchievements(ctx, snap, st, jr)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("crawler: phase 4 (achievements): %w", err)
		}
		if jr != nil {
			if err := jr.appendPhaseDone(4); err != nil {
				return nil, err
			}
		}
	}

	// Phase 5: group pages for categorization.
	snap.Groups = st.groups
	if !st.phaseDone[5] {
		sp := c.obs.Span("crawler_phase5_groups")
		sp.Start()
		err := c.fetchGroups(ctx, snap, st, jr)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("crawler: phase 5 (groups): %w", err)
		}
		if jr != nil {
			if err := jr.appendPhaseDone(5); err != nil {
				return nil, err
			}
		}
	}
	c.cfg.Logf("crawl complete: %d users, %d games, %d groups",
		len(snap.Users), len(snap.Games), len(snap.Groups))

	sortSnapshot(snap)
	return snap, nil
}

// startProgress spawns the health-summary ticker; the returned func stops
// it. Disabled when ProgressEvery < 0 or no Logf is configured.
func (c *Crawler) startProgress(ctx context.Context, jr *journal) func() {
	if c.cfg.ProgressEvery < 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(c.cfg.ProgressEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				c.cfg.Logf("%s", c.progressLine(jr))
			}
		}
	}()
	return func() { close(done) }
}

// progressLine renders the one-line crawl health summary.
func (c *Crawler) progressLine(jr *journal) string {
	s := c.Metrics.Snapshot()
	line := fmt.Sprintf(
		"progress: requests=%d errors=%d 429=%d 503=%d retries=%d users=%d rate=%.0f/s",
		s.Requests, s.Errors, s.RateLimited, s.Unavailable, s.Retries,
		s.UsersDone, c.Rate())
	if states := c.BreakerStates(); len(states) > 0 {
		classes := make([]string, 0, len(states))
		for class := range states {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, class := range classes {
			parts = append(parts, class+"="+states[class].String())
		}
		line += " breakers[" + strings.Join(parts, " ") + "]"
	}
	if jr != nil {
		seg, off := jr.Position()
		line += fmt.Sprintf(" journal[seg=%d off=%d records=%d]", seg, off, s.JournalRecords)
	}
	return line
}

// sweepProfiles walks the ID space in 100-ID batches (§3.1) until the
// sweep has passed the youngest account.
func (c *Crawler) sweepProfiles(ctx context.Context) ([]steamapi.PlayerSummary, error) {
	if c.cfg.RangeEnd > 0 {
		return c.sweepRange(ctx)
	}
	var out []steamapi.PlayerSummary
	emptyRun := 0
	next := uint64(c.cfg.StartID)
	for emptyRun < c.cfg.EmptyBatchLimit {
		if c.cfg.MaxAccounts > 0 && len(out) >= c.cfg.MaxAccounts {
			break
		}
		ids := make([]string, 0, steamapi.MaxSummariesPerCall)
		for i := 0; i < steamapi.MaxSummariesPerCall; i++ {
			ids = append(ids, strconv.FormatUint(next, 10))
			next++
		}
		var resp steamapi.PlayerSummariesResponse
		params := url.Values{"steamids": {strings.Join(ids, ",")}}
		if err := c.client.getJSON(ctx, "/ISteamUser/GetPlayerSummaries/v0002/", params, &resp); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.batches = append(c.batches, batchDensity{
			start: next - uint64(steamapi.MaxSummariesPerCall),
			found: len(resp.Response.Players),
		})
		c.mu.Unlock()
		if len(resp.Response.Players) == 0 {
			emptyRun++
			continue
		}
		emptyRun = 0
		out = append(out, resp.Response.Players...)
		c.Metrics.Profiles.Add(int64(len(resp.Response.Players)))
	}
	if c.cfg.MaxAccounts > 0 && len(out) > c.cfg.MaxAccounts {
		out = out[:c.cfg.MaxAccounts]
	}
	return out, nil
}

// sweepRange is the fleet-shard variant of the phase-1 sweep: it covers
// exactly [RangeStart, RangeEnd), clamping the final batch to the range
// edge instead of probing for the youngest-account frontier — the lease
// table, not the density heuristic, decides where the work space ends.
func (c *Crawler) sweepRange(ctx context.Context) ([]steamapi.PlayerSummary, error) {
	var out []steamapi.PlayerSummary
	for next := c.cfg.RangeStart; next < c.cfg.RangeEnd; {
		n := uint64(steamapi.MaxSummariesPerCall)
		if rem := c.cfg.RangeEnd - next; rem < n {
			n = rem
		}
		start := next
		ids := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			ids = append(ids, strconv.FormatUint(next, 10))
			next++
		}
		var resp steamapi.PlayerSummariesResponse
		params := url.Values{"steamids": {strings.Join(ids, ",")}}
		if err := c.client.getJSON(ctx, "/ISteamUser/GetPlayerSummaries/v0002/", params, &resp); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.batches = append(c.batches, batchDensity{start: start, found: len(resp.Response.Players)})
		c.mu.Unlock()
		out = append(out, resp.Response.Players...)
		c.Metrics.Profiles.Add(int64(len(resp.Response.Players)))
	}
	return out, nil
}

// fetchAccounts runs phase 2 with a worker pool. Each completed account
// is journaled immediately, so at most the in-flight accounts are redone
// after a crash.
func (c *Crawler) fetchAccounts(ctx context.Context, snap *dataset.Snapshot, profiles []steamapi.PlayerSummary, done map[uint64]bool, jr *journal) error {
	type result struct {
		rec dataset.UserRecord
		err error
	}
	work := make(chan steamapi.PlayerSummary)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				rec, err := c.fetchOneAccount(ctx, p)
				select {
				case results <- result{rec: rec, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for _, p := range profiles {
			id, err := strconv.ParseUint(p.SteamID, 10, 64)
			if err != nil || (done != nil && done[id]) {
				continue
			}
			select {
			case work <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	for r := range results {
		if r.err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return r.err
		}
		snap.Users = append(snap.Users, r.rec)
		c.Metrics.UsersDone.Add(1)
		if jr != nil {
			if err := jr.appendUser(&r.rec); err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// fetchOneAccount collects friends, games and groups for one profile.
func (c *Crawler) fetchOneAccount(ctx context.Context, p steamapi.PlayerSummary) (dataset.UserRecord, error) {
	id, err := strconv.ParseUint(p.SteamID, 10, 64)
	if err != nil {
		return dataset.UserRecord{}, fmt.Errorf("bad steamid %q: %w", p.SteamID, err)
	}
	rec := dataset.UserRecord{
		SteamID: id,
		Created: p.TimeCreated,
		Country: p.LocCountryCode,
		City:    p.LocCityID,
	}
	params := url.Values{"steamid": {p.SteamID}}

	var friends steamapi.FriendListResponse
	if err := c.client.getJSON(ctx, "/ISteamUser/GetFriendList/v0001/", params, &friends); err != nil {
		if !IsNotFound(err) {
			return rec, err
		}
	}
	for _, f := range friends.FriendsList.Friends {
		fid, err := strconv.ParseUint(f.SteamID, 10, 64)
		if err != nil {
			continue
		}
		rec.Friends = append(rec.Friends, dataset.FriendRecord{SteamID: fid, Since: f.FriendSince})
	}

	var games steamapi.OwnedGamesResponse
	params = url.Values{"steamid": {p.SteamID}, "include_played_free_games": {"1"}}
	if err := c.client.getJSON(ctx, "/IPlayerService/GetOwnedGames/v0001/", params, &games); err != nil {
		if !IsNotFound(err) {
			return rec, err
		}
	}
	for _, g := range games.Response.Games {
		rec.Games = append(rec.Games, dataset.OwnershipRecord{
			AppID:          g.AppID,
			TotalMinutes:   g.PlaytimeForever,
			TwoWeekMinutes: g.Playtime2Weeks,
		})
	}

	var groups steamapi.UserGroupListResponse
	params = url.Values{"steamid": {p.SteamID}}
	if err := c.client.getJSON(ctx, "/ISteamUser/GetUserGroupList/v0001/", params, &groups); err != nil {
		if !IsNotFound(err) {
			return rec, err
		}
	}
	for _, g := range groups.Response.Groups {
		gid, err := strconv.ParseUint(g.GID, 10, 64)
		if err != nil {
			continue
		}
		rec.Groups = append(rec.Groups, gid)
	}
	return rec, nil
}

// fanOut runs n independent fetch units on a pool of `workers`
// goroutines and commits each result from the caller's goroutine in
// strict work-list order. It is the machinery behind the tail phases
// (3–5): fetches overlap freely, but snapshot appends and journal
// appends happen exactly as the sequential loop would do them, so the
// snapshot and the journal byte stream are identical for every worker
// count — crash-resume replay cannot tell the difference.
//
// After the first error (fetch or commit), later fetches short-circuit
// to a no-op so the pipeline drains quickly instead of finishing a
// long work list nobody will consume.
func fanOut[T any](workers, n int, fetch func(i int) (T, error), commit func(i int, v T) error) error {
	type unit struct {
		v   T
		err error
	}
	var failed atomic.Bool
	return par.Ordered(workers, n, func(i int) unit {
		if failed.Load() {
			return unit{}
		}
		v, err := fetch(i)
		if err != nil {
			failed.Store(true)
		}
		return unit{v: v, err: err}
	}, func(i int, u unit) error {
		if u.err != nil {
			return u.err
		}
		if err := commit(i, u.v); err != nil {
			failed.Store(true)
			return err
		}
		return nil
	})
}

// fetchCatalog runs phase 3: the app index, then storefront details
// fanned out on the worker pool. Apps whose records the journal already
// holds are skipped. A nil produced record means "no storefront entry"
// — the sequential loop's continue.
func (c *Crawler) fetchCatalog(ctx context.Context, snap *dataset.Snapshot, st *crawlState, jr *journal) error {
	have := make(map[uint32]bool, len(st.games))
	for i := range st.games {
		have[st.games[i].AppID] = true
	}
	var apps steamapi.AppListResponse
	if err := c.client.getJSON(ctx, "/ISteamApps/GetAppList/v0002/", url.Values{}, &apps); err != nil {
		return err
	}
	todo := make([]steamapi.App, 0, len(apps.AppList.Apps))
	for _, app := range apps.AppList.Apps {
		if !have[app.AppID] {
			todo = append(todo, app)
		}
	}
	return fanOut(c.cfg.Workers, len(todo),
		func(i int) (*dataset.GameRecord, error) {
			app := todo[i]
			var details steamapi.AppDetailsResponse
			params := url.Values{"appids": {strconv.FormatUint(uint64(app.AppID), 10)}}
			if err := c.client.getJSON(ctx, "/store/appdetails", params, &details); err != nil {
				if IsNotFound(err) {
					return nil, nil
				}
				return nil, err
			}
			entry := details[strconv.FormatUint(uint64(app.AppID), 10)]
			if !entry.Success || entry.Data == nil {
				return nil, nil
			}
			d := entry.Data
			rec := &dataset.GameRecord{
				AppID:       app.AppID,
				Name:        d.Name,
				Type:        d.Type,
				ReleaseYear: d.ReleaseYear,
			}
			for _, g := range d.Genres {
				rec.Genres = append(rec.Genres, g.Description)
			}
			for _, cat := range d.Categories {
				if cat.ID == steamapi.CategoryMultiplayer {
					rec.Multiplayer = true
				}
			}
			if d.PriceOverview != nil {
				rec.PriceCents = d.PriceOverview.Final
			}
			if d.Metacritic != nil {
				rec.Metacritic = d.Metacritic.Score
			}
			if len(d.Developers) > 0 {
				rec.Developer = d.Developers[0]
			}
			return rec, nil
		},
		func(_ int, rec *dataset.GameRecord) error {
			if rec == nil {
				return nil
			}
			snap.Games = append(snap.Games, *rec)
			if jr != nil {
				return jr.appendGame(rec)
			}
			return nil
		})
}

// fetchAchievements runs phase 4 over every catalog product not already
// covered by the journal, fanned out on the worker pool. Each fetch
// reads only its own game's AppID and each commit writes only its own
// game's Achievements slot, with journal appends in catalog order.
func (c *Crawler) fetchAchievements(ctx context.Context, snap *dataset.Snapshot, st *crawlState, jr *journal) error {
	todo := make([]int, 0, len(snap.Games))
	for i := range snap.Games {
		if !st.achDone[snap.Games[i].AppID] {
			todo = append(todo, i)
		}
	}
	return fanOut(c.cfg.Workers, len(todo),
		func(i int) ([]dataset.AchievementRecord, error) {
			appID := snap.Games[todo[i]].AppID
			var resp steamapi.AchievementPercentagesResponse
			params := url.Values{"gameid": {strconv.FormatUint(uint64(appID), 10)}}
			if err := c.client.getJSON(ctx, "/ISteamUserStats/GetGlobalAchievementPercentagesForApp/v0002/", params, &resp); err != nil {
				if !IsNotFound(err) {
					return nil, err
				}
				// A vanished app still gets an (empty) journal entry so the
				// resume does not re-ask.
			}
			var ach []dataset.AchievementRecord
			for _, a := range resp.AchievementPercentages.Achievements {
				ach = append(ach, dataset.AchievementRecord{Name: a.Name, Percent: a.Percent})
			}
			return ach, nil
		},
		func(i int, ach []dataset.AchievementRecord) error {
			gi := todo[i]
			snap.Games[gi].Achievements = ach
			if jr != nil {
				return jr.appendAch(snap.Games[gi].AppID, ach)
			}
			return nil
		})
}

// fetchGroups runs phase 5: collect the GIDs seen in memberships, fetch
// each group's community page on the worker pool, and categorize it
// from the page text (the automated analog of the paper's manual step).
// Groups the journal already holds are skipped; commits land in
// ascending-GID order regardless of worker count.
func (c *Crawler) fetchGroups(ctx context.Context, snap *dataset.Snapshot, st *crawlState, jr *journal) error {
	members := map[uint64][]uint64{}
	for i := range snap.Users {
		for _, gid := range snap.Users[i].Groups {
			members[gid] = append(members[gid], snap.Users[i].SteamID)
		}
	}
	// Membership lists inherit phase 2's completion order, which varies
	// with worker count; canonicalize before any record is journaled so
	// the group records themselves are worker-invariant.
	for gid := range members {
		m := members[gid]
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	}
	have := make(map[uint64]bool, len(st.groups))
	for i := range st.groups {
		have[st.groups[i].GID] = true
	}
	gids := make([]uint64, 0, len(members))
	for gid := range members {
		if !have[gid] {
			gids = append(gids, gid)
		}
	}
	sort.Slice(gids, func(a, b int) bool { return gids[a] < gids[b] })
	return fanOut(c.cfg.Workers, len(gids),
		func(i int) (dataset.GroupRecord, error) {
			gid := gids[i]
			var page steamapi.GroupPage
			params := url.Values{"gid": {strconv.FormatUint(gid, 10)}}
			if err := c.client.getJSON(ctx, "/community/group", params, &page); err != nil {
				if !IsNotFound(err) {
					return dataset.GroupRecord{}, err
				}
				// Group page gone; keep the membership data untyped.
				return dataset.GroupRecord{GID: gid, Members: members[gid]}, nil
			}
			return dataset.GroupRecord{
				GID:     gid,
				Name:    page.Name,
				Type:    CategorizeGroup(page.Name, page.Summary),
				Members: members[gid],
			}, nil
		},
		func(_ int, rec dataset.GroupRecord) error {
			snap.Groups = append(snap.Groups, rec)
			if jr != nil {
				return jr.appendGroup(&rec)
			}
			return nil
		})
}

// CategorizeGroup infers a Table 2 group type from community page text.
// The paper's authors did this by hand for the top 250 groups; the same
// signal (page title and summary wording) drives this classifier.
func CategorizeGroup(name, summary string) string {
	text := strings.ToLower(name + " " + summary)
	for _, ty := range []string{
		"Game Server", "Single Game", "Gaming Community",
		"Special Interest", "Publisher", "Steam",
	} {
		if strings.Contains(text, strings.ToLower(ty)) {
			return ty
		}
	}
	return ""
}

// DensityProfile aggregates the phase-1 sweep into `buckets` equal spans
// of the swept ID range and returns the valid-account density of each —
// reproducing the §3.1 density observation. Trailing all-empty batches
// (the overshoot past the youngest account) are excluded. Returns nil if
// phase 1 has not run.
func (c *Crawler) DensityProfile(buckets int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.batches) == 0 || buckets <= 0 {
		return nil
	}
	// Trim the trailing empty overshoot.
	last := len(c.batches) - 1
	for last >= 0 && c.batches[last].found == 0 {
		last--
	}
	if last < 0 {
		return nil
	}
	trimmed := c.batches[:last+1]
	out := make([]float64, buckets)
	counts := make([]int, buckets)
	for i, b := range trimmed {
		bucket := i * buckets / len(trimmed)
		out[bucket] += float64(b.found)
		counts[bucket]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i]) * float64(steamapi.MaxSummariesPerCall)
		}
	}
	return out
}

// sortSnapshot puts users and games in ID order so crawled snapshots are
// directly comparable to ground truth.
func sortSnapshot(snap *dataset.Snapshot) {
	sort.Slice(snap.Users, func(a, b int) bool { return snap.Users[a].SteamID < snap.Users[b].SteamID })
	sort.Slice(snap.Games, func(a, b int) bool { return snap.Games[a].AppID < snap.Games[b].AppID })
	sort.Slice(snap.Groups, func(a, b int) bool { return snap.Groups[a].GID < snap.Groups[b].GID })
	for i := range snap.Groups {
		m := snap.Groups[i].Members
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	}
}
