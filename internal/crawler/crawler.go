package crawler

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"steamstudy/internal/dataset"
	"steamstudy/internal/ratelimit"
	"steamstudy/internal/steamapi"
	"steamstudy/internal/steamid"
)

// Config configures a crawl.
type Config struct {
	// BaseURL is the API root (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// APIKey is sent as the key parameter on every call.
	APIKey string
	// RatePerSecond is the crawler's self-imposed call budget; per §3.1
	// set this to ~85 % of the server's allowance. Zero means a generous
	// local default.
	RatePerSecond float64
	// Burst is the limiter burst (defaults to RatePerSecond).
	Burst int
	// Workers is the phase-2 fan-out (default 8).
	Workers int
	// MaxRetries per request (default 4).
	MaxRetries int
	// RetryBackoff is the initial backoff (default 100ms).
	RetryBackoff time.Duration
	// StartID begins the sweep (defaults to the public base ID).
	StartID steamid.ID
	// EmptyBatchLimit ends phase 1 after this many consecutive all-empty
	// 100-ID batches — the sweep has run past the youngest account
	// (default 20).
	EmptyBatchLimit int
	// MaxAccounts optionally caps the crawl (0 = exhaustive).
	MaxAccounts int
	// CheckpointPath enables resumable crawls when non-empty.
	CheckpointPath string
	// CheckpointEvery controls how often phase 2 checkpoints (default
	// 2000 accounts).
	CheckpointEvery int
	// Logf receives progress lines (nil disables logging).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.RatePerSecond <= 0 {
		c.RatePerSecond = 5000
	}
	if c.Burst <= 0 {
		c.Burst = int(c.RatePerSecond) + 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.StartID == 0 {
		c.StartID = steamid.ID(steamid.Base)
	}
	if c.EmptyBatchLimit <= 0 {
		c.EmptyBatchLimit = 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2000
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Metrics counts crawl activity (atomics, safe to read live).
type Metrics struct {
	Requests    atomic.Int64
	Errors      atomic.Int64
	RateLimited atomic.Int64
	Profiles    atomic.Int64
	UsersDone   atomic.Int64
}

// Crawler drives a full crawl.
type Crawler struct {
	cfg    Config
	client *client
	// Metrics is live during Run.
	Metrics Metrics

	mu      sync.Mutex
	batches []batchDensity
}

// batchDensity records how many of one 100-ID batch resolved to valid
// accounts — the raw data behind the §3.1 observation that account
// density sits below 50 % early in the ID range and above 90 % later.
type batchDensity struct {
	start uint64
	found int
}

// New creates a crawler.
func New(cfg Config) *Crawler {
	cfg = cfg.withDefaults()
	c := &Crawler{cfg: cfg}
	c.client = &client{
		base:    strings.TrimSuffix(cfg.BaseURL, "/"),
		key:     cfg.APIKey,
		http:    &http.Client{Timeout: 30 * time.Second},
		limiter: ratelimit.New(cfg.RatePerSecond, cfg.Burst),
		retries: cfg.MaxRetries,
		backoff: cfg.RetryBackoff,
		metrics: &c.Metrics,
	}
	return c
}

// Run executes all crawl phases and assembles the snapshot.
func (c *Crawler) Run(ctx context.Context) (*dataset.Snapshot, error) {
	snap := &dataset.Snapshot{CollectedAt: time.Now().Unix()}

	// Resume from a checkpoint when configured.
	var done map[uint64]bool
	if c.cfg.CheckpointPath != "" {
		if cp, err := loadCheckpoint(c.cfg.CheckpointPath); err == nil && cp != nil {
			snap.Users = cp.Users
			done = make(map[uint64]bool, len(cp.Users))
			for i := range cp.Users {
				done[cp.Users[i].SteamID] = true
			}
			c.cfg.Logf("resuming from checkpoint: %d accounts already crawled", len(cp.Users))
		}
	}

	// Phase 1: exhaustive profile sweep.
	profiles, err := c.sweepProfiles(ctx)
	if err != nil {
		return nil, fmt.Errorf("crawler: phase 1 (profiles): %w", err)
	}
	c.cfg.Logf("phase 1 complete: %d accounts found", len(profiles))

	// Phase 2: per-account friends, games, groups.
	if err := c.fetchAccounts(ctx, snap, profiles, done); err != nil {
		return nil, fmt.Errorf("crawler: phase 2 (accounts): %w", err)
	}
	c.cfg.Logf("phase 2 complete: %d accounts detailed", len(snap.Users))

	// Phase 3: catalog.
	if err := c.fetchCatalog(ctx, snap); err != nil {
		return nil, fmt.Errorf("crawler: phase 3 (catalog): %w", err)
	}
	c.cfg.Logf("phase 3 complete: %d products", len(snap.Games))

	// Phase 4: achievements.
	if err := c.fetchAchievements(ctx, snap); err != nil {
		return nil, fmt.Errorf("crawler: phase 4 (achievements): %w", err)
	}

	// Phase 5: group pages for categorization.
	if err := c.fetchGroups(ctx, snap); err != nil {
		return nil, fmt.Errorf("crawler: phase 5 (groups): %w", err)
	}
	c.cfg.Logf("crawl complete: %d users, %d games, %d groups",
		len(snap.Users), len(snap.Games), len(snap.Groups))

	sortSnapshot(snap)
	return snap, nil
}

// sweepProfiles walks the ID space in 100-ID batches (§3.1) until the
// sweep has passed the youngest account.
func (c *Crawler) sweepProfiles(ctx context.Context) ([]steamapi.PlayerSummary, error) {
	var out []steamapi.PlayerSummary
	emptyRun := 0
	next := uint64(c.cfg.StartID)
	for emptyRun < c.cfg.EmptyBatchLimit {
		if c.cfg.MaxAccounts > 0 && len(out) >= c.cfg.MaxAccounts {
			break
		}
		ids := make([]string, 0, steamapi.MaxSummariesPerCall)
		for i := 0; i < steamapi.MaxSummariesPerCall; i++ {
			ids = append(ids, strconv.FormatUint(next, 10))
			next++
		}
		var resp steamapi.PlayerSummariesResponse
		params := url.Values{"steamids": {strings.Join(ids, ",")}}
		if err := c.client.getJSON(ctx, "/ISteamUser/GetPlayerSummaries/v0002/", params, &resp); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.batches = append(c.batches, batchDensity{
			start: next - uint64(steamapi.MaxSummariesPerCall),
			found: len(resp.Response.Players),
		})
		c.mu.Unlock()
		if len(resp.Response.Players) == 0 {
			emptyRun++
			continue
		}
		emptyRun = 0
		out = append(out, resp.Response.Players...)
		c.Metrics.Profiles.Add(int64(len(resp.Response.Players)))
	}
	if c.cfg.MaxAccounts > 0 && len(out) > c.cfg.MaxAccounts {
		out = out[:c.cfg.MaxAccounts]
	}
	return out, nil
}

// fetchAccounts runs phase 2 with a worker pool.
func (c *Crawler) fetchAccounts(ctx context.Context, snap *dataset.Snapshot, profiles []steamapi.PlayerSummary, done map[uint64]bool) error {
	type result struct {
		rec dataset.UserRecord
		err error
	}
	work := make(chan steamapi.PlayerSummary)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				rec, err := c.fetchOneAccount(ctx, p)
				select {
				case results <- result{rec: rec, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for _, p := range profiles {
			id, err := strconv.ParseUint(p.SteamID, 10, 64)
			if err != nil || (done != nil && done[id]) {
				continue
			}
			select {
			case work <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	sinceCheckpoint := 0
	for r := range results {
		if r.err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return r.err
		}
		snap.Users = append(snap.Users, r.rec)
		c.Metrics.UsersDone.Add(1)
		sinceCheckpoint++
		if c.cfg.CheckpointPath != "" && sinceCheckpoint >= c.cfg.CheckpointEvery {
			if err := saveCheckpoint(c.cfg.CheckpointPath, snap.Users); err != nil {
				c.cfg.Logf("checkpoint failed: %v", err)
			}
			sinceCheckpoint = 0
		}
	}
	return ctx.Err()
}

// fetchOneAccount collects friends, games and groups for one profile.
func (c *Crawler) fetchOneAccount(ctx context.Context, p steamapi.PlayerSummary) (dataset.UserRecord, error) {
	id, err := strconv.ParseUint(p.SteamID, 10, 64)
	if err != nil {
		return dataset.UserRecord{}, fmt.Errorf("bad steamid %q: %w", p.SteamID, err)
	}
	rec := dataset.UserRecord{
		SteamID: id,
		Created: p.TimeCreated,
		Country: p.LocCountryCode,
		City:    p.LocCityID,
	}
	params := url.Values{"steamid": {p.SteamID}}

	var friends steamapi.FriendListResponse
	if err := c.client.getJSON(ctx, "/ISteamUser/GetFriendList/v0001/", params, &friends); err != nil {
		if !IsNotFound(err) {
			return rec, err
		}
	}
	for _, f := range friends.FriendsList.Friends {
		fid, err := strconv.ParseUint(f.SteamID, 10, 64)
		if err != nil {
			continue
		}
		rec.Friends = append(rec.Friends, dataset.FriendRecord{SteamID: fid, Since: f.FriendSince})
	}

	var games steamapi.OwnedGamesResponse
	params = url.Values{"steamid": {p.SteamID}, "include_played_free_games": {"1"}}
	if err := c.client.getJSON(ctx, "/IPlayerService/GetOwnedGames/v0001/", params, &games); err != nil {
		if !IsNotFound(err) {
			return rec, err
		}
	}
	for _, g := range games.Response.Games {
		rec.Games = append(rec.Games, dataset.OwnershipRecord{
			AppID:          g.AppID,
			TotalMinutes:   g.PlaytimeForever,
			TwoWeekMinutes: g.Playtime2Weeks,
		})
	}

	var groups steamapi.UserGroupListResponse
	params = url.Values{"steamid": {p.SteamID}}
	if err := c.client.getJSON(ctx, "/ISteamUser/GetUserGroupList/v0001/", params, &groups); err != nil {
		if !IsNotFound(err) {
			return rec, err
		}
	}
	for _, g := range groups.Response.Groups {
		gid, err := strconv.ParseUint(g.GID, 10, 64)
		if err != nil {
			continue
		}
		rec.Groups = append(rec.Groups, gid)
	}
	return rec, nil
}

// fetchCatalog runs phase 3: the app index, then storefront details.
func (c *Crawler) fetchCatalog(ctx context.Context, snap *dataset.Snapshot) error {
	var apps steamapi.AppListResponse
	if err := c.client.getJSON(ctx, "/ISteamApps/GetAppList/v0002/", url.Values{}, &apps); err != nil {
		return err
	}
	for _, app := range apps.AppList.Apps {
		var details steamapi.AppDetailsResponse
		params := url.Values{"appids": {strconv.FormatUint(uint64(app.AppID), 10)}}
		if err := c.client.getJSON(ctx, "/store/appdetails", params, &details); err != nil {
			if IsNotFound(err) {
				continue
			}
			return err
		}
		entry := details[strconv.FormatUint(uint64(app.AppID), 10)]
		if !entry.Success || entry.Data == nil {
			continue
		}
		d := entry.Data
		rec := dataset.GameRecord{
			AppID:       app.AppID,
			Name:        d.Name,
			Type:        d.Type,
			ReleaseYear: d.ReleaseYear,
		}
		for _, g := range d.Genres {
			rec.Genres = append(rec.Genres, g.Description)
		}
		for _, cat := range d.Categories {
			if cat.ID == steamapi.CategoryMultiplayer {
				rec.Multiplayer = true
			}
		}
		if d.PriceOverview != nil {
			rec.PriceCents = d.PriceOverview.Final
		}
		if d.Metacritic != nil {
			rec.Metacritic = d.Metacritic.Score
		}
		if len(d.Developers) > 0 {
			rec.Developer = d.Developers[0]
		}
		snap.Games = append(snap.Games, rec)
	}
	return nil
}

// fetchAchievements runs phase 4 over every catalog product.
func (c *Crawler) fetchAchievements(ctx context.Context, snap *dataset.Snapshot) error {
	for i := range snap.Games {
		var resp steamapi.AchievementPercentagesResponse
		params := url.Values{"gameid": {strconv.FormatUint(uint64(snap.Games[i].AppID), 10)}}
		if err := c.client.getJSON(ctx, "/ISteamUserStats/GetGlobalAchievementPercentagesForApp/v0002/", params, &resp); err != nil {
			if IsNotFound(err) {
				continue
			}
			return err
		}
		for _, a := range resp.AchievementPercentages.Achievements {
			snap.Games[i].Achievements = append(snap.Games[i].Achievements,
				dataset.AchievementRecord{Name: a.Name, Percent: a.Percent})
		}
	}
	return nil
}

// fetchGroups runs phase 5: collect the GIDs seen in memberships, fetch
// each group's community page, and categorize it from the page text (the
// automated analog of the paper's manual step).
func (c *Crawler) fetchGroups(ctx context.Context, snap *dataset.Snapshot) error {
	members := map[uint64][]uint64{}
	for i := range snap.Users {
		for _, gid := range snap.Users[i].Groups {
			members[gid] = append(members[gid], snap.Users[i].SteamID)
		}
	}
	gids := make([]uint64, 0, len(members))
	for gid := range members {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(a, b int) bool { return gids[a] < gids[b] })
	for _, gid := range gids {
		var page steamapi.GroupPage
		params := url.Values{"gid": {strconv.FormatUint(gid, 10)}}
		if err := c.client.getJSON(ctx, "/community/group", params, &page); err != nil {
			if IsNotFound(err) {
				// Group page gone; keep the membership data untyped.
				snap.Groups = append(snap.Groups, dataset.GroupRecord{
					GID: gid, Members: members[gid],
				})
				continue
			}
			return err
		}
		snap.Groups = append(snap.Groups, dataset.GroupRecord{
			GID:     gid,
			Name:    page.Name,
			Type:    CategorizeGroup(page.Name, page.Summary),
			Members: members[gid],
		})
	}
	return nil
}

// CategorizeGroup infers a Table 2 group type from community page text.
// The paper's authors did this by hand for the top 250 groups; the same
// signal (page title and summary wording) drives this classifier.
func CategorizeGroup(name, summary string) string {
	text := strings.ToLower(name + " " + summary)
	for _, ty := range []string{
		"Game Server", "Single Game", "Gaming Community",
		"Special Interest", "Publisher", "Steam",
	} {
		if strings.Contains(text, strings.ToLower(ty)) {
			return ty
		}
	}
	return ""
}

// DensityProfile aggregates the phase-1 sweep into `buckets` equal spans
// of the swept ID range and returns the valid-account density of each —
// reproducing the §3.1 density observation. Trailing all-empty batches
// (the overshoot past the youngest account) are excluded. Returns nil if
// phase 1 has not run.
func (c *Crawler) DensityProfile(buckets int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.batches) == 0 || buckets <= 0 {
		return nil
	}
	// Trim the trailing empty overshoot.
	last := len(c.batches) - 1
	for last >= 0 && c.batches[last].found == 0 {
		last--
	}
	if last < 0 {
		return nil
	}
	trimmed := c.batches[:last+1]
	out := make([]float64, buckets)
	counts := make([]int, buckets)
	for i, b := range trimmed {
		bucket := i * buckets / len(trimmed)
		out[bucket] += float64(b.found)
		counts[bucket]++
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i]) * float64(steamapi.MaxSummariesPerCall)
		}
	}
	return out
}

// sortSnapshot puts users and games in ID order so crawled snapshots are
// directly comparable to ground truth.
func sortSnapshot(snap *dataset.Snapshot) {
	sort.Slice(snap.Users, func(a, b int) bool { return snap.Users[a].SteamID < snap.Users[b].SteamID })
	sort.Slice(snap.Games, func(a, b int) bool { return snap.Games[a].AppID < snap.Games[b].AppID })
	sort.Slice(snap.Groups, func(a, b int) bool { return snap.Groups[a].GID < snap.Groups[b].GID })
	for i := range snap.Groups {
		m := snap.Groups[i].Members
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	}
}
