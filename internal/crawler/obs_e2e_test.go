package crawler

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/obs"
)

// TestAdminEndpointsDuringChaosCrawl is the e2e acceptance test for the
// observability layer on the crawler side: a chaos-profile crawl with a
// registry attached, with an admin mux (the same handler `steamcrawl
// -admin` serves) polled live while the crawl runs. The poller must see
// phase spans progressing and per-endpoint-class counters moving; after
// the crawl every phase span must read done and the class counters must
// agree with the crawler's own Metrics.
func TestAdminEndpointsDuringChaosCrawl(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	ts := startServer(t, apiserver.Config{Faults: chaosProfile(77)})

	reg := obs.NewRegistry()
	cfg := chaosCrawlerConfig(ts.URL, t.TempDir())
	cfg.Registry = reg
	c := New(cfg)

	admin := httptest.NewServer(obs.AdminMux(reg, obs.NewHealth(), false))
	defer admin.Close()

	// scrape is also called from the poller goroutine, where t.Fatal is
	// off-limits, so it reports failure by value.
	scrape := func() (obs.Snapshot, error) {
		resp, err := http.Get(admin.URL + "/metrics")
		if err != nil {
			return obs.Snapshot{}, err
		}
		defer resp.Body.Close()
		var snap obs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		return snap, err
	}

	// Poll /metrics while the crawl runs, recording whether we ever catch
	// a phase in flight and whether counters move between scrapes.
	var (
		sawRunning   bool
		sawMovement  bool
		lastRequests int64
	)
	done := make(chan struct{})
	polled := make(chan struct{})
	go func() {
		defer close(polled)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				snap, err := scrape()
				if err != nil {
					continue
				}
				for name, sp := range snap.Spans {
					if strings.HasPrefix(name, "crawler_phase") && sp.State == obs.SpanRunning {
						sawRunning = true
					}
				}
				var total int64
				for name, v := range snap.Counters {
					if strings.HasPrefix(name, "crawler_class_requests:") {
						total += v
					}
				}
				if total > lastRequests && lastRequests > 0 {
					sawMovement = true
				}
				lastRequests = total
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if _, err := c.Run(ctx); err != nil {
		t.Fatal(err)
	}
	close(done)
	<-polled

	if !sawRunning {
		t.Error("poller never observed a phase span in the running state")
	}
	if !sawMovement {
		t.Error("poller never observed per-class request counters advancing")
	}

	// Post-crawl: all five phase spans done, with sane durations.
	final, err := scrape()
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{
		"crawler_phase1_sweep",
		"crawler_phase2_accounts",
		"crawler_phase3_catalog",
		"crawler_phase4_achievements",
		"crawler_phase5_groups",
	} {
		sp, ok := final.Spans[phase]
		if !ok {
			t.Fatalf("span %s missing from /metrics after crawl", phase)
		}
		if sp.State != obs.SpanDone {
			t.Errorf("span %s state %q after crawl, want done", phase, sp.State)
		}
		if sp.Seconds <= 0 {
			t.Errorf("span %s has non-positive duration %v", phase, sp.Seconds)
		}
	}

	// The registry's view and the crawler's own Metrics agree.
	snap := c.Metrics.Snapshot()
	if got := final.Counters["crawler_requests"]; got != snap.Requests {
		t.Errorf("registry crawler_requests=%d, Metrics.Requests=%d", got, snap.Requests)
	}
	if got := final.Counters["crawler_retries"]; got != snap.Retries {
		t.Errorf("registry crawler_retries=%d, Metrics.Retries=%d", got, snap.Retries)
	}
	// Per-class requests partition the total.
	var classTotal int64
	for name, v := range final.Counters {
		if strings.HasPrefix(name, "crawler_class_requests:") {
			classTotal += v
		}
	}
	if classTotal != snap.Requests {
		t.Errorf("per-class request counters sum to %d, total is %d", classTotal, snap.Requests)
	}
	// The chaos profile guarantees retries; the per-class retry counters
	// must have recorded them.
	var retryTotal int64
	for name, v := range final.Counters {
		if strings.HasPrefix(name, "crawler_class_retries:") {
			retryTotal += v
		}
	}
	if retryTotal != snap.Retries {
		t.Errorf("per-class retry counters sum to %d, total is %d", retryTotal, snap.Retries)
	}
	if snap.Retries == 0 {
		t.Error("chaos crawl finished with zero retries; fault profile inert?")
	}
	// The AIMD rate gauge is exported and positive.
	if r := final.Gauges["crawler_rate_per_second"]; r <= 0 {
		t.Errorf("crawler_rate_per_second gauge %v, want > 0", r)
	}
	// Journal segment counts survive into the registry too.
	if _, ok := final.Counters["crawler_journal_segments"]; !ok {
		t.Error("crawler_journal_segments missing from registry snapshot")
	}
}
