package crawler

import (
	"context"
	"testing"
	"time"
)

// fakeClock steps time manually for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock, *Metrics) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m := &Metrics{}
	return &breaker{threshold: threshold, cooldown: cooldown, now: clk.now, metrics: m}, clk, m
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _, m := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.onFailure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after %d failures (threshold 3)", b.State(), 2)
	}
	b.onFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after hitting the threshold", b.State())
	}
	if m.BreakerOpens.Load() != 1 {
		t.Fatalf("opens metric %d", m.BreakerOpens.Load())
	}
	if ok, wait := b.allow(); ok || wait <= 0 {
		t.Fatalf("open breaker admitted a request (ok=%v wait=%v)", ok, wait)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _, _ := newTestBreaker(3, time.Second)
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk, m := newTestBreaker(1, time.Second)
	b.onFailure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker not open after one failure")
	}
	clk.advance(1100 * time.Millisecond)
	ok, _ := b.allow()
	if !ok || b.State() != BreakerHalfOpen {
		t.Fatalf("cooldown elapsed but no probe admitted (ok=%v state=%v)", ok, b.State())
	}
	// A second caller must NOT slip in beside the probe.
	if ok2, _ := b.allow(); ok2 {
		t.Fatal("second request admitted during half-open probe")
	}
	b.onSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe", b.State())
	}
	if m.BreakerHalfOpens.Load() != 1 || m.BreakerCloses.Load() != 1 {
		t.Fatalf("half-opens=%d closes=%d", m.BreakerHalfOpens.Load(), m.BreakerCloses.Load())
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("closed breaker rejected a request")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk, m := newTestBreaker(1, time.Second)
	b.onFailure()
	clk.advance(1100 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("probe not admitted")
	}
	b.onFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe", b.State())
	}
	if m.BreakerOpens.Load() != 2 {
		t.Fatalf("opens metric %d, want 2 (initial + re-open)", m.BreakerOpens.Load())
	}
	// The fresh cooldown starts from the failed probe.
	if ok, _ := b.allow(); ok {
		t.Fatal("re-opened breaker admitted a request immediately")
	}
	clk.advance(1100 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("second cooldown did not admit a probe")
	}
}

func TestBreakerSetSharesPerClass(t *testing.T) {
	s := newBreakerSet(1, time.Hour, &Metrics{}, nil)
	s.breakerFor("ISteamUser").onFailure()
	if s.breakerFor("ISteamUser").State() != BreakerOpen {
		t.Fatal("class breaker not shared")
	}
	if s.breakerFor("store").State() != BreakerClosed {
		t.Fatal("failure on one class opened another")
	}
	states := s.States()
	if states["ISteamUser"] != BreakerOpen || states["store"] != BreakerClosed {
		t.Fatalf("states %v", states)
	}
	// acquire on the open class blocks until ctx expires; on the healthy
	// class it returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.acquire(ctx, "ISteamUser"); err == nil {
		t.Fatal("acquire on an hour-long open breaker returned early")
	}
	if _, err := s.acquire(context.Background(), "store"); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointClass(t *testing.T) {
	cases := map[string]string{
		"/ISteamUser/GetFriendList/v0001/":     "ISteamUser",
		"/IPlayerService/GetOwnedGames/v0001/": "IPlayerService",
		"/store/appdetails":                    "store",
		"/community/group":                     "community",
		"store":                                "store",
	}
	for path, want := range cases {
		if got := endpointClass(path); got != want {
			t.Fatalf("endpointClass(%q) = %q, want %q", path, got, want)
		}
	}
}
