// Range-restricted sweeps are the fleet's shard primitive: a crawl over
// [RangeStart, RangeEnd) must visit exactly that ID window — no
// early-out, no overshoot — so that disjoint ranges partition the ID
// space and their merge reproduces a solo crawl record-for-record.

package crawler

import (
	"reflect"
	"testing"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/dataset"
)

// TestRangeCrawlsPartitionAndMergeToSolo splits the ID space at a
// mid-population SteamID, crawls both halves independently, and merges:
// the result must equal an unrestricted solo crawl exactly — users from
// the disjoint ranges, value-identical catalog records deduped, group
// member sets unioned.
func TestRangeCrawlsPartitionAndMergeToSolo(t *testing.T) {
	u := crawlUniverse(t)
	ts := startServer(t, apiserver.Config{})

	solo := runCrawl(t, Config{BaseURL: ts.URL, Workers: 8})
	truth := dataset.FromUniverse(u)
	mid := truth.Users[len(truth.Users)/2].SteamID
	last := truth.Users[len(truth.Users)-1].SteamID

	// RangeStart 0 exercises the clamp to steamid.Base.
	lo := runCrawl(t, Config{BaseURL: ts.URL, Workers: 8, RangeStart: 0, RangeEnd: mid})
	hi := runCrawl(t, Config{BaseURL: ts.URL, Workers: 8, RangeStart: mid, RangeEnd: last + 1})
	if len(lo.Users) == 0 || len(hi.Users) == 0 {
		t.Fatalf("degenerate split: %d + %d users", len(lo.Users), len(hi.Users))
	}
	if len(lo.Users)+len(hi.Users) != len(solo.Users) {
		t.Fatalf("ranges found %d + %d users, solo found %d", len(lo.Users), len(hi.Users), len(solo.Users))
	}
	for _, u := range lo.Users {
		if u.SteamID >= mid {
			t.Fatalf("low range leaked user %d past its end %d", u.SteamID, mid)
		}
	}
	for _, u := range hi.Users {
		if u.SteamID < mid {
			t.Fatalf("high range leaked user %d before its start %d", u.SteamID, mid)
		}
	}

	merged, err := dataset.MergeAt(0, []*dataset.Snapshot{lo, hi})
	if err != nil {
		t.Fatal(err)
	}
	solo.CollectedAt = 0
	if !reflect.DeepEqual(merged, solo) {
		t.Fatalf("range merge diverges from solo: %d/%d/%d vs %d/%d/%d users/games/groups",
			len(merged.Users), len(merged.Games), len(merged.Groups),
			len(solo.Users), len(solo.Games), len(solo.Groups))
	}
}

// TestEmptyRangeSkipsTailPhases: a frontier shard past the last real
// account finds nobody and must not crawl the catalog N more times.
// With SkipTailOnEmpty the tail phases are skipped — but their done
// markers still hit the journal, so a resume of the shard agrees it is
// finished instead of redoing the skip decision.
func TestEmptyRangeSkipsTailPhases(t *testing.T) {
	u := crawlUniverse(t)
	ts := startServer(t, apiserver.Config{})
	truth := dataset.FromUniverse(u)
	last := truth.Users[len(truth.Users)-1].SteamID
	jdir := t.TempDir()

	snap := runCrawl(t, Config{
		BaseURL:         ts.URL,
		Workers:         4,
		RangeStart:      last + 1000,
		RangeEnd:        last + 2000,
		SkipTailOnEmpty: true,
		CheckpointPath:  jdir,
	})
	if len(snap.Users) != 0 {
		t.Fatalf("empty range produced %d users", len(snap.Users))
	}
	if len(snap.Games) != 0 {
		t.Fatalf("tail skip still crawled %d catalog entries", len(snap.Games))
	}

	jr, st, err := openJournal(jdir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	// Phase 1 has no marker of its own: phase 2's covers the 1+2 pair.
	for _, phase := range []int{2, 3, 4, 5} {
		if !st.phaseDone[phase] {
			t.Fatalf("phase %d not journaled as done; a resumed shard would redo it", phase)
		}
	}
	if len(st.games) != 0 {
		t.Fatalf("journal holds %d catalog records for an empty shard", len(st.games))
	}
}
