package crawler

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"steamstudy/internal/apiserver"
)

// The tail-phase fan-out is a pure throughput knob: a crawl at any
// worker count assembles exactly the snapshot the sequential crawl
// does. CollectedAt is wall-clock and excluded from the comparison.
func TestCrawlWorkerCountInvariant(t *testing.T) {
	ts := startServer(t, apiserver.Config{})
	base := runCrawl(t, Config{BaseURL: ts.URL, Workers: 1})
	base.CollectedAt = 0
	for _, w := range []int{4, 8} {
		snap := runCrawl(t, Config{BaseURL: ts.URL, Workers: w})
		snap.CollectedAt = 0
		if !reflect.DeepEqual(base, snap) {
			t.Fatalf("workers=%d: snapshot diverges from sequential crawl", w)
		}
	}
}

// Fan-out commits journal appends in work-list order, so the phases
// 3–5 records replay in the same sequence for every worker count —
// resume after a crash cannot tell how wide the dead crawl ran.
func TestCrawlTailPhaseJournalOrderWorkerInvariant(t *testing.T) {
	ts := startServer(t, apiserver.Config{})
	replay := func(workers int) *crawlState {
		dir := filepath.Join(t.TempDir(), "j")
		c := New(Config{BaseURL: ts.URL, Workers: workers, CheckpointPath: dir})
		if _, err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		jr, st, err := openJournal(dir, 0, &Metrics{})
		if err != nil {
			t.Fatal(err)
		}
		jr.Close()
		return st
	}
	seq := replay(1)
	par := replay(8)
	// Games and groups replay in append order; identical slices prove
	// identical journal sequencing, not just identical sets.
	if !reflect.DeepEqual(seq.games, par.games) {
		t.Fatal("phase-3 journal order differs between worker counts")
	}
	if !reflect.DeepEqual(seq.groups, par.groups) {
		t.Fatal("phase-5 journal order differs between worker counts")
	}
	if !reflect.DeepEqual(seq.ach, par.ach) {
		t.Fatal("phase-4 achievement sets differ between worker counts")
	}
	// Phase 2 commits in completion order, so user order may differ; the
	// canonical snapshots must still agree.
	a, b := seq.snapshot(0), par.snapshot(0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replayed snapshots differ between worker counts")
	}
}
