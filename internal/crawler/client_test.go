package crawler

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"steamstudy/internal/ratelimit"
)

func newTestClient(base string) (*client, *Metrics) {
	m := &Metrics{}
	return &client{
		base:    base,
		http:    &http.Client{Timeout: 5 * time.Second},
		limiter: ratelimit.New(100000, 1000),
		retries: 3,
		backoff: time.Millisecond,
		metrics: m,
	}, m
}

func TestClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, m := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatal(err)
	}
	if out["ok"] != "yes" {
		t.Fatalf("decoded %v", out)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d calls, want 3 (two retries)", calls.Load())
	}
	if m.Errors.Load() != 2 {
		t.Fatalf("error metric %d", m.Errors.Load())
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err == nil {
		t.Fatal("persistent 500s did not error")
	}
}

func TestClientNotFoundIsTerminal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	var out map[string]string
	err := c.getJSON(context.Background(), "/x", url.Values{}, &out)
	if !IsNotFound(err) {
		t.Fatalf("error %v is not a not-found", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried: %d calls", calls.Load())
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, m := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatal(err)
	}
	if m.RateLimited.Load() != 1 {
		t.Fatalf("rate-limited metric %d", m.RateLimited.Load())
	}
}

func TestClient429DoesNotConsumeRetries(t *testing.T) {
	// Many 429s followed by success must still succeed even with a
	// minimal retry budget — backpressure is not failure.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 8 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.retries = 1
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatalf("429 storm consumed the retry budget: %v", err)
	}
}

func TestClientAPIKeyAttached(t *testing.T) {
	var gotKey atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotKey.Store(r.URL.Query().Get("key"))
		json.NewEncoder(w).Encode(map[string]string{})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.key = "SEKRIT"
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{"a": {"b"}}, &out); err != nil {
		t.Fatal(err)
	}
	if gotKey.Load() != "SEKRIT" {
		t.Fatalf("key not attached: %v", gotKey.Load())
	}
}

func TestClientContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError) // force retry loops
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.backoff = time.Hour // the cancel must interrupt the backoff sleep
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var out map[string]string
	if err := c.getJSON(ctx, "/x", url.Values{}, &out); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestBackoffGrows(t *testing.T) {
	c, _ := newTestClient("http://unused")
	c.backoff = 10 * time.Millisecond
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 4; attempt++ {
		d := c.backoffFor(attempt)
		base := c.backoff << uint(attempt)
		if d < base || d > base+base/4+time.Millisecond {
			t.Fatalf("attempt %d backoff %v outside [%v, %v+25%%]", attempt, d, base, base)
		}
		if base <= prevMax {
			t.Fatal("backoff base not growing")
		}
		prevMax = base
	}
}

func TestClientBindsRequestContext(t *testing.T) {
	// Regression: requests must carry the caller's context so a cancel
	// aborts the in-flight HTTP exchange, not just the retry loop. The
	// handler blocks until the request context is torn down.
	released := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		close(released)
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.http = &http.Client{} // no client-wide timeout to hide behind
	c.retries = 0
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var out map[string]string
	err := c.getJSON(ctx, "/x", url.Values{}, &out)
	if err == nil {
		t.Fatal("cancelled in-flight request succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not abort the in-flight request")
	}
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("server handler never saw the cancellation")
	}
}

func TestClientPerRequestTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.http = &http.Client{}
	c.reqTimeout = 50 * time.Millisecond
	c.retries = 0
	start := time.Now()
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err == nil {
		t.Fatal("stalled response beat the per-request timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("per-request timeout did not fire")
	}
}

func TestBackoffClampedNoOverflow(t *testing.T) {
	c, _ := newTestClient("http://unused")
	c.backoff = 100 * time.Millisecond
	c.maxBackoff = 2 * time.Second
	for _, attempt := range []int{5, 30, 64, 1000} {
		d := c.backoffFor(attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: backoff %v overflowed", attempt, d)
		}
		if d > c.maxBackoff+c.maxBackoff/4 {
			t.Fatalf("attempt %d: backoff %v exceeds clamp %v", attempt, d, c.maxBackoff)
		}
	}
	// Zero maxBackoff falls back to a sane default rather than clamping
	// everything to zero.
	c.maxBackoff = 0
	if d := c.backoffFor(50); d <= 0 || d > 40*time.Second {
		t.Fatalf("default clamp produced %v", d)
	}
}

func TestClientRetryAfterOn503(t *testing.T) {
	// A 503 carrying Retry-After is scheduled backpressure, not a spent
	// retry: even a zero-retry client rides out a short outage.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, m := newTestClient(ts.URL)
	c.retries = 0
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatalf("503+Retry-After consumed the retry budget: %v", err)
	}
	if m.Unavailable.Load() != 3 {
		t.Fatalf("unavailable metric %d, want 3", m.Unavailable.Load())
	}
}

func TestAIMDThrottle(t *testing.T) {
	l := ratelimit.New(80, 80)
	a := newAIMD(l, 80, &Metrics{})
	a.onBackpressure()
	if r := l.Rate(); r != 40 {
		t.Fatalf("rate %v after one backpressure event, want 40", r)
	}
	for i := 0; i < 10; i++ {
		a.onBackpressure()
	}
	if r := l.Rate(); r != 1 {
		t.Fatalf("rate %v did not floor at 1", r)
	}
	for i := 0; i < 1000; i++ {
		a.onSuccess()
	}
	if r := l.Rate(); r != 80 {
		t.Fatalf("rate %v did not recover to the 80 target", r)
	}
}

func TestClientAIMDBackpressureHalvesRate(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, m := newTestClient(ts.URL)
	l := ratelimit.New(100, 100)
	c.limiter = l
	c.aimd = newAIMD(l, 100, m)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatal(err)
	}
	if m.ThrottleDowns.Load() != 1 {
		t.Fatalf("throttle-down metric %d", m.ThrottleDowns.Load())
	}
	// One halving then one additive step back up.
	if r := l.Rate(); r <= 50 || r >= 100 {
		t.Fatalf("rate %v after 429 then success, want between 50 and 100", r)
	}
}

func TestClientMalformedJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not json"))
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
