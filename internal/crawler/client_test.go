package crawler

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"steamstudy/internal/ratelimit"
)

func newTestClient(base string) (*client, *Metrics) {
	m := &Metrics{}
	return &client{
		base:    base,
		http:    &http.Client{Timeout: 5 * time.Second},
		limiter: ratelimit.New(100000, 1000),
		retries: 3,
		backoff: time.Millisecond,
		metrics: m,
	}, m
}

func TestClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, m := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatal(err)
	}
	if out["ok"] != "yes" {
		t.Fatalf("decoded %v", out)
	}
	if calls.Load() != 3 {
		t.Fatalf("made %d calls, want 3 (two retries)", calls.Load())
	}
	if m.Errors.Load() != 2 {
		t.Fatalf("error metric %d", m.Errors.Load())
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err == nil {
		t.Fatal("persistent 500s did not error")
	}
}

func TestClientNotFoundIsTerminal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	var out map[string]string
	err := c.getJSON(context.Background(), "/x", url.Values{}, &out)
	if !IsNotFound(err) {
		t.Fatalf("error %v is not a not-found", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 was retried: %d calls", calls.Load())
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, m := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatal(err)
	}
	if m.RateLimited.Load() != 1 {
		t.Fatalf("rate-limited metric %d", m.RateLimited.Load())
	}
}

func TestClient429DoesNotConsumeRetries(t *testing.T) {
	// Many 429s followed by success must still succeed even with a
	// minimal retry budget — backpressure is not failure.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 8 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.retries = 1
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err != nil {
		t.Fatalf("429 storm consumed the retry budget: %v", err)
	}
}

func TestClientAPIKeyAttached(t *testing.T) {
	var gotKey atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotKey.Store(r.URL.Query().Get("key"))
		json.NewEncoder(w).Encode(map[string]string{})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.key = "SEKRIT"
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{"a": {"b"}}, &out); err != nil {
		t.Fatal(err)
	}
	if gotKey.Load() != "SEKRIT" {
		t.Fatalf("key not attached: %v", gotKey.Load())
	}
}

func TestClientContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError) // force retry loops
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	c.backoff = time.Hour // the cancel must interrupt the backoff sleep
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var out map[string]string
	if err := c.getJSON(ctx, "/x", url.Values{}, &out); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestBackoffGrows(t *testing.T) {
	c, _ := newTestClient("http://unused")
	c.backoff = 10 * time.Millisecond
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 4; attempt++ {
		d := c.backoffFor(attempt)
		base := c.backoff << uint(attempt)
		if d < base || d > base+base/4+time.Millisecond {
			t.Fatalf("attempt %d backoff %v outside [%v, %v+25%%]", attempt, d, base, base)
		}
		if base <= prevMax {
			t.Fatal("backoff base not growing")
		}
		prevMax = base
	}
}

func TestClientMalformedJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not json"))
	}))
	defer ts.Close()
	c, _ := newTestClient(ts.URL)
	var out map[string]string
	if err := c.getJSON(context.Background(), "/x", url.Values{}, &out); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
