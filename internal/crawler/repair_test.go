package crawler

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"steamstudy/internal/dataset"
)

// journalPair builds a referentially consistent journal: two mutual
// friends sharing a group, owning journaled catalog entries.
func journalPair(t *testing.T, dir string) *dataset.Snapshot {
	t.Helper()
	jr, _, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	u1 := &dataset.UserRecord{SteamID: 1,
		Friends: []dataset.FriendRecord{{SteamID: 2, Since: 10}},
		Games:   []dataset.OwnershipRecord{{AppID: 10, TotalMinutes: 120, TwoWeekMinutes: 60}},
		Groups:  []uint64{7}}
	u2 := &dataset.UserRecord{SteamID: 2,
		Friends: []dataset.FriendRecord{{SteamID: 1, Since: 10}}}
	for _, u := range []*dataset.UserRecord{u2, u1} { // out of ID order on purpose
		if err := jr.appendUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.appendGame(&dataset.GameRecord{AppID: 10, Name: "Alpha", Type: "game"}); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendAch(10, []dataset.AchievementRecord{{Name: "ACH_0", Percent: 50}}); err != nil {
		t.Fatal(err)
	}
	if err := jr.appendGroup(&dataset.GroupRecord{GID: 7, Name: "grp", Members: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	return &dataset.Snapshot{
		Users: []dataset.UserRecord{*u1, *u2},
		Games: []dataset.GameRecord{{AppID: 10, Name: "Alpha", Type: "game",
			Achievements: []dataset.AchievementRecord{{Name: "ACH_0", Percent: 50}}}},
		Groups: []dataset.GroupRecord{{GID: 7, Name: "grp", Members: []uint64{1}}},
	}
}

func TestRebuildFromJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	want := journalPair(t, dir)
	got, err := RebuildFromJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical ID order and attached achievements — the same shape an
	// uninterrupted Run produces.
	if !reflect.DeepEqual(got.Users, want.Users) {
		t.Fatalf("rebuilt users:\n%+v\nwant:\n%+v", got.Users, want.Users)
	}
	if !reflect.DeepEqual(got.Games, want.Games) {
		t.Fatalf("rebuilt games:\n%+v\nwant:\n%+v", got.Games, want.Games)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("rebuilt groups:\n%+v\nwant:\n%+v", got.Groups, want.Groups)
	}
	if rep := got.Fsck(); !rep.Clean() {
		t.Fatalf("rebuilt snapshot dirty:\n%s", rep)
	}
}

// The acceptance path: corrupt a snapshot, fsck flags it, journal-backed
// repair restores a byte-verifiable, fsck-clean artifact and preserves
// the original collection timestamp.
func TestRepairSnapshotRestoresClean(t *testing.T) {
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "j")
	journalPair(t, jdir)
	path := filepath.Join(tmp, "snap.gob.gz")
	snap, err := RebuildFromJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	snap.CollectedAt = 1_234_567
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}

	// Bit-flip the payload: fsck must notice.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := dataset.FsckFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupted snapshot passed fsck")
	}

	im := &dataset.IntegrityMetrics{}
	rep2, err := RepairSnapshot(jdir, path, im)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("post-repair fsck dirty:\n%s", rep2)
	}
	if im.Repairs.Load() != 1 {
		t.Fatalf("Repairs counter = %d, want 1", im.Repairs.Load())
	}
	got, err := dataset.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CollectedAt != 1_234_567 {
		t.Fatalf("repair lost the collection timestamp: %d", got.CollectedAt)
	}
	if !reflect.DeepEqual(got.Users, snap.Users) {
		t.Fatal("repair changed the data")
	}
}

// A snapshot deleted outright (not just damaged) is also repairable: the
// journal is the source of truth.
func TestRepairSnapshotFromScratch(t *testing.T) {
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "j")
	journalPair(t, jdir)
	path := filepath.Join(tmp, "snap.jsonl")
	rep, err := RepairSnapshot(jdir, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("repair-from-scratch dirty:\n%s", rep)
	}
}

func TestCompactJournalExported(t *testing.T) {
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "j")
	journalPair(t, jdir)
	if err := CompactJournal(jdir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(jdir, baseName)); err != nil {
		t.Fatalf("no base after CompactJournal: %v", err)
	}
	snap, err := RebuildFromJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Users) != 2 || len(snap.Games) != 1 || len(snap.Groups) != 1 {
		t.Fatalf("post-compact rebuild lost records: %d/%d/%d",
			len(snap.Users), len(snap.Games), len(snap.Groups))
	}
}
