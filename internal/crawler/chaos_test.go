package crawler

import (
	"context"
	"reflect"
	"testing"
	"time"

	"steamstudy/internal/apiserver"
)

// chaosProfile is the aggressive everything-at-once fault mix: roughly one
// request in five is sabotaged, and the whole service flaps down for a
// dozen requests every four hundred. Retry-After is advertised as zero
// seconds so the test spends its time crawling, not sleeping.
func chaosProfile(seed int64) *apiserver.FaultProfile {
	return &apiserver.FaultProfile{
		Seed: seed,
		Default: apiserver.FaultSpec{
			Error500:      0.04,
			Unavail503:    0.03,
			ConnReset:     0.03,
			Stall:         0.02,
			Truncate:      0.03,
			MalformedJSON: 0.03,
			WrongJSON:     0.03,
			RetryAfter:    time.Millisecond, // rounds down to "Retry-After: 0"
			StallFor:      20 * time.Millisecond,
		},
		OutageEvery:      400,
		OutageLen:        12,
		OutageRetryAfter: time.Millisecond,
	}
}

// chaosCrawlerConfig tunes the resilience machinery for test speed: tight
// backoffs, a fast breaker, and a deep retry budget to ride out the fault
// mix.
func chaosCrawlerConfig(base, journalDir string) Config {
	return Config{
		BaseURL:          base,
		Workers:          4,
		MaxRetries:       14,
		RetryBackoff:     time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		RequestTimeout:   5 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  10 * time.Millisecond,
		CheckpointPath:   journalDir,
	}
}

// TestChaosCrawlWithRestartsMatchesCleanCrawl is the end-to-end acceptance
// test for the resilience layer: a crawl against a server injecting every
// fault class at once, killed and restarted twice mid-flight, must produce
// a snapshot identical to a fault-free crawl — no user lost, none
// duplicated, every later-phase record intact.
func TestChaosCrawlWithRestartsMatchesCleanCrawl(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e is slow")
	}
	clean := runCrawl(t, Config{BaseURL: startServer(t, apiserver.Config{}).URL, Workers: 8})

	ts := startServer(t, apiserver.Config{Faults: chaosProfile(1234)})
	dir := t.TempDir()

	// Two simulated process deaths: each run gets a short deadline (the
	// SIGKILL stand-in), leaving a partial journal for the next run.
	var restarts int
	for i := 0; i < 2; i++ {
		cfg := chaosCrawlerConfig(ts.URL, dir)
		cfg.RatePerSecond = 500 // slow enough that the kill lands mid-crawl
		interrupted := New(cfg)
		ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
		_, err := interrupted.Run(ctx)
		cancel()
		if err != nil {
			restarts++
		}
	}
	if restarts < 2 {
		t.Fatalf("only %d of 2 interruptions landed mid-crawl; deadlines too generous", restarts)
	}

	// The survivor resumes from the journal and finishes.
	final := New(chaosCrawlerConfig(ts.URL, dir))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	snap, err := final.Run(ctx)
	if err != nil {
		t.Fatalf("chaos crawl failed: %v\nmetrics: %+v", err, final.Metrics.Snapshot())
	}

	// Zero lost, zero duplicated.
	seen := map[uint64]bool{}
	for i := range snap.Users {
		if seen[snap.Users[i].SteamID] {
			t.Fatalf("user %d appears twice in the chaos snapshot", snap.Users[i].SteamID)
		}
		seen[snap.Users[i].SteamID] = true
	}
	// Byte-for-byte identical to the fault-free crawl, timestamp aside.
	snap.CollectedAt, clean.CollectedAt = 0, 0
	if !reflect.DeepEqual(snap, clean) {
		t.Fatalf("chaos snapshot diverges from clean crawl: %d/%d users, %d/%d games, %d/%d groups",
			len(snap.Users), len(clean.Users), len(snap.Games), len(clean.Games),
			len(snap.Groups), len(clean.Groups))
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if final.Metrics.Errors.Load() == 0 {
		t.Fatal("chaos server injected no observable faults; test misconfigured")
	}
}

// TestChaosBreakerOpensDuringOutageAndRecovers drives the crawler into a
// scheduled outage long enough to trip the circuit breaker, then verifies
// the breaker's full lifecycle through metrics: it opened, probed
// half-open, and closed again — and the crawl still finished.
func TestChaosBreakerOpensDuringOutageAndRecovers(t *testing.T) {
	ts := startServer(t, apiserver.Config{Faults: &apiserver.FaultProfile{
		Seed:             7,
		OutageEvery:      25,
		OutageLen:        40, // far past the breaker threshold
		OutageRetryAfter: time.Millisecond,
	}})
	c := New(Config{
		BaseURL:          ts.URL,
		Workers:          2,
		MaxAccounts:      40,
		MaxRetries:       6,
		RetryBackoff:     time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	snap, err := c.Run(ctx)
	if err != nil {
		t.Fatalf("crawl through outages failed: %v\nmetrics: %+v", err, c.Metrics.Snapshot())
	}
	if len(snap.Users) != 40 {
		t.Fatalf("crawled %d users, want 40", len(snap.Users))
	}
	m := c.Metrics.Snapshot()
	if m.BreakerOpens == 0 {
		t.Fatalf("breaker never opened across the outage windows: %+v", m)
	}
	if m.BreakerHalfOpens == 0 {
		t.Fatalf("breaker never admitted a half-open probe: %+v", m)
	}
	if m.BreakerCloses == 0 {
		t.Fatalf("breaker never recovered to closed: %+v", m)
	}
	for class, st := range c.BreakerStates() {
		if st != BreakerClosed {
			t.Fatalf("breaker %q finished the crawl in state %v", class, st)
		}
	}
}

// TestChaosJournalFlushDiscipline asserts the recovery-cost bound: appends
// only ever touch the newest segment, so a crash re-reads at most the
// journal tail, never a sealed segment.
func TestChaosJournalFlushDiscipline(t *testing.T) {
	ts := startServer(t, apiserver.Config{})
	dir := t.TempDir()
	c := New(Config{
		BaseURL:         ts.URL,
		Workers:         4,
		MaxAccounts:     60,
		CheckpointPath:  dir,
		SegmentMaxBytes: 2048, // force several rotations in one run
	})
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Metrics.JournalSegments.Load() < 3 {
		t.Fatalf("only %d segments; rotation never exercised", c.Metrics.JournalSegments.Load())
	}
	// Sealed segments obey the cap (within one record of slop); only the
	// final segment is still growing.
	jr, _, err := openJournal(dir, 2048, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	seg, _ := jr.Position()
	if int64(seg) != c.Metrics.JournalSegments.Load() {
		t.Fatalf("reopen found %d segments, writer reported %d", seg, c.Metrics.JournalSegments.Load())
	}
}
