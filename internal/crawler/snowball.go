package crawler

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"steamstudy/internal/dataset"
	"steamstudy/internal/steamapi"
	"steamstudy/internal/steamid"
)

// Snowball runs a Becker/Blackburn-style crawl (§2.2 of the paper): start
// from seed accounts and traverse friend lists breadth-first, never
// sweeping the ID space. The paper argues this sampling is biased —
// "users with fewer friends are less likely to be crawled" and isolated
// accounts are never reached at all — which exhaustive sweeping avoids.
// This method exists to reproduce that comparison: run both crawls
// against the same universe and compare the degree distributions.
//
// The returned snapshot contains the reached accounts with their profiles
// and friend lists (the data the prior studies collected). maxUsers
// bounds the frontier (0 = until exhaustion of the reachable component).
func (c *Crawler) Snowball(ctx context.Context, seeds []steamid.ID, maxUsers int) (*dataset.Snapshot, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: snowball needs at least one seed")
	}
	snap := &dataset.Snapshot{}
	visited := make(map[uint64]bool)
	var queue []uint64
	for _, s := range seeds {
		id := uint64(s)
		if !visited[id] {
			visited[id] = true
			queue = append(queue, id)
		}
	}

	// profiles fetched in batches as the frontier grows.
	profile := make(map[uint64]steamapi.PlayerSummary)
	fetchProfiles := func(ids []uint64) error {
		for start := 0; start < len(ids); start += steamapi.MaxSummariesPerCall {
			end := start + steamapi.MaxSummariesPerCall
			if end > len(ids) {
				end = len(ids)
			}
			parts := make([]string, 0, end-start)
			for _, id := range ids[start:end] {
				parts = append(parts, strconv.FormatUint(id, 10))
			}
			var resp steamapi.PlayerSummariesResponse
			params := url.Values{"steamids": {strings.Join(parts, ",")}}
			if err := c.client.getJSON(ctx, "/ISteamUser/GetPlayerSummaries/v0002/", params, &resp); err != nil {
				return err
			}
			for _, p := range resp.Response.Players {
				id, err := strconv.ParseUint(p.SteamID, 10, 64)
				if err == nil {
					profile[id] = p
				}
			}
		}
		return nil
	}
	if err := fetchProfiles(queue); err != nil {
		return nil, fmt.Errorf("crawler: snowball seeds: %w", err)
	}

	for qi := 0; qi < len(queue); qi++ {
		if maxUsers > 0 && len(snap.Users) >= maxUsers {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		id := queue[qi]
		p, ok := profile[id]
		if !ok {
			continue // seed that does not resolve to an account
		}
		rec := dataset.UserRecord{
			SteamID: id,
			Created: p.TimeCreated,
			Country: p.LocCountryCode,
			City:    p.LocCityID,
		}
		var friends steamapi.FriendListResponse
		params := url.Values{"steamid": {strconv.FormatUint(id, 10)}}
		if err := c.client.getJSON(ctx, "/ISteamUser/GetFriendList/v0001/", params, &friends); err != nil {
			if !IsNotFound(err) {
				return nil, err
			}
		}
		var newIDs []uint64
		for _, f := range friends.FriendsList.Friends {
			fid, err := strconv.ParseUint(f.SteamID, 10, 64)
			if err != nil {
				continue
			}
			rec.Friends = append(rec.Friends, dataset.FriendRecord{SteamID: fid, Since: f.FriendSince})
			if !visited[fid] {
				visited[fid] = true
				queue = append(queue, fid)
				newIDs = append(newIDs, fid)
			}
		}
		if len(newIDs) > 0 {
			if err := fetchProfiles(newIDs); err != nil {
				return nil, err
			}
		}
		snap.Users = append(snap.Users, rec)
		c.Metrics.UsersDone.Add(1)
	}
	sort.Slice(snap.Users, func(a, b int) bool { return snap.Users[a].SteamID < snap.Users[b].SteamID })
	return snap, nil
}
