//go:build crash

// Crash-chaos harness (build with -tags crash; `make crash`). Where
// chaos_test.go sabotages the *network*, this file kills the *process*:
// first in-process, by aborting the crawl at injected crashpoints inside
// the journal's write path, then for real, by SIGKILLing a child crawler
// at randomized journal byte offsets. In both shapes the acceptance bar
// is the same: after any number of deaths, a resumed crawl must produce a
// snapshot byte-identical to an uninterrupted run's, and fsck must prove
// the artifact clean.

package crawler

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"steamstudy/internal/apiserver"
	"steamstudy/internal/dataset"
)

var errCrashInjected = errors.New("crash injected")

// crashSeed lets CI shake different interleavings out of the harness:
// CRASH_SEED=n make crash. The default is fixed for reproducibility.
func crashSeed(t *testing.T) int64 {
	if s := os.Getenv("CRASH_SEED"); s != "" {
		var n int64
		if _, err := fmt.Sscan(s, &n); err != nil {
			t.Fatalf("CRASH_SEED: %v", err)
		}
		return n
	}
	return 1
}

// saveCanonical persists a snapshot with a pinned timestamp as JSONL —
// an encoding whose bytes depend only on the record values, so two files
// are comparable byte-for-byte.
func saveCanonical(t *testing.T, snap *dataset.Snapshot, path string) []byte {
	t.Helper()
	snap.CollectedAt = 1_450_000_000
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertIdenticalAndClean is the harness's shared acceptance check.
func assertIdenticalAndClean(t *testing.T, got *dataset.Snapshot, wantBytes []byte, dir string) {
	t.Helper()
	path := filepath.Join(dir, "resumed.snap.jsonl")
	gotBytes := saveCanonical(t, got, path)
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("resumed snapshot is not byte-identical to the uninterrupted run (%d vs %d bytes)",
			len(gotBytes), len(wantBytes))
	}
	im := &dataset.IntegrityMetrics{}
	rep, err := dataset.FsckFile(path, im)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("resumed snapshot fails fsck:\n%s", rep)
	}
	if im.RecordsVerified.Load() == 0 {
		t.Fatal("fsck verified nothing; harness misconfigured")
	}
}

// TestCrashChaosInProcess kills the crawl at the journal's "append"
// crashpoint — the record is durable, the worker was never acked — over
// and over, at seeded-random depths, resuming each time. The final
// resume must converge on the uninterrupted snapshot exactly.
func TestCrashChaosInProcess(t *testing.T) {
	defer func() { journalCrashHook = nil }()
	ts := startServer(t, apiserver.Config{})
	rng := rand.New(rand.NewSource(crashSeed(t)))
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "journal")

	clean := runCrawl(t, Config{BaseURL: ts.URL, Workers: 4})
	wantBytes := saveCanonical(t, clean, filepath.Join(tmp, "clean.snap.jsonl"))

	const crashes = 8
	died := 0
	for i := 0; i < crashes; i++ {
		// Let a random number of appends land, then fail every append —
		// the process is "dead" from that instant; in-flight workers all
		// hit the same wall.
		limit := int64(1 + rng.Intn(60))
		var appends atomic.Int64
		journalCrashHook = func(point string) error {
			if point == "append" && appends.Add(1) >= limit {
				return errCrashInjected
			}
			return nil
		}
		c := New(Config{BaseURL: ts.URL, Workers: 4, CheckpointPath: jdir})
		_, err := c.Run(context.Background())
		journalCrashHook = nil
		if err == nil {
			// The journal already held enough work to finish under the
			// append budget; the interesting part is over.
			break
		}
		if !errors.Is(err, errCrashInjected) {
			t.Fatalf("crash %d: unexpected failure: %v", i, err)
		}
		died++
	}
	if died == 0 {
		t.Fatal("no injected crash landed; harness misconfigured")
	}
	t.Logf("survived %d injected crashes", died)

	final := New(Config{BaseURL: ts.URL, Workers: 4, CheckpointPath: jdir})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	snap, err := final.Run(ctx)
	if err != nil {
		t.Fatalf("final resume failed: %v", err)
	}
	assertIdenticalAndClean(t, snap, wantBytes, tmp)
}

// TestCrashChaosCompactMidCrawl interleaves injected crashes with journal
// compaction: every recovery cycle seals the replayed prefix into a base
// before the next death. Dedup, base replay, and segment sweeping all
// have to cooperate for the final bytes to match.
func TestCrashChaosCompactMidCrawl(t *testing.T) {
	defer func() { journalCrashHook = nil }()
	ts := startServer(t, apiserver.Config{})
	rng := rand.New(rand.NewSource(crashSeed(t) + 1))
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "journal")

	clean := runCrawl(t, Config{BaseURL: ts.URL, Workers: 4})
	wantBytes := saveCanonical(t, clean, filepath.Join(tmp, "clean.snap.jsonl"))

	for i := 0; i < 5; i++ {
		limit := int64(1 + rng.Intn(80))
		var appends atomic.Int64
		journalCrashHook = func(point string) error {
			if point == "append" && appends.Add(1) >= limit {
				return errCrashInjected
			}
			return nil
		}
		c := New(Config{BaseURL: ts.URL, Workers: 4, CheckpointPath: jdir, SegmentMaxBytes: 4096})
		_, err := c.Run(context.Background())
		journalCrashHook = nil
		if err == nil {
			break
		}
		if !errors.Is(err, errCrashInjected) {
			t.Fatalf("crash %d: unexpected failure: %v", i, err)
		}
		if err := CompactJournal(jdir); err != nil {
			t.Fatalf("compact after crash %d: %v", i, err)
		}
	}

	final := New(Config{BaseURL: ts.URL, Workers: 4, CheckpointPath: jdir, SegmentMaxBytes: 4096})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	snap, err := final.Run(ctx)
	if err != nil {
		t.Fatalf("final resume failed: %v", err)
	}
	assertIdenticalAndClean(t, snap, wantBytes, tmp)
}

// journalBytes sums the sizes of everything in the journal directory —
// the growth signal the SIGKILL parent watches.
func journalBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			n += info.Size()
		}
	}
	return n
}

// TestCrashChild is not a test: it is the subprocess body for
// TestCrashChaosSIGKILL, gated behind an env var so a normal `go test
// -tags crash` run skips it. It crawls CRASH_URL with the journal at
// CRASH_JOURNAL and, if it survives to the end, saves CRASH_OUT.
func TestCrashChild(t *testing.T) {
	if os.Getenv("STEAMCRAWL_CRASH_CHILD") != "1" {
		t.Skip("subprocess body; spawned by TestCrashChaosSIGKILL")
	}
	c := New(Config{
		BaseURL:        os.Getenv("CRASH_URL"),
		Workers:        4,
		CheckpointPath: os.Getenv("CRASH_JOURNAL"),
	})
	snap, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("child crawl: %v", err)
	}
	snap.CollectedAt = 1_450_000_000
	if err := snap.Save(os.Getenv("CRASH_OUT")); err != nil {
		t.Fatalf("child save: %v", err)
	}
}

// TestCrashChaosSIGKILL is the real thing: a child crawler process is
// SIGKILLed — no deferred cleanup, no flushes, exactly what the kernel
// does — once its journal passes a randomized byte offset. After several
// corpses, one child runs to completion; its snapshot must be
// byte-identical to an uninterrupted run's and fsck-clean.
func TestCrashChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos is slow")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, apiserver.Config{})
	rng := rand.New(rand.NewSource(crashSeed(t) + 2))
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "journal")
	outPath := filepath.Join(tmp, "child.snap.jsonl")

	clean := runCrawl(t, Config{BaseURL: ts.URL, Workers: 4})
	wantBytes := saveCanonical(t, clean, filepath.Join(tmp, "clean.snap.jsonl"))

	child := func() *exec.Cmd {
		cmd := exec.Command(exe, "-test.run", "^TestCrashChild$", "-test.v")
		cmd.Env = append(os.Environ(),
			"STEAMCRAWL_CRASH_CHILD=1",
			"CRASH_URL="+ts.URL,
			"CRASH_JOURNAL="+jdir,
			"CRASH_OUT="+outPath,
		)
		return cmd
	}

	const kills = 4
	killed := 0
	for i := 0; i < kills; i++ {
		// Kill once the journal grows past a random offset beyond its
		// current size, so every death lands somewhere new.
		target := journalBytes(jdir) + int64(1+rng.Intn(40_000))
		cmd := child()
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		deadline := time.After(2 * time.Minute)
		for alive := true; alive; {
			select {
			case <-done:
				alive = false // finished before the bullet; journal is complete
			case <-deadline:
				cmd.Process.Kill()
				t.Fatal("child crawl hung")
			case <-time.After(2 * time.Millisecond):
				if journalBytes(jdir) >= target {
					cmd.Process.Kill() // SIGKILL: no handlers, no flushes
					<-done
					killed++
					alive = false
				}
			}
		}
	}
	if killed == 0 {
		t.Fatal("every child outran the kill offsets; harness misconfigured")
	}
	t.Logf("SIGKILLed %d children mid-journal", killed)

	// The survivor: run to completion and judge its artifact.
	cmd := child()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("surviving child failed: %v\n%s", err, out)
	}
	snap, err := dataset.Load(outPath)
	if err != nil {
		t.Fatalf("loading child snapshot: %v", err)
	}
	gotBytes, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("child snapshot not byte-identical to uninterrupted run (%d vs %d bytes)",
			len(gotBytes), len(wantBytes))
	}
	rep, err := dataset.FsckFile(outPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("child snapshot fails fsck:\n%s", rep)
	}
	if rep := snap.Fsck(); !rep.Clean() {
		t.Fatalf("decoded child snapshot fails in-memory fsck:\n%s", rep)
	}
}
