// Segment-boundary edge cases: the rotation threshold is exactly where a
// torn write is most confusable — a segment sealed at precisely maxSeg
// bytes looks complete, an empty successor looks missing, and a tear in
// the first record of a fresh segment leaves a file that is all garbage.
// These tests pin record sizes so the tear lands exactly on the boundary,
// and race Compact against a concurrent appender under -race.

package crawler

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"steamstudy/internal/dataset"
)

// boundaryUser builds records whose gob encoding is the same byte length
// for every id in [1000, 2000): all varint-encoded fields stay within one
// encoded width, so segment arithmetic below is exact.
func boundaryUser(id uint64) *dataset.UserRecord {
	return &dataset.UserRecord{
		SteamID: id,
		Created: int64(id) * 100,
		Country: "DE",
		Friends: []dataset.FriendRecord{{SteamID: id + 1, Since: 1042}},
		Games:   []dataset.OwnershipRecord{{AppID: 1010, TotalMinutes: 1060}},
		Groups:  []uint64{1007},
	}
}

// measureRecord returns the on-disk byte size of one boundaryUser record,
// header included, by appending it to a scratch journal.
func measureRecord(t *testing.T) int64 {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "scratch")
	jr, _, err := openJournal(dir, 0, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if err := jr.appendUser(boundaryUser(1000)); err != nil {
		t.Fatal(err)
	}
	_, off := jr.Position()
	if off <= recHeaderSize {
		t.Fatalf("measured record size %d is implausible", off)
	}
	return off
}

// fillSegments appends n boundary users with maxSeg pinned to exactly
// recSize*perSeg, so every sealed segment is byte-for-byte full.
func fillSegments(t *testing.T, dir string, recSize int64, perSeg, n int) {
	t.Helper()
	jr, _, err := openJournal(dir, recSize*int64(perSeg), &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := jr.appendUser(boundaryUser(uint64(1000 + i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalSegmentSealedAtExactCapacity: a record that lands exactly at
// maxSeg must NOT rotate early (the cap is "never exceed", not "stay
// under"), and the next append must open a fresh segment. The sealed file
// is exactly maxSeg bytes — the shape most likely to be mistaken for a
// truncation.
func TestJournalSegmentSealedAtExactCapacity(t *testing.T) {
	recSize := measureRecord(t)
	dir := filepath.Join(t.TempDir(), "j")
	const perSeg = 3
	fillSegments(t, dir, recSize, perSeg, perSeg+1) // 3 fill seg 1 exactly, 1 spills into seg 2

	info, err := os.Stat(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != recSize*perSeg {
		t.Fatalf("sealed segment is %d bytes, want exactly maxSeg=%d", info.Size(), recSize*perSeg)
	}
	info, err = os.Stat(filepath.Join(dir, segName(2)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != recSize {
		t.Fatalf("spill segment is %d bytes, want one record=%d", info.Size(), recSize)
	}
	jr, st, err := openJournal(dir, recSize*perSeg, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if len(st.users) != perSeg+1 {
		t.Fatalf("replayed %d users, want %d", len(st.users), perSeg+1)
	}
}

// TestJournalTornWriteAtSegmentBoundary: the crash lands mid-way through
// the FIRST record after a rotation — the new segment holds nothing but a
// partial record. Replay must truncate it to empty, resume appending
// there, and lose exactly the unacked record. Both tear shapes are
// exercised: inside the payload and inside the 8-byte header itself.
func TestJournalTornWriteAtSegmentBoundary(t *testing.T) {
	recSize := measureRecord(t)
	const perSeg = 3
	for _, tc := range []struct {
		name string
		keep int64 // bytes of the torn record left on disk
	}{
		{"mid-payload", recSize - 5},
		{"mid-header", recHeaderSize - 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "j")
			// 3 records fill segment 1 exactly; the 4th rotates and is the
			// only record in segment 2 — then the "crash" tears it.
			fillSegments(t, dir, recSize, perSeg, perSeg+1)
			seg2 := filepath.Join(dir, segName(2))
			if err := os.Truncate(seg2, tc.keep); err != nil {
				t.Fatal(err)
			}

			maxSeg := recSize * perSeg
			jr, st, err := openJournal(dir, maxSeg, &Metrics{})
			if err != nil {
				t.Fatalf("torn first record of a fresh segment not tolerated: %v", err)
			}
			if len(st.users) != perSeg {
				t.Fatalf("replayed %d users, want the %d whole ones", len(st.users), perSeg)
			}
			// The tear was truncated away and the successor's re-append
			// lands at offset 0 of the same segment.
			if seg, off := jr.Position(); seg != 2 || off != 0 {
				t.Fatalf("resume position seg %d off %d, want seg 2 off 0", seg, off)
			}
			if err := jr.appendUser(boundaryUser(uint64(1000 + perSeg))); err != nil {
				t.Fatal(err)
			}
			if err := jr.Close(); err != nil {
				t.Fatal(err)
			}
			_, st2, err := openJournal(dir, maxSeg, &Metrics{})
			if err != nil {
				t.Fatal(err)
			}
			if len(st2.users) != perSeg+1 {
				t.Fatalf("post-tear append lost: %d users, want %d", len(st2.users), perSeg+1)
			}
		})
	}
}

// TestJournalEmptySegmentAfterRotationCrash: death exactly between "seal
// segment N" and "first write to segment N+1" leaves a zero-byte final
// segment. That is a legal journal: replay is a clean no-op and appends
// resume in the empty file.
func TestJournalEmptySegmentAfterRotationCrash(t *testing.T) {
	recSize := measureRecord(t)
	dir := filepath.Join(t.TempDir(), "j")
	const perSeg = 3
	fillSegments(t, dir, recSize, perSeg, perSeg) // segment 1 sealed exactly full
	// The rotation's OpenFile succeeded, the write never happened.
	empty, err := os.Create(filepath.Join(dir, segName(2)))
	if err != nil {
		t.Fatal(err)
	}
	empty.Close()

	jr, st, err := openJournal(dir, recSize*perSeg, &Metrics{})
	if err != nil {
		t.Fatalf("empty final segment not tolerated: %v", err)
	}
	if len(st.users) != perSeg {
		t.Fatalf("replayed %d users, want %d", len(st.users), perSeg)
	}
	if seg, off := jr.Position(); seg != 2 || off != 0 {
		t.Fatalf("resume position seg %d off %d, want seg 2 off 0", seg, off)
	}
	if err := jr.appendUser(boundaryUser(2000)); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	_, st2, err := openJournal(dir, recSize*perSeg, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.users) != perSeg+1 {
		t.Fatalf("append after empty-segment resume lost: %d users", len(st2.users))
	}
}

// TestJournalNonFinalCorruptionNamesSegmentAndOffset: corruption anywhere
// but the final tail is fatal — and the error must point an operator at
// the exact segment file and byte offset, because "record 4 somewhere in
// six months of journal" is not actionable on a real crawl.
func TestJournalNonFinalCorruptionNamesSegmentAndOffset(t *testing.T) {
	recSize := measureRecord(t)
	dir := filepath.Join(t.TempDir(), "j")
	const perSeg = 3
	fillSegments(t, dir, recSize, perSeg, 2*perSeg) // two full segments

	// Rot a byte inside segment 1's SECOND record: replay of a non-final
	// segment fails at record index 1, byte offset recSize.
	seg1 := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	b[recSize+recHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(seg1, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = openJournal(dir, recSize*perSeg, &Metrics{})
	if err == nil {
		t.Fatal("corrupt non-final segment tolerated")
	}
	msg := err.Error()
	if !strings.Contains(msg, seg1) {
		t.Fatalf("error does not name the segment path %q: %v", seg1, err)
	}
	if !strings.Contains(msg, "record 1") || !strings.Contains(msg, "byte offset") {
		t.Fatalf("error does not locate the record and byte offset: %v", err)
	}
}

// TestJournalCompactRacesAppend drives Compact concurrently with a
// storm of appends. Compact refuses once any append has landed (its
// state argument would be stale), so exactly two outcomes are legal per
// call: success before the first append wins the lock, or the refusal
// error after. Either way every appended record must survive to replay,
// and the whole dance must be race-detector clean.
func TestJournalCompactRacesAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	// Seed state so Compact has something to seal.
	fillSegments(t, dir, measureRecord(t), 3, 10)
	jr, st, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}

	const appends = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := jr.appendUser(boundaryUser(uint64(1100 + i))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	compactions, refusals := 0, 0
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := jr.Compact(st); err != nil {
				refusals++
				if !strings.Contains(err.Error(), "compact refused") {
					t.Errorf("compact failed with a non-refusal error: %v", err)
					return
				}
			} else {
				compactions++
			}
		}
	}()
	wg.Wait()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d compactions won the race, %d refused", compactions, refusals)
	if refusals == 0 {
		t.Fatal("no compaction was ever refused; the race never happened")
	}

	_, st2, err := openJournal(dir, 256, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.users) != 10+appends {
		t.Fatalf("replayed %d users, want %d: compact raced an append into oblivion", len(st2.users), 10+appends)
	}
}
