package crawler

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"

	"steamstudy/internal/dataset"
)

// checkpoint is the resumable phase-2 state: the accounts fully detailed
// so far. The paper's phase 2 spanned six months of wall-clock time; a
// crawl at that scale must survive restarts.
type checkpoint struct {
	Users []dataset.UserRecord
}

// saveCheckpoint writes atomically (temp file + rename) so an interrupted
// write never corrupts an existing checkpoint.
func saveCheckpoint(path string, users []dataset.UserRecord) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("crawler: checkpoint: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := gob.NewEncoder(bw).Encode(checkpoint{Users: users}); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("crawler: checkpoint encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpoint returns nil (and no error) when no checkpoint exists.
func loadCheckpoint(path string) (*checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("crawler: checkpoint open: %w", err)
	}
	defer f.Close()
	cp := &checkpoint{}
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(cp); err != nil {
		return nil, fmt.Errorf("crawler: checkpoint decode: %w", err)
	}
	return cp, nil
}
