// Journaled checkpoints. The paper's phase 2 ran for six months; a crawl
// at that scale must survive process death at any instant without losing
// or duplicating work. The old checkpoint rewrote the full account list
// as one gob blob — O(crawl) bytes per flush and phase-2-only. This
// journal is append-only: every completed unit of work (a detailed user,
// a catalog entry, a game's achievements, a categorized group, a
// phase-completion marker) is one length-prefixed, CRC-guarded gob record
// appended to the active segment. A flush touches exactly one segment;
// segments rotate at a size threshold; replay tolerates a crash-truncated
// tail record by truncating it away and resuming the append from there.

package crawler

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"steamstudy/internal/dataset"
)

// Record kinds, one per resumable unit of crawl work.
const (
	kindUser      uint8 = 1 // phase 2: one fully detailed account
	kindGame      uint8 = 2 // phase 3: one catalog entry
	kindAch       uint8 = 3 // phase 4: one game's achievement list
	kindGroup     uint8 = 4 // phase 5: one categorized group
	kindPhaseDone uint8 = 5 // a phase completed
)

// journalRecord is the union of everything the journal stores. Exactly
// one payload field is set, selected by Kind.
type journalRecord struct {
	Kind  uint8
	Phase uint8 // kindPhaseDone: which phase finished

	User  *dataset.UserRecord
	Game  *dataset.GameRecord
	Group *dataset.GroupRecord

	// kindAch payload: the achievements (possibly empty) of one app.
	AppID        uint32
	Achievements []dataset.AchievementRecord
}

// crawlState is the result of replaying a journal: everything a resumed
// crawl can skip re-fetching. The index maps make replay idempotent: a
// unit of work journaled twice (a crash can land between the append
// hitting disk and the in-memory ack, and the dead process's successor
// may legitimately redo in-flight work) replaces its earlier record
// instead of appearing twice, so resume never double-counts a user, game
// or group. The last record wins — it is the younger observation.
type crawlState struct {
	users     []dataset.UserRecord
	userIdx   map[uint64]int
	games     []dataset.GameRecord
	gameIdx   map[uint32]int
	groups    []dataset.GroupRecord
	groupIdx  map[uint64]int
	ach       map[uint32][]dataset.AchievementRecord
	achDone   map[uint32]bool
	phaseDone [6]bool
}

func newCrawlState() *crawlState {
	return &crawlState{
		userIdx:  make(map[uint64]int),
		gameIdx:  make(map[uint32]int),
		groupIdx: make(map[uint64]int),
		ach:      make(map[uint32][]dataset.AchievementRecord),
		achDone:  make(map[uint32]bool),
	}
}

func (st *crawlState) apply(rec *journalRecord) {
	switch rec.Kind {
	case kindUser:
		if rec.User != nil {
			if i, ok := st.userIdx[rec.User.SteamID]; ok {
				st.users[i] = *rec.User
			} else {
				st.userIdx[rec.User.SteamID] = len(st.users)
				st.users = append(st.users, *rec.User)
			}
		}
	case kindGame:
		if rec.Game != nil {
			if i, ok := st.gameIdx[rec.Game.AppID]; ok {
				st.games[i] = *rec.Game
			} else {
				st.gameIdx[rec.Game.AppID] = len(st.games)
				st.games = append(st.games, *rec.Game)
			}
		}
	case kindAch:
		st.ach[rec.AppID] = rec.Achievements
		st.achDone[rec.AppID] = true
	case kindGroup:
		if rec.Group != nil {
			if i, ok := st.groupIdx[rec.Group.GID]; ok {
				st.groups[i] = *rec.Group
			} else {
				st.groupIdx[rec.Group.GID] = len(st.groups)
				st.groups = append(st.groups, *rec.Group)
			}
		}
	case kindPhaseDone:
		if int(rec.Phase) < len(st.phaseDone) {
			st.phaseDone[rec.Phase] = true
		}
	}
}

// snapshot assembles the replayed state into a dataset snapshot: games
// get their journaled achievement sets attached, and every section is
// put in canonical ID order — the same shape a completed Run produces.
func (st *crawlState) snapshot(collectedAt int64) *dataset.Snapshot {
	snap := &dataset.Snapshot{
		CollectedAt: collectedAt,
		Users:       st.users,
		Games:       st.games,
		Groups:      st.groups,
	}
	for i := range snap.Games {
		if ach, ok := st.ach[snap.Games[i].AppID]; ok {
			snap.Games[i].Achievements = ach
		}
	}
	sortSnapshot(snap)
	return snap
}

const (
	segPrefix = "journal-"
	segSuffix = ".seg"
	// baseName is the compacted prefix of the journal: everything sealed
	// by the last Compact, as one CRC-framed gob blob. Replay loads it
	// first, then only the segments appended since, bounding replay time.
	baseName = "journal-base.gob"
	// recHeaderSize prefixes every record: uint32 payload length +
	// uint32 CRC-32 (IEEE) of the payload, both big-endian.
	recHeaderSize = 8
	// defaultSegmentBytes rotates segments at 4 MiB.
	defaultSegmentBytes = 4 << 20

	// segMagic opens every segment created by an epoch-bearing (fenced)
	// writer; records follow a fixed 16-byte header naming the writer's
	// epoch. Segments written by epoch-zero (solo) journals have no
	// header and are byte-identical to the unfenced format.
	segMagic = "SEGF"
	// segHeaderVersion is the header layout version.
	segHeaderVersion = 1
	// segHeaderSize is magic (4) + uint32 version + uint64 epoch, both
	// big-endian.
	segHeaderSize = 16
)

// journalCrashHook, when non-nil, is consulted at named crashpoints in
// the journal's write path; returning an error aborts there, leaving the
// files exactly as a process death at that instant would. Test-only.
// Points: "append" (record durable in the segment, caller not yet acked),
// "compact-sealed" (base written and verified, sealed segments not yet
// deleted).
var journalCrashHook func(point string) error

func journalCrash(point string) error {
	if h := journalCrashHook; h != nil {
		return h(point)
	}
	return nil
}

// journal is the append side. All methods are safe for concurrent use.
type journal struct {
	dir     string
	maxSeg  int64
	metrics *Metrics
	// epoch is the lease epoch this journal was opened with; zero means
	// an unfenced (solo) writer. Epoch-bearing appends re-check the
	// fence file so a paused writer fenced out by a successor fails with
	// ErrFenced instead of landing stale records.
	epoch uint64
	// readonly marks an epoch-zero open of a fenced directory (merge,
	// rebuild, status): replay works, appends refuse with ErrFenced, and
	// nothing on disk is created or truncated.
	readonly bool

	mu       sync.Mutex
	f        *os.File
	seq      int
	size     int64 // active segment size, header included
	hdr      int64 // active segment header length (segHeaderSize or 0)
	appended int64 // records appended since open; guards Compact
}

func segName(seq int) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix)
}

func segSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil {
		return 0, false
	}
	return n, true
}

// openJournal replays the base snapshot (if a Compact ever ran) and every
// live segment under dir (creating it if needed), then opens the last
// segment for appending. A torn record at the very tail — a crash
// mid-append — is truncated away and replay succeeds; corruption
// anywhere else is an error, because data after it would silently vanish.
// This epoch-zero form is the solo path; fleet workers open with their
// lease epoch via openJournalAt.
func openJournal(dir string, maxSeg int64, m *Metrics) (*journal, *crawlState, error) {
	return openJournalAt(dir, maxSeg, m, 0)
}

// openJournalAt is openJournal with a lease epoch. Epoch semantics:
//
//   - epoch 0 on an unfenced directory: the solo path, byte-identical to
//     the unfenced format (no fence file, no segment headers, no
//     per-append fence reads).
//   - epoch 0 on a fenced directory: a reader (merge, rebuild). Replay
//     honors the fence's seals and skips below-fence segments; the
//     handle is read-only — appends fail with ErrFenced and nothing on
//     disk is created or truncated.
//   - epoch below the fence: the caller's lease was reissued; ErrFenced.
//   - epoch above the fence: a takeover. Every live segment is sealed at
//     its replayed length, the fence is fsynced with the new epoch, and
//     appends go to a fresh segment — so anything a paused predecessor
//     writes later lands beyond a seal and is invisible to every future
//     replay, whether or not the predecessor ever notices the fence.
//   - epoch equal to the fence: the owner resuming its own journal.
func openJournalAt(dir string, maxSeg int64, m *Metrics, epoch uint64) (*journal, *crawlState, error) {
	if maxSeg <= 0 {
		maxSeg = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("crawler: journal dir: %w", err)
	}
	fence, err := ReadFence(dir)
	if err != nil {
		return nil, nil, err
	}
	if epoch > 0 && epoch < fence.Epoch {
		if m != nil {
			m.FenceRejections.Inc()
		}
		return nil, nil, fmt.Errorf("crawler: journal open: epoch %d below fence %d: %w", epoch, fence.Epoch, ErrFenced)
	}

	st := newCrawlState()
	// A base, when present, replaces the segments it sealed. Segments at
	// or below its sequence may still exist if a crash landed between the
	// base publish and the segment deletes; they are skipped (the base
	// already holds their records, possibly superseded) and swept here.
	baseSeq := 0
	if base, err := readBase(filepath.Join(dir, baseName)); err != nil {
		return nil, nil, fmt.Errorf("crawler: journal base: %w", err)
	} else if base != nil {
		st.applyBase(base)
		baseSeq = base.UpToSeq
		if m != nil {
			m.JournalRecords.Add(int64(len(base.Users) + len(base.Games) + len(base.Groups) + len(base.AchDone)))
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("crawler: journal dir: %w", err)
	}
	readonly := epoch == 0 && fence.Epoch > 0
	var seqs []int
	for _, e := range entries {
		n, ok := segSeq(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		if n <= baseSeq {
			if !readonly {
				os.Remove(filepath.Join(dir, e.Name())) // sealed leftover; best-effort sweep
			}
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)

	j := &journal{dir: dir, maxSeg: maxSeg, metrics: m, epoch: epoch, readonly: readonly, seq: baseSeq + 1}
	takeover := epoch > fence.Epoch
	// replayed records, per live segment, the absolute offset just past
	// the last record the successor's state covers — the seal points of a
	// takeover.
	replayed := make(map[int]int64, len(seqs))
	lastUnsealedOK := false // last live segment replayed whole and is ours to append to
	for i, seq := range seqs {
		last := i == len(seqs)-1
		path := filepath.Join(dir, segName(seq))
		segEpoch, hdr, err := readSegHeader(path)
		if err != nil {
			return nil, nil, fmt.Errorf("crawler: journal segment %s: %w", path, err)
		}
		seal, sealed := fence.Seals[seq]
		var valid int64
		switch {
		case sealed:
			// Replay exactly the sealed prefix; bytes past the seal are a
			// fenced-out writer's late appends (or its torn tail) and are
			// inert. Anything short or corrupt below the seal is real
			// damage — the seal was a replayed-clean length once.
			if seal < hdr {
				seal = hdr
			}
			valid, err = replayRange(path, st, m, hdr, seal)
			if err != nil {
				return nil, nil, fmt.Errorf("crawler: journal segment %s (sealed at %d): %w", path, seal, err)
			}
			if valid != seal {
				return nil, nil, fmt.Errorf("crawler: journal segment %s: sealed at %d but only %d bytes replay clean", path, seal, valid)
			}
		case fence.Epoch > 0 && segEpoch < fence.Epoch:
			// An unsealed segment below the fence: forged by a fenced-out
			// writer racing the takeover (its rotation landed after the
			// takeover's directory listing). Its records are redone,
			// value-identical work at best — skip the whole segment.
			valid = hdr
		default:
			valid, err = replayRange(path, st, m, hdr, -1)
			if err != nil {
				if !last {
					return nil, nil, fmt.Errorf("crawler: journal segment %s: %w", path, err)
				}
				// Torn tail in the final segment: a crash mid-append. The
				// owner truncates it away and resumes right after the last
				// whole record; a takeover or reader just seals/stops there.
				if !takeover && !readonly {
					if terr := os.Truncate(path, valid); terr != nil {
						return nil, nil, fmt.Errorf("crawler: journal truncate %s: %w", segName(seq), terr)
					}
					lastUnsealedOK = epoch == 0 || segEpoch == epoch
				}
			} else if last && (epoch == 0 || segEpoch == epoch) {
				lastUnsealedOK = true
			}
		}
		replayed[seq] = valid
		if last {
			j.seq = seq
			j.size = valid
			j.hdr = hdr
		}
	}

	switch {
	case readonly:
		// Merge/rebuild/status on a fenced directory: replay only.
	case takeover:
		// Seal everything live at the replayed lengths, publish the new
		// epoch durably, then append into a fresh segment. Order matters:
		// once the fence is on disk, the predecessor's next append (which
		// re-reads it) fails, and anything it lands before noticing sits
		// beyond a seal.
		fence.Epoch = epoch
		if fence.Seals == nil {
			fence.Seals = make(map[int]int64, len(replayed))
		}
		for seq, valid := range replayed {
			fence.Seals[seq] = valid
		}
		if err := writeFence(dir, fence); err != nil {
			return nil, nil, err
		}
		nextSeq := j.seq
		if len(seqs) > 0 {
			nextSeq++
		}
		if err := j.createFencedSegment(nextSeq); err != nil {
			return nil, nil, err
		}
	case epoch > 0 && !lastUnsealedOK:
		// Our own journal, but the last segment is not appendable (sealed
		// by our takeover crash-window, torn below a usable header, or
		// absent): start a fresh one.
		nextSeq := j.seq
		if len(seqs) > 0 {
			nextSeq++
		}
		if err := j.createFencedSegment(nextSeq); err != nil {
			return nil, nil, err
		}
	default:
		// The owner (fenced or solo) resuming its own tail segment.
		f, err := os.OpenFile(filepath.Join(dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("crawler: journal open: %w", err)
		}
		j.f = f
		if epoch > 0 && j.size == 0 {
			// Fresh or fully truncated segment under a fenced writer:
			// (re)stamp the epoch header.
			if err := j.writeSegHeaderLocked(); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	}
	if m != nil {
		m.JournalSegments.Store(int64(len(seqs)))
		if len(seqs) == 0 && !readonly {
			m.JournalSegments.Store(1)
		}
	}
	return j, st, nil
}

// readSegHeader classifies a segment: fenced segments open with segMagic
// and carry their writer's epoch; anything else (including every segment
// a solo crawl writes) is the headerless legacy layout, epoch zero. A
// file too short to hold a whole header is legacy — if its bytes are a
// torn fenced header, replay-from-zero reports a torn record at offset 0,
// which the tail-truncation path cleans up exactly like any torn append.
func readSegHeader(path string) (epoch uint64, hdr int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var b [segHeaderSize]byte
	n, err := io.ReadFull(f, b[:])
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	_ = n
	if string(b[0:4]) != segMagic {
		return 0, 0, nil
	}
	if v := binary.BigEndian.Uint32(b[4:8]); v != segHeaderVersion {
		return 0, 0, fmt.Errorf("segment header version %d is newer than this binary understands", v)
	}
	return binary.BigEndian.Uint64(b[8:16]), segHeaderSize, nil
}

// writeSegHeaderLocked stamps the active segment's epoch header. The
// segment must be empty.
func (j *journal) writeSegHeaderLocked() error {
	var b [segHeaderSize]byte
	copy(b[0:4], segMagic)
	binary.BigEndian.PutUint32(b[4:8], segHeaderVersion)
	binary.BigEndian.PutUint64(b[8:16], j.epoch)
	if _, err := j.f.Write(b[:]); err != nil {
		return fmt.Errorf("crawler: segment header: %w", err)
	}
	j.size = segHeaderSize
	j.hdr = segHeaderSize
	return nil
}

// createFencedSegment opens a fresh epoch-stamped segment at the first
// free sequence at or after startSeq. O_EXCL makes segment creation a
// race arbiter: a fenced-out predecessor rotating concurrently cannot
// silently share a file with the new owner.
func (j *journal) createFencedSegment(startSeq int) error {
	for seq := startSeq; ; seq++ {
		f, err := os.OpenFile(filepath.Join(j.dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if os.IsExist(err) {
			// A below-fence writer forged this sequence between our
			// directory listing and now; its segment replays as skipped.
			continue
		}
		if err != nil {
			return fmt.Errorf("crawler: journal create: %w", err)
		}
		j.f = f
		j.seq = seq
		j.size = 0
		return j.writeSegHeaderLocked()
	}
}

// replaySegment applies every whole record in the segment to st and
// returns the byte offset just past the last whole record (the legacy,
// headerless, unsealed form — tests exercise the raw record framing
// through it).
func replaySegment(path string, st *crawlState, m *Metrics) (int64, error) {
	return replayRange(path, st, m, 0, -1)
}

// replayRange applies every whole record in the segment between byte
// offsets start and limit (limit < 0: to EOF) to st and returns the
// absolute byte offset just past the last whole record. The error is
// non-nil when the range ends in a partial or corrupt record; it names
// the record index and byte offset so a failed resume points at the exact
// spot in the offending shard file, not just "record 17 somewhere".
func replayRange(path string, st *crawlState, m *Metrics, start, limit int64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return start, err
	}
	defer f.Close()
	if start > 0 {
		if _, err := f.Seek(start, io.SeekStart); err != nil {
			return start, err
		}
	}
	var r io.Reader = f
	if limit >= 0 {
		if limit < start {
			return start, fmt.Errorf("segment seal %d below header end %d", limit, start)
		}
		r = io.LimitReader(f, limit-start)
	}
	var (
		valid  = start
		index  int64
		header [recHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				return valid, nil // clean end
			}
			return valid, fmt.Errorf("record %d at byte offset %d: torn record header: %w", index, valid, err)
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, fmt.Errorf("record %d at byte offset %d: torn record payload: %w", index, valid, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return valid, fmt.Errorf("record %d at byte offset %d: record checksum mismatch", index, valid)
		}
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return valid, fmt.Errorf("record %d at byte offset %d: record decode: %w", index, valid, err)
		}
		st.apply(&rec)
		valid += recHeaderSize + int64(length)
		index++
		if m != nil {
			m.JournalRecords.Add(1)
		}
	}
}

// append encodes one record, writes it to the active segment, and flushes
// it to the OS, rotating to a fresh segment first when the active one is
// full. One append touches exactly one segment.
func (j *journal) append(rec *journalRecord) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, recHeaderSize)) // header placeholder
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("crawler: journal encode: %w", err)
	}
	b := buf.Bytes()
	payload := b[recHeaderSize:]
	binary.BigEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.readonly {
		return fmt.Errorf("crawler: journal append: read-only open of a fenced journal (fence epoch ahead of this writer): %w", ErrFenced)
	}
	if j.f == nil {
		return errors.New("crawler: journal closed")
	}
	// Epoch-bearing writers re-read the fence before every append: once a
	// successor's takeover has published a higher epoch, this writer's
	// lease is gone and the record must not land. This is the check that
	// turns a paused-past-TTL worker from a correctness hazard into a
	// clean ErrFenced self-termination. Solo journals (epoch 0, never
	// fenced) skip the read entirely.
	if j.epoch > 0 {
		if err := j.checkFenceLocked(); err != nil {
			return err
		}
	}
	if j.size > j.hdr && j.size+int64(len(b)) > j.maxSeg {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("crawler: journal write: %w", err)
	}
	j.size += int64(len(b))
	j.appended++
	if j.metrics != nil {
		j.metrics.JournalRecords.Add(1)
	}
	// Crashpoint: the record is in the file, the caller has not been
	// acked. A death here journals the unit of work without its ack — the
	// successor may redo and re-append it, which replay deduplicates.
	if err := journalCrash("append"); err != nil {
		return err
	}
	return nil
}

// checkFenceLocked re-reads the fence and fails with ErrFenced when a
// higher epoch has taken the journal over. An unreadable fence also
// refuses the write: ownership can no longer be proven.
func (j *journal) checkFenceLocked() error {
	fence, err := ReadFence(j.dir)
	if err != nil {
		return fmt.Errorf("crawler: journal append: %w", err)
	}
	if fence.Epoch > j.epoch {
		if j.metrics != nil {
			j.metrics.FenceRejections.Inc()
		}
		return fmt.Errorf("crawler: journal append: epoch %d below fence %d: %w", j.epoch, fence.Epoch, ErrFenced)
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and atomically
// switches appends to the next one. Epoch-bearing writers create the new
// segment with O_EXCL and stamp its header; a sequence collision means a
// successor (or a fenced-out straggler) raced us — re-check the fence and
// either fail fenced or take the next free sequence.
func (j *journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("crawler: journal sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("crawler: journal close: %w", err)
	}
	if j.epoch > 0 {
		seq := j.seq
		if err := j.createFencedSegment(j.seq + 1); err != nil {
			j.f = nil
			j.seq = seq
			return fmt.Errorf("crawler: journal rotate: %w", err)
		}
		if err := j.checkFenceLocked(); err != nil {
			return err
		}
		if j.metrics != nil {
			j.metrics.JournalSegments.Add(1)
		}
		return nil
	}
	j.seq++
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("crawler: journal rotate: %w", err)
	}
	j.f = f
	j.size = 0
	j.hdr = 0
	if j.metrics != nil {
		j.metrics.JournalSegments.Add(1)
	}
	return nil
}

// Position reports the active segment index and its byte size, for the
// progress log.
func (j *journal) Position() (seg int, offset int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.size
}

// Close seals the journal (idempotent).
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.f.Sync()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// journalBase is the compacted prefix of a journal: the fully replayed
// state up to and including segment UpToSeq, stored as one CRC-framed gob
// blob so a resume reads it in a single decode instead of re-replaying
// months of segments.
type journalBase struct {
	UpToSeq   int
	Users     []dataset.UserRecord
	Games     []dataset.GameRecord
	Groups    []dataset.GroupRecord
	Ach       map[uint32][]dataset.AchievementRecord
	AchDone   map[uint32]bool
	PhaseDone [6]bool
}

// applyBase seeds the crawl state from a compacted base.
func (st *crawlState) applyBase(b *journalBase) {
	for i := range b.Users {
		st.userIdx[b.Users[i].SteamID] = len(st.users)
		st.users = append(st.users, b.Users[i])
	}
	for i := range b.Games {
		st.gameIdx[b.Games[i].AppID] = len(st.games)
		st.games = append(st.games, b.Games[i])
	}
	for i := range b.Groups {
		st.groupIdx[b.Groups[i].GID] = len(st.groups)
		st.groups = append(st.groups, b.Groups[i])
	}
	for app, ach := range b.Ach {
		st.ach[app] = ach
	}
	for app, done := range b.AchDone {
		st.achDone[app] = done
	}
	st.phaseDone = b.PhaseDone
}

// readBase loads and CRC-verifies a compacted base. A missing file
// returns (nil, nil); a corrupt one is an error — unlike a torn segment
// tail there is no safe way to use half a base, and the sealed segments
// it replaced are gone.
func readBase(path string) (*journalBase, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < recHeaderSize {
		return nil, errors.New("base truncated inside header")
	}
	length := binary.BigEndian.Uint32(raw[0:4])
	sum := binary.BigEndian.Uint32(raw[4:8])
	payload := raw[recHeaderSize:]
	if uint32(len(payload)) != length {
		return nil, fmt.Errorf("base payload is %d bytes, header records %d", len(payload), length)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("base checksum mismatch")
	}
	var b journalBase
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&b); err != nil {
		return nil, fmt.Errorf("base decode: %w", err)
	}
	return &b, nil
}

// writeBase durably publishes a base: CRC-framed gob to a temp file,
// fsync, rename, directory fsync.
func writeBase(dir string, b *journalBase) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, recHeaderSize))
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return fmt.Errorf("crawler: base encode: %w", err)
	}
	raw := buf.Bytes()
	payload := raw[recHeaderSize:]
	binary.BigEndian.PutUint32(raw[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(raw[4:8], crc32.ChecksumIEEE(payload))

	f, err := os.CreateTemp(dir, ".tmp-base-")
	if err != nil {
		return fmt.Errorf("crawler: base temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("crawler: base write: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, baseName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("crawler: base publish: %w", err)
	}
	return syncJournalDir(dir)
}

// syncJournalDir fsyncs the journal directory so renames and deletes are
// durable; filesystems that cannot sync directories are tolerated.
func syncJournalDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("crawler: journal dir open: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("crawler: journal dir sync: %w", err)
	}
	return nil
}

// Compact seals everything the journal currently holds — the replayed
// state st, which must be exactly what openJournal returned with no
// appends since — into one verified base snapshot, deletes the sealed
// segments, and starts a fresh active segment. Replay cost after a
// compaction is one base decode plus only the records appended since,
// bounding resume time on a months-long crawl. The base is read back and
// verified before any segment is deleted, so a failed compaction never
// costs data: at worst the old segments and an unused base coexist.
func (j *journal) Compact(st *crawlState) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.readonly {
		return fmt.Errorf("crawler: compact refused: journal is fenced and this handle is read-only (open with the owning lease epoch): %w", ErrFenced)
	}
	if j.f == nil {
		return errors.New("crawler: journal closed")
	}
	if j.epoch > 0 {
		if err := j.checkFenceLocked(); err != nil {
			return err
		}
	}
	// st must cover everything on disk. Records appended through this
	// journal instance are not in the st its openJournal returned, and a
	// base built from that stale state would silently drop them when the
	// sealed segments are deleted — refuse rather than lose data.
	if j.appended > 0 {
		return fmt.Errorf("crawler: compact refused: %d records appended since open (reopen the journal and compact before appending)", j.appended)
	}
	// Seal the active segment.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("crawler: compact sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		j.f = nil
		return fmt.Errorf("crawler: compact close: %w", err)
	}
	j.f = nil
	upTo := j.seq

	base := &journalBase{
		UpToSeq:   upTo,
		Users:     st.users,
		Games:     st.games,
		Groups:    st.groups,
		Ach:       st.ach,
		AchDone:   st.achDone,
		PhaseDone: st.phaseDone,
	}
	if err := writeBase(j.dir, base); err != nil {
		return err
	}
	// Verify the just-written base before deleting what it replaces.
	got, err := readBase(filepath.Join(j.dir, baseName))
	if err != nil {
		return fmt.Errorf("crawler: compact verification: %w", err)
	}
	if got.UpToSeq != upTo || len(got.Users) != len(st.users) ||
		len(got.Games) != len(st.games) || len(got.Groups) != len(st.groups) {
		return fmt.Errorf("crawler: compact verification: base read back with %d/%d/%d records, want %d/%d/%d",
			len(got.Users), len(got.Games), len(got.Groups), len(st.users), len(st.games), len(st.groups))
	}
	if err := journalCrash("compact-sealed"); err != nil {
		return err
	}

	// Delete the sealed segments; a crash mid-delete leaves leftovers the
	// next openJournal sweeps.
	for seq := 1; seq <= upTo; seq++ {
		if err := os.Remove(filepath.Join(j.dir, segName(seq))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("crawler: compact removing %s: %w", segName(seq), err)
		}
	}
	if err := syncJournalDir(j.dir); err != nil {
		return err
	}

	// Fresh active segment after the base.
	if j.epoch > 0 {
		if err := j.createFencedSegment(upTo + 1); err != nil {
			return fmt.Errorf("crawler: compact reopen: %w", err)
		}
	} else {
		j.seq = upTo + 1
		j.size = 0
		j.hdr = 0
		f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("crawler: compact reopen: %w", err)
		}
		j.f = f
	}
	if j.metrics != nil {
		j.metrics.JournalSegments.Store(1)
	}
	return nil
}

// Convenience appenders used by the crawl phases.

func (j *journal) appendUser(u *dataset.UserRecord) error {
	return j.append(&journalRecord{Kind: kindUser, User: u})
}

func (j *journal) appendGame(g *dataset.GameRecord) error {
	return j.append(&journalRecord{Kind: kindGame, Game: g})
}

func (j *journal) appendAch(appID uint32, ach []dataset.AchievementRecord) error {
	return j.append(&journalRecord{Kind: kindAch, AppID: appID, Achievements: ach})
}

func (j *journal) appendGroup(g *dataset.GroupRecord) error {
	return j.append(&journalRecord{Kind: kindGroup, Group: g})
}

func (j *journal) appendPhaseDone(phase uint8) error {
	return j.append(&journalRecord{Kind: kindPhaseDone, Phase: phase})
}
